"""The Target SDK cookbook's toy target: a persistent append-only log.

This is the worked example for ``docs/TARGET_SDK.md`` — every section
of the cookbook points at a piece of this file. It is a *plugin
module*: nothing here is imported by the repo; the CLI loads it with
``--target-module examples/sdk_cookbook_target.py`` and the
``ToyLogTarget`` class registers itself as ``toylog``.

The workload is a bounded append-only log with two deliberate traits:

* **Seeded bug** — ``append`` persists the payload slot but publishes
  the new head with a plain store that is never flushed (the classic
  missing-flush ordering bug). ``audit`` reads the head lock-free and
  durably checkpoints it, so a crash in the window leaves a durable
  checkpoint describing entries the log never persisted. PMRace
  reports it as an inter-thread inconsistency with verdict ``BUG``,
  and ``repro lint`` flags the write site statically (PM01).
* **Benign counterpart** — the persistent writer lock is annotated as
  a PM synchronization variable and recovery *does* re-initialize it,
  so its inconsistency validates as a false positive
  (``VALIDATED_FP``), demonstrating how post-failure validation
  separates bugs from noise.
"""

from repro.pmem import PmemPool
from repro.targets import OperationSpace, Target, TargetState

HEAD = 0          # number of appended entries (published, never flushed!)
CHECK = 8         # audit's durable checkpoint of the head
LOCK = 16         # persistent writer lock (annotated sync variable)
SLOTS = 64        # payload slots start here, one u64 each
NUM_SLOTS = 16


class ToyLogSpace(OperationSpace):
    """``append <key> <value>`` / ``audit <key>`` (key is ignored)."""

    kinds = ("append", "audit")
    insert_kind = "append"
    key_range = 4


class ToyLogInstance:
    """Per-campaign runtime state; everything durable lives in the pool."""

    def __init__(self, view, scheduler):
        self.view = view
        self.scheduler = scheduler

    def _lock(self):
        view = self.view
        while True:
            if view.pool.read_u64(LOCK) == 0:
                ok, _ = view.cas_u64(LOCK, 0, 1)
                if ok:
                    return
            if self.scheduler is None:
                raise RuntimeError("toylog writer lock stuck outside the "
                                   "scheduler")
            self.scheduler.yield_point("spin", "pm_lock:toylog_writer")

    def append(self, value):
        view = self.view
        self._lock()
        try:
            head = int(view.load_u64(HEAD))
            if head >= NUM_SLOTS:
                return False                    # log full
            slot = SLOTS + head * 8
            view.store_u64(slot, value)
            view.persist(slot, 8)
            # SEEDED BUG: the new head is published for concurrent
            # readers but never flushed — a crash can persist the
            # payload yet lose the publication (or, with audit below,
            # persist a checkpoint of a head that never became durable).
            view.store_u64(HEAD, head + 1)
            return True
        finally:
            view.store_u64(LOCK, 0)

    def audit(self):
        view = self.view
        head = view.load_u64(HEAD)              # possibly unflushed
        view.ntstore_u64(CHECK, head)           # durable side effect
        view.sfence()
        return int(head)


class ToyLogTarget(Target):
    NAME = "toylog"
    VERSION = "cookbook-1"
    SCOPE = "Append-only log"
    CONCURRENCY = "Lock-based"
    POOL_SIZE = SLOTS + NUM_SLOTS * 8

    def operation_space(self):
        return ToyLogSpace()

    def setup(self):
        pool = PmemPool("toylog", self.POOL_SIZE)
        pool.memory.persist_all()
        state = TargetState(pool)
        state.annotations.pm_sync_var_hint("toylog_writer_lock", 8, 0)
        state.annotations.register_instance("toylog_writer_lock", LOCK)
        return state

    def open(self, state, view, scheduler):
        return ToyLogInstance(view, scheduler)

    def exec_op(self, instance, view, op):
        kind = op.get("op")
        if kind == "append":
            return instance.append(op.get("value", 0))
        if kind == "audit":
            instance.audit()
            return True
        return False

    def recover(self, pool, view):
        # Clamp the head to the slots that actually persisted: the
        # publication store is the seeded bug, so recovery recomputes
        # it from the durable payload prefix (zero = never written).
        head = 0
        while head < NUM_SLOTS and pool.read_u64(SLOTS + head * 8) != 0:
            head += 1
        view.ntstore_u64(HEAD, head)
        # The annotated writer lock is correctly re-initialized, which
        # is what turns its sync inconsistency into a VALIDATED_FP.
        view.ntstore_u64(LOCK, 0)
        view.sfence()
        # The audit checkpoint at CHECK is deliberately trusted as-is:
        # that durable side effect is what convicts the seeded bug.
        self._recovered = head
        return self

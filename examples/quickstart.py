#!/usr/bin/env python3
"""Quickstart: fuzz P-CLHT and print the bug reports.

Runs a bounded PMRace session against the P-CLHT re-implementation (the
paper's running example, §2.3.2) and prints every unique bug found, with
its write/read sites and post-failure verdict accounting.

Usage::

    python examples/quickstart.py [campaigns]
"""

import sys

from repro import PMRace, PMRaceConfig, make_target


def main():
    campaigns = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    target = make_target("P-CLHT")
    config = PMRaceConfig(max_campaigns=campaigns, max_seeds=20,
                          base_seed=7)
    print("Fuzzing %s for %d campaigns..." % (target.NAME, campaigns))
    result = PMRace(target, config).run()

    summary = result.summary()
    print("\n%d campaigns in %.1fs (%.0f exec/s)" % (
        result.campaigns, result.duration, result.executions_per_second))
    print("inter-thread inconsistency candidates : %d" %
          summary["inter_candidates"])
    print("confirmed inter-thread inconsistencies: %d" % summary["inter"])
    print("sync inconsistencies (benign/total)   : %d/%d" % (
        summary["sync_validated_fp"], summary["sync"]))
    print("unique bugs                            : %d" % summary["bugs"])

    for report in result.bug_reports:
        print()
        print(report.format())


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fuzzing a key-value store: memcached-pmem end to end.

Demonstrates three things on the memcached-pmem re-implementation:

1. the text-protocol surface and the two input generators — PMRace's
   operation mutator always produces valid commands, while byte-level
   havoc (the AFL++ baseline) wastes a large share on parse errors
   (Table 4's premise);
2. a fuzzing session whose post-failure validation separates the benign
   LRU-link inconsistencies (recovery rebuilds the index and overwrites
   next/prev → validated false positives) from the real value/metadata
   bugs (Table 2, bugs 9-14);
3. crash recovery itself: items with torn (checksum-mismatched) values
   are dropped during the index rebuild.
"""

import random

from repro import PMRace, PMRaceConfig, Verdict, make_target
from repro.core import AflByteMutator, OperationMutator
from repro.instrument import InstrumentationContext, PmView
from repro.pmem import PmemPool


def demo_mutators():
    print("=== input generators ===")
    target = make_target("memcached-pmem")
    space = target.operation_space()

    op_mut = OperationMutator(space, rng=random.Random(1))
    seed = op_mut.populate_seed()
    print("operation mutator sample (always parses):")
    print(space.serialize(seed.flat_ops()[:4]).decode().strip())

    afl = AflByteMutator(space, rng=random.Random(1))
    data = afl.initial_bytes()
    for _ in range(50):
        _seed, data = afl.next_seed(data)
    print("\nAFL-style byte mutator after 50 rounds: %d invalid commands"
          % afl.invalid_ops)
    print("mutated bytes sample: %r" % data[:60])


def demo_fuzzing():
    print("\n=== fuzzing session ===")
    target = make_target("memcached-pmem")
    config = PMRaceConfig(max_campaigns=80, max_seeds=20,
                          ops_per_thread=8, base_seed=13)
    result = PMRace(target, config).run()
    records = result.inconsistencies
    fps = [r for r in records if r.verdict in (Verdict.VALIDATED_FP,
                                               Verdict.WHITELISTED_FP)]
    bugs = [r for r in records if r.verdict is Verdict.BUG]
    print("detected %d inconsistencies: %d validated as benign by the "
          "recovery replay, %d real" % (len(records), len(fps), len(bugs)))
    for report in result.bug_reports[:4]:
        print("  bug: [%s] write=%s" % (report.kind, report.write_instr))


def demo_recovery():
    print("\n=== crash recovery (checksum guard) ===")
    target = make_target("memcached-pmem")
    state = target.setup()
    view = PmView(state.pool, None, InstrumentationContext())
    instance = target.open(state, view, None)
    instance.cmd_store("set", 1, b"alpha")
    instance.cmd_store("set", 2, b"beta")
    state.pool.memory.persist_all()
    # corrupt one value behind the checksum's back, then "crash"
    from repro.targets.memcached import IT_VALUE
    item = instance.index[2]
    state.pool.memory.store(item + IT_VALUE, b"torn!", None, "corrupt",
                            ntstore=True)
    image = state.pool.crash_image()
    pool = PmemPool.from_image("restart", image)
    rview = PmView(pool, None, InstrumentationContext())
    recovered = make_target("memcached-pmem").recover(pool, rview)
    print("items surviving recovery: %d (the torn one was dropped)"
          % len(recovered._recovered))


if __name__ == "__main__":
    demo_mutators()
    demo_fuzzing()
    demo_recovery()

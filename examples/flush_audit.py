#!/usr/bin/env python3
"""Auditing persistency operations with PMRace's extra checkers (§4.3).

The paper points out that PMRace's framework accommodates further PM
checkers beyond the concurrency ones; this example runs two of them over
the memcached-pmem re-implementation:

* the **missing-flush scan** pinpoints the store sites whose data would
  be lost by a crash (memcached-pmem's unflushed value writes — the root
  cause of Table 2's bugs 9/10 — and its LRU link updates);
* the **redundant-flush checker** flags persist calls on already-clean
  lines (a performance bug class, compare Table 2's bug 4).
"""

from repro import RedundantFlushChecker, make_target, scan_missing_flushes
from repro.detect import FenceCounter
from repro.instrument import InstrumentationContext, PmView


def main():
    target = make_target("memcached-pmem")
    state = target.setup()
    ctx = InstrumentationContext()
    redundant = ctx.add_observer(RedundantFlushChecker(state.pool))
    counter = ctx.add_observer(FenceCounter())
    view = PmView(state.pool, None, ctx)
    instance = target.open(state, view, None)

    # a short single-threaded workload
    for key in range(6):
        instance.cmd_store("set", key, b"%d" % (key * 11))
    for key in range(6):
        instance.cmd_get(key)
    instance.cmd_store("append", 2, b"-tail")
    instance.cmd_arith(3, 7)
    instance.cmd_delete(4)

    print("persistency profile: %d stores, %d ntstores, %d flushes, "
          "%d fences" % (counter.stores, counter.ntstores,
                         counter.flushes, counter.fences))

    print("\nmissing flushes (data a crash would lose):")
    for record in scan_missing_flushes(state.pool):
        print("  %-55s %3d bytes dirty"
              % (record.instr_id, record.byte_count))

    print("\nredundant flushes (already-clean lines):")
    if not redundant.redundant_flushes:
        print("  none")
    for record in redundant.redundant_flushes:
        print("  %-55s x%d" % (record.instr_id, record.count))

    missing = scan_missing_flushes(state.pool)
    assert any("memcached" in record.instr_id for record in missing), \
        "memcached-pmem's missing value flushes should be visible"
    print("\nThe unflushed value/LRU stores above are exactly the sites "
          "PMRace's\nconcurrency checkers turn into bugs 9-14 once another "
          "thread consumes them.")


if __name__ == "__main__":
    main()

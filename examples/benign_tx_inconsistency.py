#!/usr/bin/env python3
"""Figure 7: a benign PM Intra-thread Inconsistency in clevel hashing.

Reproduces the paper's false-positive showcase: inside an uncommitted
PMDK transaction, the constructor stores a meta field, reads it back
while it is still non-persisted, and derives another durable write from
the dirty value. PMRace's checker reports the intra-thread inconsistency
— and post-failure validation then discovers that the undo-log rollback
overwrites the side effect during recovery, marking it a validated false
positive instead of a bug.
"""

from repro import Verdict, make_target
from repro.detect import InconsistencyChecker, PostFailureValidator, Whitelist
from repro.instrument import InstrumentationContext, PmView
from repro.pmdk import Transaction
from repro.targets.clevel import M_CAPACITY, M_MASK


def main():
    target = make_target("clevel hashing")
    state = target.setup()
    objpool = state.extras["objpool"]

    ctx = InstrumentationContext()
    checker = ctx.add_observer(InconsistencyChecker(state.pool))
    view = PmView(state.pool, None, ctx)

    # The Figure 7 pattern, inside a transaction that never commits.
    tx = Transaction(objpool, view, tid=0).begin()
    new_meta = tx.tx_alloc(64)
    tx.add_range(new_meta, 24)
    view.store_u64(new_meta + M_CAPACITY, 32)          # store, no flush
    dirty = view.load_u64(new_meta + M_CAPACITY)       # dirty read!
    view.store_u64(new_meta + M_MASK, dirty - 1)       # durable side effect

    assert checker.intra_candidates or checker.candidates
    record = checker.inconsistencies[0]
    print("pre-failure: detected %s inconsistency" % record.kind)
    print("  dirty data written at : %s" % record.write_instr)
    print("  read back at          : %s" % record.read_instr)
    print("  durable side effect at: %s" % record.side_effect_instr)

    # Crash here (the transaction is still open) and validate.
    validator = PostFailureValidator(
        lambda: make_target("clevel hashing"), Whitelist())
    verdict = validator.validate(record)
    print("post-failure: %s — %s" % (verdict.value, record.note))
    assert verdict is Verdict.VALIDATED_FP, \
        "rollback should overwrite the side effect"
    print("\nThe undo-log rollback reverted the transaction-protected "
          "meta object,\nso the inconsistency is benign — exactly the "
          "paper's Figure 7 outcome.")


if __name__ == "__main__":
    main()

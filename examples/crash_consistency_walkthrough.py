#!/usr/bin/env python3
"""Anatomy of a PM Inter-thread Inconsistency, step by step (Figures 1-3).

Reconstructs the paper's Figure 2/3 scenario on the FAST-FAIR B+-tree
with a *scripted* interleaving instead of fuzzing:

1. thread-1 splits a leaf and stores the sibling pointer without an
   immediate flush (btree.h:560's analog);
2. thread-2 moves right through the dirty pointer and inserts its key
   into the sibling — a durable side effect based on non-persisted data;
3. a crash image taken at that moment loses the sibling pointer but keeps
   the inserted item: the item is unreachable after recovery (data loss).

The same run shows the checker's records and the post-failure verdict.
"""

from repro import PMRaceConfig, Verdict, make_target
from repro.core import SharedAccessEntry, run_campaign
from repro.detect import PostFailureValidator, Whitelist
from repro.instrument.callsite import CallSiteTable
from repro.runtime import SeededRandomPolicy
from repro.targets.fastfair import N_SIBLING


def main():
    target = make_target("FAST-FAIR")
    state = target.setup()

    # Thread 1 fills one leaf and splits it; thread 2 inserts a key that
    # belongs in the sibling. The sync-point entry stalls thread-2's
    # sibling-pointer read until thread-1's split stores it.
    filler = [{"op": "put", "key": k, "value": k} for k in range(8)]
    splitter = [{"op": "put", "key": 8, "value": 8}]
    chaser = [{"op": "put", "key": 9, "value": 99}]

    # One call-site table shared by every campaign: the profiler keys
    # sites by interned int id, and the guided passes must see the same
    # ids the profiling pass recorded. table.name(id) resolves an id
    # back to its module:function:line string.
    table = CallSiteTable()

    # profiling pass: discover the shared sibling-pointer access sites
    profile = run_campaign(target, state, [filler + splitter, chaser],
                           SeededRandomPolicy(1), callsites=table)
    sibling_groups = [
        (addr, info) for addr, info in profile.profiler.profile.items()
        if all("_split_leaf" in table.name(site) for site in info["stores"])
        and any("_move_right" in table.name(site) for site in info["loads"])
    ]
    print("profiling found %d sibling-pointer access group(s)"
          % len(sibling_groups))
    addr, info = sibling_groups[0]
    entry = SharedAccessEntry(addr, frozenset(info["loads"]),
                              frozenset(info["stores"]), info["count"])

    # guided passes on fresh pools: drive thread-2 into the dirty window
    import random
    inter = []
    for seed in range(1, 12):
        state = target.setup()
        result = run_campaign(target, state, [filler + splitter, chaser],
                              SeededRandomPolicy(seed), entry=entry,
                              rng=random.Random(seed), callsites=table)
        inter = [r for r in result.checker.inter_inconsistencies
                 if "_split_leaf" in r.write_instr]
        if inter:
            print("schedule seed %d hit the window (outcome: %s)"
                  % (seed, result.outcome.status))
            break
    for candidate in result.checker.inter_candidates:
        print("candidate: %s read non-persisted data written at %s"
              % (candidate.read_instr, candidate.write_instr))
    if not inter:
        print("interleaving not hit; the fuzzer's exploration tiers "
              "exist precisely to search these schedules at scale")
        return
    record = inter[0]
    print("confirmed inconsistency: durable side effect at %s (%s flow)"
          % (record.side_effect_instr,
             "address" if record.address_flow else "content"))

    # post-failure validation: FAST-FAIR's lazy recovery does not repair
    # it, so the verdict is BUG — the paper's bug 8.
    validator = PostFailureValidator(lambda: make_target("FAST-FAIR"),
                                     Whitelist())
    verdict = validator.validate(record)
    print("post-failure verdict: %s (%s)" % (verdict.value, record.note
                                             or "not repaired by recovery"))
    assert verdict is Verdict.BUG


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Bring your own PM program: write a target and fuzz it with PMRace.

Implements a tiny persistent ring log with a deliberately missing flush —
the head pointer is published before the payload is flushed — plus a
persistent writer lock that recovery forgets to release. PMRace finds
both: an inter-thread inconsistency (consumers checkpoint a head derived
from non-persisted data) and a PM Synchronization Inconsistency.

This is the template for testing your own code: subclass ``Target``,
perform all PM accesses through the ``PmView`` hooks, annotate persistent
synchronization variables, and provide ``recover``.
"""

from repro import PMRace, PMRaceConfig
from repro.targets.base import OperationSpace, Target, TargetState

HEAD = 0          # persistent head index
LOCK = 8          # persistent writer lock (annotated)
CHECKPOINT = 16   # consumer checkpoint derived from head
SLOTS = 64        # ring slots start here
NUM_SLOTS = 8


class RingLogSpace(OperationSpace):
    kinds = ("push", "checkpoint")
    insert_kind = "push"
    key_range = 8

    def random_op(self, rng, near_key=None):
        kind = rng.choice(self.kinds)
        op = {"op": kind, "key": 0}
        if kind == "push":
            op["value"] = rng.randrange(1000)
        return op


class RingLogInstance:
    def __init__(self, view, scheduler):
        self.view = view
        self.scheduler = scheduler

    def push(self, value):
        view = self.view
        # persistent test-and-set lock
        while True:
            if view.pool.read_u64(LOCK) == 0:
                ok, _ = view.cas_u64(LOCK, 0, 1)
                if ok:
                    break
            if self.scheduler is None:
                raise RuntimeError("lock leaked")
            self.scheduler.yield_point("spin", "pm_lock:ring")
        head = view.load_u64(HEAD)
        slot = SLOTS + (int(head) % NUM_SLOTS) * 8
        view.store_u64(slot, value)
        view.persist(slot, 8)
        # BUG: the new head is published but never flushed
        view.store_u64(HEAD, head + 1)
        view.store_u64(LOCK, 0)

    def checkpoint(self):
        view = self.view
        head = view.load_u64(HEAD)          # possibly non-persisted
        view.ntstore_u64(CHECKPOINT, head)  # durable side effect!
        view.sfence()


class RingLogTarget(Target):
    NAME = "ring-log"
    POOL_SIZE = 4096

    def operation_space(self):
        return RingLogSpace()

    def setup(self):
        from repro.pmem import PmemPool
        pool = PmemPool("ring", self.POOL_SIZE)
        pool.memory.persist_all()
        state = TargetState(pool)
        state.annotations.pm_sync_var_hint("ring_lock", 8, 0)
        state.annotations.register_instance("ring_lock", LOCK)
        return state

    def open(self, state, view, scheduler):
        return RingLogInstance(view, scheduler)

    def exec_op(self, instance, view, op):
        if op.get("op") == "push":
            instance.push(op.get("value", 0))
            return True
        if op.get("op") == "checkpoint":
            instance.checkpoint()
            return True
        return False

    def recover(self, pool, view):
        # reads the head back but forgets to re-initialize the lock
        pool.read_u64(HEAD)
        return self


def main():
    result = PMRace(RingLogTarget(),
                    PMRaceConfig(max_campaigns=40, max_seeds=10,
                                 base_seed=3)).run()
    print("campaigns: %d" % result.campaigns)
    print("inter-thread inconsistencies: %d"
          % len(result.inter_inconsistencies))
    print("sync inconsistencies: %d" % len(result.sync_inconsistencies))
    for report in result.bug_reports:
        print()
        print(report.format())
    assert result.bug_reports, "expected PMRace to find the seeded bugs"


if __name__ == "__main__":
    main()

"""Table 3: PM concurrency bug detection results with FP filtering.

Columns mirror the paper: Inter-thread Inconsistency Candidates, confirmed
Inter-thread Inconsistencies, validated and whitelisted false positives,
unique interleaving bugs; then annotations, Sync Inconsistencies,
validated sync FPs and execution-context bugs.

Expected shape (paper): candidates prune to roughly a third when requiring
durable side effects; memcached-pmem dominates validated FPs (its recovery
rebuilds the index); clevel's inconsistencies are all whitelisted (PMDK
transactional allocation); P-CLHT has 4 annotations → 4 sync
inconsistencies → 3 validated FPs → 1 bug; CCEH has 1 sync bug.
"""

from repro.core.results import build_table3, render_table

from conftest import emit, fuzz_all_targets


def test_table3_false_positives(benchmark):
    results = benchmark.pedantic(fuzz_all_targets, rounds=1, iterations=1)
    rows = build_table3(results)
    text = render_table(
        rows,
        ["system", "inter_cand", "inter", "validated_fp", "whitelisted_fp",
         "inter_bug", "annotation", "sync", "sync_validated_fp", "sync_bug"],
        title="Table 3: detection results and false-positive filtering")
    emit("table3_false_positives", text)
    by_name = {row["system"]: row for row in rows}

    # confirmed inconsistencies are a subset of candidates-with-effects
    total = by_name["Total"]
    assert total["inter_cand"] > 0 and total["inter"] > 0

    # P-CLHT: 4 annotations, 3 benign sync inconsistencies, 1 sync bug
    pclht = by_name["P-CLHT"]
    assert pclht["annotation"] == 4
    assert pclht["sync_validated_fp"] == 3
    assert pclht["sync_bug"] == 1

    # CCEH: segment-lock bug survives, no sync FPs
    cceh = by_name["CCEH"]
    assert cceh["annotation"] == 2
    assert cceh["sync_bug"] == 1

    # clevel: whitelisting filters everything — no bugs
    clevel = by_name["clevel hashing"]
    assert clevel["whitelisted_fp"] >= 1
    assert clevel["inter_bug"] == 0 and clevel["sync_bug"] == 0

    # memcached: the index rebuild validates many FPs, bugs remain
    memcached = by_name["memcached-pmem"]
    assert memcached["validated_fp"] >= 1
    assert memcached["inter_bug"] >= 1

"""§6.6: the applicability of PMRace on an eADR platform.

The paper's discussion predicts that with extended ADR (battery-backed,
persistent CPU caches) the cache-flush bug class disappears — no PM
Inter-thread Inconsistency can occur — while PM Execution Context Bugs
remain: persistent locks still survive crashes unreleased. This benchmark
runs the same fuzzing session on the simulated ADR and eADR platforms and
checks exactly that.
"""

import pytest

from repro.core import PMRace, PMRaceConfig
from repro.core.results import render_table
from repro.targets import CcehTarget, PclhtTarget

from conftest import emit


def fuzz(target, eadr):
    config = PMRaceConfig(max_campaigns=50, max_seeds=14, base_seed=7,
                          eadr=eadr)
    return PMRace(target, config).run()


def test_discussion_eadr(benchmark):
    def run():
        rows = []
        for cls in (PclhtTarget, CcehTarget):
            for eadr in (False, True):
                result = fuzz(cls(), eadr)
                summary = result.summary()
                rows.append({
                    "system": cls.NAME,
                    "platform": "eADR" if eadr else "ADR",
                    "inter_cand": summary["inter_candidates"],
                    "inter": summary["inter"],
                    "intra": summary["intra"],
                    "sync": summary["sync"],
                    "sync_bugs": sum(1 for b in result.bug_reports
                                     if b.kind == "sync"),
                })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        rows, ["system", "platform", "inter_cand", "inter", "intra",
               "sync", "sync_bugs"],
        title="§6.6: ADR vs eADR — flush-gap bugs vanish, lock bugs stay")
    emit("discussion_eadr", text)

    by_key = {(row["system"], row["platform"]): row for row in rows}
    for system in ("P-CLHT", "CCEH"):
        eadr = by_key[(system, "eADR")]
        adr = by_key[(system, "ADR")]
        # no inter/intra-thread inconsistencies on eADR...
        assert eadr["inter"] == 0 and eadr["intra"] == 0
        assert eadr["inter_cand"] == 0
        # ...but the PM Synchronization Inconsistency bugs persist
        assert eadr["sync_bugs"] >= 1
        assert adr["inter"] + adr["intra"] >= 1

"""Static-hints A/B: time-to-first-candidate with pmlint pre-seeding.

``PMRaceConfig.static_hints`` injects pmlint's PM01 findings into the
shared-access priority queue before any dynamic profile exists
(:mod:`repro.analysis.hints`), so the first guided interleavings aim at
the statically suspicious windows. This benchmark fuzzes the memcached
target with hints off and on (same seeds, same budget) and reports:

* time to the first inter-thread candidate (any site),
* time to the first candidate whose writer is a pmlint-flagged store
  (the windows the static pass predicts),
* time to the first confirmed inter-thread inconsistency,
* distinct flagged stores that produced candidates within the budget.

Expected shape **at this reproduction's scale**: near-parity. The
simulated targets are a few hundred lines, every operation touches the
shared LRU words, and the dynamic profiler covers the flagged windows
within the first campaigns — so hints cannot beat a profile that forms
almost instantly. The checked-in numbers document that parity plus the
guard this bench enforces: pre-seeding must never *hurt* (the hinted
run stays within tolerance of baseline on every metric and completes
the identical workload). The payoff case — large targets where most
flagged sites are cold at profile time — is exactly the paper's §5
motivation and does not fit in a CI-sized budget.

Runs standalone too: ``python benchmarks/bench_static_hints.py``.
"""

import time

from repro import PMRace, PMRaceConfig, make_target
from repro.analysis import collect_hints_for_target
from repro.core.results import render_table

from conftest import emit

TARGET = "memcached-pmem"
SEEDS = (3, 7, 13, 21, 42, 99)
CAMPAIGNS = 40
#: The hinted run must stay within this factor of baseline per metric.
TOLERANCE = 3.0


class _CandidateTimer:
    """Tracer that timestamps candidate events against run start."""

    enabled = True

    def __init__(self, flagged_sites):
        self.flagged = flagged_sites
        self.start = time.monotonic()
        self.first_flagged = None

    def emit(self, event_type, **fields):
        if event_type == "candidate" and self.first_flagged is None \
                and fields.get("write_code") in self.flagged:
            self.first_flagged = time.monotonic() - self.start


def flagged_store_sites():
    hints = collect_hints_for_target(make_target(TARGET))
    return {site for hint in hints for site in hint.store_sites}


def measure(static_hints, flagged):
    """Mean metrics over SEEDS for one config arm."""
    first_candidate = []
    first_flagged = []
    first_inter = []
    flagged_covered = []
    campaigns = 0
    for seed in SEEDS:
        cfg = PMRaceConfig(max_campaigns=CAMPAIGNS, n_threads=2,
                           ops_per_thread=4, base_seed=seed,
                           static_hints=static_hints,
                           snapshot_images=False, validate=False)
        timer = _CandidateTimer(flagged)
        result = PMRace(make_target(TARGET), cfg, tracer=timer).run()
        campaigns += result.campaigns
        first_candidate.append(result.first_candidate_time)
        first_flagged.append(timer.first_flagged)
        first_inter.append(result.first_inter_time)
        flagged_covered.append(len(
            {c.write_instr for c in result.candidates
             if c.write_instr in flagged}))

    def mean_ms(values):
        hits = [v for v in values if v is not None]
        return (sum(hits) / len(hits)) * 1000.0 if hits else float("inf")

    return {
        "first_candidate_ms": mean_ms(first_candidate),
        "first_flagged_candidate_ms": mean_ms(first_flagged),
        "first_inter_ms": mean_ms(first_inter),
        "flagged_sites_hit": sum(flagged_covered) / len(flagged_covered),
        "campaigns": campaigns,
    }


def run_ab():
    flagged = flagged_store_sites()
    off = measure(False, flagged)
    on = measure(True, flagged)
    rows = []
    for arm, metrics in (("hints off", off), ("hints on", on)):
        rows.append({
            "config": arm,
            "first_candidate_ms": "%.2f" % metrics["first_candidate_ms"],
            "first_flagged_ms":
                "%.2f" % metrics["first_flagged_candidate_ms"],
            "first_inter_ms": "%.2f" % metrics["first_inter_ms"],
            "flagged_sites_hit": "%.1f/%d" % (metrics["flagged_sites_hit"],
                                              len(flagged)),
            "campaigns": metrics["campaigns"],
            "_metrics": metrics,
        })
    return rows


def check_and_emit(rows):
    text = render_table(
        rows, ["config", "first_candidate_ms", "first_flagged_ms",
               "first_inter_ms", "flagged_sites_hit", "campaigns"],
        title="Static hints A/B on %s (%d campaigns x %d seeds, "
              "mean time-to-first, ms)" % (TARGET, CAMPAIGNS, len(SEEDS)))
    emit("static_hints", text)
    off = rows[0]["_metrics"]
    on = rows[1]["_metrics"]
    # Both arms completed the identical workload and found candidates.
    assert off["campaigns"] == on["campaigns"] == CAMPAIGNS * len(SEEDS)
    for metrics in (off, on):
        assert metrics["first_candidate_ms"] != float("inf")
        assert metrics["first_flagged_candidate_ms"] != float("inf")
    # Pre-seeding must never hurt: the hinted arm stays within tolerance
    # of baseline on every time-to-first metric.
    for key in ("first_candidate_ms", "first_flagged_candidate_ms",
                "first_inter_ms"):
        assert on[key] <= off[key] * TOLERANCE, (key, off[key], on[key])
    assert on["flagged_sites_hit"] >= off["flagged_sites_hit"] - 1.0


def test_static_hints_ab(benchmark):
    rows = benchmark.pedantic(run_ab, rounds=1, iterations=1)
    check_and_emit(rows)


if __name__ == "__main__":
    check_and_emit(run_ab())

"""Parallel fuzzing scaling: merged campaign throughput vs pool size.

The paper's §5 evaluation runs 13 concurrent fuzzing workers; here the
fault-tolerant parallel service fuzzes the same target with 1, 2 and 4
worker processes (same per-worker budget) and reports merged campaigns
per wall-clock second.  Expected shape: throughput increases from 1 to
2 workers and again — hardware permitting — at 4.  On a single-core
host there is no parallelism to exploit, so the scaling assertion is
replaced by an overhead bound: every pool size must complete the
identical merged workload within 1.8x of the serial wall clock.

A second measurement pins the cost of durability: the identical workload
with and without a ``--session-dir`` (per-unit checkpoints, journal,
corpus mirror).  The crash-safe session layer must cost < 5% throughput.

Runs standalone too: ``python benchmarks/bench_parallel_scaling.py``.
"""

import multiprocessing
import shutil
import tempfile
import time

import pytest

from repro.core import PMRaceConfig, Session, fuzz_parallel
from repro.core.results import render_table

from conftest import emit

TARGET = "P-CLHT"
CAMPAIGNS_PER_WORKER = 12
SEEDS = (7, 13, 42, 99)
POOL_SIZES = (1, 2, 4)

#: Wall-clock repeats for the session-overhead comparison; the best of
#: each arm is compared, which discards scheduler noise.
OVERHEAD_REPEATS = 3
OVERHEAD_BUDGET = 0.05


def measure(processes):
    """Merged campaigns per wall-clock second at one pool size."""
    config = PMRaceConfig(max_campaigns=CAMPAIGNS_PER_WORKER, max_seeds=6,
                          snapshot_images=False, capture_stacks=False,
                          validate=False)
    start = time.monotonic()
    merged = fuzz_parallel(TARGET, config, seeds=SEEDS,
                           processes=processes)
    elapsed = time.monotonic() - start
    return merged, elapsed


def run_scaling():
    rows = []
    for processes in POOL_SIZES:
        merged, elapsed = measure(processes)
        # campaign counts and per-worker throughput both come from the
        # engine's own profiling hooks (RunResult.profile) — the single
        # source of truth — so the benchmark only supplies wall clock
        profile = merged.profile
        campaigns = profile.get("executions", merged.campaigns)
        throughput = campaigns / elapsed
        rows.append({
            "workers": processes,
            "campaigns": campaigns,
            "wall_s": "%.2f" % elapsed,
            "campaigns_per_s": "%.2f" % throughput,
            # worker-side rate (executions over summed worker-local
            # durations): dips when the pool oversubscribes the cores
            "worker_side_per_s": "%.2f" % profile.get("execs_per_sec", 0.0),
            "ok_workers": sum(s.status == "ok"
                              for s in merged.worker_stats),
            "_throughput": throughput,
        })
    return rows


def check_and_emit(rows):
    cores = multiprocessing.cpu_count()
    text = render_table(
        rows, ["workers", "campaigns", "wall_s", "campaigns_per_s",
               "worker_side_per_s", "ok_workers"],
        title="Parallel fuzzing scaling (merged campaigns/second, "
              "%d core%s)" % (cores, "" if cores == 1 else "s"))
    emit("parallel_scaling", text)
    by_size = {row["workers"]: row for row in rows}
    # every pool size completed the full merged workload...
    assert all(row["campaigns"] == CAMPAIGNS_PER_WORKER * len(SEEDS)
               for row in rows), rows
    if cores >= 2:
        # ...and two workers beat the serial baseline
        assert by_size[2]["_throughput"] > by_size[1]["_throughput"], rows
    else:
        # ...single-core host: no parallelism to exploit, so pin the
        # service overhead instead of the (impossible) speedup
        assert by_size[4]["_throughput"] > \
            by_size[1]["_throughput"] / 1.8, rows


def _measure_once(session_dir):
    """Wall clock for the fixed workload, durably or not."""
    config = PMRaceConfig(max_campaigns=CAMPAIGNS_PER_WORKER, max_seeds=6,
                          snapshot_images=False, capture_stacks=False,
                          validate=False)
    session = None
    if session_dir is not None:
        session = Session.open(session_dir, TARGET, "parallel", SEEDS,
                               config)
    start = time.monotonic()
    merged = fuzz_parallel(TARGET, config, seeds=SEEDS, processes=1,
                           session=session)
    elapsed = time.monotonic() - start
    assert merged.campaigns == CAMPAIGNS_PER_WORKER * len(SEEDS)
    return elapsed


def run_session_overhead():
    """Best-of-N wall clock with and without a session directory."""
    plain = durable = None
    for _ in range(OVERHEAD_REPEATS):
        bare = _measure_once(None)
        plain = bare if plain is None else min(plain, bare)
        root = tempfile.mkdtemp(prefix="bench-session-")
        try:
            timed = _measure_once(root + "/session")
        finally:
            shutil.rmtree(root, ignore_errors=True)
        durable = timed if durable is None else min(durable, timed)
    return {
        "no_session_s": "%.3f" % plain,
        "session_s": "%.3f" % durable,
        "overhead_pct": "%.2f" % (100.0 * (durable - plain) / plain),
        "_overhead": (durable - plain) / plain,
    }


def check_and_emit_overhead(row):
    text = render_table(
        [row], ["no_session_s", "session_s", "overhead_pct"],
        title="Session durability overhead (best of %d, %d campaigns, "
              "budget < %.0f%%)" % (OVERHEAD_REPEATS,
                                    CAMPAIGNS_PER_WORKER * len(SEEDS),
                                    100 * OVERHEAD_BUDGET))
    emit("session_overhead", text)
    assert row["_overhead"] < OVERHEAD_BUDGET, row


def test_parallel_scaling(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    check_and_emit(rows)


def test_session_overhead(benchmark):
    row = benchmark.pedantic(run_session_overhead, rounds=1, iterations=1)
    check_and_emit_overhead(row)


if __name__ == "__main__":
    check_and_emit(run_scaling())
    check_and_emit_overhead(run_session_overhead())

"""Figure 8: time to identify PM Inter-thread Inconsistencies.

PMRace's sync-point scheduling vs. the random-delay-injection baseline
(built in the same framework, §6.1) on P-CLHT, FAST-FAIR, and
memcached-pmem. Each series point is an execution that detected at least
one inter-thread inconsistency; the headline number is the time to the
first unique one. Expected shape: PMRace's first hits come earlier and its
executions hit inconsistencies more often.
"""

import pytest

from repro.core import PMRace, PMRaceConfig
from repro.core.results import render_table
from repro.targets import FastFairTarget, MemcachedTarget, PclhtTarget

from conftest import emit

TARGETS = (PclhtTarget, FastFairTarget, MemcachedTarget)
SEEDS = (7, 13, 42)
CAMPAIGNS = 50


def run_series(mode):
    rows = []
    for cls in TARGETS:
        firsts, hits, campaigns = [], 0, 0
        for seed in SEEDS:
            config = PMRaceConfig(mode=mode, max_campaigns=CAMPAIGNS,
                                  max_seeds=12, base_seed=seed,
                                  snapshot_images=False, validate=False)
            result = PMRace(cls(), config).run()
            campaigns += result.campaigns
            hits += len(result.inter_hit_times)
            if result.first_inter_time is not None:
                firsts.append(result.first_inter_time)
        rows.append({
            "system": cls.NAME,
            "scheme": mode,
            "sessions_with_hit": "%d/%d" % (len(firsts), len(SEEDS)),
            "first_hit_s": "%.2f" % (sum(firsts) / len(firsts))
            if firsts else "-",
            "hit_executions": hits,
            "campaigns": campaigns,
        })
    return rows


def test_figure8_time_to_inter_inconsistency(benchmark):
    def run_both():
        return run_series("pmrace") + run_series("delay")

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    text = render_table(
        rows,
        ["system", "scheme", "sessions_with_hit", "first_hit_s",
         "hit_executions", "campaigns"],
        title="Figure 8: time to find PM Inter-thread Inconsistencies "
              "(PMRace vs Delay Inj)")
    emit("figure8_time_to_inconsistency", text)

    by_key = {(row["system"], row["scheme"]): row for row in rows}
    for cls in TARGETS:
        pmrace = by_key[(cls.NAME, "pmrace")]
        delay = by_key[(cls.NAME, "delay")]
        # PM-aware scheduling hits inconsistencies at least as often as
        # random delay injection on every workload...
        assert pmrace["hit_executions"] >= delay["hit_executions"], cls.NAME
    # ...and strictly more often overall
    total_pmrace = sum(by_key[(c.NAME, "pmrace")]["hit_executions"]
                       for c in TARGETS)
    total_delay = sum(by_key[(c.NAME, "delay")]["hit_executions"]
                      for c in TARGETS)
    assert total_pmrace > total_delay

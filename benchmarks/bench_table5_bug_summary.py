"""Table 5 (artifact): unique bugs per system, "new|total" format."""

from repro.core.results import build_table5, render_table

from conftest import emit, fuzz_all_targets


def test_table5_bug_summary(benchmark):
    results = benchmark.pedantic(fuzz_all_targets, rounds=1, iterations=1)
    rows = build_table5(results)
    text = render_table(
        rows,
        ["system", "inter", "sync", "intra", "other", "total",
         "extra_findings"],
        title='Table 5: unique bugs by category ("new|total")')
    emit("table5_bug_summary", text)
    total = rows[-1]
    new, found = (int(part) for part in total["total"].split("|"))
    assert found >= 11      # of the paper's 14
    assert new >= 8         # of the paper's 10 new bugs

"""Figure 10: the impact of in-memory checkpoints on fuzzing speed.

For each workload, measure campaign throughput with pool state provided
by (a) a fresh ``setup()`` per campaign and (b) checkpoint restore (§5).
Expected shape: every libpmemobj-based workload (P-CLHT, clevel, CCEH,
FAST-FAIR) speeds up substantially with checkpoints because pool
initialization is slot-by-slot persisted work; memcached-pmem uses
``pmem_map_file`` (libpmem) and barely changes — the paper recommends
disabling checkpoints there.
"""

import time

import pytest

from repro.core import OperationMutator, run_campaign
from repro.core.checkpoints import StateProvider
from repro.core.results import render_table
from repro.runtime import SeededRandomPolicy
from repro.targets import TARGET_CLASSES

from conftest import emit

ROUNDS = 12


def measure(target, use_checkpoints):
    """Campaigns/second with the given state-provision policy."""
    provider = StateProvider(target, use_checkpoints)
    mutator = OperationMutator(target.operation_space(), n_threads=2,
                               ops_per_thread=4)
    seed = mutator.initial_seed()
    start = time.monotonic()
    for index in range(ROUNDS):
        state = provider.provide()
        run_campaign(target, state, seed.threads,
                     SeededRandomPolicy(index), snapshot_images=False,
                     capture_stacks=False)
    elapsed = time.monotonic() - start
    return ROUNDS / elapsed


def run_figure10():
    rows = []
    for cls in TARGET_CLASSES:
        target = cls()
        without = measure(target, use_checkpoints=False)
        with_cp = measure(target, use_checkpoints=True)
        rows.append({
            "system": cls.NAME,
            "pool_api": "libpmem" if cls.USES_LIBPMEM else "libpmemobj",
            "no_cp_exec_s": "%.1f" % without,
            "cp_exec_s": "%.1f" % with_cp,
            "speedup": "%.2fx" % (with_cp / without),
            "_speedup": with_cp / without,
        })
    return rows


def test_figure10_checkpoints(benchmark):
    rows = benchmark.pedantic(run_figure10, rounds=1, iterations=1)
    text = render_table(
        rows, ["system", "pool_api", "no_cp_exec_s", "cp_exec_s", "speedup"],
        title="Figure 10: fuzzing speed with/without in-memory checkpoints")
    emit("figure10_checkpoints", text)

    pmdk_speedups = [row["_speedup"] for row in rows
                     if row["pool_api"] == "libpmemobj"]
    memcached = next(row for row in rows
                     if row["system"] == "memcached-pmem")
    # every libpmemobj workload benefits from checkpoints...
    assert all(speedup > 1.05 for speedup in pmdk_speedups), pmdk_speedups
    # ...and gains far more than the libpmem workload does
    assert max(pmdk_speedups) > memcached["_speedup"]

"""Hot-path access pipeline benchmark: fuzz throughput + raw access rate.

Two measurements cover the instrumented-access pipeline end to end:

* ``execs_per_s`` — full fuzzing throughput on the toy target (campaigns
  per second across two base seeds), the number the access-path overhaul
  is judged by: call-site interning, word-mask persistency tracking,
  journaled checkpoint restores, and the scheduler fast paths all sit on
  this path.
* ``raw_accesses_per_s`` — a scheduler-free ``PmView`` loop
  (store/load/clwb/sfence over distinct lines), isolating the
  instrumentation + memory-model cost from scheduling and detection.

Modes:

* default           — best of ``FULL_ROUNDS`` interleaved rounds; emits
  the before/after table to ``benchmarks/results/bench_access_path.txt``
  with machine-readable ``execs_per_s:`` / ``raw_accesses_per_s:`` lines.
* ``--quick``       — ``QUICK_ROUNDS`` rounds (CI's perf-smoke budget).
* ``--check``       — measure, then compare against the *checked-in*
  result file instead of rewriting it; exits non-zero when fuzz
  throughput regressed more than ``MAX_REGRESSION`` (20%).

The ``pre-PR baseline`` row is frozen: it was measured with this same
harness against the tree before the access-path overhaul (commit
1c1ae91) and is kept for context in the regenerated table.

Runs standalone too: ``python benchmarks/bench_access_path.py``.
"""

import argparse
import os
import re
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _ROOT)
sys.path.insert(0, os.path.join(_ROOT, "src"))  # works without pip install

from repro.core import PMRaceConfig, fuzz_target
from repro.core.results import render_table
from repro.instrument import InstrumentationContext, PmView
from repro.pmem import PmemPool

from conftest import RESULTS_DIR, emit
from tests.core.toy_target import ToyTarget

CAMPAIGNS = 40
SEEDS = (7, 13)
RAW_ACCESSES = 60_000
FULL_ROUNDS = 5
QUICK_ROUNDS = 2
MAX_REGRESSION = 0.20
RESULT_NAME = "bench_access_path"

#: Frozen measurements of the pre-overhaul tree (see module docstring).
PRE_PR_EXECS_PER_S = 60.9
PRE_PR_RAW_PER_S = 173_324


def measure_fuzz():
    """Campaigns per second of one bounded toy-target fuzzing session."""
    config = PMRaceConfig(max_campaigns=CAMPAIGNS, profile=False)
    start = time.perf_counter()
    result = fuzz_target(ToyTarget(), config, seeds=SEEDS)
    elapsed = time.perf_counter() - start
    assert result.campaigns == CAMPAIGNS * len(SEEDS)
    return result.campaigns / elapsed


def measure_raw(accesses=RAW_ACCESSES):
    """Instrumented accesses per second without a scheduler."""
    pool = PmemPool("bench-access-path", 1 << 16)
    ctx = InstrumentationContext()
    view = PmView(pool, None, ctx)
    span = (pool.size // 2) - 64
    start = time.perf_counter()
    for index in range(accesses // 4):
        addr = (index * 64) % span
        view.store_u64(addr, index)
        view.load_u64(addr)
        view.clwb(addr)
        view.sfence()
    elapsed = time.perf_counter() - start
    return accesses / elapsed


def run_bench(rounds):
    """Best-of-``rounds`` for both measurements, interleaved so machine
    load drift is shared between them."""
    best = {"execs_per_s": 0.0, "raw_accesses_per_s": 0.0}
    for _ in range(rounds):
        best["execs_per_s"] = max(best["execs_per_s"], measure_fuzz())
        best["raw_accesses_per_s"] = max(best["raw_accesses_per_s"],
                                         measure_raw())
    return best


def result_path():
    return os.path.join(RESULTS_DIR, RESULT_NAME + ".txt")


def load_baseline():
    """The checked-in ``execs_per_s`` the CI perf smoke guards against."""
    with open(result_path()) as handle:
        text = handle.read()
    found = re.findall(r"^execs_per_s:\s*([0-9.]+)\s*$", text, re.M)
    if not found:
        raise RuntimeError("no execs_per_s line in %s" % result_path())
    return float(found[-1])


def render(best, rounds):
    rows = [
        {
            "configuration": "pre-PR baseline (per-word dicts, string ids)",
            "execs_per_s": "%.1f" % PRE_PR_EXECS_PER_S,
            "raw_accesses_per_s": "%d" % PRE_PR_RAW_PER_S,
        },
        {
            "configuration": "interned ids + word masks (current)",
            "execs_per_s": "%.1f" % best["execs_per_s"],
            "raw_accesses_per_s": "%d" % best["raw_accesses_per_s"],
        },
    ]
    table = render_table(
        rows, ["configuration", "execs_per_s", "raw_accesses_per_s"],
        title="Hot-path access pipeline (toy target, %d campaigns x "
              "seeds %s, best of %d rounds)"
              % (CAMPAIGNS, SEEDS, rounds))
    speedup = best["execs_per_s"] / PRE_PR_EXECS_PER_S
    machine = ("speedup_vs_pre_pr: %.2fx\n"
               "execs_per_s: %.1f\n"
               "raw_accesses_per_s: %d"
               % (speedup, best["execs_per_s"],
                  best["raw_accesses_per_s"]))
    return table + "\n\n" + machine


def run_and_emit(rounds):
    best = run_bench(rounds)
    emit(RESULT_NAME, render(best, rounds))
    return best


def run_check(rounds):
    """CI perf smoke: fail when fuzz throughput regresses > 20%."""
    baseline = load_baseline()
    best = run_bench(rounds)
    floor = baseline * (1.0 - MAX_REGRESSION)
    print("execs_per_s: %.1f (checked-in baseline %.1f, floor %.1f)"
          % (best["execs_per_s"], baseline, floor))
    print("raw_accesses_per_s: %d" % best["raw_accesses_per_s"])
    if best["execs_per_s"] < floor:
        print("FAIL: fuzz throughput regressed more than %d%%"
              % int(MAX_REGRESSION * 100))
        return 1
    print("OK")
    return 0


def test_access_path(benchmark):
    best = benchmark.pedantic(run_bench, args=(QUICK_ROUNDS,),
                              rounds=1, iterations=1)
    emit(RESULT_NAME, render(best, QUICK_ROUNDS))
    # the same floor the CI perf-smoke job enforces
    assert best["execs_per_s"] >= \
        PRE_PR_EXECS_PER_S * (1.0 - MAX_REGRESSION)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="run %d rounds instead of %d"
                             % (QUICK_ROUNDS, FULL_ROUNDS))
    parser.add_argument("--check", action="store_true",
                        help="compare against the checked-in result "
                             "instead of rewriting it; non-zero exit on "
                             ">%d%% regression"
                             % int(MAX_REGRESSION * 100))
    cli = parser.parse_args()
    n_rounds = QUICK_ROUNDS if cli.quick else FULL_ROUNDS
    if cli.check:
        sys.exit(run_check(n_rounds))
    run_and_emit(n_rounds)

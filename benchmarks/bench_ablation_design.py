"""Ablations of the design choices DESIGN.md calls out.

1. **Coverage metric**: PM alias pair coverage vs plain edge coverage as
   the fuzzing feedback signal.
2. **Taint confirmation**: reporting every dirty-read candidate vs only
   candidates with durable side effects — the false-positive blow-up the
   taint stage avoids.
3. **Post-failure validation**: how many reported inconsistencies would
   have been (false) bugs without it.
"""

import pytest

from repro.core import PMRace, PMRaceConfig
from repro.core.results import render_table
from repro.detect import Verdict
from repro.targets import MemcachedTarget, PclhtTarget

from conftest import emit


def fuzz(target, **flags):
    options = {"max_campaigns": 60, "max_seeds": 16, "base_seed": 7}
    options.update(flags)
    return PMRace(target, PMRaceConfig(**options)).run()


def test_ablation_coverage_metric(benchmark):
    def run():
        return {feedback: fuzz(PclhtTarget(), coverage_feedback=feedback,
                               snapshot_images=False, validate=False)
                for feedback in ("both", "branch", "alias")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"feedback": feedback,
             "branch_cov": result.coverage_timeline[-1][2],
             "alias_cov": result.coverage_timeline[-1][3],
             "inter": len(result.inter_inconsistencies)}
            for feedback, result in results.items()]
    text = render_table(rows, ["feedback", "branch_cov", "alias_cov",
                               "inter"],
                        title="Ablation: coverage feedback metric (P-CLHT)")
    emit("ablation_coverage_metric", text)
    # all variants must still drive detection
    assert all(row["inter"] >= 1 for row in rows)


def test_ablation_taint_confirmation(benchmark):
    def run():
        return fuzz(MemcachedTarget())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # compare at (write site, read site) granularity throughout
    candidates = len({(c.write_instr, c.read_instr)
                      for c in result.candidates})
    confirmed_pairs = {(r.write_instr, r.read_instr)
                       for r in result.inconsistencies}
    confirmed = len(confirmed_pairs)
    bug_pairs = {(r.write_instr, r.read_instr)
                 for r in result.inconsistencies
                 if r.verdict is Verdict.BUG}
    rows = [{
        "stage": "dirty-read candidates (no taint stage)",
        "reports": candidates,
    }, {
        "stage": "confirmed durable side effects (taint)",
        "reports": confirmed,
    }, {
        "stage": "after post-failure validation (bugs)",
        "reports": len(bug_pairs),
    }]
    text = render_table(rows, ["stage", "reports"],
                        title="Ablation: report volume per pipeline stage "
                              "(memcached-pmem)")
    pruned = 100.0 * (1 - confirmed / candidates) if candidates else 0.0
    text += "\n\ncandidate->confirmed pruning: %.0f%% (paper: 68.5%%)" % pruned
    emit("ablation_taint", text)
    assert confirmed <= candidates


def test_ablation_postfailure_validation(benchmark):
    def run():
        return fuzz(MemcachedTarget())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    records = result.inconsistencies + result.sync_inconsistencies
    bugs = [r for r in records if r.verdict is Verdict.BUG]
    fps = [r for r in records if r.verdict in (Verdict.VALIDATED_FP,
                                               Verdict.WHITELISTED_FP)]
    rows = [{"verdict": "bug", "count": len(bugs)},
            {"verdict": "validated/whitelisted FP", "count": len(fps)}]
    text = render_table(rows, ["verdict", "count"],
                        title="Ablation: post-failure validation impact "
                              "(memcached-pmem)")
    text += ("\n\nwithout validation every FP above would be reported "
             "as a bug (%.0f%% overreporting)"
             % (100.0 * len(fps) / max(len(bugs), 1)))
    emit("ablation_postfailure", text)
    assert fps, "validation should filter at least one false positive"

"""Shared fixtures for the paper-reproduction benchmarks.

``paper_results`` runs one bounded fuzzing session per Table 1 target and
is shared across all table benchmarks; every benchmark also writes its
rendered table/series to ``benchmarks/results/`` so the output survives
pytest's capture.
"""

import os

import pytest

from repro.core import PMRaceConfig, fuzz_target
from repro.targets import TARGET_CLASSES

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Per-target fuzzing budgets (campaigns per base seed + config tweaks).
BUDGETS = {
    "P-CLHT": {"max_campaigns": 80},
    "clevel hashing": {"max_campaigns": 80},
    "CCEH": {"max_campaigns": 80},
    "FAST-FAIR": {"max_campaigns": 110},
    # memcached has 10 command kinds; longer op sequences are needed to
    # pair producers and consumers on live keys.
    "memcached-pmem": {"max_campaigns": 100, "ops_per_thread": 8},
    # SDK extension targets (bugs 15/16): small structures, short runs.
    "pmring": {"max_campaigns": 50},
    "txkv": {"max_campaigns": 50},
}

SEEDS = (7, 13, 42)

_cache = {}


def fuzz_all_targets():
    """Fuzz every Table 1 target once (cached for the session)."""
    if "paper" not in _cache:
        results = {}
        for cls in TARGET_CLASSES:
            config = PMRaceConfig(max_seeds=20, **BUDGETS[cls.NAME])
            results[cls.NAME] = fuzz_target(cls(), config, seeds=SEEDS)
        _cache["paper"] = results
    return _cache["paper"]


@pytest.fixture(scope="session")
def paper_results():
    return fuzz_all_targets()


def emit(name, text):
    """Print a rendered table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print("\n" + text)
    return path

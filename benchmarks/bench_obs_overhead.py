"""Observability overhead: execs/sec with the layer off, null, and on.

Three configurations fuzz the toy target with identical budgets:

* ``off``   — ``profile=False``, no tracer, no metrics: the layer is
  not even constructed (the no-observability baseline).
* ``null``  — the shipped default: profiler on, tracer/metrics unset,
  so hot paths pay one pre-bound ``is not None`` check per access.
* ``full``  — tracer (to an in-memory sink) plus a live metrics
  registry: everything recording.

The guard mirrors ``tests/obs/test_overhead.py``: the null path must
stay within 5% of the off baseline. The full path is reported for
context but only loosely bounded — recording everything is allowed to
cost real time, it just must not be catastrophic.

Runs standalone too: ``python benchmarks/bench_obs_overhead.py``.
"""

import io
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.core import PMRaceConfig, fuzz_target
from repro.core.results import render_table
from repro.obs import Metrics, Tracer

from conftest import emit
from tests.core.toy_target import ToyTarget

CAMPAIGNS = 40
MIN_ROUNDS = 5
MAX_ROUNDS = 15
MAX_NULL_OVERHEAD = 0.05


def measure(profile, with_sinks=False):
    config = PMRaceConfig(max_campaigns=CAMPAIGNS, profile=profile)
    tracer = Tracer(io.StringIO()) if with_sinks else None
    metrics = Metrics() if with_sinks else None
    start = time.perf_counter()
    result = fuzz_target(ToyTarget(), config, seeds=(7,), tracer=tracer,
                         metrics=metrics)
    elapsed = time.perf_counter() - start
    assert result.campaigns == CAMPAIGNS
    return result.campaigns / elapsed


def run_overhead():
    best = {"off": 0.0, "null": 0.0, "full": 0.0}
    # interleave all three so machine-load drift is shared evenly;
    # extend past MIN_ROUNDS only while noise keeps the null path
    # outside its budget (best-of is monotone, so more rounds only
    # sharpen the estimate)
    for round_index in range(MAX_ROUNDS):
        best["off"] = max(best["off"], measure(profile=False))
        best["null"] = max(best["null"], measure(profile=True))
        best["full"] = max(best["full"], measure(profile=True,
                                                 with_sinks=True))
        if round_index + 1 >= MIN_ROUNDS and \
                best["null"] >= best["off"] * (1.0 - MAX_NULL_OVERHEAD):
            break
    return best


def check_and_emit(best):
    rows = []
    for name, label in (("off", "observability off (baseline)"),
                        ("null", "null path (default)"),
                        ("full", "tracer + metrics recording")):
        rows.append({
            "configuration": label,
            "execs_per_s": "%.1f" % best[name],
            "vs_baseline": "%+.1f%%" % (100 * (best[name] / best["off"] - 1)),
        })
    text = render_table(
        rows, ["configuration", "execs_per_s", "vs_baseline"],
        title="Observability overhead (toy target, %d campaigns, "
              "best of >=%d interleaved rounds)" % (CAMPAIGNS, MIN_ROUNDS))
    emit("obs_overhead", text)
    null_overhead = 1.0 - best["null"] / best["off"]
    assert null_overhead < MAX_NULL_OVERHEAD, \
        "null path costs %.1f%%" % (100 * null_overhead)
    # full recording may cost time, but an order-of-magnitude collapse
    # would mean a hot-path hook regressed into per-access work
    assert best["full"] > best["off"] * 0.5, best


def test_obs_overhead(benchmark):
    best = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    check_and_emit(best)


if __name__ == "__main__":
    check_and_emit(run_overhead())

"""Table 1: the concurrent PM programs tested by PMRace."""

from repro.core.results import render_table
from repro.targets import table1_rows

from conftest import emit


def test_table1_systems(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    text = render_table(rows, ["system", "version", "scope", "concurrency"],
                        title="Table 1: concurrent PM programs under test")
    emit("table1_systems", text)
    assert len(rows) == 5

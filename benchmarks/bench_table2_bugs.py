"""Table 2: the unique bugs found by PMRace.

Regenerates the per-bug rows (type, new, write/read code, description,
consequence) and reports which of the paper's 14 bugs this reproduction's
fuzzing sessions rediscover. Absolute inconsistency counts differ from the
paper (bounded seeded sessions vs. 20-hour runs); the bug *set* is the
result under test.
"""

from repro.core.results import build_table2, render_table

from conftest import emit, fuzz_all_targets


def test_table2_unique_bugs(benchmark):
    results = benchmark.pedantic(fuzz_all_targets, rounds=1, iterations=1)
    rows = build_table2(results)
    text = render_table(
        rows,
        ["#", "system", "type", "new", "write_code", "read_code",
         "description", "consequence", "found"],
        title="Table 2: unique bugs found by PMRace (paper bug catalog)")
    found = sum(1 for row in rows if row["found"] == "FOUND")
    text += "\n\nfound %d / 14 paper bugs" % found
    extra = {name: len(result.bug_reports) for name, result in
             results.items()}
    text += "\nbug-report groups per target: %s" % extra
    emit("table2_unique_bugs", text)
    # the reproduction must rediscover the large majority of Table 2
    assert found >= 11
    # and the headline P-CLHT bugs must all be present
    assert all(row["found"] == "FOUND" for row in rows
               if row["system"] == "P-CLHT")

"""Figure 9: runtime-coverage of PMRace on P-CLHT, tier ablations.

A single-worker PMRace run against P-CLHT with (a) all three exploration
tiers, (b) without the interleaving tier ("w/o IE"), and (c) without the
seed tier ("w/o SE"). Expected shape: both ablations end with less branch
and/or PM-alias coverage than the full configuration — "all three
exploration tiers are important to PMRace".
"""

import pytest

from repro.core import PMRace, PMRaceConfig
from repro.core.results import render_table
from repro.targets import PclhtTarget

from conftest import emit

CAMPAIGNS = 60
SEED = 7


def run_variant(name, **flags):
    config = PMRaceConfig(max_campaigns=CAMPAIGNS, max_seeds=20,
                          base_seed=SEED, snapshot_images=False,
                          validate=False, **flags)
    result = PMRace(PclhtTarget(), config).run()
    return name, result


def test_figure9_exploration_tiers(benchmark):
    def run_all():
        return [
            run_variant("PMRace"),
            run_variant("PMRace w/o IE", enable_interleaving_tier=False),
            run_variant("PMRace w/o SE", enable_seed_tier=False),
        ]

    variants = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    series_lines = []
    for name, result in variants:
        timeline = result.coverage_timeline
        rows.append({
            "scheme": name,
            "campaigns": result.campaigns,
            "branch_cov": timeline[-1][2],
            "alias_cov": timeline[-1][3],
            "inter_found": len(result.inter_inconsistencies),
            "first_inter_s": "%.2f" % result.first_inter_time
            if result.first_inter_time is not None else "-",
        })
        samples = timeline[:: max(1, len(timeline) // 10)]
        series_lines.append("%s: %s" % (
            name, " ".join("(%d,%d,%d)" % (c, b, a)
                           for c, _t, b, a in samples)))
    text = render_table(
        rows, ["scheme", "campaigns", "branch_cov", "alias_cov",
               "inter_found", "first_inter_s"],
        title="Figure 9: coverage after %d campaigns on P-CLHT" % CAMPAIGNS)
    text += "\n\ncoverage series (campaign, branch, alias):\n"
    text += "\n".join(series_lines)
    emit("figure9_exploration_tiers", text)

    by_name = {name: result for name, result in variants}
    full = by_name["PMRace"]
    no_ie = by_name["PMRace w/o IE"]
    no_se = by_name["PMRace w/o SE"]
    full_cov = full.coverage_timeline[-1]
    no_se_cov = no_se.coverage_timeline[-1]
    # removing the seed tier visibly hurts coverage: one seed cannot
    # cover all executions (the paper's strongest Figure 9 effect)
    assert full_cov[2] > no_se_cov[2]
    assert full_cov[3] > no_se_cov[3]
    # the interleaving tier buys targeted dirty-read interleavings: the
    # full configuration reaches its first inter-thread inconsistency at
    # least as fast as the unguided variant and finds at least as many
    assert len(full.inter_inconsistencies) >= \
        len(no_ie.inter_inconsistencies)
    if full.first_inter_time is not None and \
            no_ie.first_inter_time is not None:
        assert full.first_inter_time <= no_ie.first_inter_time * 1.5

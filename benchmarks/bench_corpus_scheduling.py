"""Corpus scheduling benchmark: energy-weighted vs uniform selection.

The seed tier's corpus (:class:`repro.core.corpus.Corpus`) assigns
AFL-style energy to retained seeds — coverage yield per pick plus a
recent-progress boost — so productive seeds get more evolution picks.
This benchmark A/B-tests that policy against the historical uniform
draw on FAST-FAIR, whose deep split/balance paths reward staying on the
seeds that keep uncovering them: the same campaign budget is spent under
each schedule and the branch+alias coverage per campaign is compared.

Both runs are fully deterministic (seeded Mersenne twister, no
wall-clock decisions), so the coverage side of the checked-in result is
exact and any drift means an engine behavior change; wall time is
reported for context only.

Modes:

* default           — writes the table plus machine-readable
  ``corpus_energy_coverage_per_campaign:`` / ``corpus_energy_ratio:``
  lines to ``benchmarks/results/bench_corpus_scheduling.txt``.
* ``--quick``       — same workload, single timing round (CI budget).
* ``--check``       — measure, then compare against the *checked-in*
  result instead of rewriting it; exits non-zero when energy-weighted
  coverage per campaign falls below the uniform baseline
  (``MIN_RATIO``) or regresses more than ``MAX_REGRESSION`` against
  the checked-in number.

Runs standalone too: ``python benchmarks/bench_corpus_scheduling.py``.
"""

import argparse
import os
import re
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _ROOT)
sys.path.insert(0, os.path.join(_ROOT, "src"))  # works without pip install

from repro.core import PMRace, PMRaceConfig
from repro.core.results import render_table
from repro.targets import make_target

from conftest import emit, RESULTS_DIR

TARGET = "FAST-FAIR"
SEEDS = (7, 13, 42)
CAMPAIGNS_PER_SEED = 60
#: Tight per-seed budgets (one execution per interleaving, two guided
#: rounds) push the run through many seed-tier iterations, which is
#: where scheduling policy matters.
EXECS_PER_INTERLEAVING = 1
MAX_INTERLEAVINGS = 2
FULL_ROUNDS = 3
QUICK_ROUNDS = 1
MAX_REGRESSION = 0.10
#: The PR's acceptance bar: energy-weighted selection must cover at
#: least as much per campaign as the uniform baseline.
MIN_RATIO = 1.0
RESULT_NAME = "bench_corpus_scheduling"


def run_schedule(schedule):
    """Total branch+alias coverage, campaigns, and wall seconds for one
    full sweep of SEEDS under ``schedule``."""
    coverage = 0
    campaigns = 0
    start = time.perf_counter()
    for seed in SEEDS:
        config = PMRaceConfig(
            max_campaigns=CAMPAIGNS_PER_SEED, base_seed=seed,
            max_seeds=200, execs_per_interleaving=EXECS_PER_INTERLEAVING,
            max_interleavings_per_seed=MAX_INTERLEAVINGS,
            profile=False, validate=False, corpus_schedule=schedule)
        result = PMRace(make_target(TARGET), config).run()
        _campaign, _elapsed, branch, alias = result.coverage_timeline[-1]
        coverage += branch + alias
        campaigns += result.campaigns
    return {"coverage": coverage, "campaigns": campaigns,
            "seconds": time.perf_counter() - start}


def run_bench(rounds):
    """Coverage is deterministic; only wall time takes the best of
    ``rounds`` (interleaved so load drift is shared)."""
    best = {}
    for _ in range(rounds):
        for schedule in ("uniform", "energy"):
            sample = run_schedule(schedule)
            prior = best.get(schedule)
            if prior is None:
                best[schedule] = sample
            else:
                assert prior["coverage"] == sample["coverage"], \
                    "nondeterministic coverage under %s" % schedule
                prior["seconds"] = min(prior["seconds"],
                                       sample["seconds"])
    return best


def per_campaign(sample):
    return sample["coverage"] / float(sample["campaigns"])


def result_path():
    return os.path.join(RESULTS_DIR, RESULT_NAME + ".txt")


def load_baseline():
    """The checked-in energy coverage-per-campaign CI guards."""
    with open(result_path()) as handle:
        text = handle.read()
    found = re.findall(
        r"^corpus_energy_coverage_per_campaign:\s*([0-9.]+)\s*$",
        text, re.M)
    if not found:
        raise RuntimeError(
            "no corpus_energy_coverage_per_campaign line in %s"
            % result_path())
    return float(found[-1])


def render(best, rounds):
    rows = []
    for schedule in ("uniform", "energy"):
        sample = best[schedule]
        rows.append({
            "schedule": schedule,
            "coverage": sample["coverage"],
            "campaigns": sample["campaigns"],
            "coverage_per_campaign": "%.3f" % per_campaign(sample),
            "seconds": "%.2f" % sample["seconds"],
        })
    table = render_table(
        rows, ["schedule", "coverage", "campaigns",
               "coverage_per_campaign", "seconds"],
        title="Corpus scheduling (%s, %d campaigns x seeds %s, best "
              "of %d timing rounds)"
              % (TARGET, CAMPAIGNS_PER_SEED, SEEDS, rounds))
    ratio = per_campaign(best["energy"]) / per_campaign(best["uniform"])
    machine = ("corpus_energy_ratio: %.4f\n"
               "corpus_energy_coverage_per_campaign: %.3f\n"
               "corpus_uniform_coverage_per_campaign: %.3f"
               % (ratio, per_campaign(best["energy"]),
                  per_campaign(best["uniform"])))
    return table + "\n\n" + machine


def run_and_emit(rounds):
    best = run_bench(rounds)
    emit(RESULT_NAME, render(best, rounds))
    return best


def run_check(rounds):
    """CI perf smoke: energy must stay at least level with uniform and
    must not regress against the checked-in coverage."""
    baseline = load_baseline()
    best = run_bench(rounds)
    energy = per_campaign(best["energy"])
    ratio = energy / per_campaign(best["uniform"])
    floor = baseline * (1.0 - MAX_REGRESSION)
    print("corpus_energy_coverage_per_campaign: %.3f (checked-in "
          "baseline %.3f, floor %.3f)" % (energy, baseline, floor))
    print("corpus_energy_ratio: %.4f (bar %.2f)" % (ratio, MIN_RATIO))
    failed = False
    if energy < floor:
        print("FAIL: energy-weighted coverage regressed more than %d%%"
              % int(MAX_REGRESSION * 100))
        failed = True
    if ratio < MIN_RATIO:
        print("FAIL: energy scheduling below the uniform baseline")
        failed = True
    if not failed:
        print("OK")
    return 1 if failed else 0


def test_corpus_scheduling(benchmark):
    best = benchmark.pedantic(run_bench, args=(QUICK_ROUNDS,),
                              rounds=1, iterations=1)
    emit(RESULT_NAME, render(best, QUICK_ROUNDS))
    # the same bar the CI perf-smoke job enforces
    assert per_campaign(best["energy"]) \
        >= MIN_RATIO * per_campaign(best["uniform"])


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="single timing round instead of %d (the "
                             "coverage numbers are deterministic either "
                             "way)" % FULL_ROUNDS)
    parser.add_argument("--check", action="store_true",
                        help="compare against the checked-in result "
                             "instead of rewriting it; non-zero exit "
                             "when energy drops below uniform or "
                             "regresses >%d%%"
                             % int(MAX_REGRESSION * 100))
    cli = parser.parse_args()
    n_rounds = QUICK_ROUNDS if cli.quick else FULL_ROUNDS
    if cli.check:
        sys.exit(run_check(n_rounds))
    run_and_emit(n_rounds)

"""Table 6 (artifact): detected inconsistencies and filtered FPs."""

from repro.core.results import build_table6, render_table

from conftest import emit, fuzz_all_targets


def test_table6_fp_summary(benchmark):
    results = benchmark.pedantic(fuzz_all_targets, rounds=1, iterations=1)
    rows = build_table6(results)
    text = render_table(
        rows,
        ["system", "inter_cand", "inter", "sync", "fp_inter", "fp_sync",
         "bug"],
        title="Table 6: inconsistencies (pre-failure) and false positives "
              "(post-failure)")
    emit("table6_fp_summary", text)
    by_name = {row["system"]: row for row in rows}
    # shape: FAST-FAIR and memcached produce the most candidates
    most = max(rows, key=lambda row: row["inter_cand"])
    assert most["system"] in ("FAST-FAIR", "memcached-pmem")
    # clevel reports inconsistencies but zero bugs
    assert by_name["clevel hashing"]["bug"] == 0
    assert by_name["clevel hashing"]["inter"] >= 1

"""Table 4: code coverage of memcached-pmem commands per mutator.

100 seeds from each mutator are executed through the command-processing
path; coverage is the number of distinct instrumented edges exercised per
command class. The AFL-style byte mutator burns a large share of its
commands on parse errors ("Error" column — counted like the paper as the
invalid-command volume), while the operation mutator's structured inputs
all parse and reach deeper per-command code.
"""

import random

import pytest

from repro.core import AflByteMutator, OperationMutator
from repro.core.results import render_table
from repro.instrument import InstrumentationContext, PmView
from repro.instrument.events import Observer
from repro.targets import MemcachedTarget

from conftest import emit

BUCKETS = {
    "get": "Get*", "bget": "Get*",
    "set": "Update*", "add": "Update*", "replace": "Update*",
    "append": "Update*", "prepend": "Update*",
    "incr": "incr", "decr": "decr", "delete": "delete",
}
COLUMNS = ["Get*", "Update*", "incr", "decr", "delete", "Error", "Total"]


class CommandCoverage(Observer):
    """Distinct (command bucket, access edge) pairs, like AFL-COV lines."""

    def __init__(self, instance):
        self.instance = instance
        self.edges = set()
        self._prev = None

    def _record(self, event):
        bucket = BUCKETS.get(self.instance.current_command)
        if bucket is None:
            return
        self.edges.add((bucket, self._prev, event.instr_id))
        self._prev = event.instr_id

    on_load = _record
    on_store = _record
    on_flush = _record
    on_fence = _record

    def counts(self):
        result = dict.fromkeys(COLUMNS, 0)
        for bucket, _prev, _instr in self.edges:
            result[bucket] += 1
        return result


def run_mutator(kind, n_seeds=100, master_seed=5):
    target = MemcachedTarget()
    space = target.operation_space()
    rng = random.Random(master_seed)
    state = target.setup()
    ctx = InstrumentationContext()
    view = PmView(state.pool, None, ctx)
    instance = target.open(state, view, None)
    coverage = ctx.add_observer(CommandCoverage(instance))
    errors = 0
    if kind == "afl":
        mutator = AflByteMutator(space, rng=rng)
        data = mutator.initial_bytes()
        for _ in range(n_seeds):
            before = mutator.invalid_ops
            seed, data = mutator.next_seed(data)
            errors += mutator.invalid_ops - before
            for op in seed.flat_ops():
                instance.dispatch(op)
    else:
        mutator = OperationMutator(space, rng=rng)
        corpus = [mutator.initial_seed()]
        for _ in range(n_seeds):
            seed = mutator.evolve(corpus)
            corpus.append(seed)
            for op in seed.flat_ops():
                response = instance.dispatch(op)
                if response == "ERROR":
                    errors += 1
    counts = coverage.counts()
    counts["Error"] = errors
    counts["Total"] = len(coverage.edges)
    return counts


def test_table4_mutator_coverage(benchmark):
    def run_both():
        return {"AFL++": run_mutator("afl"),
                "PMRace": run_mutator("op")}

    data = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [{"scheme": name, **counts} for name, counts in data.items()]
    text = render_table(rows, ["scheme"] + COLUMNS,
                        title="Table 4: memcached command coverage per "
                              "mutator (distinct edges; Error = invalid "
                              "commands)")
    emit("table4_mutator_coverage", text)
    afl, pmrace = data["AFL++"], data["PMRace"]
    # the operation mutator never produces invalid commands...
    assert pmrace["Error"] == 0
    # ...while byte-level havoc wastes a visible share on errors
    assert afl["Error"] > 0
    # and the structured inputs reach at least as much update-path code
    assert pmrace["Update*"] >= afl["Update*"]
    assert pmrace["Total"] >= afl["Total"]

"""Deferred-validation benchmark: digest cache on vs off.

Post-failure validation replays recovery on a crash image per record;
records found by different interleavings routinely carry *identical*
images, so the :class:`repro.detect.validation_service.ValidationQueue`
digest cache replays each unique image once and reuses the
:class:`~repro.detect.postfailure.ReplayResult` for every duplicate.
This benchmark measures that directly: a workload of ``RECORDS_PER_IMAGE
* UNIQUE_IMAGES`` records over ``UNIQUE_IMAGES`` distinct P-CLHT crash
images is validated through the queue with the cache enabled and
disabled, and the wall-clock ratio is the number the PR is judged by.

Modes:

* default           — best of ``FULL_ROUNDS`` rounds; writes the table
  plus machine-readable ``validate_cached_records_per_s:`` /
  ``cache_speedup:`` lines to ``benchmarks/results/bench_validation.txt``.
* ``--quick``       — ``QUICK_ROUNDS`` rounds (CI's perf-smoke budget).
* ``--check``       — measure, then compare against the *checked-in*
  result instead of rewriting it; exits non-zero when cached validation
  throughput regressed more than ``MAX_REGRESSION`` (20%) or the cache
  stops clearing the ``MIN_SPEEDUP`` (1.3x) bar.

Runs standalone too: ``python benchmarks/bench_validation.py``.
"""

import argparse
import os
import re
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _ROOT)
sys.path.insert(0, os.path.join(_ROOT, "src"))  # works without pip install

from repro.core.results import render_table
from repro.detect.postfailure import PostFailureValidator
from repro.detect.records import CandidateRecord, InconsistencyRecord
from repro.detect.validation_service import ValidationQueue
from repro.targets import PclhtTarget

from conftest import RESULTS_DIR, emit
from tests.targets.helpers import open_single

UNIQUE_IMAGES = 4
RECORDS_PER_IMAGE = 15
OPS_PER_IMAGE = 40
FULL_ROUNDS = 5
QUICK_ROUNDS = 2
MAX_REGRESSION = 0.20
#: The PR's acceptance bar: caching must cut validation wall-clock by
#: at least this factor on a duplicate-heavy workload.
MIN_SPEEDUP = 1.3
RESULT_NAME = "bench_validation"


def make_images():
    """Distinct P-CLHT crash images after real single-threaded workloads
    (recovery replay cost is what the cache amortizes, so the images
    must exercise the real recovery path)."""
    images = []
    for salt in range(UNIQUE_IMAGES):
        target = PclhtTarget()
        state, _view, instance = open_single(target)
        for op in range(OPS_PER_IMAGE):
            instance.put((op * 7 + salt) % 64, op + salt * 1000)
        images.append(state.pool.crash_image())
    return images


def make_records(images):
    """RECORDS_PER_IMAGE inter-style records per image (round-robin, the
    arrival order a fuzzing run produces)."""
    records = []
    for index in range(RECORDS_PER_IMAGE * len(images)):
        image = images[index % len(images)]
        candidate = CandidateRecord(index, 64, 8, "read:%d" % index,
                                    "write:%d" % index, 0, 1, (), index)
        records.append(InconsistencyRecord(candidate, "effect:%d" % index,
                                           64, 8, (), (), image))
    return records


def measure(records, cache):
    """Seconds to drain the full record batch through one queue."""
    validator = PostFailureValidator(PclhtTarget)
    queue = ValidationQueue(validator, cache=cache)
    for record in records:
        queue.enqueue(record)
    start = time.perf_counter()
    queue.drain()
    return time.perf_counter() - start


def run_bench(rounds):
    """Best-of-``rounds`` for both configurations, interleaved so machine
    load drift is shared between them."""
    images = make_images()
    records = make_records(images)
    best = {"cached_s": float("inf"), "uncached_s": float("inf")}
    for _ in range(rounds):
        best["cached_s"] = min(best["cached_s"], measure(records, True))
        best["uncached_s"] = min(best["uncached_s"],
                                 measure(records, False))
    best["records"] = len(records)
    return best


def result_path():
    return os.path.join(RESULTS_DIR, RESULT_NAME + ".txt")


def load_baseline():
    """The checked-in cached throughput the CI perf smoke guards."""
    with open(result_path()) as handle:
        text = handle.read()
    found = re.findall(r"^validate_cached_records_per_s:\s*([0-9.]+)\s*$",
                       text, re.M)
    if not found:
        raise RuntimeError("no validate_cached_records_per_s line in %s"
                           % result_path())
    return float(found[-1])


def render(best, rounds):
    n = best["records"]
    rows = [
        {
            "configuration": "per-record replay (cache off)",
            "records_per_s": "%.1f" % (n / best["uncached_s"]),
            "seconds": "%.3f" % best["uncached_s"],
        },
        {
            "configuration": "digest cache (one replay per unique image)",
            "records_per_s": "%.1f" % (n / best["cached_s"]),
            "seconds": "%.3f" % best["cached_s"],
        },
    ]
    table = render_table(
        rows, ["configuration", "records_per_s", "seconds"],
        title="Post-failure validation (P-CLHT, %d records over %d "
              "unique crash images, best of %d rounds)"
              % (n, UNIQUE_IMAGES, rounds))
    speedup = best["uncached_s"] / best["cached_s"]
    machine = ("cache_speedup: %.2fx\n"
               "validate_cached_records_per_s: %.1f\n"
               "validate_uncached_records_per_s: %.1f"
               % (speedup, n / best["cached_s"], n / best["uncached_s"]))
    return table + "\n\n" + machine


def run_and_emit(rounds):
    best = run_bench(rounds)
    emit(RESULT_NAME, render(best, rounds))
    return best


def run_check(rounds):
    """CI perf smoke: fail on >20% cached-throughput regression or on a
    cache that no longer clears the 1.3x bar."""
    baseline = load_baseline()
    best = run_bench(rounds)
    cached_rate = best["records"] / best["cached_s"]
    speedup = best["uncached_s"] / best["cached_s"]
    floor = baseline * (1.0 - MAX_REGRESSION)
    print("validate_cached_records_per_s: %.1f (checked-in baseline "
          "%.1f, floor %.1f)" % (cached_rate, baseline, floor))
    print("cache_speedup: %.2fx (bar %.1fx)" % (speedup, MIN_SPEEDUP))
    failed = False
    if cached_rate < floor:
        print("FAIL: cached validation throughput regressed more than "
              "%d%%" % int(MAX_REGRESSION * 100))
        failed = True
    if speedup < MIN_SPEEDUP:
        print("FAIL: digest cache speedup below %.1fx" % MIN_SPEEDUP)
        failed = True
    if not failed:
        print("OK")
    return 1 if failed else 0


def test_validation(benchmark):
    best = benchmark.pedantic(run_bench, args=(QUICK_ROUNDS,),
                              rounds=1, iterations=1)
    emit(RESULT_NAME, render(best, QUICK_ROUNDS))
    # the same bar the CI perf-smoke job enforces
    assert best["uncached_s"] / best["cached_s"] >= MIN_SPEEDUP


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="run %d rounds instead of %d"
                             % (QUICK_ROUNDS, FULL_ROUNDS))
    parser.add_argument("--check", action="store_true",
                        help="compare against the checked-in result "
                             "instead of rewriting it; non-zero exit on "
                             ">%d%% regression or <%.1fx cache speedup"
                             % (int(MAX_REGRESSION * 100), MIN_SPEEDUP))
    cli = parser.parse_args()
    n_rounds = QUICK_ROUNDS if cli.quick else FULL_ROUNDS
    if cli.check:
        sys.exit(run_check(n_rounds))
    run_and_emit(n_rounds)

"""Seeded-bug matrix benchmark: detect → validate → replay, all targets.

Renders the full :data:`repro.core.results.SEEDED_BUGS` catalog (the
paper's Table 2 rows plus the SDK extension targets' bugs 15/16) as a
matrix: for every catalogued bug, one pinned-seed capture-mode fuzzing
run must rediscover it, record-backed kinds must convict with the
``BUG`` verdict through the cached validation service, and one captured
reproducer bundle must replay back to the same verdict. clevel hashing
(no seeded bugs) rides along as the clean-target control: its run must
convict nothing.

Budgets come from :data:`repro.core.bugmatrix.MATRIX_BUDGETS`, shared
with ``tests/integration/test_bug_matrix.py`` so the benchmark and the
test suite agree on what "pinned seeds" means.

Runs standalone too: ``python benchmarks/bench_bug_matrix.py``.
"""

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _ROOT)
sys.path.insert(0, os.path.join(_ROOT, "src"))  # works without pip install

from repro.core.bugmatrix import (
    matrix_failures,
    run_bug_matrix,
    run_matrix_target,
)
from repro.core.results import SEEDED_BUGS, render_table
from repro.detect import Verdict

from conftest import emit

RESULT_NAME = "bug_matrix"


def _cell(value):
    if value is None:
        return "-"
    return "yes" if value else "NO"


def build_matrix():
    rows, results = run_bug_matrix()
    control = run_matrix_target("clevel hashing",
                                budget={"seeds": (7,), "max_campaigns": 30})
    results["clevel hashing (control)"] = control
    return rows, results, control


def render(rows, results, control):
    display = [{
        "bug": row["bug"],
        "system": row["system"],
        "type": row["type"],
        "detected": _cell(row["detected"]),
        "verdict=BUG": _cell(row["verdict_bug"]),
        "replayed": _cell(row["replayed"]),
    } for row in rows]
    text = render_table(
        display,
        ["bug", "system", "type", "detected", "verdict=BUG", "replayed"],
        title="Seeded-bug matrix: detection / validation / replay "
              "(%d catalogued bugs)" % len(SEEDED_BUGS))
    failures = matrix_failures(rows)
    control_bugs = [r for r in list(control.inconsistencies)
                    + list(control.sync_inconsistencies)
                    if r.verdict is Verdict.BUG]
    text += "\n\nmatrix_green: %s (%d/%d rows)" % (
        "yes" if not failures else "NO",
        len(rows) - len(failures), len(rows))
    text += "\nclean_control_bugs: %d (clevel hashing must stay 0)" \
        % len(control_bugs)
    text += "\ncampaigns: %s" % {
        name: result.campaigns for name, result in results.items()}
    return text, failures, control_bugs


def test_bug_matrix(benchmark):
    rows, results, control = benchmark.pedantic(build_matrix, rounds=1,
                                                iterations=1)
    text, failures, control_bugs = render(rows, results, control)
    emit(RESULT_NAME, text)
    assert not failures, "matrix rows failed: %s" % failures
    assert not control_bugs


if __name__ == "__main__":
    rows, results, control = build_matrix()
    text, failures, control_bugs = render(rows, results, control)
    emit(RESULT_NAME, text)
    sys.exit(1 if failures or control_bugs else 0)

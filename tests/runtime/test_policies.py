"""Scheduling policy tests."""

from repro.runtime import (
    DelayInjectionPolicy,
    RoundRobinPolicy,
    Scheduler,
    SeededRandomPolicy,
)


class FakeThread:
    def __init__(self, tid):
        self.tid = tid
        self.sleep_steps = 0


class FakeScheduler:
    threads = []


class TestRoundRobin:
    def test_rotates(self):
        policy = RoundRobinPolicy()
        threads = [FakeThread(i) for i in range(3)]
        sched = FakeScheduler()
        sched.threads = threads
        assert policy.pick(sched, threads, threads[0]).tid == 1
        assert policy.pick(sched, threads, threads[2]).tid == 0

    def test_no_prev_picks_first(self):
        policy = RoundRobinPolicy()
        threads = [FakeThread(i) for i in range(3)]
        sched = FakeScheduler()
        sched.threads = threads
        assert policy.pick(sched, threads, None) is threads[0]

    def test_skips_missing(self):
        policy = RoundRobinPolicy()
        threads = [FakeThread(i) for i in range(4)]
        sched = FakeScheduler()
        sched.threads = threads
        candidates = [threads[0], threads[3]]
        assert policy.pick(sched, candidates, threads[1]) is threads[3]


class TestSeededRandom:
    def test_reproducible(self):
        threads = [FakeThread(i) for i in range(4)]
        sched = FakeScheduler()
        picks1 = [SeededRandomPolicy(9).pick(sched, threads, None).tid
                  for _ in range(1)]
        policy_a = SeededRandomPolicy(9)
        policy_b = SeededRandomPolicy(9)
        seq_a = [policy_a.pick(sched, threads, None).tid for _ in range(20)]
        seq_b = [policy_b.pick(sched, threads, None).tid for _ in range(20)]
        assert seq_a == seq_b
        assert picks1[0] == seq_a[0]

    def test_reset_restores_sequence(self):
        threads = [FakeThread(i) for i in range(4)]
        sched = FakeScheduler()
        policy = SeededRandomPolicy(5)
        first = [policy.pick(sched, threads, None).tid for _ in range(10)]
        policy.reset()
        again = [policy.pick(sched, threads, None).tid for _ in range(10)]
        assert first == again

    def test_reseed_changes_sequence(self):
        threads = [FakeThread(i) for i in range(4)]
        sched = FakeScheduler()
        policy = SeededRandomPolicy(5)
        first = [policy.pick(sched, threads, None).tid for _ in range(20)]
        policy.reseed(6)
        second = [policy.pick(sched, threads, None).tid for _ in range(20)]
        assert first != second


class TestDelayInjection:
    def test_injects_sleeps_on_op(self):
        policy = DelayInjectionPolicy(seed=1, delay_prob=1.0,
                                      max_delay_steps=3)
        thread = FakeThread(0)
        policy.on_yield(None, thread, "op")
        assert 1 <= thread.sleep_steps <= 3

    def test_no_delay_on_spin(self):
        policy = DelayInjectionPolicy(seed=1, delay_prob=1.0)
        thread = FakeThread(0)
        policy.on_yield(None, thread, "spin")
        assert thread.sleep_steps == 0

    def test_zero_probability(self):
        policy = DelayInjectionPolicy(seed=1, delay_prob=0.0)
        thread = FakeThread(0)
        for _ in range(50):
            policy.on_yield(None, thread, "op")
        assert thread.sleep_steps == 0

    def test_integrates_with_scheduler(self):
        scheduler = Scheduler(DelayInjectionPolicy(seed=3, delay_prob=0.5))
        done = []

        def worker(tid):
            for _ in range(20):
                scheduler.yield_point("op")
            done.append(tid)

        for tid in range(3):
            scheduler.spawn(lambda tid=tid: worker(tid))
        assert scheduler.run().ok
        assert sorted(done) == [0, 1, 2]

"""DRAM synchronization primitive tests."""

import pytest

from repro.runtime import RoundRobinPolicy, Scheduler, SimLock, SimRWLock


def make_scheduler(**kwargs):
    return Scheduler(RoundRobinPolicy(), **kwargs)


class TestSimLock:
    def test_mutual_exclusion(self):
        scheduler = make_scheduler()
        lock = SimLock(scheduler, "m")
        inside = []
        violations = []

        def worker(tid):
            for _ in range(5):
                with lock:
                    if inside:
                        violations.append(tid)
                    inside.append(tid)
                    scheduler.yield_point("op")
                    scheduler.yield_point("op")
                    inside.pop()

        for tid in range(3):
            scheduler.spawn(lambda tid=tid: worker(tid))
        assert scheduler.run().ok
        assert violations == []

    def test_release_unheld_raises(self):
        scheduler = make_scheduler()
        lock = SimLock(scheduler, "m")
        errors = []

        def worker():
            try:
                lock.release()
            except RuntimeError as exc:
                errors.append(exc)

        scheduler.spawn(worker)
        scheduler.run()
        assert len(errors) == 1

    def test_locked_query(self):
        scheduler = make_scheduler()
        lock = SimLock(scheduler, "m")
        states = []

        def worker():
            states.append(lock.locked())
            lock.acquire()
            states.append(lock.locked())
            lock.release()
            states.append(lock.locked())

        scheduler.spawn(worker)
        scheduler.run()
        assert states == [False, True, False]

    def test_missing_unlock_hangs(self):
        scheduler = make_scheduler(spin_hang_limit=20, thread_spin_limit=60)
        lock = SimLock(scheduler, "m")

        def leaker():
            lock.acquire()  # never released

        def victim():
            for _ in range(10):
                scheduler.yield_point("op")
            lock.acquire()

        scheduler.spawn(leaker)
        scheduler.spawn(victim)
        outcome = scheduler.run()
        assert outcome.status == "hang"
        assert any("lock:m" in (reason or "")
                   for _name, reason in outcome.blocked)


class TestSimRWLock:
    def test_readers_share(self):
        scheduler = make_scheduler()
        rwlock = SimRWLock(scheduler, "rw")
        concurrent = []

        def reader():
            rwlock.acquire_read()
            concurrent.append(rwlock.readers)
            scheduler.yield_point("op")
            scheduler.yield_point("op")
            rwlock.release_read()

        scheduler.spawn(reader)
        scheduler.spawn(reader)
        assert scheduler.run().ok
        assert max(concurrent) == 2

    def test_writer_excludes_readers(self):
        scheduler = make_scheduler()
        rwlock = SimRWLock(scheduler, "rw")
        log = []

        def writer():
            rwlock.acquire_write()
            log.append("w-in")
            for _ in range(4):
                scheduler.yield_point("op")
            log.append("w-out")
            rwlock.release_write()

        def reader():
            scheduler.yield_point("op")
            rwlock.acquire_read()
            log.append("r")
            rwlock.release_read()

        scheduler.spawn(writer)
        scheduler.spawn(reader)
        assert scheduler.run().ok
        assert log.index("r") > log.index("w-out")

    def test_release_errors(self):
        scheduler = make_scheduler()
        rwlock = SimRWLock(scheduler, "rw")
        errors = []

        def worker():
            for method in (rwlock.release_read, rwlock.release_write):
                try:
                    method()
                except RuntimeError as exc:
                    errors.append(exc)

        scheduler.spawn(worker)
        scheduler.run()
        assert len(errors) == 2

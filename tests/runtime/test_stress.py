"""Scheduler stress tests: many threads, locks, reproducibility."""

import pytest

from repro.runtime import (
    RoundRobinPolicy,
    Scheduler,
    SeededRandomPolicy,
    SimLock,
)

pytestmark = pytest.mark.slow


class TestManyThreads:
    def test_eight_threads_complete(self):
        scheduler = Scheduler(SeededRandomPolicy(5))
        done = []

        def worker(tid):
            for _ in range(50):
                scheduler.yield_point("op")
            done.append(tid)

        for tid in range(8):
            scheduler.spawn(lambda tid=tid: worker(tid))
        assert scheduler.run().ok
        assert sorted(done) == list(range(8))

    def test_shared_counter_with_lock_is_exact(self):
        scheduler = Scheduler(SeededRandomPolicy(9))
        lock = SimLock(scheduler, "counter")
        box = [0]

        def worker():
            for _ in range(25):
                with lock:
                    value = box[0]
                    scheduler.yield_point("op")
                    box[0] = value + 1

        for _ in range(4):
            scheduler.spawn(worker)
        assert scheduler.run().ok
        assert box[0] == 100

    def test_shared_counter_without_lock_races(self):
        """Sanity check that the scheduler actually interleaves."""
        lost = 0
        for seed in range(6):
            scheduler = Scheduler(SeededRandomPolicy(seed))
            box = [0]

            def worker():
                for _ in range(25):
                    value = box[0]
                    scheduler.yield_point("op")
                    box[0] = value + 1

            for _ in range(4):
                scheduler.spawn(worker)
            scheduler.run()
            if box[0] < 100:
                lost += 1
        assert lost > 0  # at least one seed exposes the lost update

    def test_reproducible_with_locks(self):
        def run(seed):
            scheduler = Scheduler(SeededRandomPolicy(seed))
            lock = SimLock(scheduler, "m")
            order = []

            def worker(tid):
                for _ in range(10):
                    with lock:
                        order.append(tid)

            for tid in range(4):
                scheduler.spawn(lambda tid=tid: worker(tid))
            scheduler.run()
            return order

        assert run(3) == run(3)
        assert run(3) != run(4) or run(3) == run(4)  # both legal; no crash


class TestSchedulerReuseErrors:
    def test_two_runs_same_scheduler_not_supported(self):
        scheduler = Scheduler(RoundRobinPolicy())
        scheduler.spawn(lambda: None)
        scheduler.run()
        with pytest.raises(RuntimeError):
            scheduler.spawn(lambda: None)

    def test_nested_lock_different_instances(self):
        scheduler = Scheduler(RoundRobinPolicy())
        a = SimLock(scheduler, "a")
        b = SimLock(scheduler, "b")
        ok = []

        def worker():
            with a:
                with b:
                    ok.append(True)

        scheduler.spawn(worker)
        scheduler.spawn(worker)
        assert scheduler.run().ok
        assert len(ok) == 2

    def test_lock_ordering_deadlock_detected(self):
        scheduler = Scheduler(RoundRobinPolicy(), spin_hang_limit=30,
                              thread_spin_limit=100)
        a = SimLock(scheduler, "a")
        b = SimLock(scheduler, "b")

        def ab():
            with a:
                scheduler.yield_point("op")
                with b:
                    pass

        def ba():
            with b:
                scheduler.yield_point("op")
                with a:
                    pass

        scheduler.spawn(ab)
        scheduler.spawn(ba)
        outcome = scheduler.run()
        assert outcome.status == "hang"
        reasons = {reason for _name, reason in outcome.blocked}
        assert reasons == {"lock:a", "lock:b"}

"""Scheduler tests: determinism, hang detection, budgets, errors."""

import pytest

from repro.runtime import (
    RoundRobinPolicy,
    Scheduler,
    SeededRandomPolicy,
    ThreadKilled,
)


def collect_run(policy, n_threads=3, steps=20, **kwargs):
    """Run n threads that log (tid, i) at each yield; returns the log."""
    scheduler = Scheduler(policy, **kwargs)
    log = []

    def worker(tid):
        for i in range(steps):
            log.append((tid, i))
            scheduler.yield_point("op")

    for tid in range(n_threads):
        scheduler.spawn(lambda tid=tid: worker(tid), "w%d" % tid)
    outcome = scheduler.run()
    return outcome, log


class TestBasicScheduling:
    def test_all_threads_complete(self):
        outcome, log = collect_run(RoundRobinPolicy())
        assert outcome.ok
        assert len(log) == 60

    def test_round_robin_interleaves(self):
        _outcome, log = collect_run(RoundRobinPolicy(), n_threads=2, steps=5)
        tids = [tid for tid, _ in log]
        assert 0 in tids and 1 in tids
        # strict alternation after both have started
        assert tids[2:6] in ([0, 1, 0, 1], [1, 0, 1, 0])

    def test_single_thread(self):
        outcome, log = collect_run(RoundRobinPolicy(), n_threads=1, steps=7)
        assert outcome.ok
        assert log == [(0, i) for i in range(7)]

    def test_no_threads(self):
        assert Scheduler(RoundRobinPolicy()).run().ok

    def test_steps_counted(self):
        outcome, _ = collect_run(RoundRobinPolicy(), n_threads=2, steps=10)
        assert outcome.steps == 20

    def test_spawn_after_run_rejected(self):
        scheduler = Scheduler(RoundRobinPolicy())
        scheduler.spawn(lambda: None)
        scheduler.run()
        with pytest.raises(RuntimeError):
            scheduler.spawn(lambda: None)


class TestDeterminism:
    def test_same_seed_same_interleaving(self):
        _, log1 = collect_run(SeededRandomPolicy(42))
        _, log2 = collect_run(SeededRandomPolicy(42))
        assert log1 == log2

    def test_different_seed_different_interleaving(self):
        logs = {tuple(collect_run(SeededRandomPolicy(seed))[1])
                for seed in range(6)}
        assert len(logs) > 1


class TestHangDetection:
    def test_all_threads_spinning(self):
        scheduler = Scheduler(RoundRobinPolicy(), spin_hang_limit=20)

        def spinner():
            while True:
                scheduler.yield_point("spin", "stuck")

        scheduler.spawn(spinner)
        scheduler.spawn(spinner)
        outcome = scheduler.run()
        assert outcome.status == "hang"
        assert ("thread-0", "stuck") in outcome.blocked

    def test_single_thread_spin_cap(self):
        scheduler = Scheduler(RoundRobinPolicy(), spin_hang_limit=20,
                              thread_spin_limit=50)
        progress = []

        def spinner():
            while True:
                scheduler.yield_point("spin", "lock:x")

        def worker():
            for i in range(10_000):
                progress.append(i)
                scheduler.yield_point("op")

        scheduler.spawn(spinner)
        scheduler.spawn(worker)
        outcome = scheduler.run()
        assert outcome.status == "hang"
        # the worker never had to finish for the hang to be declared
        assert len(progress) < 10_000

    def test_op_yield_resets_streak(self):
        scheduler = Scheduler(RoundRobinPolicy(), spin_hang_limit=10,
                              thread_spin_limit=40)

        def mixed():
            for _ in range(200):
                scheduler.yield_point("spin", "brief")
                scheduler.yield_point("op")

        scheduler.spawn(mixed)
        assert scheduler.run().ok

    def test_budget(self):
        scheduler = Scheduler(RoundRobinPolicy(), max_steps=50)

        def runner():
            while True:
                scheduler.yield_point("op")

        scheduler.spawn(runner)
        outcome = scheduler.run()
        assert outcome.status == "budget"
        assert outcome.steps >= 50

    def test_blocked_queries(self):
        scheduler = Scheduler(RoundRobinPolicy(), spin_hang_limit=1000)
        seen = []

        def spinner():
            for _ in range(30):
                scheduler.yield_point("spin", "x")
            seen.append(scheduler.some_thread_blocked(20))
            seen.append(scheduler.all_threads_blocked(20))
            seen.append(scheduler.all_threads_blocked(10_000))

        scheduler.spawn(spinner)
        scheduler.run()
        assert seen == [True, True, False]


class TestErrors:
    def test_thread_exception_reported(self):
        scheduler = Scheduler(RoundRobinPolicy())

        def boom():
            scheduler.yield_point("op")
            raise ValueError("kaboom")

        scheduler.spawn(boom)
        scheduler.spawn(lambda: None)
        outcome = scheduler.run()
        assert outcome.status == "error"
        assert isinstance(outcome.error, ValueError)

    def test_other_threads_killed_on_hang(self):
        scheduler = Scheduler(RoundRobinPolicy(), spin_hang_limit=10,
                              thread_spin_limit=20)
        finished = []

        def spinner():
            while True:
                scheduler.yield_point("spin", "dead")

        def slow():
            try:
                while True:
                    scheduler.yield_point("op")
            except ThreadKilled:
                finished.append("killed")
                raise

        scheduler.spawn(spinner)
        scheduler.spawn(slow)
        outcome = scheduler.run()
        assert outcome.status in ("hang", "budget")

    def test_yield_outside_simulation_is_noop(self):
        scheduler = Scheduler(RoundRobinPolicy())
        scheduler.yield_point("op")  # driver thread: no crash
        assert scheduler.steps == 0


class TestDelaySleeping:
    def test_sleeping_thread_skipped(self):
        scheduler = Scheduler(RoundRobinPolicy())
        order = []

        def sleeper():
            order.append("s-start")
            thread = scheduler.current()
            thread.sleep_steps = 5
            scheduler.yield_point("op")
            order.append("s-end")

        def runner():
            for _ in range(3):
                order.append("r")
                scheduler.yield_point("op")

        scheduler.spawn(sleeper)
        scheduler.spawn(runner)
        assert scheduler.run().ok
        # runner makes progress while the sleeper is parked
        assert order.index("s-end") > order.index("r")

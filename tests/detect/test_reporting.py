"""Report serialization and whitelist file I/O tests."""

import json

import pytest

from repro.core import PMRace, PMRaceConfig
from repro.detect import (
    DEFAULT_WHITELIST,
    Whitelist,
    dump_run_result,
    load_run_report,
    load_whitelist,
    record_to_dict,
    report_to_dict,
    save_whitelist,
)
from repro.detect.records import (
    CandidateRecord,
    InconsistencyRecord,
    SyncInconsistencyRecord,
)

from ..core.toy_target import ToyTarget


@pytest.fixture(scope="module")
def result():
    config = PMRaceConfig(max_campaigns=15, max_seeds=5, base_seed=2)
    return PMRace(ToyTarget(), config).run()


class TestRecordSerialization:
    def test_candidate(self):
        record = CandidateRecord(0, 64, 8, "r:1", "w:2", 1, 0,
                                 ("f1", "f2"), 3)
        data = record_to_dict(record)
        assert data["type"] == "candidate"
        assert data["kind"] == "inter-candidate"
        assert data["stack"] == ["f1", "f2"]

    def test_inconsistency(self):
        candidate = CandidateRecord(0, 64, 8, "r:1", "w:2", 1, 0, (), 3)
        record = InconsistencyRecord(candidate, "e:3", 128, 8, True, (),
                                     b"img")
        data = record_to_dict(record)
        assert data["data_flow"] == "address"
        assert data["verdict"] == "pending"
        assert "crash_image" not in data  # images stay out of reports

    def test_sync(self):
        record = SyncInconsistencyRecord("lock", 256, 8, 0, 1, "s:1", (),
                                         b"")
        data = record_to_dict(record)
        assert data["annotation"] == "lock"
        assert data["expected_init"] == 0

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            record_to_dict(object())


class TestRunDump:
    def test_roundtrip(self, result, tmp_path):
        path = dump_run_result(result, str(tmp_path / "report.json"))
        loaded = load_run_report(path)
        assert loaded["target"] == "toy"
        assert loaded["campaigns"] == result.campaigns
        assert len(loaded["bugs"]) == len(result.bug_reports)
        assert loaded["summary"]["bugs"] == len(result.bug_reports)

    def test_json_valid(self, result, tmp_path):
        path = dump_run_result(result, str(tmp_path / "report.json"))
        with open(path) as handle:
            json.load(handle)  # must not raise

    def test_report_dict_fields(self, result):
        report = result.bug_reports[0]
        data = report_to_dict(report)
        assert data["kind"] == report.kind
        assert data["records"]


class TestWhitelistFiles:
    def test_roundtrip(self, tmp_path):
        whitelist = Whitelist(["a:b", "c:d"])
        path = save_whitelist(whitelist, str(tmp_path / "wl.txt"))
        loaded = load_whitelist(path, include_defaults=False)
        assert loaded.entries == ["a:b", "c:d"]

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "wl.txt"
        path.write_text("# comment\n\nmy.module:func\n")
        loaded = load_whitelist(str(path), include_defaults=False)
        assert loaded.entries == ["my.module:func"]

    def test_defaults_included(self, tmp_path):
        path = tmp_path / "wl.txt"
        path.write_text("extra:rule\n")
        loaded = load_whitelist(str(path))
        for entry in DEFAULT_WHITELIST:
            assert entry in loaded.entries
        assert "extra:rule" in loaded.entries

    def test_duplicates_dropped(self, tmp_path):
        path = tmp_path / "wl.txt"
        path.write_text("x:y\nx:y\n")
        loaded = load_whitelist(str(path), include_defaults=False)
        assert loaded.entries == ["x:y"]

"""Post-failure validation tests with a miniature recoverable target."""

import pytest

from repro.detect import (
    InconsistencyChecker,
    PostFailureValidator,
    Verdict,
    Whitelist,
)
from repro.detect.postfailure import WriteRecorder
from repro.detect.records import SyncInconsistencyRecord
from repro.instrument import InstrumentationContext, PmView
from repro.instrument.events import PmAccessEvent
from repro.pmem import PmemPool


class MiniTarget:
    """Recovery overwrites [1024, 1024+64) and re-inits the word at 512."""

    def recover(self, pool, view):
        view.ntstore_bytes(1024, b"\x00" * 64)
        view.ntstore_u64(512, 0)
        view.sfence()
        return self


class NoRecoveryTarget:
    def recover(self, pool, view):
        return self


class FailingRecoveryTarget:
    def recover(self, pool, view):
        raise RuntimeError("recovery crashed on inconsistent image")


def detect_one(side_effect_addr):
    """Produce an inter-style inconsistency record at the given address."""
    pool = PmemPool("pf", 8192)
    ctx = InstrumentationContext()
    checker = ctx.add_observer(InconsistencyChecker(pool))
    view = PmView(pool, None, ctx)
    view.store_u64(64, 7)
    value = view.load_u64(64)
    view.ntstore_u64(side_effect_addr, value + 1)
    assert checker.inconsistencies
    return checker.inconsistencies[0]


class TestWriteRecorder:
    def test_exact_cover(self):
        recorder = WriteRecorder()
        recorder.on_store(PmAccessEvent("store", 100, 8))
        assert recorder.covers(100, 8)

    def test_partial_no_cover(self):
        recorder = WriteRecorder()
        recorder.on_store(PmAccessEvent("store", 100, 4))
        assert not recorder.covers(100, 8)

    def test_adjacent_intervals_merge(self):
        recorder = WriteRecorder()
        recorder.on_store(PmAccessEvent("store", 100, 4))
        recorder.on_store(PmAccessEvent("store", 104, 4))
        assert recorder.covers(100, 8)

    def test_gap_not_covered(self):
        recorder = WriteRecorder()
        recorder.on_store(PmAccessEvent("store", 100, 4))
        recorder.on_store(PmAccessEvent("store", 108, 4))
        assert not recorder.covers(100, 12)

    def test_superset_covers(self):
        recorder = WriteRecorder()
        recorder.on_store(PmAccessEvent("store", 96, 64))
        assert recorder.covers(100, 8)

    def test_empty_range_trivially_covered(self):
        assert WriteRecorder().covers(0, 0)

    def test_unordered_intervals(self):
        recorder = WriteRecorder()
        recorder.on_store(PmAccessEvent("store", 108, 4))
        recorder.on_store(PmAccessEvent("store", 100, 8))
        assert recorder.covers(100, 12)


class TestInterValidation:
    def test_overwritten_is_fp(self):
        record = detect_one(1024)
        validator = PostFailureValidator(MiniTarget)
        assert validator.validate(record) is Verdict.VALIDATED_FP

    def test_survivor_is_bug(self):
        record = detect_one(2048)
        validator = PostFailureValidator(MiniTarget)
        assert validator.validate(record) is Verdict.BUG

    def test_whitelist_beats_bug(self):
        record = detect_one(2048)
        whitelist = Whitelist(["test_postfailure"])
        validator = PostFailureValidator(MiniTarget, whitelist)
        assert validator.validate(record) is Verdict.WHITELISTED_FP

    def test_validation_precedes_whitelist(self):
        record = detect_one(1024)
        whitelist = Whitelist(["test_postfailure"])
        validator = PostFailureValidator(MiniTarget, whitelist)
        assert validator.validate(record) is Verdict.VALIDATED_FP

    def test_recovery_crash_is_bug(self):
        record = detect_one(1024)
        validator = PostFailureValidator(FailingRecoveryTarget)
        assert validator.validate(record) is Verdict.BUG
        assert "recovery failed" in record.note

    def test_missing_image_pending(self):
        record = detect_one(1024)
        record.crash_image = None
        validator = PostFailureValidator(MiniTarget)
        assert validator.validate(record) is Verdict.PENDING


class TestSyncValidation:
    def sync_record(self, addr, value):
        pool = PmemPool("sync", 8192)
        pool.write_u64(addr, value)
        pool.memory.persist_all()
        return SyncInconsistencyRecord("lock", addr, 8, 0, value,
                                       "site:1", (), pool.crash_image())

    def test_reinitialized_is_fp(self):
        record = self.sync_record(512, 1)  # MiniTarget re-inits 512
        validator = PostFailureValidator(MiniTarget)
        assert validator.validate(record) is Verdict.VALIDATED_FP

    def test_stale_lock_is_bug(self):
        record = self.sync_record(768, 1)
        validator = PostFailureValidator(MiniTarget)
        assert validator.validate(record) is Verdict.BUG
        assert "stuck" in record.note

    def test_no_recovery_is_bug(self):
        record = self.sync_record(512, 1)
        validator = PostFailureValidator(NoRecoveryTarget)
        assert validator.validate(record) is Verdict.BUG


class TestBatch:
    def test_validate_all_partitions(self):
        records = [detect_one(1024), detect_one(2048)]
        validator = PostFailureValidator(MiniTarget)
        bugs, validated, whitelisted = validator.validate_all(records)
        assert len(bugs) == 1 and len(validated) == 1
        assert not whitelisted

"""Persistency-state table tests (event-driven reconstruction)."""

import pytest

from repro.detect import PM_CLEAN, PM_DIRTY, PM_PENDING, PersistencyStateTable
from repro.instrument import InstrumentationContext, PmView
from repro.pmem import PmemPool


@pytest.fixture
def setup():
    pool = PmemPool("st", 8192)
    ctx = InstrumentationContext()
    table = ctx.add_observer(PersistencyStateTable())
    view = PmView(pool, None, ctx)
    return table, view


class TestStateTransitions:
    def test_initially_clean(self, setup):
        table, _view = setup
        assert table.state_of(0) == PM_CLEAN

    def test_store_dirty(self, setup):
        table, view = setup
        view.store_u64(64, 1)
        assert table.state_of(64) == PM_DIRTY

    def test_ntstore_clean(self, setup):
        table, view = setup
        view.ntstore_u64(64, 1)
        assert table.state_of(64) == PM_CLEAN

    def test_clwb_pending(self, setup):
        table, view = setup
        view.store_u64(64, 1)
        view.clwb(64)
        assert table.state_of(64) == PM_PENDING

    def test_fence_clean(self, setup):
        table, view = setup
        view.store_u64(64, 1)
        view.clwb(64)
        view.sfence()
        assert table.state_of(64) == PM_CLEAN

    def test_fence_without_clwb(self, setup):
        table, view = setup
        view.store_u64(64, 1)
        view.sfence()
        assert table.state_of(64) == PM_DIRTY

    def test_line_granular_flush(self, setup):
        table, view = setup
        view.store_u64(64, 1)
        view.store_u64(72, 2)
        view.clwb(64)
        view.sfence()
        assert table.state_of(72) == PM_CLEAN

    def test_other_line_unaffected(self, setup):
        table, view = setup
        view.store_u64(64, 1)
        view.store_u64(128, 2)
        view.clwb(64)
        view.sfence()
        assert table.state_of(128) == PM_DIRTY


class TestWriterTracking:
    def test_writer_recorded(self, setup):
        table, view = setup
        view.store_u64(64, 1)
        tid, instr = table.writer_of(64)
        assert tid == -1
        assert "test_state_table" in instr

    def test_clean_writer_none(self, setup):
        table, view = setup
        view.ntstore_u64(64, 1)
        assert table.writer_of(64) is None

    def test_is_clean_range(self, setup):
        table, view = setup
        view.store_u64(64, 1)
        assert not table.is_clean(60, 16)
        assert table.is_clean(128, 8)

    def test_dirty_word_count(self, setup):
        table, view = setup
        view.store_bytes(0, b"x" * 32)
        assert table.dirty_word_count() == 4


class TestRedundantFlushChecker:
    def test_clean_flush_flagged(self, setup):
        table, view = setup
        view.clwb(64)
        assert len(table.redundant_flushes) == 1

    def test_dirty_flush_not_flagged(self, setup):
        table, view = setup
        view.store_u64(64, 1)
        view.clwb(64)
        assert not table.redundant_flushes

    def test_double_flush_flagged(self, setup):
        table, view = setup
        view.store_u64(64, 1)
        view.clwb(64)
        view.clwb(64)  # second flush of a pending line is redundant
        assert len(table.redundant_flushes) == 1

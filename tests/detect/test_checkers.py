"""Inconsistency checker tests: dedup, flows, sync records, crash images."""

import pytest

from repro.detect import InconsistencyChecker
from repro.instrument import AnnotationRegistry, InstrumentationContext, PmView
from repro.pmem import PmemPool
from repro.runtime import RoundRobinPolicy, Scheduler


def make(annotations=None, snapshot_images=True):
    pool = PmemPool("chk", 8192)
    ctx = InstrumentationContext(annotations=annotations)
    checker = ctx.add_observer(InconsistencyChecker(
        pool, snapshot_images=snapshot_images))
    view = PmView(pool, None, ctx)
    return pool, ctx, checker, view


class TestCandidates:
    def test_intra_candidate_same_thread(self):
        _pool, _ctx, checker, view = make()
        view.store_u64(64, 1)
        view.load_u64(64)
        assert len(checker.candidates) == 1
        assert not checker.candidates[0].cross_thread
        assert checker.intra_candidates

    def test_cross_thread_detection(self):
        pool = PmemPool("cross", 8192)
        ctx = InstrumentationContext()
        checker = ctx.add_observer(InconsistencyChecker(pool))
        scheduler = Scheduler(RoundRobinPolicy())
        view = PmView(pool, scheduler, ctx)

        def writer():
            view.store_u64(64, 42)
            for _ in range(5):
                scheduler.yield_point("op")

        def reader():
            view.load_u64(64)

        scheduler.spawn(writer)
        scheduler.spawn(reader)
        scheduler.run()
        inter = checker.inter_candidates
        assert len(inter) == 1
        assert inter[0].writer_tid == 0
        assert inter[0].reader_tid == 1

    def test_candidate_dedup_within_campaign(self):
        _pool, _ctx, checker, view = make()
        view.store_u64(64, 1)
        for _ in range(5):
            view.load_u64(64)
        assert len(checker.candidates) == 1

    def test_distinct_read_sites_distinct_candidates(self):
        _pool, _ctx, checker, view = make()
        view.store_u64(64, 1)
        view.load_u64(64)   # site A
        view.load_u64(64)   # site B (different line)
        assert len(checker.candidates) == 2

    def test_max_candidates_bound(self):
        pool = PmemPool("bound", 8192)
        ctx = InstrumentationContext()
        checker = ctx.add_observer(InconsistencyChecker(
            pool, max_candidates=1))
        view = PmView(pool, None, ctx)
        view.store_u64(64, 1)
        view.store_u64(128, 1)
        view.load_u64(64)
        view.load_u64(128)
        assert len(checker.candidates) == 1


class TestInconsistencies:
    def test_dedup_by_sites(self):
        _pool, _ctx, checker, view = make()
        view.store_u64(64, 1)
        for _ in range(3):
            value = view.load_u64(64)
            view.ntstore_u64(128, value + 1)
        assert len(checker.inconsistencies) == 1

    def test_kind_follows_candidate(self):
        _pool, _ctx, checker, view = make()
        view.store_u64(64, 1)
        value = view.load_u64(64)
        view.ntstore_u64(128, value)
        assert checker.inconsistencies[0].kind == "intra"
        assert checker.intra_inconsistencies

    def test_crash_image_contains_side_effect(self):
        pool, _ctx, checker, view = make()
        view.store_u64(64, 1)           # dependent data, never flushed
        value = view.load_u64(64)
        view.store_u64(128, value + 10)  # cached side effect
        record = checker.inconsistencies[0]
        image = record.crash_image
        # dependent data lost in the image...
        assert image[64:72] == b"\x00" * 8
        # ...but the side effect is overlaid (crash after it persisted)
        assert image[128:136] != b"\x00" * 8

    def test_no_image_when_disabled(self):
        _pool, _ctx, checker, view = make(snapshot_images=False)
        view.store_u64(64, 1)
        value = view.load_u64(64)
        view.ntstore_u64(128, value)
        assert checker.inconsistencies[0].crash_image is None

    def test_multi_candidate_store_confirms_in_candidate_order(self):
        # One tainted store can confirm several candidates at once. The
        # taint set hashes labels by identity, so its iteration order
        # follows memory layout and varies between processes — records
        # must come out in candidate order regardless (repro bundles
        # rely on record order surviving a fresh process).
        _pool, _ctx, checker, view = make()
        view.store_u64(64, 2)
        view.store_u64(128, 3)
        a = view.load_u64(64)
        b = view.load_u64(128)
        view.store_u64(256, a + b)  # carries both labels
        ids = [r.candidate.candidate_id for r in checker.inconsistencies]
        assert ids == [0, 1]

    def test_writeback_to_source_not_flagged(self):
        _pool, _ctx, checker, view = make()
        view.store_u64(64, 1)
        value = view.load_u64(64)
        # flushing helper writing the same data back over its own source
        # at the same store site is not a *new* durable side effect; any
        # other site is.
        view.ntstore_u64(192, value)
        assert len(checker.inconsistencies) == 1


class TestSyncInconsistencies:
    def make_annotated(self):
        registry = AnnotationRegistry()
        registry.pm_sync_var_hint("lock", 8, 0)
        registry.register_instance("lock", 256)
        return make(annotations=registry)

    def test_acquire_recorded(self):
        _pool, _ctx, checker, view = self.make_annotated()
        view.store_u64(256, 1)
        assert len(checker.sync_inconsistencies) == 1
        record = checker.sync_inconsistencies[0]
        assert record.annotation_name == "lock"
        assert record.init_val == 0

    def test_release_to_init_not_recorded(self):
        _pool, _ctx, checker, view = self.make_annotated()
        view.store_u64(256, 0)
        assert not checker.sync_inconsistencies

    def test_dedup_per_site(self):
        _pool, _ctx, checker, view = self.make_annotated()
        for _ in range(4):
            view.store_u64(256, 1)
        assert len(checker.sync_inconsistencies) == 1

    def test_cas_triggers_annotation(self):
        _pool, _ctx, checker, view = self.make_annotated()
        ok, _ = view.cas_u64(256, 0, 1)
        assert ok
        assert len(checker.sync_inconsistencies) == 1

    def test_zero_bytes_store_skipped(self):
        _pool, _ctx, checker, view = self.make_annotated()
        view.ntstore_bytes(256, b"\x00" * 8)
        assert not checker.sync_inconsistencies

    def test_image_contains_lock_value(self):
        _pool, _ctx, checker, view = self.make_annotated()
        view.store_u64(256, 1)
        image = checker.sync_inconsistencies[0].crash_image
        assert image[256:264] != b"\x00" * 8

    def test_unannotated_address_ignored(self):
        _pool, _ctx, checker, view = self.make_annotated()
        view.store_u64(512, 1)
        assert not checker.sync_inconsistencies

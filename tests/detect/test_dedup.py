"""Unique-bug grouping tests (§6.2's definition)."""

import pytest

from repro.detect import group_bugs, unique_key
from repro.detect.records import (
    CandidateRecord,
    InconsistencyRecord,
    SyncInconsistencyRecord,
)


def make_inconsistency(write_instr, read_instr="r:1", effect="e:1",
                       tids=(0, 1), address_flow=False):
    candidate = CandidateRecord(0, 64, 8, read_instr, write_instr,
                                tids[1], tids[0], (), 1)
    return InconsistencyRecord(candidate, effect, 128, 8, address_flow,
                               (), b"")


def make_sync(name, instr="s:1"):
    return SyncInconsistencyRecord(name, 256, 8, 0, 1, instr, (), b"")


class TestUniqueKey:
    def test_same_write_same_key(self):
        a = make_inconsistency("w:1", read_instr="r:1")
        b = make_inconsistency("w:1", read_instr="r:2", effect="e:9")
        assert unique_key(a) == unique_key(b)

    def test_different_write_different_key(self):
        assert unique_key(make_inconsistency("w:1")) != \
            unique_key(make_inconsistency("w:2"))

    def test_inter_intra_distinct(self):
        inter = make_inconsistency("w:1", tids=(0, 1))
        intra = make_inconsistency("w:1", tids=(2, 2))
        assert unique_key(inter) != unique_key(intra)

    def test_sync_keyed_by_type(self):
        assert unique_key(make_sync("lock", "s:1")) == \
            unique_key(make_sync("lock", "s:2"))
        assert unique_key(make_sync("a")) != unique_key(make_sync("b"))

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            unique_key(object())


class TestGroupBugs:
    def test_grouping(self):
        records = [make_inconsistency("w:1"),
                   make_inconsistency("w:1", read_instr="r:2"),
                   make_inconsistency("w:2"),
                   make_sync("lock")]
        reports = group_bugs("sys", records)
        assert len(reports) == 3
        assert reports[0].records and len(reports[0].records) == 2

    def test_report_fields(self):
        reports = group_bugs("sys", [make_inconsistency("w:1")], seed=7)
        report = reports[0]
        assert report.target == "sys"
        assert report.kind == "inter"
        assert report.write_instr == "w:1"
        assert report.read_instr == "r:1"
        assert report.seed == 7

    def test_sync_report(self):
        report = group_bugs("sys", [make_sync("bucket_lock")])[0]
        assert report.kind == "sync"
        assert "bucket_lock" in report.description

    def test_flow_description(self):
        content = group_bugs("s", [make_inconsistency("w:1")])[0]
        assert "content flow" in content.description
        addressed = group_bugs(
            "s", [make_inconsistency("w:2", address_flow=True)])[0]
        assert "address flow" in addressed.description

    def test_format_renders(self):
        report = group_bugs("sys", [make_inconsistency("w:1")])[0]
        text = report.format()
        assert "PMRace bug report" in text
        assert "w:1" in text

    def test_empty(self):
        assert group_bugs("sys", []) == []

    def test_stable_numbering(self):
        records = [make_inconsistency("w:%d" % i) for i in range(3)]
        reports = group_bugs("sys", records)
        assert [r.bug_id for r in reports] == [1, 2, 3]

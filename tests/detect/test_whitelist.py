"""Whitelist matching tests."""

from repro.detect import DEFAULT_WHITELIST, Whitelist
from repro.detect.records import CandidateRecord, InconsistencyRecord


def make_record(effect_stack=(), candidate_stack=()):
    candidate = CandidateRecord(0, 64, 8, "mod:read:1", "mod:write:2",
                                0, 1, tuple(candidate_stack), 1)
    return InconsistencyRecord(candidate, "mod:effect:3", 128, 8, False,
                               tuple(effect_stack), b"")


class TestWhitelist:
    def test_default_covers_pmdk_alloc(self):
        assert any("repro.pmdk.alloc" in entry for entry in DEFAULT_WHITELIST)

    def test_effect_stack_match(self):
        whitelist = Whitelist(["unrelated:rule", "repro.pmdk.alloc:"])
        record = make_record(
            effect_stack=["repro.pmdk.alloc:pm_atomic_alloc:10"])
        assert whitelist.matches(record)

    def test_candidate_stack_match(self):
        whitelist = Whitelist(["repro.pmdk.alloc:"])
        record = make_record(
            candidate_stack=["repro.pmdk.alloc:pm_atomic_alloc:10",
                             "repro.targets.clevel:_expand:5"])
        assert whitelist.matches(record)

    def test_no_match(self):
        whitelist = Whitelist(["special:place"])
        record = make_record(effect_stack=["other:frame:1"],
                             candidate_stack=["another:frame:2"])
        assert not whitelist.matches(record)

    def test_add_rule(self):
        whitelist = Whitelist([])
        record = make_record(effect_stack=["custom:checksum_read:9"])
        assert not whitelist.matches(record)
        whitelist.add("custom:checksum_read")
        assert whitelist.matches(record)

    def test_empty_stacks(self):
        whitelist = Whitelist(["anything"])
        assert not whitelist.matches(make_record())

    def test_substring_semantics(self):
        whitelist = Whitelist(["memcached:_verify"])
        record = make_record(
            effect_stack=["repro.targets.memcached:_verify_checksum:42"])
        assert whitelist.matches(record)

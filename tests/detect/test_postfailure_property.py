"""Property-based WriteRecorder tests (seeded, no external dependency).

The recorder keeps a sorted, coalesced interval set updated
incrementally on every store; ``covers`` answers range-containment in
O(log n). These tests pit it against the obvious oracle — a plain set
of written byte addresses — across randomized workloads, plus directed
edge cases: zero-size accesses, adjacent-touching intervals, and fully
nested intervals.
"""

import random

from repro.detect.postfailure import WriteRecorder
from repro.instrument.events import PmAccessEvent


class ByteSetOracle:
    """Naive model: the exact set of written byte addresses."""

    def __init__(self):
        self.bytes_written = set()

    def on_store(self, addr, size):
        self.bytes_written.update(range(addr, addr + size))

    def covers(self, addr, size):
        return all(b in self.bytes_written
                   for b in range(addr, addr + size))


def check_invariants(recorder):
    """Intervals stay sorted, disjoint, non-touching, and non-empty."""
    intervals = recorder.intervals
    for start, stop in intervals:
        assert start < stop
    for (_, stop), (start, _) in zip(intervals, intervals[1:]):
        assert stop < start, "adjacent intervals must have been coalesced"


def run_workload(rng, stores, queries, addr_space=256, max_size=12):
    recorder, oracle = WriteRecorder(), ByteSetOracle()
    for _ in range(stores):
        addr = rng.randrange(addr_space)
        size = rng.randrange(max_size + 1)  # includes zero-size stores
        recorder.on_store(PmAccessEvent("store", addr, size))
        oracle.on_store(addr, size)
        check_invariants(recorder)
    for _ in range(queries):
        addr = rng.randrange(addr_space + max_size)
        size = rng.randrange(max_size + 1)
        assert recorder.covers(addr, size) == oracle.covers(addr, size), \
            "covers(%d, %d) disagrees with oracle after %r" \
            % (addr, size, recorder.intervals)


class TestCoversProperty:
    def test_random_workloads_match_oracle(self):
        rng = random.Random(0xC0FFEE)
        for _ in range(40):
            run_workload(rng, stores=rng.randrange(1, 60), queries=50)

    def test_sparse_workloads_match_oracle(self):
        rng = random.Random(1234)
        for _ in range(20):
            run_workload(rng, stores=8, queries=80,
                         addr_space=4096, max_size=64)

    def test_dense_workloads_collapse_to_one_interval(self):
        rng = random.Random(99)
        recorder, oracle = WriteRecorder(), ByteSetOracle()
        addrs = list(range(0, 64, 4))
        rng.shuffle(addrs)
        for addr in addrs:
            recorder.on_store(PmAccessEvent("store", addr, 4))
            oracle.on_store(addr, 4)
            check_invariants(recorder)
        assert recorder.intervals == [(0, 64)]
        assert recorder.covers(0, 64)
        assert not recorder.covers(0, 65)


class TestDirectedEdgeCases:
    def test_zero_size_store_records_nothing(self):
        recorder = WriteRecorder()
        recorder.on_store(PmAccessEvent("store", 100, 0))
        assert recorder.intervals == []
        assert not recorder.covers(100, 1)

    def test_zero_size_query_always_covered(self):
        recorder = WriteRecorder()
        assert recorder.covers(0, 0)
        recorder.on_store(PmAccessEvent("store", 10, 4))
        assert recorder.covers(999, 0)

    def test_adjacent_touching_intervals_coalesce(self):
        recorder = WriteRecorder()
        recorder.on_store(PmAccessEvent("store", 0, 4))
        recorder.on_store(PmAccessEvent("store", 8, 4))
        assert recorder.intervals == [(0, 4), (8, 12)]
        recorder.on_store(PmAccessEvent("store", 4, 4))  # exactly touching
        assert recorder.intervals == [(0, 12)]
        assert recorder.covers(0, 12)
        assert not recorder.covers(0, 13)

    def test_fully_nested_interval_is_absorbed(self):
        recorder = WriteRecorder()
        recorder.on_store(PmAccessEvent("store", 0, 64))
        recorder.on_store(PmAccessEvent("store", 16, 8))
        assert recorder.intervals == [(0, 64)]
        recorder.on_store(PmAccessEvent("store", 32, 128))  # superset merge
        assert recorder.intervals == [(0, 160)]

    def test_bridging_store_merges_many(self):
        recorder = WriteRecorder()
        for addr in (0, 16, 32, 48):
            recorder.on_store(PmAccessEvent("store", addr, 8))
        assert len(recorder.intervals) == 4
        recorder.on_store(PmAccessEvent("store", 4, 50))
        assert recorder.intervals == [(0, 56)]

    def test_query_straddling_gap_not_covered(self):
        recorder = WriteRecorder()
        recorder.on_store(PmAccessEvent("store", 0, 8))
        recorder.on_store(PmAccessEvent("store", 9, 8))
        assert not recorder.covers(4, 8)
        assert recorder.covers(9, 8)

    def test_query_interval_with_longer_left_neighbor(self):
        # Regression guard: an interval starting exactly at the query
        # address must be found even when it extends past addr + size.
        recorder = WriteRecorder()
        recorder.on_store(PmAccessEvent("store", 100, 50))
        assert recorder.covers(100, 10)
        assert recorder.covers(100, 50)
        assert not recorder.covers(100, 51)


# ----------------------------------------------------------------------
# Persistency-oracle property tests: the word-mask `is_persisted` in
# PersistentMemory against a naive per-word dict model of the documented
# semantics (store dirties words; clwb pends a line; a fence persists
# the pending lines of its thread; re-dirtying cancels a pending
# write-back; ntstores write through).


class WordPersistencyOracle:
    """Naive model: explicit sets of dirty words and pending lines."""

    def __init__(self, size):
        self.size = size
        self.dirty = set()      # word indices holding non-persisted data
        self.pending = set()    # line indices in PENDING state
        self.by_thread = {}     # tid -> set of pended lines

    def _words(self, addr, size):
        return range(addr >> 3, ((addr + size - 1) >> 3) + 1)

    def _unpend(self, line):
        self.pending.discard(line)
        for lines in self.by_thread.values():
            lines.discard(line)

    def store(self, addr, size, tid, ntstore=False):
        if size <= 0:
            return
        for word in self._words(addr, size):
            if ntstore:
                self.dirty.discard(word)
            else:
                self.dirty.add(word)
        for line in range(addr >> 6, ((addr + size - 1) >> 6) + 1):
            line_words = range(line * 8, line * 8 + 8)
            if not any(w in self.dirty for w in line_words):
                self._unpend(line)  # fully clean: no write-back left
            elif not ntstore and line in self.pending:
                self._unpend(line)  # re-dirty cancels the write-back

    def clwb(self, addr, tid):
        line = addr >> 6
        if any(w in self.dirty for w in range(line * 8, line * 8 + 8)):
            self.pending.add(line)
            self.by_thread.setdefault(tid, set()).add(line)

    def sfence(self, tid):
        for line in self.by_thread.pop(tid, set()):
            if line in self.pending:
                self.pending.discard(line)
                for word in range(line * 8, line * 8 + 8):
                    self.dirty.discard(word)

    def is_persisted(self, addr, size):
        if size <= 0:
            return True
        return not any(w in self.dirty for w in self._words(addr, size))


def run_persistency_workload(rng, ops, mem_size=1024):
    from repro.pmem import LineState, PersistentMemory

    mem = PersistentMemory(mem_size)
    oracle = WordPersistencyOracle(mem_size)
    for _ in range(ops):
        kind = rng.randrange(5)
        tid = rng.randrange(3)
        addr = rng.randrange(mem_size - 16)
        if kind in (0, 1):
            size = rng.randrange(1, 17)
            data = bytes([rng.randrange(256)]) * size
            mem.store(addr, data, thread_id=tid, ntstore=(kind == 1))
            oracle.store(addr, size, tid, ntstore=(kind == 1))
        elif kind == 2:
            mem.clwb(addr, thread_id=tid)
            oracle.clwb(addr, tid)
        elif kind == 3:
            mem.sfence(thread_id=tid)
            oracle.sfence(tid)
        else:
            size = rng.randrange(0, 33)
            query = rng.randrange(mem_size - 33)
            assert mem.is_persisted(query, size) == \
                oracle.is_persisted(query, size), \
                "is_persisted(%d, %d) diverged" % (query, size)
    # settle: every line state and word query must agree at the end
    for line in range(mem_size // 64):
        expected = LineState.PENDING if line in oracle.pending else (
            LineState.DIRTY if any(w in oracle.dirty
                                   for w in range(line * 8, line * 8 + 8))
            else LineState.CLEAN)
        assert mem.line_state(line * 64) is expected
    for word in range(mem_size // 8):
        assert mem.is_persisted(word * 8, 8) == \
            oracle.is_persisted(word * 8, 8)


class TestPersistencyMaskProperty:
    def test_random_workloads_match_oracle(self):
        rng = random.Random(0xBEEF)
        for _ in range(30):
            run_persistency_workload(rng, ops=rng.randrange(20, 120))

    def test_fence_heavy_workloads_match_oracle(self):
        rng = random.Random(77)
        for _ in range(10):
            run_persistency_workload(rng, ops=200, mem_size=256)

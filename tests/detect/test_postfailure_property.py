"""Property-based WriteRecorder tests (seeded, no external dependency).

The recorder keeps a sorted, coalesced interval set updated
incrementally on every store; ``covers`` answers range-containment in
O(log n). These tests pit it against the obvious oracle — a plain set
of written byte addresses — across randomized workloads, plus directed
edge cases: zero-size accesses, adjacent-touching intervals, and fully
nested intervals.
"""

import random

from repro.detect.postfailure import WriteRecorder
from repro.instrument.events import PmAccessEvent


class ByteSetOracle:
    """Naive model: the exact set of written byte addresses."""

    def __init__(self):
        self.bytes_written = set()

    def on_store(self, addr, size):
        self.bytes_written.update(range(addr, addr + size))

    def covers(self, addr, size):
        return all(b in self.bytes_written
                   for b in range(addr, addr + size))


def check_invariants(recorder):
    """Intervals stay sorted, disjoint, non-touching, and non-empty."""
    intervals = recorder.intervals
    for start, stop in intervals:
        assert start < stop
    for (_, stop), (start, _) in zip(intervals, intervals[1:]):
        assert stop < start, "adjacent intervals must have been coalesced"


def run_workload(rng, stores, queries, addr_space=256, max_size=12):
    recorder, oracle = WriteRecorder(), ByteSetOracle()
    for _ in range(stores):
        addr = rng.randrange(addr_space)
        size = rng.randrange(max_size + 1)  # includes zero-size stores
        recorder.on_store(PmAccessEvent("store", addr, size))
        oracle.on_store(addr, size)
        check_invariants(recorder)
    for _ in range(queries):
        addr = rng.randrange(addr_space + max_size)
        size = rng.randrange(max_size + 1)
        assert recorder.covers(addr, size) == oracle.covers(addr, size), \
            "covers(%d, %d) disagrees with oracle after %r" \
            % (addr, size, recorder.intervals)


class TestCoversProperty:
    def test_random_workloads_match_oracle(self):
        rng = random.Random(0xC0FFEE)
        for _ in range(40):
            run_workload(rng, stores=rng.randrange(1, 60), queries=50)

    def test_sparse_workloads_match_oracle(self):
        rng = random.Random(1234)
        for _ in range(20):
            run_workload(rng, stores=8, queries=80,
                         addr_space=4096, max_size=64)

    def test_dense_workloads_collapse_to_one_interval(self):
        rng = random.Random(99)
        recorder, oracle = WriteRecorder(), ByteSetOracle()
        addrs = list(range(0, 64, 4))
        rng.shuffle(addrs)
        for addr in addrs:
            recorder.on_store(PmAccessEvent("store", addr, 4))
            oracle.on_store(addr, 4)
            check_invariants(recorder)
        assert recorder.intervals == [(0, 64)]
        assert recorder.covers(0, 64)
        assert not recorder.covers(0, 65)


class TestDirectedEdgeCases:
    def test_zero_size_store_records_nothing(self):
        recorder = WriteRecorder()
        recorder.on_store(PmAccessEvent("store", 100, 0))
        assert recorder.intervals == []
        assert not recorder.covers(100, 1)

    def test_zero_size_query_always_covered(self):
        recorder = WriteRecorder()
        assert recorder.covers(0, 0)
        recorder.on_store(PmAccessEvent("store", 10, 4))
        assert recorder.covers(999, 0)

    def test_adjacent_touching_intervals_coalesce(self):
        recorder = WriteRecorder()
        recorder.on_store(PmAccessEvent("store", 0, 4))
        recorder.on_store(PmAccessEvent("store", 8, 4))
        assert recorder.intervals == [(0, 4), (8, 12)]
        recorder.on_store(PmAccessEvent("store", 4, 4))  # exactly touching
        assert recorder.intervals == [(0, 12)]
        assert recorder.covers(0, 12)
        assert not recorder.covers(0, 13)

    def test_fully_nested_interval_is_absorbed(self):
        recorder = WriteRecorder()
        recorder.on_store(PmAccessEvent("store", 0, 64))
        recorder.on_store(PmAccessEvent("store", 16, 8))
        assert recorder.intervals == [(0, 64)]
        recorder.on_store(PmAccessEvent("store", 32, 128))  # superset merge
        assert recorder.intervals == [(0, 160)]

    def test_bridging_store_merges_many(self):
        recorder = WriteRecorder()
        for addr in (0, 16, 32, 48):
            recorder.on_store(PmAccessEvent("store", addr, 8))
        assert len(recorder.intervals) == 4
        recorder.on_store(PmAccessEvent("store", 4, 50))
        assert recorder.intervals == [(0, 56)]

    def test_query_straddling_gap_not_covered(self):
        recorder = WriteRecorder()
        recorder.on_store(PmAccessEvent("store", 0, 8))
        recorder.on_store(PmAccessEvent("store", 9, 8))
        assert not recorder.covers(4, 8)
        assert recorder.covers(9, 8)

    def test_query_interval_with_longer_left_neighbor(self):
        # Regression guard: an interval starting exactly at the query
        # address must be found even when it extends past addr + size.
        recorder = WriteRecorder()
        recorder.on_store(PmAccessEvent("store", 100, 50))
        assert recorder.covers(100, 10)
        assert recorder.covers(100, 50)
        assert not recorder.covers(100, 51)

"""Extra-checker tests: redundant flushes, missing flushes, counters."""

import pytest

from repro.detect import (
    FenceCounter,
    RedundantFlushChecker,
    scan_missing_flushes,
)
from repro.instrument import InstrumentationContext, PmView
from repro.pmem import PmemPool


@pytest.fixture
def setup():
    pool = PmemPool("extra", 8192)
    ctx = InstrumentationContext()
    view = PmView(pool, None, ctx)
    return pool, ctx, view


class TestRedundantFlush:
    def test_clean_line_flagged(self, setup):
        pool, ctx, view = setup
        checker = ctx.add_observer(RedundantFlushChecker(pool))
        view.clwb(64)
        assert len(checker.redundant_flushes) == 1

    def test_dirty_line_not_flagged(self, setup):
        pool, ctx, view = setup
        checker = ctx.add_observer(RedundantFlushChecker(pool))
        view.store_u64(64, 1)
        view.clwb(64)
        assert not checker.redundant_flushes

    def test_double_persist_flagged_once_per_site(self, setup):
        pool, ctx, view = setup
        checker = ctx.add_observer(RedundantFlushChecker(pool))
        view.store_u64(64, 1)
        for _ in range(3):
            view.persist(64, 8)   # 2nd and 3rd persist are redundant
        assert len(checker.redundant_flushes) == 1
        assert checker.redundant_flushes[0].count == 2

    def test_end_of_pool_line(self, setup):
        pool, ctx, view = setup
        checker = ctx.add_observer(RedundantFlushChecker(pool))
        view.clwb(pool.size - 1)
        assert len(checker.redundant_flushes) == 1


class TestMissingFlush:
    def test_dirty_words_reported(self, setup):
        pool, _ctx, view = setup
        view.store_u64(64, 1)
        view.store_u64(72, 2)
        records = scan_missing_flushes(pool)
        assert len(records) == 2  # two distinct store sites (lines)
        assert sum(len(r.addrs) for r in records) == 2

    def test_clean_pool_empty(self, setup):
        pool, _ctx, view = setup
        view.store_u64(64, 1)
        view.persist(64, 8)
        assert scan_missing_flushes(pool) == []

    def test_ntstore_not_reported(self, setup):
        pool, _ctx, view = setup
        view.ntstore_u64(64, 1)
        assert scan_missing_flushes(pool) == []

    def test_grouped_by_site(self, setup):
        pool, _ctx, view = setup
        for index in range(4):
            view.store_u64(512 + index * 8, index)  # one site, 4 words
        records = scan_missing_flushes(pool)
        assert len(records) == 1
        assert records[0].byte_count == 32

    def test_ignore_patterns(self, setup):
        pool, _ctx, view = setup
        view.store_u64(64, 1)
        assert scan_missing_flushes(pool,
                                    ignore_instrs=("test_extra",)) == []

    def test_finds_memcached_missing_value_flush(self):
        """The root cause of bugs 9/10: value bytes never flushed."""
        from repro.targets import MemcachedTarget
        target = MemcachedTarget()
        state = target.setup()
        view = PmView(state.pool, None, InstrumentationContext())
        instance = target.open(state, view, None)
        instance.cmd_store("set", 1, b"v")
        instance.cmd_store("append", 1, b"w")   # value left dirty
        records = scan_missing_flushes(state.pool)
        assert any("cmd_store" in r.instr_id or "memcached" in r.instr_id
                   for r in records)


class TestFenceCounter:
    def test_counts(self, setup):
        _pool, ctx, view = setup
        counter = ctx.add_observer(FenceCounter())
        view.store_u64(64, 1)
        view.ntstore_u64(128, 1)
        view.persist(64, 8)
        assert counter.stores == 1
        assert counter.ntstores == 1
        assert counter.flushes == 1
        assert counter.fences == 1

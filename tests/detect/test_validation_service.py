"""Deferred validation service tests: queue, cache, upgrades, containment.

The invariant the digest cache must uphold — cached verdicts are
byte-identical to uncached per-record replay — is checked both by
hand-built cases and a seeded Hypothesis property over randomized crash
images.
"""

import multiprocessing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import PMRace, PMRaceConfig, RunResult
from repro.detect import (
    PostFailureValidator,
    ValidationQueue,
    Verdict,
    fresh_target_factory,
    image_digest,
    validate_records_parallel,
)
from repro.detect.records import (
    CandidateRecord,
    InconsistencyRecord,
    SyncInconsistencyRecord,
)
from repro.pmem import PmemPool
from repro.targets import make_target, target_names

from ..core.toy_target import ToyTarget
from .test_postfailure import MiniTarget

POOL_SIZE = 2048
#: MiniTarget's recovery overwrites [1024, 1088) and re-inits u64 @ 512.
RECOVERED_ADDR = 1024
UNRECOVERED_ADDR = 1536
LOCK_ADDR = 768


def make_image(fill=0, lock=0):
    pool = PmemPool("vs", POOL_SIZE)
    if fill:
        pool.write_bytes(0, bytes([fill]) * POOL_SIZE)
    if lock:
        pool.write_u64(LOCK_ADDR, lock)
    pool.memory.persist_all()
    return pool.crash_image()


def make_record(image, addr, size=8, effect_instr="effect:0"):
    candidate = CandidateRecord(1, addr, size, "read:%s" % effect_instr,
                                "write:%s" % effect_instr, 0, 1, (), 0)
    return InconsistencyRecord(candidate, effect_instr, addr, size,
                               (), (), image)


def make_sync_record(image, addr=LOCK_ADDR, value=1, name="lock"):
    """The image must carry the stale ``value`` at ``addr`` (use
    ``make_image(lock=value)``) or validation short-circuits benign."""
    return SyncInconsistencyRecord(name, addr, 8, 0, value,
                                   "site:%s" % name, (), image)


class CountingValidator(PostFailureValidator):
    """Counts replays and records drain order for the queue tests."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.replays = 0
        self.order = []

    def replay(self, image):
        self.replays += 1
        return super().replay(image)

    def validate(self, record, replay=None):
        self.order.append(record)
        return super().validate(record, replay=replay)


class TestQueueDrain:
    def test_fifo_order(self):
        image = make_image()
        validator = CountingValidator(MiniTarget)
        queue = ValidationQueue(validator)
        records = [make_record(image, RECOVERED_ADDR,
                               effect_instr="effect:%d" % i)
                   for i in range(5)]
        for record in records:
            queue.enqueue(record)
        assert len(queue) == 5
        assert queue.drain() == 5
        assert validator.order == records
        assert len(queue) == 0

    def test_redrain_is_empty(self):
        queue = ValidationQueue(CountingValidator(MiniTarget))
        queue.enqueue(make_record(make_image(), RECOVERED_ADDR))
        assert queue.drain() == 1
        assert queue.drain() == 0

    def test_unique_image_replayed_once(self):
        image = make_image()
        validator = CountingValidator(MiniTarget)
        queue = ValidationQueue(validator)
        for i in range(4):
            queue.enqueue(make_record(image, RECOVERED_ADDR,
                                      effect_instr="effect:%d" % i))
        queue.drain()
        assert validator.replays == 1
        assert queue.cache_hits == 3 and queue.cache_misses == 1

    def test_distinct_images_replayed_each(self):
        validator = CountingValidator(MiniTarget)
        queue = ValidationQueue(validator)
        queue.enqueue(make_record(make_image(1), RECOVERED_ADDR))
        queue.enqueue(make_record(make_image(2), RECOVERED_ADDR,
                                  effect_instr="effect:1"))
        queue.drain()
        assert validator.replays == 2
        assert queue.stats()["unique_images"] == 2

    def test_cache_disabled_replays_every_record(self):
        image = make_image()
        validator = CountingValidator(MiniTarget)
        queue = ValidationQueue(validator, cache=False)
        for i in range(3):
            queue.enqueue(make_record(image, RECOVERED_ADDR,
                                      effect_instr="effect:%d" % i))
        queue.drain()
        assert validator.replays == 3
        assert queue.cache_hits == 0

    def test_cached_verdict_matches_uncached(self):
        image = make_image()
        specs = [(RECOVERED_ADDR, Verdict.VALIDATED_FP),
                 (UNRECOVERED_ADDR, Verdict.BUG),
                 (RECOVERED_ADDR, Verdict.VALIDATED_FP)]
        for cache in (True, False):
            queue = ValidationQueue(PostFailureValidator(MiniTarget),
                                    cache=cache)
            records = [make_record(image, addr, effect_instr="e:%d" % i)
                       for i, (addr, _) in enumerate(specs)]
            for record in records:
                queue.enqueue(record)
            queue.drain()
            assert [r.verdict for r in records] == [v for _, v in specs]


class TestPendingUpgrade:
    def test_imageless_record_upgraded_by_duplicate_image(self):
        validator = PostFailureValidator(MiniTarget)
        queue = ValidationQueue(validator)
        record = make_record(None, RECOVERED_ADDR)
        queue.enqueue(record)
        queue.drain()
        assert record.verdict is Verdict.PENDING
        assert "no crash image" in record.note
        # A dedup-equal duplicate shows up later *with* an image.
        assert queue.offer_image(record.dedup_key(), make_image())
        assert len(queue) == 1
        queue.drain()
        assert record.verdict is Verdict.VALIDATED_FP
        assert queue.upgrades == 1

    def test_offer_none_image_is_noop(self):
        queue = ValidationQueue(PostFailureValidator(MiniTarget))
        record = make_record(None, RECOVERED_ADDR)
        queue.enqueue(record)
        assert not queue.offer_image(record.dedup_key(), None)
        assert queue.awaiting_image == 1

    def test_offer_unknown_key_is_noop(self):
        queue = ValidationQueue(PostFailureValidator(MiniTarget))
        assert not queue.offer_image(("inter", "w", "r", "e"), make_image())

    def test_upgrade_before_first_drain_validates_once(self):
        # Image arrives while the record is still queued: one drain, one
        # verdict, no PENDING interlude.
        queue = ValidationQueue(PostFailureValidator(MiniTarget))
        record = make_record(None, RECOVERED_ADDR)
        queue.enqueue(record)
        queue.offer_image(record.dedup_key(), make_image())
        assert len(queue) == 1  # not re-queued: it never left
        queue.drain()
        assert record.verdict is Verdict.VALIDATED_FP

    def test_register_only_indexes_without_queueing(self):
        # Validation disabled: records are registered so a later
        # duplicate's image still attaches for the external pass.
        queue = ValidationQueue(PostFailureValidator(MiniTarget))
        record = make_record(None, RECOVERED_ADDR)
        queue.register(record)
        assert len(queue) == 0
        assert queue.offer_image(record.dedup_key(), make_image())
        assert record.crash_image is not None
        assert len(queue) == 1


class _FlakyRecoveryTarget:
    """Fails the first recovery, succeeds on the retry (class-level
    state because every replay constructs a fresh instance)."""

    failures_left = 0

    def recover(self, pool, view):
        cls = type(self)
        if cls.failures_left > 0:
            cls.failures_left -= 1
            raise RuntimeError("transient recovery failure")
        view.ntstore_bytes(RECOVERED_ADDR, b"\x00" * 64)
        view.sfence()
        return self


class _RunawayRecoveryTarget:
    def recover(self, pool, view):
        while True:
            view.load_u64(0)


class TestFaultContainment:
    def test_transient_crash_retried_once(self):
        _FlakyRecoveryTarget.failures_left = 1
        validator = PostFailureValidator(_FlakyRecoveryTarget)
        replay = validator.replay(make_image())
        assert replay.ok and replay.retried
        _FlakyRecoveryTarget.failures_left = 1
        record = make_record(make_image(), RECOVERED_ADDR)
        assert validator.validate(record) is Verdict.VALIDATED_FP

    def test_persistent_crash_is_bug_with_note(self):
        _FlakyRecoveryTarget.failures_left = 10
        validator = PostFailureValidator(_FlakyRecoveryTarget)
        record = make_record(make_image(), RECOVERED_ADDR)
        assert validator.validate(record) is Verdict.BUG
        assert "recovery failed" in record.note
        assert "persisted across one retry" in record.note
        _FlakyRecoveryTarget.failures_left = 0

    def test_budget_abort_stays_pending(self):
        validator = PostFailureValidator(_RunawayRecoveryTarget,
                                         replay_max_steps=500)
        record = make_record(make_image(), RECOVERED_ADDR)
        assert validator.validate(record) is Verdict.PENDING
        assert "replay budget exhausted" in record.note

    def test_budget_abort_not_retried(self):
        calls = []

        class Runaway(_RunawayRecoveryTarget):
            def recover(self, pool, view):
                calls.append(1)
                super().recover(pool, view)

        validator = PostFailureValidator(Runaway, replay_max_steps=500)
        replay = validator.replay(make_image())
        assert replay.budget_exceeded and not replay.ok
        assert len(calls) == 1

    def test_wall_clock_budget(self):
        validator = PostFailureValidator(_RunawayRecoveryTarget,
                                         replay_max_steps=10 ** 9,
                                         replay_max_seconds=0.05)
        replay = validator.replay(make_image())
        assert replay.budget_exceeded and replay.error

    def test_drain_survives_crashing_replays(self):
        _FlakyRecoveryTarget.failures_left = 10
        queue = ValidationQueue(PostFailureValidator(_FlakyRecoveryTarget))
        records = [make_record(make_image(i + 1), RECOVERED_ADDR,
                               effect_instr="e:%d" % i) for i in range(3)]
        for record in records:
            queue.enqueue(record)
        assert queue.drain() == 3
        assert all(r.verdict is Verdict.BUG for r in records)
        _FlakyRecoveryTarget.failures_left = 0


class _ProbeBase:
    """Recovery leaves the sync var stale so the probe actually runs."""

    def recover(self, pool, view):
        return self


class _HangingProbeTarget(_ProbeBase):
    def post_recovery_probe(self, pool, view):
        while True:
            view.scheduler.yield_point("spin", "pm_lock:probe")


class _SlowProbeTarget(_ProbeBase):
    def post_recovery_probe(self, pool, view):
        for _ in range(30_000):  # > the probe scheduler's 20k step budget
            view.load_u64(0)


class _QuickProbeTarget(_ProbeBase):
    def post_recovery_probe(self, pool, view):
        view.load_u64(0)


class _WritingProbeTarget(_ProbeBase):
    def post_recovery_probe(self, pool, view):
        view.ntstore_u64(0, 0xDEAD)
        view.sfence()


class TestProbeNotes:
    def probe_note(self, target_cls):
        validator = PostFailureValidator(target_cls, probe_hangs=True)
        record = make_sync_record(make_image(lock=1))
        assert validator.validate(record) is Verdict.BUG
        return record.note

    def test_hang_reported_as_hang(self):
        assert "post-recovery probe hangs" in self.probe_note(
            _HangingProbeTarget)

    def test_budget_exhaustion_reported_distinctly(self):
        note = self.probe_note(_SlowProbeTarget)
        assert "exceeded its step budget" in note
        assert "inconclusive" in note
        assert "probe hangs" not in note

    def test_completed_probe(self):
        assert "post-recovery probe completed" in self.probe_note(
            _QuickProbeTarget)

    def test_probe_never_mutates_shared_replay(self):
        validator = PostFailureValidator(_WritingProbeTarget,
                                         probe_hangs=True)
        queue = ValidationQueue(validator)
        image = make_image(lock=1)
        sync = make_sync_record(image)
        inter = make_record(image, 0, size=8)
        queue.enqueue(sync)
        queue.enqueue(inter)
        queue.drain()
        shared = queue._cache[image_digest(image)]
        assert shared.shared
        # The probe wrote 0xDEAD at 0 — on its *private* replay only.
        assert shared.pool.read_u64(0) != 0xDEAD


class _StatefulRecoveryTarget:
    """Recovery poisons the instance it ran on: reuse must be visible."""

    def __init__(self):
        self.recoveries = 0

    def recover(self, pool, view):
        self.recoveries += 1
        if self.recoveries > 1:
            raise RuntimeError("stale target instance reused for recovery")
        view.ntstore_bytes(RECOVERED_ADDR, b"\x00" * 64)
        view.sfence()
        return self


class TestFreshTargetFactory:
    def test_unregistered_target_rebuilt_from_class(self):
        live = _StatefulRecoveryTarget()
        factory = fresh_target_factory(live)
        first, second = factory(), factory()
        assert type(first) is _StatefulRecoveryTarget
        assert first is not live and first is not second

    def test_registered_target_goes_through_registry(self):
        name = target_names()[0]
        live = make_target(name)
        fresh = fresh_target_factory(live)()
        assert type(fresh) is type(live) and fresh is not live

    def test_engine_validator_never_replays_on_live_target(self):
        engine = PMRace(ToyTarget(), PMRaceConfig(max_campaigns=1))
        assert engine.validator.target_factory() is not engine.target

    def test_stateful_target_validates_repeatedly(self):
        # Regression: the engine used to pass `lambda: self.target`, so
        # the *same* instance recovered every record — the second replay
        # here would raise and flip the verdict to BUG.
        live = _StatefulRecoveryTarget()
        validator = PostFailureValidator(fresh_target_factory(live))
        first = make_record(make_image(1), RECOVERED_ADDR)
        second = make_record(make_image(2), RECOVERED_ADDR,
                             effect_instr="e:1")
        assert validator.validate(first) is Verdict.VALIDATED_FP
        assert validator.validate(second) is Verdict.VALIDATED_FP
        assert live.recoveries == 0


class TestMergeUpgrades:
    def seeded_result(self, record):
        result = RunResult("toy", PMRaceConfig())
        result.inconsistencies.append(record)
        result._inconsistency_keys[record.dedup_key()] = record
        return result

    def test_merge_adopts_duplicate_verdict(self):
        pending = make_record(None, RECOVERED_ADDR)
        judged = make_record(make_image(), RECOVERED_ADDR)
        judged.verdict = Verdict.BUG
        judged.note = "judged elsewhere"
        merged = self.seeded_result(pending)
        merged.merge(self.seeded_result(judged))
        assert len(merged.inconsistencies) == 1
        assert pending.verdict is Verdict.BUG
        assert pending.note == "judged elsewhere"
        assert pending.crash_image is not None
        assert merged.verdict_upgrades == 1
        assert merged.summary()["verdict_upgrades"] == 1

    def test_merge_never_downgrades(self):
        judged = make_record(make_image(), RECOVERED_ADDR)
        judged.verdict = Verdict.VALIDATED_FP
        pending = make_record(None, RECOVERED_ADDR)
        merged = self.seeded_result(judged)
        merged.merge(self.seeded_result(pending))
        assert judged.verdict is Verdict.VALIDATED_FP
        assert merged.verdict_upgrades == 0

    def test_merge_attaches_image_to_unjudged_pair(self):
        imageless = make_record(None, RECOVERED_ADDR)
        with_image = make_record(make_image(), RECOVERED_ADDR)
        merged = self.seeded_result(imageless)
        merged.merge(self.seeded_result(with_image))
        assert imageless.crash_image is not None
        assert imageless.verdict is Verdict.PENDING
        assert merged.verdict_upgrades == 0


class TestParallelValidation:
    def build_records(self):
        images = [make_image(1), make_image(2)]
        records = []
        for i in range(6):
            addr = RECOVERED_ADDR if i % 2 else UNRECOVERED_ADDR
            records.append(make_record(images[i % 2], addr,
                                       effect_instr="e:%d" % i))
        records.append(make_record(None, RECOVERED_ADDR,
                                   effect_instr="e:none"))
        return records

    def expected_verdicts(self, records):
        return [Verdict.VALIDATED_FP if r.side_effect_addr == RECOVERED_ADDR
                and r.crash_image is not None
                else Verdict.PENDING if r.crash_image is None
                else Verdict.BUG for r in records]

    def test_single_job_fallback(self):
        records = self.build_records()
        stats = validate_records_parallel("mini-vs", records, jobs=1)
        assert [r.verdict for r in records] == \
            self.expected_verdicts(records)
        assert stats["validated"] == len(records)
        assert stats["unique_images"] == 2

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="worker registry patch relies on fork inheritance")
    def test_two_jobs_match_inline(self):
        records = self.build_records()
        stats = validate_records_parallel("mini-vs", records, jobs=2)
        assert [r.verdict for r in records] == \
            self.expected_verdicts(records)
        assert stats["validated"] == len(records)
        # Digest partitioning: each unique image replayed in one worker.
        assert stats["unique_images"] == 2


@pytest.fixture(autouse=True)
def _register_mini_target():
    """Expose MiniTarget to the registry under 'mini-vs' so the
    validate-by-name paths (and forked workers) can rebuild it."""
    from repro.targets import Target, register_target, unregister_target

    class MiniVs(MiniTarget, Target):
        NAME = "mini-vs"

    register_target(MiniVs, replace=True)
    yield
    unregister_target("mini-vs")


# ----------------------------------------------------------------------
# seeded property: the cache is pure reuse

IMAGE_FILLS = st.lists(st.integers(0, 255), min_size=1, max_size=3)
WORD_WRITES = st.lists(st.tuples(st.integers(0, POOL_SIZE // 8 - 1),
                                 st.integers(0, 2 ** 64 - 1)),
                       max_size=8)
RECORD_SPECS = st.lists(st.tuples(st.integers(0, 5),
                                  st.integers(0, POOL_SIZE // 8 - 1)),
                        min_size=1, max_size=12)


@settings(max_examples=25, deadline=None, derandomize=True)
@given(IMAGE_FILLS, WORD_WRITES, RECORD_SPECS)
def test_cached_verdicts_equal_uncached_on_random_images(
        fills, writes, specs):
    """For randomized crash images and record layouts, validating with
    the digest cache on must produce verdicts and notes byte-identical
    to replaying every record individually."""
    images = []
    for fill in fills:
        pool = PmemPool("prop", POOL_SIZE)
        pool.write_bytes(0, bytes([fill]) * POOL_SIZE)
        for slot, value in writes:
            pool.write_u64(slot * 8, value ^ fill)
        pool.memory.persist_all()
        images.append(pool.crash_image())

    def build():
        records = []
        for index, (image_index, slot) in enumerate(specs):
            image = images[image_index % len(images)]
            records.append(make_record(image, slot * 8,
                                       effect_instr="e:%d" % index))
        return records

    cached_records, plain_records = build(), build()
    cached = ValidationQueue(PostFailureValidator(MiniTarget), cache=True)
    plain = ValidationQueue(PostFailureValidator(MiniTarget), cache=False)
    for record in cached_records:
        cached.enqueue(record)
    for record in plain_records:
        plain.enqueue(record)
    cached.drain()
    plain.drain()
    for fast, slow in zip(cached_records, plain_records):
        assert fast.verdict is slow.verdict
        assert fast.note == slow.note
    used = {image_digest(images[i % len(images)]) for i, _ in specs}
    assert cached.cache_misses == len(used)
    assert cached.cache_hits == len(specs) - len(used)

"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.detect import InconsistencyChecker
from repro.instrument import InstrumentationContext, PmView
from repro.pmem import PmemPool
from repro.runtime import RoundRobinPolicy, Scheduler, SeededRandomPolicy


@pytest.fixture
def pool():
    return PmemPool("test", 64 * 1024)


@pytest.fixture
def ctx():
    return InstrumentationContext()


def make_harness(pool, policy=None, observers=(), annotations=None,
                 max_steps=30_000, spin_hang_limit=200):
    """(scheduler, view, ctx) wired together for scenario tests."""
    scheduler = Scheduler(policy or RoundRobinPolicy(), max_steps=max_steps,
                          spin_hang_limit=spin_hang_limit)
    context = InstrumentationContext(annotations=annotations)
    for observer in observers:
        context.add_observer(observer)
    view = PmView(pool, scheduler, context)
    return scheduler, view, context


def run_threads(pool, *fns, policy=None, observers=(), annotations=None,
                checker=True, seed=0, **kwargs):
    """Run ``fns`` as simulated threads; returns (outcome, checker, view).

    Each fn receives (view, scheduler).
    """
    policy = policy or SeededRandomPolicy(seed)
    scheduler, view, context = make_harness(
        pool, policy, observers, annotations, **kwargs)
    chk = None
    if checker:
        chk = context.add_observer(InconsistencyChecker(pool))
    for index, fn in enumerate(fns):
        scheduler.spawn(lambda fn=fn: fn(view, scheduler),
                        "t%d" % index)
    outcome = scheduler.run()
    return outcome, chk, view

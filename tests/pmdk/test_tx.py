"""Mini-PMDK transaction tests (undo logging, no isolation)."""

import pytest

from repro.instrument import InstrumentationContext, PmView
from repro.pmdk import PmemObjPool, Transaction, TransactionError


@pytest.fixture
def objpool():
    return PmemObjPool.create("tx", 1 << 20)


@pytest.fixture
def view(objpool):
    return PmView(objpool.pool, None, InstrumentationContext())


class TestCommitAbort:
    def test_commit_keeps_changes(self, objpool, view):
        root = objpool.root(64)
        with Transaction(objpool, view) as tx:
            tx.add_range(root, 8)
            view.store_u64(root, 42)
        assert view.load_u64(root) == 42

    def test_abort_rolls_back(self, objpool, view):
        root = objpool.root(64)
        view.ntstore_u64(root, 7)
        tx = Transaction(objpool, view).begin()
        tx.add_range(root, 8)
        view.store_u64(root, 42)
        tx.abort()
        assert view.load_u64(root) == 7

    def test_exception_aborts(self, objpool, view):
        root = objpool.root(64)
        with pytest.raises(ValueError):
            with Transaction(objpool, view) as tx:
                tx.add_range(root, 8)
                view.store_u64(root, 42)
                raise ValueError("boom")
        assert view.load_u64(root) == 0

    def test_abort_reverses_entry_order(self, objpool, view):
        root = objpool.root(64)
        tx = Transaction(objpool, view).begin()
        tx.add_range(root, 8)
        view.store_u64(root, 1)
        tx.add_range(root, 8)  # second snapshot captures value 1
        view.store_u64(root, 2)
        tx.abort()
        assert view.load_u64(root) == 0  # oldest pre-image wins

    def test_add_range_outside_tx(self, objpool, view):
        tx = Transaction(objpool, view)
        with pytest.raises(TransactionError):
            tx.add_range(0, 8)

    def test_double_begin(self, objpool, view):
        tx = Transaction(objpool, view).begin()
        with pytest.raises(TransactionError):
            tx.begin()

    def test_large_range_chunked(self, objpool, view):
        root = objpool.root(64)
        base = objpool.allocator.alloc(256)
        view.ntstore_bytes(base, b"A" * 256)
        with Transaction(objpool, view) as tx:
            tx.add_range(base, 256)
            view.store_bytes(base, b"B" * 256)
        assert view.load_bytes(base, 256) == b"B" * 256

    def test_lane_overflow(self, objpool, view):
        tx = Transaction(objpool, view).begin()
        with pytest.raises(TransactionError):
            for _ in range(100):
                tx.add_range(objpool.root(64), 8)


class TestTxAlloc:
    def test_alloc_inside_tx(self, objpool, view):
        with Transaction(objpool, view) as tx:
            off = tx.tx_alloc(64)
        assert objpool.allocator.is_allocated(off)

    def test_alloc_undone_on_abort(self, objpool, view):
        tx = Transaction(objpool, view).begin()
        off = tx.tx_alloc(64)
        tx.abort()
        assert not objpool.allocator.is_allocated(off)

    def test_tx_free(self, objpool, view):
        off = objpool.allocator.alloc(64)
        with Transaction(objpool, view) as tx:
            tx.tx_free(off)
        assert not objpool.allocator.is_allocated(off)

    def test_alloc_outside_tx(self, objpool, view):
        with pytest.raises(TransactionError):
            Transaction(objpool, view).tx_alloc(8)


class TestCrashRecovery:
    def test_uncommitted_tx_rolled_back_on_open(self, objpool, view):
        root = objpool.root(64)
        view.ntstore_u64(root, 5)
        tx = Transaction(objpool, view).begin()
        tx.add_range(root, 8)
        view.store_u64(root, 99)
        view.persist(root, 8)  # the dirty value even hits PM
        image = objpool.pool.crash_image()
        reopened = PmemObjPool.open_from_image("r", image)
        assert reopened.pool.read_u64(root) == 5

    def test_committed_tx_survives(self, objpool, view):
        root = objpool.root(64)
        with Transaction(objpool, view) as tx:
            tx.add_range(root, 8)
            view.store_u64(root, 99)
        view.persist(root, 8)
        reopened = PmemObjPool.open_from_image(
            "r", objpool.pool.crash_image())
        assert reopened.pool.read_u64(root) == 99

    def test_no_isolation(self, objpool, view):
        """PM writes inside transactions are immediately visible (§4.4)."""
        root = objpool.root(64)
        tx = Transaction(objpool, view).begin()
        tx.add_range(root, 8)
        view.store_u64(root, 77)
        # another "thread" (same view here) sees the uncommitted value
        assert view.load_u64(root) == 77
        tx.commit()

    def test_rollback_through_view_records_writes(self, objpool, view):
        from repro.detect.postfailure import WriteRecorder
        root = objpool.root(64)
        tx = Transaction(objpool, view).begin()
        tx.add_range(root, 8)
        view.store_u64(root, 99)
        image = objpool.pool.crash_image()
        ctx = InstrumentationContext()
        recorder = ctx.add_observer(WriteRecorder())
        from repro.pmem import PmemPool
        pool = PmemPool.from_image("r", image)
        rec_view = PmView(pool, None, ctx)
        PmemObjPool.attach(pool, rec_view)
        assert recorder.covers(root, 8)

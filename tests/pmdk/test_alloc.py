"""Bump-heap atomic allocation tests."""

import pytest

from repro.detect import InconsistencyChecker
from repro.instrument import InstrumentationContext, PmView
from repro.pmdk import BumpHeap, pm_atomic_alloc
from repro.pmem import PmemPool
from repro.runtime import RoundRobinPolicy, Scheduler


def make(limit=8192):
    pool = PmemPool("bump", 8192)
    ctx = InstrumentationContext()
    checker = ctx.add_observer(InconsistencyChecker(pool))
    view = PmView(pool, None, ctx)
    heap = BumpHeap(0, limit)
    heap.init(view, 1024)
    return pool, view, heap, checker


class TestBumpAlloc:
    def test_sequential_allocations_disjoint(self):
        _pool, view, heap, _checker = make()
        a = pm_atomic_alloc(view, heap, 100)
        b = pm_atomic_alloc(view, heap, 100)
        assert int(b) >= int(a) + 128  # 64-aligned 100 -> 128

    def test_alignment(self):
        _pool, view, heap, _checker = make()
        assert int(pm_atomic_alloc(view, heap, 10)) % 64 == 0

    def test_exhaustion_returns_zero(self):
        _pool, view, heap, _checker = make(limit=1200)
        assert pm_atomic_alloc(view, heap, 128) != 0
        assert pm_atomic_alloc(view, heap, 128) == 0

    def test_racy_cursor_read_is_candidate(self):
        """The second allocation reads the (unflushed) advanced cursor."""
        _pool, view, heap, checker = make()
        pm_atomic_alloc(view, heap, 64)
        pm_atomic_alloc(view, heap, 64)
        assert checker.candidates
        assert checker.inconsistencies  # CAS content flow

    def test_candidate_stack_is_whitelistable(self):
        from repro.detect import Whitelist
        _pool, view, heap, checker = make()
        pm_atomic_alloc(view, heap, 64)
        pm_atomic_alloc(view, heap, 64)
        whitelist = Whitelist()
        assert all(whitelist.matches(record)
                   for record in checker.inconsistencies)

    def test_concurrent_allocations_unique(self):
        pool = PmemPool("conc", 1 << 16)
        scheduler = Scheduler(RoundRobinPolicy())
        ctx = InstrumentationContext()
        view = PmView(pool, scheduler, ctx)
        heap = BumpHeap(0, 1 << 16)
        heap.init(view, 1024)
        results = []

        def worker():
            for _ in range(5):
                results.append(int(pm_atomic_alloc(view, heap, 64)))

        scheduler.spawn(worker)
        scheduler.spawn(worker)
        assert scheduler.run().ok
        assert len(results) == 10
        assert len(set(results)) == 10

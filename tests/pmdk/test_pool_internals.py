"""Mini-PMDK internals: lane assignment, free-list carving, layout."""

import pytest

from repro.pmdk import HEAP_START, LANE_COUNT, PmemObjPool
from repro.pmdk.pool import LANES_START, REGISTRY_START, _carve


class TestCarve:
    def test_middle(self):
        assert _carve([(0, 100)], 40, 20) == [(0, 40), (60, 40)]

    def test_prefix(self):
        assert _carve([(0, 100)], 0, 30) == [(30, 70)]

    def test_suffix(self):
        assert _carve([(0, 100)], 70, 30) == [(0, 70)]

    def test_whole(self):
        assert _carve([(0, 100)], 0, 100) == []

    def test_disjoint_untouched(self):
        assert _carve([(0, 50), (100, 50)], 200, 10) == [(0, 50), (100, 50)]

    def test_spanning_multiple(self):
        assert _carve([(0, 50), (50, 50)], 40, 20) == [(0, 40), (60, 40)]

    def test_overlap_partial(self):
        # carve range extends past the free block: clamp to overlap
        assert _carve([(0, 50)], 40, 30) == [(0, 40)]


class TestLayout:
    def test_regions_ordered(self):
        assert REGISTRY_START < LANES_START < HEAP_START

    def test_heap_start_aligned(self):
        assert HEAP_START % 64 == 0

    def test_lane_assignment_wraps(self):
        objpool = PmemObjPool.create("lanes", 1 << 20)
        for tid in range(LANE_COUNT * 2):
            assert objpool.lane_base(tid) == \
                objpool.lane_base(tid + LANE_COUNT)

    def test_negative_tid_tolerated(self):
        objpool = PmemObjPool.create("lanes", 1 << 20)
        assert objpool.lane_base(-1) == objpool.lane_base(0)


class TestRecoveryAfterManyOps:
    def test_alloc_free_churn_then_reopen(self):
        objpool = PmemObjPool.create("churn", 1 << 20)
        live = []
        for round_index in range(10):
            live.append(objpool.allocator.alloc(64 + round_index * 32))
            if len(live) > 3:
                objpool.allocator.free(live.pop(0))
        objpool.pool.memory.persist_all()
        reopened = PmemObjPool.open_from_image(
            "churn2", objpool.pool.crash_image())
        for off in live:
            assert reopened.allocator.is_allocated(off)
        assert reopened.allocator.allocated_bytes == \
            objpool.allocator.allocated_bytes

    def test_reopened_pool_allocates_fresh_space(self):
        objpool = PmemObjPool.create("fresh", 1 << 20)
        first = objpool.allocator.alloc(64)
        objpool.pool.memory.persist_all()
        reopened = PmemObjPool.open_from_image(
            "fresh2", objpool.pool.crash_image())
        second = reopened.allocator.alloc(64)
        assert second != first

"""Mini-PMDK pool-management tests."""

import pytest

from repro.pmdk import HEAP_START, MAGIC, PmemObjPool, pmem_map_file
from repro.pmem import PoolError


class TestCreate:
    def test_magic_written(self):
        objpool = PmemObjPool.create("p", 1 << 20)
        assert objpool.pool.read_u64(0) == MAGIC

    def test_magic_persisted(self):
        objpool = PmemObjPool.create("p", 1 << 20)
        assert objpool.pool.read_persisted_u64(0) == MAGIC

    def test_too_small_rejected(self):
        with pytest.raises(PoolError):
            PmemObjPool.create("tiny", 128)

    def test_heap_allocations_above_metadata(self):
        objpool = PmemObjPool.create("p", 1 << 20)
        off = objpool.allocator.alloc(64)
        assert off >= HEAP_START

    def test_root_allocated_once(self):
        objpool = PmemObjPool.create("p", 1 << 20)
        first = objpool.root(64)
        assert objpool.root(64) == first
        assert objpool.pool.read_u64(8) == first

    def test_lane_bases_distinct(self):
        objpool = PmemObjPool.create("p", 1 << 20)
        lanes = {objpool.lane_base(tid) for tid in range(8)}
        assert len(lanes) == 8
        assert objpool.lane_base(8) == objpool.lane_base(0)


class TestOpen:
    def test_open_from_clean_image(self):
        objpool = PmemObjPool.create("p", 1 << 20)
        root = objpool.root(64)
        objpool.pool.memory.persist_all()
        reopened = PmemObjPool.open_from_image("p2",
                                               objpool.pool.crash_image())
        assert reopened.pool.read_u64(8) == root

    def test_bad_magic_rejected(self):
        with pytest.raises(PoolError):
            PmemObjPool.open_from_image("bad", b"\x00" * (1 << 20))

    def test_allocator_rebuilt_from_registry(self):
        objpool = PmemObjPool.create("p", 1 << 20)
        off = objpool.allocator.alloc(128)
        objpool.pool.memory.persist_all()
        reopened = PmemObjPool.open_from_image("p2",
                                               objpool.pool.crash_image())
        assert reopened.allocator.is_allocated(off)
        # the rebuilt free list must not re-serve the live block
        fresh = reopened.allocator.alloc(128)
        assert fresh != off

    def test_rebuilt_allocator_can_free(self):
        objpool = PmemObjPool.create("p", 1 << 20)
        off = objpool.allocator.alloc(128)
        objpool.pool.memory.persist_all()
        reopened = PmemObjPool.open_from_image("p2",
                                               objpool.pool.crash_image())
        reopened.allocator.free(off)
        assert not reopened.allocator.is_allocated(off)


class TestPmemMapFile:
    def test_plain_pool(self):
        pool = pmem_map_file("mc", 4096)
        assert pool.size == 4096
        pool.write_u64(0, 7)
        assert pool.read_u64(0) == 7

"""A known-clean miniature target: pmlint must report zero findings.

Every cached store is covered by a flush + fence before the function
returns, the persistent lock is registered through the annotation
registry, transactional calls stay inside their ``with Transaction``
scope, and no flush targets a provably clean range. The no-false-
positives test in ``test_lint_targets.py`` pins this at zero findings
with *no* whitelist.
"""

from repro.targets.base import OperationSpace, Target, TargetState

COUNTER = 64
MIRROR = 128
CLEAN_LOCK = 256


class CleanSpace(OperationSpace):
    kinds = ("bump", "read")
    insert_kind = "bump"
    key_range = 4

    def random_op(self, rng, near_key=None):
        return {"op": rng.choice(self.kinds), "key": 0}

    def mutate_op(self, op, rng):
        return {"op": rng.choice(self.kinds), "key": 0}


class CleanInstance:
    def __init__(self, view, scheduler):
        self.view = view
        self.scheduler = scheduler

    def _acquire(self):
        view = self.view
        ok = False
        while not ok:
            ok, _ = view.cas_u64(CLEAN_LOCK, 0, 1)
            if not ok:
                self.scheduler.yield_point("spin", "clean_lock")
        view.clwb(CLEAN_LOCK)
        view.sfence()

    def _release(self):
        # Write-through release: no dirty window on the lock word.
        self.view.ntstore_u64(CLEAN_LOCK, 0)
        self.view.sfence()

    def bump(self):
        view = self.view
        self._acquire()
        counter = view.load_u64(COUNTER)
        view.store_u64(COUNTER, counter + 1)
        view.persist(COUNTER, 8)
        view.ntstore_u64(MIRROR, counter + 1)
        view.sfence()
        self._release()

    def read(self):
        return int(self.view.load_u64(COUNTER))


class CleanTarget(Target):
    NAME = "clean-toy"
    POOL_SIZE = 4096

    def operation_space(self):
        return CleanSpace()

    def setup(self):
        from repro.pmem import PmemPool
        pool = PmemPool("clean-toy", self.POOL_SIZE)
        pool.memory.persist_all()
        state = TargetState(pool)
        state.annotations.pm_sync_var_hint("clean_lock", 8, 0)
        state.annotations.register_instance("clean_lock", CLEAN_LOCK)
        return state

    def open(self, state, view, scheduler):
        return CleanInstance(view, scheduler)

    def exec_op(self, instance, view, op):
        kind = op.get("op")
        if kind == "bump":
            instance.bump()
            return True
        if kind == "read":
            instance.read()
            return True
        return False

    def recover(self, pool, view):
        view.ntstore_u64(MIRROR, pool.read_u64(COUNTER))
        # A correct PM program re-initializes its persistent locks on
        # recovery (the absence of this is P-CLHT's bug 2).
        view.ntstore_u64(CLEAN_LOCK, 0)
        view.sfence()
        return self

"""pmlint over real modules: the golden memcached report, the checked-in
builtin whitelist, and the no-false-positives clean target."""

import json
import os

import pytest

from repro.analysis import (lint_builtin_targets, lint_file, lint_target,
                            load_builtin_whitelist)
from repro.detect.whitelist import Whitelist
from repro.targets.registry import target_class

HERE = os.path.dirname(__file__)

#: Golden findings for targets/memcached.py with no whitelist. Bugs 9/10
#: (append/prepend writing a value derived from a non-persisted read,
#: itself left unflushed) surface as the PM01 at cmd_store; every entry
#: maps to a Table 2 bug or the documented LRU benign-FP factory.
MEMCACHED_GOLDEN = [
    ("PM01", "repro.targets.memcached:_write_value:212"),
    ("PM01", "repro.targets.memcached:_set_next:231"),
    ("PM01", "repro.targets.memcached:_set_prev:235"),
    ("PM01", "repro.targets.memcached:_lru_unlink:244"),
    ("PM01", "repro.targets.memcached:_lru_unlink:248"),
    ("PM01", "repro.targets.memcached:_lru_link_head:258"),
    ("PM01", "repro.targets.memcached:_lru_link_head:259"),
    ("PM01", "repro.targets.memcached:_evict_tail:308"),
    ("PM01", "repro.targets.memcached:cmd_get:334"),
    ("PM01", "repro.targets.memcached:cmd_store:362"),
    ("PM01", "repro.targets.memcached:cmd_arith:401"),
]


def test_memcached_golden_json_report():
    report = lint_target(target_class("memcached-pmem"))
    assert [(f["rule"], f["instr_id"])
            for f in report.to_dict()["findings"]] == MEMCACHED_GOLDEN
    # The JSON rendering round-trips and carries the counts.
    payload = json.loads(report.render_json())
    assert payload["counts"] == {"PM01": len(MEMCACHED_GOLDEN)}
    assert payload["suppressed"] == []


def test_memcached_detects_bugs_9_10_unflushed_value_write():
    """Acceptance: the unflushed-value-write pattern behind Table 2 bugs
    9/10 (memcached.c:4292) is detected, then whitelisted."""
    unsuppressed = lint_target(target_class("memcached-pmem"))
    hits = [f for f in unsuppressed.findings
            if f.instr_id == "repro.targets.memcached:cmd_store:362"]
    assert len(hits) == 1 and hits[0].rule == "PM01"
    assert "store_bytes(item + IT_VALUE)" in hits[0].message

    suppressed = lint_target(target_class("memcached-pmem"),
                             whitelist=load_builtin_whitelist())
    assert suppressed.findings == []
    assert any(f.instr_id == "repro.targets.memcached:cmd_store:362"
               for f in suppressed.suppressed)


def test_builtin_targets_zero_unsuppressed_with_checked_in_whitelist():
    report = lint_builtin_targets()
    assert report.findings == []
    assert report.suppressed          # the intentional bugs were seen


def test_builtin_targets_do_have_findings_without_whitelist():
    report = lint_builtin_targets(whitelist=Whitelist([]))
    assert len(report.findings) >= 20
    modules = {f.module for f in report.findings}
    assert modules == {"repro.targets.pclht", "repro.targets.clevel",
                       "repro.targets.cceh", "repro.targets.fastfair",
                       "repro.targets.memcached", "repro.targets.pmring",
                       "repro.targets.txkv"}


def test_clean_target_has_zero_findings():
    """Acceptance: no false positives on a known-clean toy target."""
    report = lint_file(os.path.join(HERE, "clean_target.py"),
                       module_name="tests.analysis.clean_target")
    assert report.findings == []
    assert report.suppressed == []


def test_clean_target_actually_runs():
    # Guard against the clean target rotting into dead code: it must
    # still fuzz cleanly end to end.
    from repro import PMRace, PMRaceConfig
    from .clean_target import CleanTarget

    result = PMRace(CleanTarget(),
                    PMRaceConfig(max_campaigns=4, base_seed=7)).run()
    assert result.campaigns == 4
    assert result.bug_reports == []


def test_extra_whitelist_entries_compose():
    extra = load_builtin_whitelist(["snippet:leaky:"])
    from repro.analysis import lint_source
    report = lint_source(
        "def leaky(view, addr):\n    view.store_u64(addr, 1)\n",
        "snippet", whitelist=extra)
    assert report.findings == []
    assert [f.rule for f in report.suppressed] == ["PM01"]


@pytest.mark.parametrize("name", ["P-CLHT", "clevel hashing", "CCEH",
                                  "FAST-FAIR", "memcached-pmem", "pmring",
                                  "txkv"])
def test_each_target_lints_without_crashing(name):
    report = lint_target(target_class(name))
    assert report.to_dict()["counts"] is not None

"""Unit tests for pmlint's AST lowering: constants, addresses, CFGs."""

import ast
import textwrap

from repro.analysis.cfg import (ConstEnv, build_cfgs, contains, covers,
                                normalize_addr, overlaps)


def build(code):
    tree = ast.parse(textwrap.dedent(code))
    return build_cfgs(tree, "mod")


def events_of(code, name=None):
    cfgs, _ = build(code)
    if name is not None:
        cfgs = [c for c in cfgs if c.name == name]
    return [e for cfg in cfgs for e in cfg.events()]


# ----------------------------------------------------------------------
# module-level constant folding


def test_constenv_folds_arithmetic_chains():
    tree = ast.parse(textwrap.dedent("""
        BASE = 8
        DOUBLE = BASE * 2
        SHIFTED = 1 << 6
        DIFF = SHIFTED - DOUBLE
    """))
    env = ConstEnv(tree)
    assert env.values == {"BASE": 8, "DOUBLE": 16, "SHIFTED": 64,
                          "DIFF": 48}


def test_constenv_collects_class_level_constants():
    tree = ast.parse(textwrap.dedent("""
        class Layout:
            HDR = 24
    """))
    assert ConstEnv(tree).values["HDR"] == 24


def test_constenv_ignores_unresolvable_and_bools():
    tree = ast.parse(textwrap.dedent("""
        FLAG = True
        NAME = "x"
        DYN = foo()
    """))
    env = ConstEnv(tree)
    assert "FLAG" not in env.values
    assert "NAME" not in env.values
    assert "DYN" not in env.values


# ----------------------------------------------------------------------
# address normalization


def norm(expr, consts_code=""):
    tree = ast.parse(textwrap.dedent(consts_code)) if consts_code else None
    env = ConstEnv(tree) if tree is not None else ConstEnv()
    return normalize_addr(ast.parse(expr, mode="eval").body, env)


def test_normalize_folds_constant_terms():
    addr = norm("item + IT_VALUE", "IT_VALUE = 64")
    assert addr.base == "item"
    assert addr.offset == 64
    assert "IT_VALUE" in addr.names and "item" in addr.names


def test_normalize_strips_int_wrappers():
    plain = norm("tail + 16")
    wrapped = norm("int(tail) + 16")
    assert wrapped.base == plain.base == "tail"
    assert wrapped.offset == 16


def test_normalize_sorts_symbolic_terms():
    assert norm("a + b").base == norm("b + a").base


def test_normalize_keeps_calls_symbolic():
    addr = norm("self._entry(leaf, 0) + 8")
    assert addr.base == "self._entry(leaf, 0)"
    assert addr.offset == 8


# ----------------------------------------------------------------------
# coverage predicates


def event(code, pick=0):
    return events_of(code)[pick]


def test_covers_respects_ranges():
    store, flush = events_of("""
        IT_NBYTES = 40
        IT_VALUE = 64

        def f(view, item, data):
            view.store_bytes(item + IT_VALUE, data)
            view.persist(item + IT_NBYTES, 16)
    """)
    assert not covers(flush, store)          # [40,56) misses offset 64


def test_covers_same_base_unknown_size_suppresses():
    store, flush = events_of("""
        def f(view, item, data, n):
            view.store_bytes(item + 8, data)
            view.persist(item, n)
    """)
    assert covers(flush, store)


def test_overlaps_and_contains():
    a, b, c = events_of("""
        def f(view, base):
            view.store_u64(base + 8, 1)
            view.store_u64(base + 12, 2)
            view.store_u64(base + 64, 3)
    """)
    assert overlaps(a, b) and not overlaps(a, c)
    big, small = events_of("""
        def f(view, base, data):
            view.ntstore_bytes(base, data)
            view.store_u64(base + 8, 1)
    """)
    assert not contains(big, small)          # len(data) unknown


# ----------------------------------------------------------------------
# event extraction


def test_events_carry_matching_instr_ids():
    events = events_of("""
        def put(view, addr):
            view.store_u64(addr, 1)
    """)
    assert [e.instr_id for e in events] == ["mod:put:3"]
    assert events[0].kind == "store"
    assert events[0].method == "store_u64"


def test_methods_use_function_name_not_class_name():
    # Runtime ids use co_name, which for methods is the bare def name.
    events = events_of("""
        class Store:
            def put(self, view, addr):
                view.store_u64(addr, 1)
    """)
    assert events[0].instr_id == "mod:put:4"


def test_kind_classification():
    kinds = [e.kind for e in events_of("""
        def ops(view, addr, data, tx):
            view.load_u64(addr)
            view.store_u64(addr, 1)
            view.ntstore_u64(addr, 1)
            view.cas_u64(addr, 0, 1)
            view.clwb(addr)
            view.flush_range(addr, 16)
            view.persist(addr, 16)
            view.sfence()
            tx.add_range(addr, 8)
    """)]
    assert kinds == ["load", "store", "ntstore", "cas", "flush", "flush",
                     "persist", "fence", "txcall"]


def test_tx_depth_tracks_with_transaction_scopes():
    events = events_of("""
        def update(objpool, view, tid, addr):
            with Transaction(objpool, view, tid) as tx:
                tx.add_range(addr, 8)
            tx.tx_free(addr)
    """)
    txcalls = [e for e in events if e.kind == "txcall"]
    assert [e.tx_depth for e in txcalls] == [1, 0]


def test_branches_create_distinct_blocks():
    cfgs, _ = build("""
        def put(view, addr, fast):
            view.store_u64(addr, 1)
            if fast:
                view.persist(addr, 8)
    """)
    cfg = cfgs[0]
    # entry/exit/abort + statement blocks; both branch arms reach exit.
    assert len(cfg.blocks) >= 5
    preds = cfg.predecessors()
    assert len(preds[cfg.exit]) >= 1


def test_loops_have_back_and_zero_iteration_edges():
    cfgs, _ = build("""
        def fill(view, base, count):
            for index in range(count):
                view.store_u64(base, index)
            view.persist(base, 8)
    """)
    cfg = cfgs[0]
    header = next(b for b in cfg.blocks
                  if any(e.kind == "load" or e.method == "range"
                         for e in b.events) or len(b.succs) == 2)
    assert len(header.succs) == 2


def test_nested_functions_get_their_own_cfgs():
    cfgs, _ = build("""
        def outer(view, addr):
            def inner():
                view.store_u64(addr, 1)
            view.persist(addr, 8)
    """)
    assert sorted(cfg.name for cfg in cfgs) == ["inner", "outer"]
    inner = next(c for c in cfgs if c.name == "inner")
    assert [e.instr_id for e in inner.events()] == ["mod:inner:4"]

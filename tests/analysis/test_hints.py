"""The static-hints bridge: queue injection, id unification, engine wiring."""

import sys

from repro.analysis.hints import (HINT_FREQUENCY, StaticHint,
                                  collect_hints_for_target,
                                  hints_from_report, seed_queue_with_hints)
from repro.analysis.pmlint import lint_target
from repro.core.priority import AccessProfiler, SharedAccessQueue
from repro.instrument.callsite import CallSiteTable
from repro.targets.registry import target_class


class FakeEvent:
    def __init__(self, addr, instr_id, tid):
        self.addr = addr
        self.instr_id = instr_id
        self.tid = tid


def profiled_queue(queue, addr, load_id, store_id, repeats=3):
    """Feed a two-thread load/store profile through update_from."""
    profiler = AccessProfiler()
    for _ in range(repeats):
        profiler.on_load(FakeEvent(addr, load_id, tid=0))
        profiler.on_store(FakeEvent(addr, store_id, tid=1))
    queue.update_from(profiler)


# ----------------------------------------------------------------------
# queue injection


def test_add_hint_is_fetched_before_dynamic_groups():
    queue = SharedAccessQueue()
    profiled_queue(queue, addr=4096, load_id=1, store_id=2, repeats=50)
    assert queue.add_hint({7}, {8}, HINT_FREQUENCY)
    entry = queue.fetch()
    assert entry.store_instrs == frozenset({7})
    assert entry.load_instrs == frozenset({8})
    assert entry.addr == -1
    assert repr(entry)                    # addr=-1 must not break repr
    # The dynamic group is still there for the next round.
    second = queue.fetch()
    assert second.store_instrs == frozenset({2})


def test_add_hint_merges_into_existing_group():
    queue = SharedAccessQueue()
    profiled_queue(queue, addr=4096, load_id=1, store_id=2)
    assert not queue.add_hint({2}, {9}, HINT_FREQUENCY)
    assert len(queue) == 1
    entry = queue.fetch()
    assert entry.load_instrs == frozenset({1, 9})
    assert entry.addr == 4096             # dynamic address is kept
    assert entry.frequency > HINT_FREQUENCY


def test_seed_queue_with_hints_interns_strings():
    queue = SharedAccessQueue()
    table = CallSiteTable()
    hints = [StaticHint(("mod:writer:10",), ("mod:reader:20",), "r1"),
             StaticHint(("mod:writer:11",), ("mod:reader:20",), "r2")]
    assert seed_queue_with_hints(queue, hints, table) == 2
    assert len(queue) == 2
    entry = queue.fetch()
    assert table.name(next(iter(entry.store_instrs))).startswith(
        "mod:writer:")


def test_static_strings_unify_with_runtime_interned_frames():
    """The bijection that makes hints work: interning the static
    ``module:function:line`` string yields the same id a live frame at
    that site gets."""
    table = CallSiteTable()

    def writer():
        return table.intern_caller(skip=1), sys._getframe(0).f_lineno

    runtime_id, lineno = writer()
    static_string = "%s:writer:%d" % (__name__, lineno)
    assert table.intern_name(static_string) == runtime_id
    assert table.name(runtime_id) == static_string


# ----------------------------------------------------------------------
# hint derivation from lint reports


def test_memcached_hints_cover_the_bug_9_10_store():
    hints = collect_hints_for_target(
        target_class("memcached-pmem")())
    stores = {site for hint in hints for site in hint.store_sites}
    assert "repro.targets.memcached:cmd_store:362" in stores
    bug_hint = next(h for h in hints if h.store_sites ==
                    ("repro.targets.memcached:cmd_store:362",))
    assert bug_hint.load_sites            # paired with overlapping loads
    assert all(s.startswith("repro.targets.memcached:")
               for s in bug_hint.load_sites)
    assert "PM01" in bug_hint.reason


def test_hints_require_overlapping_loads():
    report = lint_target(target_class("memcached-pmem"))
    hints = hints_from_report(report)
    # Every derived hint pairs a flagged store with at least one load.
    assert hints
    assert all(h.load_sites for h in hints)


def test_collect_hints_is_cached_per_class():
    target = target_class("memcached-pmem")()
    assert collect_hints_for_target(target) is \
        collect_hints_for_target(target)


# ----------------------------------------------------------------------
# engine wiring


def test_engine_preseeds_queue_when_static_hints_on():
    from repro import PMRace, PMRaceConfig, make_target

    events = []

    class ListTracer:
        enabled = True

        def emit(self, _event_type, **fields):
            events.append((_event_type, fields))

    cfg = PMRaceConfig(max_campaigns=6, static_hints=True, base_seed=7)
    result = PMRace(make_target("memcached-pmem"), cfg,
                    tracer=ListTracer()).run()
    assert result.campaigns == 6
    hint_events = [f for k, f in events if k == "static_hints"]
    assert hint_events and hint_events[0]["hints"] > 0
    # Guided interleavings fetched the injected groups first: the first
    # interleaving event carries the boosted hint frequency. (addr may
    # be -1 or real: a dynamic profile for the same store sites merges
    # into the hint group and contributes its address.)
    interleavings = [f for k, f in events if k == "interleaving"]
    assert interleavings
    assert interleavings[0]["frequency"] >= HINT_FREQUENCY


def test_static_hints_event_is_schema_valid(tmp_path):
    # The fake tracer above skips type validation; the real Tracer
    # rejects unregistered event types, so drive one run through it.
    from repro import PMRace, PMRaceConfig, make_target
    from repro.obs import Tracer, read_trace

    path = str(tmp_path / "trace.jsonl")
    cfg = PMRaceConfig(max_campaigns=2, static_hints=True, base_seed=7)
    with Tracer(path) as tracer:
        PMRace(make_target("memcached-pmem"), cfg, tracer=tracer).run()
    events = [r for r in read_trace(path, validate=True)
              if r["type"] == "static_hints"]
    assert events and events[0]["hints"] > 0


def test_engine_off_by_default_and_resilient():
    from repro import PMRaceConfig

    assert PMRaceConfig().static_hints is False
    # A target pmlint cannot analyze (no source file) must not kill the
    # run when hints are on.
    from repro import PMRace
    from tests.core.toy_target import ToyTarget

    cfg = PMRaceConfig(max_campaigns=2, static_hints=True, base_seed=3)
    result = PMRace(ToyTarget(), cfg).run()
    assert result.campaigns == 2

"""Per-rule pmlint unit tests on synthetic snippets."""

import textwrap

from repro.analysis import lint_source


def lint(code, sync_names=()):
    return lint_source(textwrap.dedent(code), "snippet",
                       sync_names=sync_names)


def rules_of(report):
    return [(f.rule, f.function, f.line) for f in report.findings]


# ----------------------------------------------------------------------
# PM01 — unflushed store


def test_pm01_store_without_flush_is_flagged():
    report = lint("""
        def put(view, addr, value):
            view.store_u64(addr, value)
    """)
    assert [f.rule for f in report.findings] == ["PM01"]
    finding = report.findings[0]
    assert finding.instr_id == "snippet:put:3"
    assert finding.function == "put"


def test_pm01_flush_fence_clears_the_store():
    report = lint("""
        def put(view, addr, value):
            view.store_u64(addr, value)
            view.clwb(addr)
            view.sfence()
    """)
    assert report.findings == []


def test_pm01_persist_alone_clears_the_store():
    report = lint("""
        def put(view, addr, value):
            view.store_u64(addr, value)
            view.persist(addr, 8)
    """)
    assert report.findings == []


def test_pm01_flush_without_fence_stays_pending():
    report = lint("""
        def put(view, addr, value):
            view.store_u64(addr, value)
            view.clwb(addr)
    """)
    assert "PM01" in [f.rule for f in report.findings]


def test_pm01_flush_on_one_branch_only_is_flagged():
    report = lint("""
        def put(view, addr, value, fast):
            view.store_u64(addr, value)
            if fast:
                view.persist(addr, 8)
    """)
    assert [(f.rule, f.line) for f in report.findings] == [("PM01", 3)]


def test_pm01_flush_on_both_branches_is_clean():
    report = lint("""
        def put(view, addr, value, fast):
            view.store_u64(addr, value)
            if fast:
                view.persist(addr, 8)
            else:
                view.clwb(addr)
                view.sfence()
    """)
    assert report.findings == []


def test_pm01_persist_of_other_offset_does_not_cover():
    # The memcached bugs 9/10 shape: value stored at +64, persist
    # covers [40, 56) only.
    report = lint("""
        IT_NBYTES = 40
        IT_VALUE = 64

        def cmd_store(view, item, data):
            view.store_bytes(item + IT_VALUE, data)
            view.store_u64(item + IT_NBYTES, 8)
            view.persist(item + IT_NBYTES, 16)
    """)
    assert [(f.rule, f.line) for f in report.findings] == [("PM01", 6)]


def test_pm01_range_persist_covers_folded_offsets():
    report = lint("""
        HDR = 8

        def init(view, base):
            view.store_u64(base + HDR, 1)
            view.store_u64(base + HDR + 8, 2)
            view.persist(base, 32)
    """)
    assert report.findings == []


def test_pm01_ntstore_needs_a_fence_but_not_a_flush():
    # ntstore is write-through: PM01 watches cached stores only.
    report = lint("""
        def put(view, addr, value):
            view.ntstore_u64(addr, value)
            view.sfence()
    """)
    assert report.findings == []


def test_pm01_overwriting_ntstore_clears_the_cached_store():
    report = lint("""
        def put(view, addr, value):
            view.store_u64(addr, value)
            view.ntstore_u64(addr, value)
            view.sfence()
    """)
    assert report.findings == []


def test_pm01_different_base_never_covers():
    report = lint("""
        def put(view, a, b, value):
            view.store_u64(a, value)
            view.persist(b, 64)
    """)
    assert [f.rule for f in report.findings] == ["PM01"]


def test_pm01_loop_flush_after_loop_is_clean():
    report = lint("""
        def fill(view, base, count):
            for index in range(count):
                view.store_u64(base, index)
            view.persist(base, 8)
    """)
    assert report.findings == []


def test_pm01_exception_paths_are_not_flagged():
    # A raise abandons the operation; PM01 only reasons about paths
    # that complete normally.
    report = lint("""
        def put(view, addr, value, ok):
            view.store_u64(addr, value)
            if not ok:
                raise ValueError("abort")
            view.persist(addr, 8)
    """)
    assert report.findings == []


# ----------------------------------------------------------------------
# PM02 — flush never fenced (fence-before-flush ordering)


def test_pm02_fence_before_flush_is_flagged():
    report = lint("""
        def wrong_order(view, addr, value):
            view.ntstore_u64(addr, value)
            view.sfence()
            view.clwb(addr)
    """)
    rules = [f.rule for f in report.findings]
    assert "PM02" in rules
    pm02 = [f for f in report.findings if f.rule == "PM02"][0]
    assert "earlier sfence" in pm02.message


def test_pm02_flush_then_fence_is_clean():
    report = lint("""
        def right_order(view, addr):
            view.clwb(addr)
            view.sfence()
    """)
    assert all(f.rule != "PM02" for f in report.findings)


def test_pm02_fence_on_one_branch_only_is_flagged():
    report = lint("""
        def maybe_fence(view, addr, strict):
            view.clwb(addr)
            if strict:
                view.sfence()
    """)
    assert "PM02" in [f.rule for f in report.findings]


def test_pm02_persist_does_not_need_a_separate_fence():
    report = lint("""
        def put(view, addr, value):
            view.store_u64(addr, value)
            view.persist(addr, 8)
    """)
    assert all(f.rule != "PM02" for f in report.findings)


# ----------------------------------------------------------------------
# PM03 — unregistered sync variable


def test_pm03_unregistered_lock_store_is_flagged():
    report = lint("""
        B_LOCK = 16

        def acquire(view, bucket):
            view.cas_u64(bucket + B_LOCK, 0, 1)
            view.persist(bucket + B_LOCK, 8)
    """)
    assert [f.rule for f in report.findings] == ["PM03"]


def test_pm03_registered_in_module_is_clean():
    report = lint("""
        B_LOCK = 16

        def setup(state, bucket):
            state.annotations.pm_sync_var_hint("bucket_lock", 8, 0)
            state.annotations.register_instance("bucket_lock",
                                                bucket + B_LOCK)

        def acquire(view, bucket):
            view.cas_u64(bucket + B_LOCK, 0, 1)
            view.persist(bucket + B_LOCK, 8)
    """)
    assert report.findings == []


def test_pm03_live_registry_names_suppress():
    code = """
        B_LOCK = 16

        def acquire(view, bucket):
            view.cas_u64(bucket + B_LOCK, 0, 1)
            view.persist(bucket + B_LOCK, 8)
    """
    assert lint(code).counts() == {"PM03": 1}
    assert lint(code, sync_names={"B_LOCK"}).findings == []


def test_pm03_non_sync_names_are_ignored():
    report = lint("""
        def put(view, addr, value):
            view.store_u64(addr, value)
            view.persist(addr, 8)
    """)
    assert all(f.rule != "PM03" for f in report.findings)


def test_declared_names_feeds_pm03():
    from repro.instrument.annotations import AnnotationRegistry

    registry = AnnotationRegistry()
    registry.pm_sync_var_hint("global_lock", 8, 0)
    assert registry.declared_names() == {"global_lock"}
    report = lint("""
        def release(view, global_lock):
            view.store_u64(global_lock, 0)
            view.persist(global_lock, 8)
    """, sync_names=registry.declared_names())
    assert report.findings == []


# ----------------------------------------------------------------------
# PM04 — flush of a provably clean range


def test_pm04_double_persist_is_flagged():
    report = lint("""
        def put(view, addr, value):
            view.store_u64(addr, value)
            view.persist(addr, 8)
            view.persist(addr, 8)
    """)
    assert [(f.rule, f.line) for f in report.findings] == [("PM04", 5)]


def test_pm04_store_between_flushes_is_clean():
    report = lint("""
        def put(view, addr, value):
            view.store_u64(addr, value)
            view.persist(addr, 8)
            view.store_u64(addr, value + 1)
            view.persist(addr, 8)
    """)
    assert all(f.rule != "PM04" for f in report.findings)


def test_pm04_flush_after_ntstore_fence_is_flagged():
    report = lint("""
        def put(view, addr, value):
            view.ntstore_u64(addr, value)
            view.sfence()
            view.persist(addr, 8)
    """)
    assert "PM04" in [f.rule for f in report.findings]


def test_pm04_dirty_on_one_path_is_clean():
    # The range is dirty when slow is true -> not provably clean.
    report = lint("""
        def put(view, addr, value, slow):
            if slow:
                view.store_u64(addr, value)
            view.persist(addr, 8)
    """)
    assert all(f.rule != "PM04" for f in report.findings)


def test_pm04_unknown_offsets_are_never_flagged():
    report = lint("""
        def put(view, addr, size):
            view.persist(addr, size)
    """)
    assert all(f.rule != "PM04" for f in report.findings)


# ----------------------------------------------------------------------
# PM05 — transactional write outside a Transaction scope


def test_pm05_add_range_outside_scope_is_flagged():
    report = lint("""
        def update(tx, addr):
            tx.add_range(addr, 24)
    """)
    assert [f.rule for f in report.findings] == ["PM05"]
    assert "Transaction" in report.findings[0].message


def test_pm05_inside_with_transaction_is_clean():
    report = lint("""
        def update(objpool, view, tid, addr):
            with Transaction(objpool, view, tid) as tx:
                tx.add_range(addr, 24)
                meta = tx.tx_alloc(32)
    """)
    assert report.findings == []


def test_pm05_scope_ends_with_the_with_block():
    report = lint("""
        def update(objpool, view, tid, addr):
            with Transaction(objpool, view, tid) as tx:
                tx.add_range(addr, 24)
            tx.tx_free(addr)
    """)
    assert [(f.rule, f.line) for f in report.findings] == [("PM05", 5)]


def test_pm05_self_methods_are_not_flagged():
    # The Transaction class's own method bodies call self.add_range etc.
    report = lint("""
        def commit(self, addr):
            self.add_range(addr, 8)
    """)
    assert report.findings == []

"""Taint propagation tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.instrument.taint import (
    EMPTY,
    TaintLabel,
    TaintedBytes,
    TaintedInt,
    merge_taints,
    taint_of,
    with_taint,
)


def label(n=0):
    return TaintLabel(n, "read%d" % n, "write%d" % n, 0, 1)


L1 = label(1)
L2 = label(2)


class TestTaintedInt:
    def test_behaves_as_int(self):
        value = TaintedInt(42, {L1})
        assert value == 42
        assert value + 0 == 42
        assert isinstance(value, int)

    def test_labels_kept(self):
        assert taint_of(TaintedInt(1, {L1})) == frozenset({L1})

    def test_plain_int_untainted(self):
        assert taint_of(5) == EMPTY

    @pytest.mark.parametrize("op", [
        lambda a, b: a + b, lambda a, b: a - b, lambda a, b: a * b,
        lambda a, b: a // b, lambda a, b: a % b, lambda a, b: a & b,
        lambda a, b: a | b, lambda a, b: a ^ b, lambda a, b: a << b,
        lambda a, b: a >> b,
    ])
    def test_binary_ops_propagate(self, op):
        result = op(TaintedInt(100, {L1}), 3)
        assert L1 in taint_of(result)

    @pytest.mark.parametrize("op", [
        lambda a, b: b + a, lambda a, b: b - a, lambda a, b: b * a,
        lambda a, b: b // a, lambda a, b: b % a, lambda a, b: b & a,
        lambda a, b: b | a, lambda a, b: b ^ a,
    ])
    def test_reflected_ops_propagate(self, op):
        result = op(TaintedInt(7, {L1}), 100)
        assert L1 in taint_of(result)

    def test_unary_ops(self):
        assert L1 in taint_of(-TaintedInt(5, {L1}))
        assert L1 in taint_of(~TaintedInt(5, {L1}))
        assert L1 in taint_of(abs(TaintedInt(-5, {L1})))

    def test_labels_merge(self):
        result = TaintedInt(1, {L1}) + TaintedInt(2, {L2})
        assert taint_of(result) == frozenset({L1, L2})

    def test_comparison_still_works(self):
        assert TaintedInt(3, {L1}) < 5
        assert TaintedInt(3, {L1}) == 3

    def test_hashable_like_int(self):
        assert hash(TaintedInt(9, {L1})) == hash(9)
        assert {TaintedInt(9, {L1}): "x"}[9] == "x"

    def test_int_conversion_strips(self):
        assert taint_of(int(TaintedInt(4, {L1}))) == EMPTY

    def test_values_correct(self):
        assert TaintedInt(10, {L1}) // 3 == 3
        assert TaintedInt(10, {L1}) % 3 == 1
        assert TaintedInt(2, {L1}) ** 5 == 32


class TestTaintedBytes:
    def test_behaves_as_bytes(self):
        data = TaintedBytes(b"abc", {L1})
        assert data == b"abc"
        assert len(data) == 3

    def test_index_gives_tainted_int(self):
        data = TaintedBytes(b"abc", {L1})
        assert L1 in taint_of(data[0])
        assert data[0] == ord("a")

    def test_slice_keeps_labels(self):
        data = TaintedBytes(b"abcdef", {L1})
        assert taint_of(data[1:3]) == frozenset({L1})
        assert data[1:3] == b"bc"

    def test_concat_merges(self):
        result = TaintedBytes(b"ab", {L1}) + TaintedBytes(b"cd", {L2})
        assert taint_of(result) == frozenset({L1, L2})
        assert result == b"abcd"

    def test_concat_with_plain(self):
        result = TaintedBytes(b"ab", {L1}) + b"cd"
        assert taint_of(result) == frozenset({L1})
        result = b"xy" + TaintedBytes(b"ab", {L1})
        assert taint_of(result) == frozenset({L1})

    def test_bytes_conversion_strips(self):
        assert taint_of(bytes(TaintedBytes(b"a", {L1}))) == EMPTY


class TestHelpers:
    def test_with_taint_int(self):
        assert taint_of(with_taint(5, {L1})) == frozenset({L1})

    def test_with_taint_bytes(self):
        value = with_taint(b"xy", {L1})
        assert isinstance(value, TaintedBytes)
        assert taint_of(value) == frozenset({L1})

    def test_with_taint_empty_noop(self):
        assert with_taint(5, EMPTY) is 5 or with_taint(5, EMPTY) == 5
        assert not isinstance(with_taint(5, EMPTY), TaintedInt)

    def test_with_taint_merges_existing(self):
        value = with_taint(TaintedInt(5, {L1}), {L2})
        assert taint_of(value) == frozenset({L1, L2})

    def test_with_taint_bool(self):
        value = with_taint(True, {L1})
        assert value == 1
        assert taint_of(value) == frozenset({L1})

    def test_with_taint_rejects_other_types(self):
        with pytest.raises(TypeError):
            with_taint(3.14, {L1})

    def test_merge_taints(self):
        merged = merge_taints(TaintedInt(1, {L1}), 2, TaintedInt(3, {L2}))
        assert merged == frozenset({L1, L2})

    def test_merge_taints_empty(self):
        assert merge_taints(1, 2, 3) == EMPTY

    def test_label_cross_thread(self):
        assert TaintLabel(0, "r", "w", 0, 1).cross_thread
        assert not TaintLabel(0, "r", "w", 2, 2).cross_thread


@given(st.integers(), st.integers())
def test_property_arithmetic_matches_int(a, b):
    ta = TaintedInt(a, {L1})
    assert ta + b == a + b
    assert ta * b == a * b
    assert ta - b == a - b
    if b != 0:
        assert ta // b == a // b
        assert ta % b == a % b
    assert L1 in taint_of(ta + b)

"""Call-site identification tests."""

from repro.instrument import call_site, stack_trace


def outer():
    return inner()


def inner():
    return call_site(skip=1)


class TestCallSite:
    def test_names_this_module(self):
        site = call_site(skip=1)
        assert "test_callsite" in site

    def test_includes_function_and_line(self):
        site = inner()
        module, func, line = site.rsplit(":", 2)
        assert func == "inner"
        assert int(line) > 0

    def test_stack_trace_order(self):
        def leaf():
            return stack_trace(skip=1)

        def mid():
            return leaf()

        frames = mid()
        assert "leaf" in frames[0]
        assert "mid" in frames[1]

    def test_stack_trace_limit(self):
        frames = stack_trace(skip=1, limit=2)
        assert len(frames) <= 2

    def test_skips_instrumentation_frames(self):
        # simulate a frame whose module matches an internal prefix by
        # checking the public behaviour: the innermost reported frame is
        # this test, not the instrument package.
        frames = stack_trace(skip=1)
        assert not frames[0].startswith("repro.instrument")

"""Call-site identification tests."""

from repro.instrument import call_site, stack_trace


def outer():
    return inner()


def inner():
    return call_site(skip=1)


class TestCallSite:
    def test_names_this_module(self):
        site = call_site(skip=1)
        assert "test_callsite" in site

    def test_includes_function_and_line(self):
        site = inner()
        module, func, line = site.rsplit(":", 2)
        assert func == "inner"
        assert int(line) > 0

    def test_stack_trace_order(self):
        def leaf():
            return stack_trace(skip=1)

        def mid():
            return leaf()

        frames = mid()
        assert "leaf" in frames[0]
        assert "mid" in frames[1]

    def test_stack_trace_limit(self):
        frames = stack_trace(skip=1, limit=2)
        assert len(frames) <= 2

    def test_skips_instrumentation_frames(self):
        # simulate a frame whose module matches an internal prefix by
        # checking the public behaviour: the innermost reported frame is
        # this test, not the instrument package.
        frames = stack_trace(skip=1)
        assert not frames[0].startswith("repro.instrument")


class TestCallSiteTable:
    def make(self):
        from repro.instrument import CallSiteTable
        return CallSiteTable()

    def table_site(self, table):
        return table.intern_caller(skip=1)

    def test_intern_returns_small_int(self):
        table = self.make()
        site = self.table_site(table)
        assert isinstance(site, int)
        assert site == 0

    def test_same_site_same_id(self):
        table = self.make()
        ids = {table.intern_name("m:f:1") for _ in range(5)}
        assert len(ids) == 1
        assert len(table) == 1

    def test_name_round_trip(self):
        table = self.make()
        site = self.table_site(table)
        name = table.name(site)
        module, func, line = name.rsplit(":", 2)
        assert "test_callsite" in module
        assert func == "table_site"
        assert int(line) > 0

    def test_intern_caller_matches_call_site_string(self):
        table = self.make()
        site_id = table.intern_caller(skip=1)
        site_str = call_site(skip=1)
        # both report this test function (line numbers differ: each names
        # its own calling line)
        assert table.name(site_id).rsplit(":", 1)[0] == \
            site_str.rsplit(":", 1)[0]

    def test_id_string_bijection(self):
        # a frame id and an explicitly interned equal string share an id
        table = self.make()
        site_id = self.table_site(table)
        assert table.intern_name(table.name(site_id)) == site_id

    def test_name_passes_through_strings_and_none(self):
        table = self.make()
        assert table.name("already:resolved:1") == "already:resolved:1"
        assert table.name(None) is None
        assert table.name(999999) == 999999  # unknown id: untouched

    def test_intern_stack_matches_stack_trace(self):
        table = self.make()

        def leaf():
            return table.intern_stack(skip=1), stack_trace(skip=1)

        def mid():
            return leaf()

        ids, strings = mid()
        resolved = list(table.names(ids))
        # same frames in the same order; the two capture sites sit on
        # different lines of leaf(), so compare from mid() outwards
        assert resolved[1:] == strings[1:]
        assert "leaf" in resolved[0]

    def test_distinct_sites_distinct_ids(self):
        table = self.make()
        a = table.intern_name("m:f:1")
        b = table.intern_name("m:f:2")
        assert a != b
        assert table.names((a, b)) == ("m:f:1", "m:f:2")

    def test_skips_internal_frames(self):
        table = self.make()
        site = table.intern_caller(skip=1)
        assert not table.name(site).startswith("repro.instrument")

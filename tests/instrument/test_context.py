"""Instrumentation-context tests: shadow taint, observer fan-out."""

import pytest

from repro.instrument import InstrumentationContext, Observer, PmAccessEvent
from repro.instrument.taint import TaintLabel


L1 = frozenset({TaintLabel(0, "r", "w", 0, 1)})
L2 = frozenset({TaintLabel(1, "r2", "w2", 0, 1)})


class TestShadowTaint:
    def test_store_then_load(self):
        ctx = InstrumentationContext()
        ctx.shadow_store(64, 8, L1)
        assert ctx.shadow_load(64, 8) == L1

    def test_unaligned_overlap(self):
        ctx = InstrumentationContext()
        ctx.shadow_store(60, 8, L1)  # spans words 56 and 64
        assert ctx.shadow_load(56, 4) == L1
        assert ctx.shadow_load(64, 1) == L1

    def test_clean_store_clears(self):
        ctx = InstrumentationContext()
        ctx.shadow_store(64, 8, L1)
        ctx.shadow_store(64, 8, frozenset())
        assert ctx.shadow_load(64, 8) == frozenset()

    def test_labels_union_over_range(self):
        ctx = InstrumentationContext()
        ctx.shadow_store(64, 8, L1)
        ctx.shadow_store(72, 8, L2)
        assert ctx.shadow_load(64, 16) == (L1 | L2)

    def test_disabled_taint(self):
        ctx = InstrumentationContext(taint_enabled=False)
        ctx.shadow_store(64, 8, L1)
        assert ctx.shadow_load(64, 8) == frozenset()


class TestDispatch:
    def make_event(self, kind="store", addr=64):
        return PmAccessEvent(kind, addr, 8, 1)

    def test_load_collects_minted_labels(self):
        ctx = InstrumentationContext()

        class Minter(Observer):
            def on_load(self, event):
                return L1

        class Other(Observer):
            def on_load(self, event):
                return L2

        ctx.add_observer(Minter())
        ctx.add_observer(Other())
        assert ctx.dispatch_load(self.make_event("load")) == (L1 | L2)

    def test_load_none_results_ignored(self):
        ctx = InstrumentationContext()
        ctx.add_observer(Observer())
        assert ctx.dispatch_load(self.make_event("load")) == frozenset()

    def test_store_fans_out(self):
        ctx = InstrumentationContext()
        seen = []

        class Spy(Observer):
            def on_store(self, event):
                seen.append(event.addr)

        ctx.add_observer(Spy())
        ctx.add_observer(Spy())
        ctx.dispatch_store(self.make_event())
        assert seen == [64, 64]

    def test_annotated_store_routed(self):
        from repro.instrument import AnnotationRegistry
        registry = AnnotationRegistry()
        registry.pm_sync_var_hint("lock", 8, 0)
        registry.register_instance("lock", 64)
        ctx = InstrumentationContext(annotations=registry)
        hits = []

        class Spy(Observer):
            def on_annotated_store(self, annotation, event):
                hits.append(annotation.name)

        ctx.add_observer(Spy())
        ctx.dispatch_store(self.make_event(addr=64))
        ctx.dispatch_store(self.make_event(addr=512))
        assert hits == ["lock"]

    def test_flush_fence_dispatch(self):
        ctx = InstrumentationContext()
        kinds = []

        class Spy(Observer):
            def on_flush(self, event):
                kinds.append("flush")

            def on_fence(self, event):
                kinds.append("fence")

        ctx.add_observer(Spy())
        ctx.dispatch_flush(self.make_event("clwb"))
        ctx.dispatch_fence(PmAccessEvent("sfence", None, 0))
        assert kinds == ["flush", "fence"]

"""Annotation registry tests."""

import pytest

from repro.instrument import AnnotationRegistry


@pytest.fixture
def registry():
    return AnnotationRegistry()


class TestRegistry:
    def test_hint_creates_type(self, registry):
        annotation = registry.pm_sync_var_hint("lock", 8, 0)
        assert annotation.name == "lock"
        assert annotation.size == 8
        assert annotation.init_val == 0

    def test_hint_idempotent(self, registry):
        first = registry.pm_sync_var_hint("lock", 8, 0)
        again = registry.pm_sync_var_hint("lock", 8, 0)
        assert first is again
        assert registry.annotation_count == 1

    def test_register_and_lookup(self, registry):
        registry.pm_sync_var_hint("lock", 8, 0)
        registry.register_instance("lock", 128)
        assert registry.lookup(128, 8).name == "lock"

    def test_lookup_overlapping_range(self, registry):
        registry.pm_sync_var_hint("lock", 8, 0)
        registry.register_instance("lock", 128)
        # a store covering [120, 136) touches the annotated byte
        assert registry.lookup(120, 16) is not None

    def test_lookup_miss(self, registry):
        registry.pm_sync_var_hint("lock", 8, 0)
        registry.register_instance("lock", 128)
        assert registry.lookup(256, 8) is None

    def test_unregister(self, registry):
        registry.pm_sync_var_hint("lock", 8, 0)
        registry.register_instance("lock", 128)
        registry.unregister_instance(128)
        assert registry.lookup(128, 8) is None

    def test_unregister_unknown_ok(self, registry):
        registry.unregister_instance(999)

    def test_unknown_type_raises(self, registry):
        with pytest.raises(KeyError):
            registry.register_instance("nope", 0)

    def test_multiple_types(self, registry):
        registry.pm_sync_var_hint("a", 8, 0)
        registry.pm_sync_var_hint("b", 8, 1)
        registry.register_instance("a", 0)
        registry.register_instance("b", 64)
        assert registry.annotation_count == 2
        assert registry.lookup(0, 8).name == "a"
        assert registry.lookup(64, 8).init_val == 1
        assert {a.name for a in registry.types()} == {"a", "b"}

"""Hook-layer tests: events, candidates, taint flow through PM."""

import pytest

from repro.detect import InconsistencyChecker
from repro.instrument import (
    InstrumentationContext,
    Observer,
    PmView,
    taint_of,
)
from repro.pmem import LineState, PmemPool


class Recorder(Observer):
    def __init__(self):
        self.events = []

    def on_load(self, event):
        self.events.append(event)

    def on_store(self, event):
        self.events.append(event)

    def on_flush(self, event):
        self.events.append(event)

    def on_fence(self, event):
        self.events.append(event)


@pytest.fixture
def setup():
    pool = PmemPool("hooks", 8192)
    ctx = InstrumentationContext()
    recorder = ctx.add_observer(Recorder())
    view = PmView(pool, None, ctx)
    return pool, ctx, recorder, view


class TestEvents:
    def test_store_event(self, setup):
        _pool, _ctx, recorder, view = setup
        view.store_u64(64, 7)
        event = recorder.events[-1]
        assert event.kind == "store"
        assert event.addr == 64
        assert event.size == 8
        assert event.value == 7
        assert event.tid == -1  # outside the scheduler

    def test_load_event_value(self, setup):
        _pool, _ctx, recorder, view = setup
        view.ntstore_u64(64, 99)
        assert view.load_u64(64) == 99
        assert recorder.events[-1].kind == "load"
        assert recorder.events[-1].value == 99

    def test_instr_id_names_caller(self, setup):
        _pool, ctx, recorder, view = setup
        view.store_u64(0, 1)
        instr_id = recorder.events[-1].instr_id
        assert isinstance(instr_id, int)
        assert "test_hooks" in ctx.callsites.name(instr_id)

    def test_flush_and_fence_events(self, setup):
        _pool, _ctx, recorder, view = setup
        view.store_u64(0, 1)
        view.clwb(0)
        view.sfence()
        kinds = [event.kind for event in recorder.events]
        assert kinds == ["store", "clwb", "sfence"]

    def test_bytes_roundtrip(self, setup):
        _pool, _ctx, _recorder, view = setup
        view.store_bytes(128, b"hello")
        assert view.load_bytes(128, 5) == b"hello"

    def test_ntstore_event_kind(self, setup):
        _pool, _ctx, recorder, view = setup
        view.ntstore_u64(0, 5)
        assert recorder.events[-1].kind == "ntstore"


class TestPersistency:
    def test_persist_makes_clean(self, setup):
        pool, _ctx, _recorder, view = setup
        view.store_u64(64, 1)
        assert pool.memory.line_state(64) is LineState.DIRTY
        view.persist(64, 8)
        assert pool.memory.line_state(64) is LineState.CLEAN

    def test_flush_range_covers_lines(self, setup):
        pool, _ctx, _recorder, view = setup
        view.store_bytes(0, b"x" * 200)
        view.flush_range(0, 200)
        view.sfence()
        assert pool.memory.dirty_line_count() == 0

    def test_load_reports_nonpersisted(self, setup):
        _pool, _ctx, recorder, view = setup
        view.store_u64(64, 1)
        view.load_u64(64)
        assert recorder.events[-1].nonpersisted

    def test_load_clean_no_writers(self, setup):
        _pool, _ctx, recorder, view = setup
        view.ntstore_u64(64, 1)
        view.load_u64(64)
        assert not recorder.events[-1].nonpersisted


class TestCas:
    def test_cas_success(self, setup):
        _pool, _ctx, _recorder, view = setup
        ok, old = view.cas_u64(64, 0, 5)
        assert ok and old == 0
        assert view.load_u64(64) == 5

    def test_cas_failure(self, setup):
        _pool, _ctx, _recorder, view = setup
        view.ntstore_u64(64, 3)
        ok, old = view.cas_u64(64, 0, 5)
        assert not ok and old == 3
        assert view.load_u64(64) == 3

    def test_cas_emits_load_and_store(self, setup):
        _pool, _ctx, recorder, view = setup
        view.cas_u64(64, 0, 5)
        kinds = [event.kind for event in recorder.events]
        assert kinds == ["load", "cas"]

    def test_failed_cas_emits_only_load(self, setup):
        _pool, _ctx, recorder, view = setup
        view.ntstore_u64(64, 3)
        recorder.events.clear()
        view.cas_u64(64, 0, 5)
        assert [event.kind for event in recorder.events] == ["load"]


class TestTaintFlow:
    def make(self):
        pool = PmemPool("taintflow", 8192)
        ctx = InstrumentationContext()
        checker = ctx.add_observer(InconsistencyChecker(pool))
        view = PmView(pool, None, ctx)
        return pool, ctx, checker, view

    def test_dirty_read_is_tainted(self):
        _pool, _ctx, checker, view = self.make()
        view.store_u64(64, 42)
        value = view.load_u64(64)
        assert taint_of(value)
        assert len(checker.candidates) == 1

    def test_clean_read_untainted(self):
        _pool, _ctx, checker, view = self.make()
        view.ntstore_u64(64, 42)
        value = view.load_u64(64)
        assert not taint_of(value)
        assert not checker.candidates

    def test_content_flow_confirms(self):
        _pool, _ctx, checker, view = self.make()
        view.store_u64(64, 42)
        value = view.load_u64(64)
        view.ntstore_u64(128, value + 1)
        assert len(checker.inconsistencies) == 1
        assert not checker.inconsistencies[0].address_flow

    def test_address_flow_confirms(self):
        _pool, _ctx, checker, view = self.make()
        view.store_u64(64, 256)
        addr = view.load_u64(64)
        view.ntstore_u64(addr + 64, 1)
        assert len(checker.inconsistencies) == 1
        assert checker.inconsistencies[0].address_flow

    def test_untainted_store_no_inconsistency(self):
        _pool, _ctx, checker, view = self.make()
        view.store_u64(64, 42)
        view.load_u64(64)
        view.ntstore_u64(128, 7)  # unrelated value
        assert not checker.inconsistencies

    def test_shadow_taint_through_memory(self):
        """store tainted -> load elsewhere -> store: multi-hop flow."""
        _pool, _ctx, checker, view = self.make()
        view.store_u64(64, 42)
        value = view.load_u64(64)        # candidate + taint
        view.ntstore_u64(128, value)     # tainted content persisted
        loaded = view.load_u64(128)      # clean read, shadow label
        assert taint_of(loaded)
        view.ntstore_u64(192, loaded + 1)
        # two inconsistencies: direct, and via the shadow hop
        assert len(checker.inconsistencies) == 2

    def test_shadow_cleared_by_clean_store(self):
        _pool, _ctx, checker, view = self.make()
        view.store_u64(64, 42)
        value = view.load_u64(64)
        view.ntstore_u64(128, value)
        view.ntstore_u64(128, 7)         # plain overwrite clears shadow
        assert not taint_of(view.load_u64(128))

    def test_taint_disabled(self):
        pool = PmemPool("no-taint", 8192)
        ctx = InstrumentationContext(taint_enabled=False)
        checker = ctx.add_observer(InconsistencyChecker(pool))
        view = PmView(pool, None, ctx)
        view.store_u64(64, 42)
        value = view.load_u64(64)
        assert not taint_of(value)
        view.ntstore_u64(128, value + 1)
        assert checker.candidates          # candidates still found
        assert not checker.inconsistencies  # but no flow confirmation

"""Clevel hashing functional tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.targets import ClevelTarget
from repro.targets.clevel import INITIAL_CAPACITY, M_CAPACITY, R_META

from .helpers import open_single, recover_from


@pytest.fixture
def clevel():
    _state, _view, instance = open_single(ClevelTarget())
    return instance


class TestFunctional:
    def test_insert_search(self, clevel):
        assert clevel.insert(5, 50)
        assert clevel.search(5) == 50

    def test_search_missing(self, clevel):
        assert clevel.search(5) is None

    def test_overwrite(self, clevel):
        clevel.insert(5, 50)
        clevel.insert(5, 51)
        assert clevel.search(5) == 51

    def test_delete(self, clevel):
        clevel.insert(5, 50)
        assert clevel.delete(5)
        assert clevel.search(5) is None

    def test_delete_missing(self, clevel):
        assert not clevel.delete(5)

    def test_key_zero(self, clevel):
        clevel.insert(0, 1)
        assert clevel.search(0) == 1

    def test_expansion_preserves_items(self, clevel):
        # colliding keys force probes to fill and trigger expansion
        keys = [k * INITIAL_CAPACITY for k in range(8)]
        for key in keys:
            assert clevel.insert(key, key + 1)
        for key in keys:
            assert clevel.search(key) == key + 1
        _meta, _level, capacity = clevel._level()
        assert int(capacity) > INITIAL_CAPACITY

    def test_expand_bounded(self, clevel):
        from repro.targets.clevel import MAX_CAPACITY
        for _ in range(20):
            clevel._expand()
        _meta, _level, capacity = clevel._level()
        assert int(capacity) <= MAX_CAPACITY


class TestRecovery:
    def test_committed_expansion_survives(self):
        target = ClevelTarget()
        state, _view, instance = open_single(target)
        instance.insert(1, 10)
        instance._expand()
        state.pool.memory.persist_all()
        pool, rview, rtarget = recover_from(ClevelTarget, state)
        objpool, root = rtarget._recovered
        from repro.targets.base import TargetState
        from repro.targets.clevel import ClevelInstance
        rstate = TargetState(pool, extras={
            "objpool": objpool, "root": root,
            "heap": state.extras["heap"]})
        rinstance = ClevelInstance(rtarget, rstate, rview, None)
        assert rinstance.search(1) == 10

    def test_uncommitted_expansion_rolled_back(self):
        """The Figure 7 pattern: tx rollback reverts the new meta."""
        from repro.pmdk import Transaction
        target = ClevelTarget()
        state, view, instance = open_single(target)
        old_meta = int(view.load_u64(instance.root + R_META))
        tx = Transaction(instance.objpool, view, 0).begin()
        new_meta = tx.tx_alloc(64)
        tx.add_range(new_meta, 24)
        view.store_u64(new_meta + M_CAPACITY, 32)
        view.persist(new_meta + M_CAPACITY, 8)
        # crash before commit
        pool, _rview, _rtarget = recover_from(ClevelTarget, state)
        assert pool.read_u64(new_meta + M_CAPACITY) == 0  # rolled back
        assert pool.read_u64(instance.root + R_META) == old_meta


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["put", "get", "delete"]),
                          st.integers(0, 23), st.integers(0, 60_000)),
                max_size=50))
def test_property_matches_dict(ops):
    _state, _view, clevel = open_single(ClevelTarget())
    model = {}
    for kind, key, value in ops:
        if kind == "put":
            if clevel.insert(key, value):
                model[key] = value
        elif kind == "get":
            assert clevel.search(key) == model.get(key)
        else:
            assert clevel.delete(key) == (key in model)
            model.pop(key, None)
    for key, value in model.items():
        assert clevel.search(key) == value

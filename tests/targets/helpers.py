"""Helpers for single-threaded target functional tests."""

from repro.instrument import InstrumentationContext, PmView


def open_single(target):
    """(state, view, instance) wired for single-threaded driver use."""
    state = target.setup()
    view = PmView(state.pool, None, InstrumentationContext())
    instance = target.open(state, view, None)
    return state, view, instance


def recover_from(target_cls, state):
    """Crash the pool now and run recovery; returns (pool, view, target)."""
    from repro.pmem import PmemPool
    image = state.pool.crash_image()
    pool = PmemPool.from_image("recovered", image)
    view = PmView(pool, None, InstrumentationContext())
    target = target_cls()
    target.recover(pool, view)
    return pool, view, target

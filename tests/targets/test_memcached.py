"""memcached-pmem functional, protocol, and recovery tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.targets import MemcachedTarget
from repro.targets.memcached import (
    FLAG_LINKED,
    IT_FLAGS,
    IT_VALUE,
    NUM_SLOTS,
)

from .helpers import open_single


@pytest.fixture
def mc():
    _state, _view, instance = open_single(MemcachedTarget())
    return instance


class TestCommands:
    def test_set_get(self, mc):
        assert mc.cmd_store("set", 1, b"123")
        assert mc.cmd_get(1) == b"123"

    def test_get_missing(self, mc):
        assert mc.cmd_get(1) is None

    def test_add_only_when_absent(self, mc):
        assert mc.cmd_store("add", 1, b"5")
        assert not mc.cmd_store("add", 1, b"6")
        assert mc.cmd_get(1) == b"5"

    def test_replace_only_when_present(self, mc):
        assert not mc.cmd_store("replace", 1, b"5")
        mc.cmd_store("set", 1, b"5")
        assert mc.cmd_store("replace", 1, b"6")
        assert mc.cmd_get(1) == b"6"

    def test_append_prepend(self, mc):
        mc.cmd_store("set", 1, b"mid")
        assert mc.cmd_store("append", 1, b"-end")
        assert mc.cmd_store("prepend", 1, b"start-")
        assert mc.cmd_get(1) == b"start-mid-end"

    def test_append_missing(self, mc):
        assert not mc.cmd_store("append", 1, b"x")

    def test_incr_decr(self, mc):
        mc.cmd_store("set", 1, b"10")
        assert mc.cmd_arith(1, 5) == 15
        assert mc.cmd_arith(1, 3, negate=True) == 12
        assert mc.cmd_get(1) == b"12"

    def test_decr_clamps_at_zero(self, mc):
        mc.cmd_store("set", 1, b"2")
        assert mc.cmd_arith(1, 10, negate=True) == 0

    def test_incr_non_numeric(self, mc):
        mc.cmd_store("set", 1, b"abc")
        assert mc.cmd_arith(1, 1) is None

    def test_delete(self, mc):
        mc.cmd_store("set", 1, b"x")
        assert mc.cmd_delete(1)
        assert mc.cmd_get(1) is None
        assert not mc.cmd_delete(1)

    def test_eviction_when_full(self, mc):
        for key in range(NUM_SLOTS + 4):
            assert mc.cmd_store("set", key, b"v%d" % key)
        # the most recent keys survive; something was evicted
        assert mc.cmd_get(NUM_SLOTS + 3) is not None
        missing = sum(1 for key in range(NUM_SLOTS + 4)
                      if mc.cmd_get(key, bump=False) is None)
        assert missing >= 4


class TestProtocol:
    def test_process_command_set_get(self, mc):
        assert mc.process_command("set key1 0 0 2 42") == "STORED"
        assert mc.process_command("get key1") == "VALUE"

    def test_process_command_error(self, mc):
        assert mc.process_command("bogus nonsense") == "ERROR"
        assert mc.stats["cmd_errors"] == 1

    def test_dispatch_tracks_current_command(self, mc):
        mc.dispatch({"op": "set", "key": 1, "value": 9})
        assert mc.current_command == "set"
        mc.dispatch({"op": "get", "key": 1})
        assert mc.current_command == "get"

    def test_all_command_kinds_dispatch(self, mc):
        space = MemcachedTarget().operation_space()
        import random
        rng = random.Random(1)
        for kind in space.kinds:
            op = {"op": kind, "key": 1}
            if kind in ("set", "add", "replace", "append", "prepend"):
                op["value"] = 7
            elif kind in ("incr", "decr"):
                op["value"] = 2
            assert mc.dispatch(op) != "ERROR" or kind in ("incr", "decr")


class TestRecovery:
    def run_recovery(self, state):
        from repro.instrument import InstrumentationContext, PmView
        from repro.pmem import PmemPool
        image = state.pool.crash_image()
        pool = PmemPool.from_image("mc-r", image)
        view = PmView(pool, None, InstrumentationContext())
        target = MemcachedTarget()
        target.recover(pool, view)
        return pool, target

    def test_rebuild_restores_index(self):
        target = MemcachedTarget()
        state, _view, mc = open_single(target)
        for key in range(4):
            mc.cmd_store("set", key, b"%d" % key)
        state.pool.memory.persist_all()
        pool, rtarget = self.run_recovery(state)
        from repro.targets.base import TargetState
        from repro.instrument import InstrumentationContext, PmView
        rview = PmView(pool, None, InstrumentationContext())
        rmc = MemcachedTarget().open(TargetState(pool), rview, None)
        for key in range(4):
            assert rmc.cmd_get(key, bump=False) == b"%d" % key

    def test_torn_value_dropped(self):
        """Checksum-mismatched items are dropped by the rebuild."""
        target = MemcachedTarget()
        state, view, mc = open_single(target)
        mc.cmd_store("set", 1, b"sound")
        state.pool.memory.persist_all()
        item = mc.index[1]
        # corrupt the persisted value without updating the checksum
        state.pool.memory.store(item + IT_VALUE, b"torn!", None, "corrupt",
                                ntstore=True)
        pool, rtarget = self.run_recovery(state)
        assert rtarget._recovered == []

    def test_rebuild_rewrites_links(self):
        from repro.detect.postfailure import WriteRecorder
        from repro.instrument import InstrumentationContext, PmView
        from repro.pmem import PmemPool
        target = MemcachedTarget()
        state, _view, mc = open_single(target)
        mc.cmd_store("set", 1, b"a")
        mc.cmd_store("set", 2, b"b")
        state.pool.memory.persist_all()
        pool = PmemPool.from_image("mc-r", state.pool.crash_image())
        ctx = InstrumentationContext()
        recorder = ctx.add_observer(WriteRecorder())
        MemcachedTarget().recover(pool, PmView(pool, None, ctx))
        for item in (mc.index[1], mc.index[2]):
            assert recorder.covers(item, 16)       # next+prev rewritten
            assert not recorder.covers(item + IT_FLAGS, 8)

    def test_unlinked_items_skipped(self):
        target = MemcachedTarget()
        state, view, mc = open_single(target)
        mc.cmd_store("set", 1, b"a")
        mc.cmd_delete(1)
        state.pool.memory.persist_all()
        _pool, rtarget = self.run_recovery(state)
        assert rtarget._recovered == []


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(
    st.sampled_from(["set", "get", "delete", "incr"]),
    st.integers(0, 9), st.integers(0, 999)), max_size=40))
def test_property_matches_dict(ops):
    _state, _view, mc = open_single(MemcachedTarget())
    model = {}
    for kind, key, value in ops:
        if kind == "set":
            if mc.cmd_store("set", key, str(value).encode()):
                model[key] = value
        elif kind == "get":
            got = mc.cmd_get(key, bump=False)
            if key in model:
                assert got == str(model[key]).encode()
            else:
                assert got is None
        elif kind == "incr":
            result = mc.cmd_arith(key, value)
            if key in model:
                model[key] += value
                assert result == model[key]
            else:
                assert result is None
        else:
            assert mc.cmd_delete(key) == (key in model)
            model.pop(key, None)
    # fewer than NUM_SLOTS keys: no eviction, everything must be present
    for key, value in model.items():
        assert mc.cmd_get(key, bump=False) == str(value).encode()

"""Target registry tests."""

import pytest

from repro.targets import (
    TARGET_CLASSES,
    make_target,
    table1_rows,
    target_names,
)


class TestRegistry:
    def test_five_targets(self):
        assert len(TARGET_CLASSES) == 5

    def test_names_match_paper(self):
        assert target_names() == ["P-CLHT", "clevel hashing", "CCEH",
                                  "FAST-FAIR", "memcached-pmem"]

    def test_make_target(self):
        target = make_target("P-CLHT")
        assert target.NAME == "P-CLHT"

    def test_unknown_target(self):
        with pytest.raises(KeyError):
            make_target("redis")

    def test_table1_contents(self):
        rows = table1_rows()
        by_name = {row["system"]: row for row in rows}
        assert by_name["P-CLHT"]["version"] == "70bf21c"
        assert by_name["clevel hashing"]["concurrency"] == "Lock-free"
        assert by_name["CCEH"]["scope"] == "Extendible hashing"
        assert by_name["FAST-FAIR"]["scope"] == "B+-Tree"
        assert by_name["memcached-pmem"]["scope"] == "Key-value store"

    def test_only_memcached_uses_libpmem(self):
        libpmem = [cls.NAME for cls in TARGET_CLASSES if cls.USES_LIBPMEM]
        assert libpmem == ["memcached-pmem"]

    def test_all_targets_setup(self):
        for cls in TARGET_CLASSES:
            state = cls().setup()
            assert state.pool.size > 0

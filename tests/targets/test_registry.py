"""Target registry tests: built-ins, registration, dynamic loading."""

import textwrap

import pytest

from repro.targets import (
    BUILTIN_TARGET_CLASSES,
    TARGET_CLASSES,
    DuplicateTargetError,
    Target,
    TargetModuleError,
    TargetRegistryError,
    UnknownTargetError,
    load_target_module,
    make_target,
    register_target,
    registered_classes,
    table1_rows,
    target_class,
    target_names,
    unregister_target,
)

PAPER_NAMES = ["P-CLHT", "clevel hashing", "CCEH", "FAST-FAIR",
               "memcached-pmem"]
BUILTIN_NAMES = PAPER_NAMES + ["pmring", "txkv"]


class TestRegistry:
    def test_seven_builtin_targets(self):
        assert len(BUILTIN_TARGET_CLASSES) == 7
        assert TARGET_CLASSES is BUILTIN_TARGET_CLASSES

    def test_names_paper_order_first(self):
        assert target_names()[:5] == PAPER_NAMES
        assert target_names() == BUILTIN_NAMES

    def test_make_target(self):
        target = make_target("P-CLHT")
        assert target.NAME == "P-CLHT"

    def test_make_new_targets(self):
        assert make_target("pmring").NAME == "pmring"
        assert make_target("txkv").NAME == "txkv"

    def test_unknown_target(self):
        with pytest.raises(KeyError):
            make_target("redis")

    def test_unknown_target_message_lists_known(self):
        with pytest.raises(UnknownTargetError) as excinfo:
            target_class("redis")
        assert "redis" in str(excinfo.value)
        assert "pmring" in str(excinfo.value)

    def test_table1_contents(self):
        rows = table1_rows()
        by_name = {row["system"]: row for row in rows}
        assert by_name["P-CLHT"]["version"] == "70bf21c"
        assert by_name["clevel hashing"]["concurrency"] == "Lock-free"
        assert by_name["CCEH"]["scope"] == "Extendible hashing"
        assert by_name["FAST-FAIR"]["scope"] == "B+-Tree"
        assert by_name["memcached-pmem"]["scope"] == "Key-value store"
        assert by_name["pmring"]["concurrency"] == "Lock-free"
        assert by_name["txkv"]["scope"] == "Key-value store"

    def test_libpmem_targets(self):
        libpmem = [cls.NAME for cls in TARGET_CLASSES if cls.USES_LIBPMEM]
        assert libpmem == ["memcached-pmem", "pmring"]

    def test_all_targets_setup(self):
        for cls in TARGET_CLASSES:
            state = cls().setup()
            assert state.pool.size > 0


class TestRegistration:
    def test_register_and_unregister(self):
        class DemoTarget(Target):
            NAME = "demo-register"

        assert register_target(DemoTarget) is DemoTarget
        try:
            assert target_class("demo-register") is DemoTarget
            assert DemoTarget in registered_classes()
            assert "demo-register" in [r["system"] for r in table1_rows()]
        finally:
            unregister_target("demo-register")
        assert "demo-register" not in target_names()

    def test_register_idempotent_for_same_class(self):
        class DemoTarget(Target):
            NAME = "demo-idempotent"

        register_target(DemoTarget)
        try:
            register_target(DemoTarget)  # no error
        finally:
            unregister_target("demo-idempotent")

    def test_duplicate_name_rejected(self):
        class Impostor(Target):
            NAME = "P-CLHT"

        with pytest.raises(DuplicateTargetError):
            register_target(Impostor)
        # the original mapping is untouched
        assert target_class("P-CLHT") is not Impostor

    def test_duplicate_name_replace(self):
        class First(Target):
            NAME = "demo-replace"

        class Second(Target):
            NAME = "demo-replace"

        register_target(First)
        try:
            register_target(Second, replace=True)
            assert target_class("demo-replace") is Second
        finally:
            unregister_target("demo-replace")

    def test_non_target_rejected(self):
        with pytest.raises(TargetRegistryError):
            register_target(object)

    def test_default_name_rejected(self):
        class Nameless(Target):
            pass

        with pytest.raises(TargetRegistryError):
            register_target(Nameless)

    def test_unregister_unknown(self):
        with pytest.raises(UnknownTargetError):
            unregister_target("never-registered")


PLUGIN_SOURCE = textwrap.dedent("""\
    from repro.targets import Target, TargetState
    from repro.pmdk.pool import pmem_map_file


    class PluginTarget(Target):
        NAME = %r
        VERSION = "0"
        SCOPE = "test plugin"
        CONCURRENCY = "-"
        POOL_SIZE = 4096

        def setup(self):
            pool = pmem_map_file("plugin", self.POOL_SIZE)
            pool.memory.persist_all()
            return TargetState(pool)
""")


class TestDynamicLoading:
    def test_load_target_module_from_file(self, tmp_path):
        path = tmp_path / "plugin_target_a.py"
        path.write_text(PLUGIN_SOURCE % "plugin-a")
        try:
            loaded = load_target_module(str(path))
            assert loaded == ["plugin-a"]
            assert make_target("plugin-a").NAME == "plugin-a"
            # repeat loads are idempotent, not duplicate-name errors
            assert load_target_module(str(path)) == []
        finally:
            unregister_target("plugin-a")

    def test_load_target_module_import_error(self, tmp_path):
        path = tmp_path / "broken_plugin.py"
        path.write_text("import does_not_exist_anywhere\n")
        with pytest.raises(TargetModuleError) as excinfo:
            load_target_module(str(path))
        assert "broken_plugin" in str(excinfo.value)

    def test_load_target_module_missing_file(self, tmp_path):
        with pytest.raises(TargetModuleError):
            load_target_module(str(tmp_path / "nope.py"))

    def test_load_target_module_bad_dotted_name(self):
        with pytest.raises(TargetModuleError):
            load_target_module("no.such.module")

    def test_load_target_module_no_targets(self, tmp_path):
        path = tmp_path / "empty_plugin.py"
        path.write_text("VALUE = 1\n")
        with pytest.raises(TargetModuleError) as excinfo:
            load_target_module(str(path))
        assert "no Target subclasses" in str(excinfo.value)

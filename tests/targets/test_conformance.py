"""Contract-conformance checks over all built-in targets + failure paths."""

import pytest

from repro.targets import (
    BUILTIN_TARGET_CLASSES,
    Target,
    TargetState,
    check_all,
    check_target,
)
from repro.pmdk.pool import pmem_map_file


@pytest.mark.parametrize("cls", BUILTIN_TARGET_CLASSES,
                         ids=[cls.NAME for cls in BUILTIN_TARGET_CLASSES])
def test_builtin_conforms(cls):
    report = check_target(cls)
    assert report.ok, report.summary()
    assert report.checks_run == ["metadata", "construct", "space", "setup",
                                 "exec", "recover"]


def test_check_all_defaults_to_registry():
    reports = check_all()
    assert [r.name for r in reports] == \
        [cls.NAME for cls in BUILTIN_TARGET_CLASSES]
    assert all(r.ok for r in reports)


class _MinimalTarget(Target):
    """Smallest conforming target: default space, trivial pool, no-ops."""

    NAME = "conf-minimal"
    VERSION = "0"
    SCOPE = "test"
    CONCURRENCY = "-"
    POOL_SIZE = 4096

    def setup(self):
        pool = pmem_map_file("conf-minimal", self.POOL_SIZE)
        pool.memory.persist_all()
        return TargetState(pool)

    def open(self, state, view, scheduler):
        return None

    def exec_op(self, instance, view, op):
        return None

    def recover(self, pool, view):
        return self


def test_minimal_target_conforms():
    report = check_target(_MinimalTarget)
    assert report.ok, report.summary()


class TestNonConforming:
    def test_bad_metadata(self):
        class BadMeta(_MinimalTarget):
            NAME = "conf-bad-meta"
            POOL_SIZE = 0

        report = check_target(BadMeta)
        assert not report.ok
        assert any(issue.check == "metadata" for issue in report.issues)

    def test_setup_raises(self):
        class BadSetup(_MinimalTarget):
            NAME = "conf-bad-setup"

            def setup(self):
                raise RuntimeError("no pool for you")

        report = check_target(BadSetup)
        assert not report.ok
        assert any(issue.check == "setup" for issue in report.issues)
        # downstream checks are skipped once setup fails
        assert "exec" not in report.checks_run

    def test_exec_op_raises(self):
        class BadExec(_MinimalTarget):
            NAME = "conf-bad-exec"

            def exec_op(self, instance, view, op):
                raise ValueError("boom")

        report = check_target(BadExec)
        assert not report.ok
        assert any(issue.check == "exec" for issue in report.issues)

    def test_recover_raises(self):
        class BadRecover(_MinimalTarget):
            NAME = "conf-bad-recover"

            def recover(self, pool, view):
                raise RuntimeError("cannot recover")

        report = check_target(BadRecover)
        assert not report.ok
        assert any(issue.check == "recover" for issue in report.issues)

    def test_unknown_op_must_be_falsy(self):
        class ChattyExec(_MinimalTarget):
            NAME = "conf-chatty-exec"

            def exec_op(self, instance, view, op):
                return True  # claims success even for unknown kinds

        report = check_target(ChattyExec)
        assert not report.ok
        assert any(issue.check == "exec" for issue in report.issues)

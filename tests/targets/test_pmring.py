"""pmring lock-free ring buffer functional and recovery tests."""

import pytest

from repro.targets import PmRingTarget
from repro.targets.base import TargetState
from repro.targets.pmring import (
    NUM_SLOTS,
    R_CURSOR,
    R_HEAD,
    R_TAIL,
    S_SEQ,
    SLOT_SIZE,
    SLOT_START,
    PmRingInstance,
)

from .helpers import open_single, recover_from


@pytest.fixture
def ring():
    _state, _view, instance = open_single(PmRingTarget())
    return instance


class TestFunctional:
    def test_push_pop_fifo(self, ring):
        for value in (11, 22, 33):
            assert ring.push(value)
        assert ring.pop() == 11
        assert ring.pop() == 22
        assert ring.pop() == 33

    def test_pop_empty(self, ring):
        assert ring.pop() is None

    def test_peek_does_not_consume(self, ring):
        ring.push(7)
        assert ring.peek() == 7
        assert ring.peek() == 7
        assert ring.pop() == 7
        assert ring.peek() is None

    def test_full_ring_rejects_push(self, ring):
        for value in range(NUM_SLOTS):
            assert ring.push(value + 1)
        assert not ring.push(99)

    def test_wraparound(self, ring):
        for round_no in range(3 * NUM_SLOTS):
            assert ring.push(round_no)
            assert ring.pop() == round_no

    def test_cursor_logs_consumed_sequence(self, ring):
        ring.push(5)
        ring.pop()
        assert ring.view.pool.read_u64(R_CURSOR) == 1


class TestRecovery:
    def _reopen(self, pool, view, target):
        state = TargetState(pool)
        return PmRingInstance(target, state, view, None)

    def test_recovered_ring_usable(self):
        target = PmRingTarget()
        state, _view, instance = open_single(target)
        for value in (4, 5, 6):
            instance.push(value)
        state.pool.memory.persist_all()
        pool, rview, rtarget = recover_from(PmRingTarget, state)
        assert rtarget._recovered == (3, 0)
        ring = self._reopen(pool, rview, rtarget)
        assert ring.pop() == 4
        assert ring.pop() == 5
        assert ring.pop() == 6
        assert ring.pop() is None

    def test_unfenced_publication_lost(self):
        """Bug 15's consequence: the seq word is CLWB'd but unfenced, so
        a crash drops the publication and recovery scrubs the slot."""
        target = PmRingTarget()
        state, _view, instance = open_single(target)
        instance.push(42)
        pool, rview, rtarget = recover_from(PmRingTarget, state)
        assert rtarget._recovered == (0, 0)
        slot = SLOT_START
        assert pool.read_u64(slot + S_SEQ) == 0
        ring = self._reopen(pool, rview, rtarget)
        assert ring.pop() is None

    def test_fenced_publication_survives(self):
        target = PmRingTarget()
        state, view, instance = open_single(target)
        instance.push(42)
        view.sfence()  # the missing fence of bug 15
        pool, rview, rtarget = recover_from(PmRingTarget, state)
        assert rtarget._recovered == (1, 0)
        ring = self._reopen(pool, rview, rtarget)
        assert ring.pop() == 42

    def test_recovery_never_touches_cursor_log(self):
        """The consumption log is trusted as append-only — the omission
        post-failure validation exploits to convict bug 15."""
        target = PmRingTarget()
        state, _view, instance = open_single(target)
        instance.push(1)
        instance.pop()
        state.pool.memory.persist_all()
        pool, _rview, _rtarget = recover_from(PmRingTarget, state)
        assert pool.read_u64(R_CURSOR) == 1

    def test_recovery_scrubs_stale_slots(self):
        target = PmRingTarget()
        state, view, instance = open_single(target)
        instance.push(9)
        view.sfence()
        instance.pop()          # ntstores seq=0, advances tail durably
        state.pool.memory.persist_all()
        pool, _rview, rtarget = recover_from(PmRingTarget, state)
        assert rtarget._recovered == (1, 1)
        assert pool.read_u64(R_HEAD) == 1
        assert pool.read_u64(R_TAIL) == 1
        for index in range(NUM_SLOTS):
            slot = SLOT_START + index * SLOT_SIZE
            assert pool.read_u64(slot + S_SEQ) == 0

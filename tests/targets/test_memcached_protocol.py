"""memcached text-protocol edge cases and mutator interplay."""

import random

import pytest

from repro.core import AflByteMutator
from repro.targets import MemcachedOperationSpace, MemcachedTarget

from .helpers import open_single


@pytest.fixture
def space():
    return MemcachedOperationSpace()


class TestParseEdgeCases:
    @pytest.mark.parametrize("line", [
        "",                       # empty
        "set",                    # missing key
        "set key1",               # missing fields
        "set key1 0 0 5",         # missing payload
        "set key1 0 0 x 5",       # non-numeric byte count
        "set keyA 0 0 1 5",       # non-numeric key suffix
        "set key1 1 0 1 5",       # nonzero flags rejected (simplified)
        "set key1 0 0 1 5 extra",  # trailing token
        "get",                    # missing key
        "get key1 extra",         # trailing token
        "incr key1",              # missing delta
        "incr key1 -3",           # negative delta
        "incr key1 x",            # non-numeric delta
        "delete nope",            # bad key prefix
        "flush_all",              # unknown command
        "SET key1 0 0 1 5",       # case-sensitive
    ])
    def test_invalid_lines(self, space, line):
        assert space.parse_line(line) is None

    @pytest.mark.parametrize("line,expected_kind", [
        ("get key0", "get"),
        ("bget key23", "bget"),
        ("set key1 0 0 3 123", "set"),
        ("add key1 0 0 1 7", "add"),
        ("replace key1 0 0 2 42", "replace"),
        ("append key1 0 0 1 9", "append"),
        ("prepend key1 0 0 1 9", "prepend"),
        ("incr key1 10", "incr"),
        ("decr key1 1", "decr"),
        ("delete key1", "delete"),
    ])
    def test_valid_lines(self, space, line, expected_kind):
        op = space.parse_line(line)
        assert op is not None
        assert op["op"] == expected_kind

    def test_key_wraps_modulo_range(self, space):
        op = space.parse_line("get key1000")
        assert 0 <= op["key"] < space.key_range

    def test_parse_blob_counts_errors(self, space):
        ops, invalid = space.parse(b"get key1\r\njunk\r\nset key1 0 0 1 5")
        assert len(ops) == 2
        assert invalid == 1


class TestEndToEndProtocol:
    def test_full_session(self):
        _state, _view, mc = open_single(MemcachedTarget())
        script = [
            ("set key1 0 0 2 42", "STORED"),
            ("get key1", "VALUE"),
            ("bget key1", "VALUE"),
            ("append key1 0 0 1 9", "STORED"),
            ("incr key2 5", "NOT_FOUND"),
            ("set key2 0 0 2 10", "STORED"),
            ("incr key2 5", "15"),
            ("decr key2 20", "0"),
            ("delete key1", "DELETED"),
            ("delete key1", "NOT_FOUND"),
            ("get key1", "END"),
            ("oops", "ERROR"),
        ]
        for line, expected in script:
            assert mc.process_command(line) == expected, line

    def test_afl_generated_bytes_never_crash(self):
        """Robustness: any havoc-mutated blob must be handled."""
        _state, _view, mc = open_single(MemcachedTarget())
        space = MemcachedOperationSpace()
        afl = AflByteMutator(space, rng=random.Random(11))
        data = afl.initial_bytes()
        for _ in range(40):
            data = afl.mutate_bytes(data)
            for line in data.decode("utf-8", "replace").splitlines():
                mc.process_command(line.strip())

    def test_value_cap_enforced(self):
        from repro.targets.memcached import VALUE_CAP
        _state, _view, mc = open_single(MemcachedTarget())
        mc.cmd_store("set", 1, b"x" * 10)
        for _ in range(12):
            mc.cmd_store("append", 1, b"y" * 10)
        value = mc.cmd_get(1, bump=False)
        assert value is not None
        assert len(value) <= VALUE_CAP

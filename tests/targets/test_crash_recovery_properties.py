"""Property tests: single-threaded crash recovery never corrupts state.

For each hash-index target: run a random single-threaded workload,
crash at the end (drop all non-persisted lines), run the target's
recovery on the image, and check that every key the recovered structure
returns maps to a value that was actually written for it at some point
(no fabricated data), and that recovery itself never raises.

(Stronger guarantees — no lost *persisted* data — are exactly what the
seeded bugs violate under concurrency, so they are not asserted here.)
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrument import InstrumentationContext, PmView
from repro.pmem import PmemPool
from repro.targets import CcehTarget, MemcachedTarget, PclhtTarget
from repro.targets.base import TargetState

from .helpers import open_single

OPS = st.lists(st.tuples(st.sampled_from(["put", "delete"]),
                         st.integers(0, 15), st.integers(1, 999)),
               min_size=1, max_size=40)


def crash_and_recover(target_cls, state):
    image = state.pool.crash_image()
    pool = PmemPool.from_image("crash", image)
    view = PmView(pool, None, InstrumentationContext())
    target = target_cls()
    target.recover(pool, view)
    return pool, view, target


@settings(max_examples=20, deadline=None)
@given(OPS)
def test_pclht_recovery_no_fabricated_data(ops):
    from repro.targets.pclht import PclhtInstance
    target = PclhtTarget()
    state, _view, instance = open_single(target)
    written = {}
    for kind, key, value in ops:
        if kind == "put" and instance.put(key, value):
            written.setdefault(key, set()).add(value)
        elif kind == "delete":
            instance.delete(key)
    pool, rview, rtarget = crash_and_recover(PclhtTarget, state)
    objpool, root = rtarget._recovered
    rstate = TargetState(pool, extras={"objpool": objpool, "root": root})
    recovered = PclhtInstance(rtarget, rstate, rview, None)
    for key in range(16):
        value = recovered.get(key)
        if value is not None:
            assert value in written.get(key, set())


@settings(max_examples=20, deadline=None)
@given(OPS)
def test_cceh_recovery_no_fabricated_data(ops):
    from repro.targets.cceh import CcehInstance
    target = CcehTarget()
    state, _view, instance = open_single(target)
    written = {}
    for kind, key, value in ops:
        if kind == "put" and instance.insert(key, value):
            written.setdefault(key, set()).add(value)
        elif kind == "delete":
            instance.delete(key)
    pool, rview, rtarget = crash_and_recover(CcehTarget, state)
    objpool, root = rtarget._recovered
    rstate = TargetState(pool, extras={"objpool": objpool, "root": root})
    recovered = CcehInstance(rtarget, rstate, rview, None)
    for key in range(16):
        value = recovered.get(key)
        if value is not None:
            assert value in written.get(key, set())


@settings(max_examples=15, deadline=None)
@given(OPS)
def test_memcached_recovery_values_checksummed(ops):
    target = MemcachedTarget()
    state, view, instance = open_single(target)
    written = {}
    for kind, key, value in ops:
        payload = str(value).encode()
        if kind == "put" and instance.cmd_store("set", key, payload):
            written.setdefault(key, set()).add(payload)
        elif kind == "delete":
            instance.cmd_delete(key)
    pool, rview, rtarget = crash_and_recover(MemcachedTarget, state)
    # every surviving item passed its checksum: its value was written
    from repro.targets.memcached import IT_KEY, IT_NBYTES, IT_VALUE, VALUE_CAP
    for addr in rtarget._recovered:
        key = pool.read_u64(addr + IT_KEY) - 1
        nbytes = min(pool.read_u64(addr + IT_NBYTES), VALUE_CAP)
        value = pool.read_bytes(addr + IT_VALUE, nbytes)
        assert value in written.get(key, set())

"""txkv transactional KV store functional and recovery tests."""

import pytest

from repro.targets import TxKvTarget
from repro.targets.base import TargetState
from repro.targets.txkv import (
    GEN_EPOCH,
    R_COUNT,
    R_GEN,
    R_SNAP_COUNT,
    R_SNAP_GEN,
    R_WLOCK,
    TxKvInstance,
)

from .helpers import open_single, recover_from


@pytest.fixture
def kv():
    _state, _view, instance = open_single(TxKvTarget())
    return instance


class TestFunctional:
    def test_put_get(self, kv):
        assert kv.put(3, 30)
        assert kv.get(3) == 30

    def test_get_missing(self, kv):
        assert kv.get(3) is None

    def test_overwrite(self, kv):
        kv.put(3, 30)
        kv.put(3, 31)
        assert kv.get(3) == 31

    def test_delete(self, kv):
        kv.put(3, 30)
        assert kv.delete(3)
        assert kv.get(3) is None

    def test_delete_missing(self, kv):
        assert not kv.delete(3)

    def test_count_tracks_live_entries(self, kv):
        kv.put(1, 10)
        kv.put(2, 20)
        kv.put(1, 11)       # overwrite: count unchanged
        kv.delete(2)
        assert kv.view.pool.read_u64(kv.root + R_COUNT) == 1

    def test_gen_bumped_per_mutation(self, kv):
        kv.put(1, 10)
        kv.put(2, 20)
        kv.delete(1)
        assert kv.view.pool.read_u64(kv.root + R_GEN) == 3

    def test_stat_snapshot_is_durable(self, kv):
        kv.put(1, 10)
        gen, count = kv.stat()
        assert (gen, count) == (1, 1)
        pool = kv.view.pool
        assert pool.read_persisted_u64(kv.root + R_SNAP_GEN) == 1
        assert pool.read_persisted_u64(kv.root + R_SNAP_COUNT) == 1

    def test_lock_released_after_ops(self, kv):
        kv.put(1, 10)
        kv.delete(1)
        assert kv.view.load_u64(kv.root + R_WLOCK) == 0


class TestRecovery:
    def _reopen(self, pool, view, target):
        objpool, root, table = target._recovered
        state = TargetState(pool, extras={"objpool": objpool, "root": root,
                                          "table": table})
        return TxKvInstance(target, state, view, None)

    def test_recovered_store_usable(self):
        target = TxKvTarget()
        state, _view, instance = open_single(target)
        instance.put(1, 10)
        instance.put(2, 20)
        state.pool.memory.persist_all()
        pool, rview, rtarget = recover_from(TxKvTarget, state)
        kv = self._reopen(pool, rview, rtarget)
        assert kv.get(1) == 10
        assert kv.get(2) == 20
        assert kv.put(3, 30)

    def test_count_rebuilt_from_table(self):
        target = TxKvTarget()
        state, _view, instance = open_single(target)
        instance.put(1, 10)
        instance.put(2, 20)
        state.pool.memory.persist_all()
        pool, _rview, rtarget = recover_from(TxKvTarget, state)
        _objpool, root, _table = rtarget._recovered
        assert pool.read_u64(root + R_COUNT) == 2

    def test_unflushed_gen_lost_then_epoch_bumped(self):
        """Bug 16's consequence: the out-of-tx generation bump is never
        flushed, so a crash reverts it; recovery epoch-bumps whatever
        generation actually persisted."""
        target = TxKvTarget()
        state, _view, instance = open_single(target)
        instance.put(1, 10)           # bumps gen to 1 — but never flushed
        pool, _rview, rtarget = recover_from(TxKvTarget, state)
        _objpool, root, _table = rtarget._recovered
        assert pool.read_u64(root + R_GEN) == GEN_EPOCH  # 0 + epoch, not 1

    def test_snapshot_words_trusted_as_is(self):
        """Recovery never reconciles the stat snapshot — the omission
        that convicts bug 16 in post-failure validation."""
        target = TxKvTarget()
        state, _view, instance = open_single(target)
        instance.put(1, 10)
        instance.stat()
        state.pool.memory.persist_all()
        pool, _rview, rtarget = recover_from(TxKvTarget, state)
        _objpool, root, _table = rtarget._recovered
        assert pool.read_u64(root + R_SNAP_GEN) == 1
        assert pool.read_u64(root + R_SNAP_COUNT) == 1

    def test_writer_lock_reinitialized(self):
        """Unlike P-CLHT's bug 2, a leaked writer lock is repaired."""
        target = TxKvTarget()
        state, view, instance = open_single(target)
        instance.put(1, 10)
        view.store_u64(instance.root + R_WLOCK, 1)  # simulate the leak
        state.pool.memory.persist_all()
        pool, rview, rtarget = recover_from(TxKvTarget, state)
        _objpool, root, _table = rtarget._recovered
        assert pool.read_u64(root + R_WLOCK) == 0
        kv = self._reopen(pool, rview, rtarget)
        assert kv.put(5, 50)          # would deadlock if the lock leaked

    def test_post_recovery_probe_completes(self):
        target = TxKvTarget()
        state, _view, instance = open_single(target)
        instance.put(1, 10)
        state.pool.memory.persist_all()
        pool, rview, rtarget = recover_from(TxKvTarget, state)
        rtarget.post_recovery_probe(pool, rview)
        kv = self._reopen(pool, rview, rtarget)
        assert kv.get(0) == 1

"""CCEH functional and bug-site tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.targets import CcehTarget
from repro.targets.cceh import D_CAPACITY, D_GLOBAL_DEPTH, R_DIR, S_LOCK

from .helpers import open_single, recover_from


@pytest.fixture
def cceh():
    _state, _view, instance = open_single(CcehTarget())
    return instance


class TestFunctional:
    def test_insert_get(self, cceh):
        assert cceh.insert(5, 50)
        assert cceh.get(5) == 50

    def test_get_missing(self, cceh):
        assert cceh.get(5) is None

    def test_overwrite(self, cceh):
        cceh.insert(5, 50)
        cceh.insert(5, 51)
        assert cceh.get(5) == 51

    def test_delete(self, cceh):
        cceh.insert(5, 50)
        assert cceh.delete(5)
        assert cceh.get(5) is None

    def test_delete_missing(self, cceh):
        assert not cceh.delete(5)

    def test_split_preserves_items(self, cceh):
        for key in range(24):
            assert cceh.insert(key, key * 2)
        for key in range(24):
            assert cceh.get(key) == key * 2

    def test_directory_doubles(self, cceh):
        view = cceh.view
        start_depth = int(view.load_u64(cceh._dir() + D_GLOBAL_DEPTH))
        for key in range(30):
            cceh.insert(key, key)
        end_depth = int(view.load_u64(cceh._dir() + D_GLOBAL_DEPTH))
        assert end_depth > start_depth
        capacity = int(view.load_u64(cceh._dir() + D_CAPACITY))
        assert capacity == 1 << end_depth

    def test_locks_released_after_ops(self, cceh):
        cceh.insert(3, 1)
        _dir, _cap, _idx, seg = cceh._segment_for(3)
        assert cceh.view.pool.read_u64(seg + S_LOCK) == 0


class TestRecovery:
    def test_segment_locks_survive_recovery(self):
        """Bug 6: recovery never releases persistent segment locks."""
        target = CcehTarget()
        state, view, instance = open_single(target)
        instance.insert(1, 1)
        _dir, _cap, _idx, seg = instance._segment_for(1)
        view.ntstore_u64(seg + S_LOCK, 1)  # crash with the lock held
        view.sfence()
        pool, _rview, _rtarget = recover_from(CcehTarget, state)
        assert pool.read_u64(seg + S_LOCK) == 1

    def test_dir_lock_reinitialized(self):
        from repro.targets.cceh import R_DIR_LOCK
        target = CcehTarget()
        state, view, instance = open_single(target)
        view.ntstore_u64(instance.root + R_DIR_LOCK, 1)
        view.sfence()
        pool, _rview, _rtarget = recover_from(CcehTarget, state)
        assert pool.read_u64(instance.root + R_DIR_LOCK) == 0

    def test_recovered_directory_readable(self):
        target = CcehTarget()
        state, view, instance = open_single(target)
        for key in range(10):
            instance.insert(key, key + 7)
        state.pool.memory.persist_all()
        pool, rview, rtarget = recover_from(CcehTarget, state)
        objpool, root = rtarget._recovered
        from repro.targets.base import TargetState
        from repro.targets.cceh import CcehInstance
        rstate = TargetState(pool, extras={"objpool": objpool, "root": root})
        rinstance = CcehInstance(rtarget, rstate, rview, None)
        for key in range(10):
            assert rinstance.get(key) == key + 7

    def test_annotations(self):
        state = CcehTarget().setup()
        assert state.annotations.annotation_count == 2
        names = {a.name for a in state.annotations.types()}
        assert names == {"segment_lock", "dir_lock"}


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["put", "get", "delete"]),
                          st.integers(0, 23), st.integers(0, 999)),
                max_size=60))
def test_property_matches_dict(ops):
    _state, _view, cceh = open_single(CcehTarget())
    model = {}
    for kind, key, value in ops:
        if kind == "put":
            if cceh.insert(key, value):
                model[key] = value
        elif kind == "get":
            assert cceh.get(key) == model.get(key)
        else:
            assert cceh.delete(key) == (key in model)
            model.pop(key, None)
    for key, value in model.items():
        assert cceh.get(key) == value

"""P-CLHT functional and bug-site tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.targets import PclhtTarget
from repro.targets.pclht import (
    B_LOCK,
    INITIAL_BUCKETS,
    R_HT,
    R_TABLE_NEW,
    T_HDR,
    BUCKET_SIZE,
)

from .helpers import open_single, recover_from


@pytest.fixture
def ht():
    _state, _view, instance = open_single(PclhtTarget())
    return instance


class TestFunctional:
    def test_put_get(self, ht):
        assert ht.put(3, 30)
        assert ht.get(3) == 30

    def test_get_missing(self, ht):
        assert ht.get(9) is None

    def test_put_overwrites(self, ht):
        ht.put(3, 30)
        ht.put(3, 31)
        assert ht.get(3) == 31

    def test_delete(self, ht):
        ht.put(3, 30)
        assert ht.delete(3)
        assert ht.get(3) is None

    def test_delete_missing(self, ht):
        assert not ht.delete(3)

    def test_update_existing(self, ht):
        ht.put(3, 30)
        assert ht.update(3, 99)
        assert ht.get(3) == 99

    def test_key_zero_supported(self, ht):
        ht.put(0, 5)
        assert ht.get(0) == 5

    def test_resize_preserves_items(self, ht):
        for key in range(24):
            assert ht.put(key, key * 10)
        assert ht.resizes > 0
        for key in range(24):
            assert ht.get(key) == key * 10

    def test_resize_grows_table(self, ht):
        for key in range(24):
            ht.put(key, key)
        table = ht.view.load_u64(ht.root + R_HT)
        assert int(ht.view.load_u64(int(table))) > INITIAL_BUCKETS


class TestBugSites:
    def test_update_missing_key_leaks_lock(self, ht):
        """Bug 5: the key-missing path returns with the lock held."""
        assert not ht.update(7, 1)
        table = int(ht.view.load_u64(ht.root + R_HT))
        num = int(ht.view.load_u64(table))
        bucket = table + T_HDR + (7 % num) * BUCKET_SIZE
        assert ht.view.pool.read_u64(bucket + B_LOCK) == 1

    def test_exec_op_dispatch(self):
        target = PclhtTarget()
        _state, view, instance = open_single(target)
        assert target.exec_op(instance, view, {"op": "put", "key": 1,
                                               "value": 2})
        assert target.exec_op(instance, view, {"op": "get", "key": 1})
        assert target.exec_op(instance, view, {"op": "delete", "key": 1})
        assert not target.exec_op(instance, view, {"op": "bogus", "key": 0})

    def test_annotations_registered(self):
        state = PclhtTarget().setup()
        assert state.annotations.annotation_count == 4
        bucket_locks = next(a for a in state.annotations.types()
                            if a.name == "bucket_lock")
        assert len(bucket_locks.addrs) == INITIAL_BUCKETS


class TestRecovery:
    def test_global_locks_reinitialized(self):
        target = PclhtTarget()
        state, view, instance = open_single(target)
        instance.put(1, 1)
        # leave the resize lock held at "crash"
        from repro.targets.pclht import R_RESIZE_LOCK
        view.ntstore_u64(instance.root + R_RESIZE_LOCK, 1)
        view.sfence()
        pool, _rview, _target = recover_from(PclhtTarget, state)
        assert pool.read_u64(instance.root + R_RESIZE_LOCK) == 0

    def test_bucket_locks_not_reinitialized(self):
        """Bug 2's root cause: recovery skips the bucket lock words."""
        target = PclhtTarget()
        state, view, instance = open_single(target)
        table = int(view.load_u64(instance.root + R_HT))
        lock_addr = table + T_HDR + B_LOCK
        view.ntstore_u64(lock_addr, 1)
        view.sfence()
        pool, _rview, _target = recover_from(PclhtTarget, state)
        assert pool.read_u64(lock_addr) == 1  # still "held"

    def test_recovered_data_readable(self):
        target = PclhtTarget()
        state, view, instance = open_single(target)
        for key in range(6):
            instance.put(key, key + 100)
        state.pool.memory.persist_all()
        pool, rview, rtarget = recover_from(PclhtTarget, state)
        objpool, root = rtarget._recovered
        from repro.targets.base import TargetState
        from repro.targets.pclht import PclhtInstance
        rstate = TargetState(pool, extras={"objpool": objpool, "root": root})
        rinstance = PclhtInstance(rtarget, rstate, rview, None)
        for key in range(6):
            assert rinstance.get(key) == key + 100


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["put", "get", "delete"]),
                          st.integers(0, 23), st.integers(0, 999)),
                max_size=60))
def test_property_matches_dict(ops):
    _state, _view, ht = open_single(PclhtTarget())
    model = {}
    for kind, key, value in ops:
        if kind == "put":
            if ht.put(key, value):
                model[key] = value
        elif kind == "get":
            assert ht.get(key) == model.get(key)
        else:
            assert ht.delete(key) == (key in model)
            model.pop(key, None)
    for key, value in model.items():
        assert ht.get(key) == value

"""FAST-FAIR B+-tree functional and bug-site tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.targets import FastFairTarget
from repro.targets.fastfair import CARD, N_NUM, N_SIBLING, R_ROOT

from .helpers import open_single, recover_from


@pytest.fixture
def tree():
    _state, _view, instance = open_single(FastFairTarget())
    return instance


class TestFunctional:
    def test_insert_search(self, tree):
        assert tree.insert(5, 50)
        assert tree.search(5) == 50

    def test_search_missing(self, tree):
        assert tree.search(5) is None

    def test_overwrite(self, tree):
        tree.insert(5, 50)
        tree.insert(5, 51)
        assert tree.search(5) == 51

    def test_delete(self, tree):
        tree.insert(5, 50)
        assert tree.delete(5)
        assert tree.search(5) is None

    def test_delete_missing(self, tree):
        assert not tree.delete(5)

    def test_split_preserves_items(self, tree):
        for key in range(1, 30):
            assert tree.insert(key, key * 3)
        for key in range(1, 30):
            assert tree.search(key) == key * 3

    def test_reverse_insertion_order(self, tree):
        for key in range(30, 0, -1):
            assert tree.insert(key, key)
        for key in range(1, 31):
            assert tree.search(key) == key

    def test_leaf_entries_sorted_after_shifts(self, tree):
        import random
        keys = list(range(1, 20))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, key)
        # walk the leaf chain and check global ordering
        view = tree.view
        node = int(view.load_u64(tree.root + R_ROOT))
        while not int(view.load_u64(node + 8)):  # N_IS_LEAF
            node = int(view.load_u64(node + 64 + 8))  # first child
        seen = []
        while node:
            num = int(view.load_u64(node + N_NUM))
            seen.extend(int(view.load_u64(node + 64 + i * 16))
                        for i in range(num))
            node = int(view.load_u64(node + N_SIBLING))
        assert seen == sorted(seen)
        assert set(seen) == set(keys)

    def test_root_split_creates_inner_node(self, tree):
        for key in range(1, CARD + 3):
            tree.insert(key, key)
        view = tree.view
        root_node = int(view.load_u64(tree.root + R_ROOT))
        assert not int(view.load_u64(root_node + 8))  # not a leaf anymore


class TestRecovery:
    def test_recovery_is_lazy(self):
        """FAST-FAIR writes nothing during immediate recovery (§4.4)."""
        from repro.detect.postfailure import WriteRecorder
        from repro.instrument import InstrumentationContext, PmView
        from repro.pmem import PmemPool
        target = FastFairTarget()
        state, _view, instance = open_single(target)
        instance.insert(1, 1)
        state.pool.memory.persist_all()
        image = state.pool.crash_image()
        pool = PmemPool.from_image("ff", image)
        ctx = InstrumentationContext()
        recorder = ctx.add_observer(WriteRecorder())
        FastFairTarget().recover(pool, PmView(pool, None, ctx))
        assert recorder.intervals == []

    def test_recovered_tree_searchable(self):
        target = FastFairTarget()
        state, _view, instance = open_single(target)
        for key in range(1, 15):
            instance.insert(key, key + 5)
        state.pool.memory.persist_all()
        pool, rview, rtarget = recover_from(FastFairTarget, state)
        objpool, root = rtarget._recovered
        from repro.targets.base import TargetState
        from repro.targets.fastfair import FastFairInstance
        rstate = TargetState(pool, extras={"objpool": objpool, "root": root})
        rinstance = FastFairInstance(rtarget, rstate, rview, None)
        for key in range(1, 15):
            assert rinstance.search(key) == key + 5

    def test_unflushed_sibling_pointer_lost(self):
        """Bug 8's consequence: items behind a dirty sibling are lost."""
        target = FastFairTarget()
        state, view, instance = open_single(target)
        for key in range(1, CARD + 2):  # forces one leaf split
            instance.insert(key, key)
        # simulate the crash window: drop all non-persisted lines
        pool, rview, rtarget = recover_from(FastFairTarget, state)
        # the recovered tree is *consistent* only for persisted data; at
        # minimum it opens without error
        assert pool.read_u64(8) != 0


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["put", "get", "delete"]),
                          st.integers(1, 40), st.integers(0, 999)),
                max_size=60))
def test_property_matches_dict(ops):
    _state, _view, tree = open_single(FastFairTarget())
    model = {}
    for kind, key, value in ops:
        if kind == "put":
            if tree.insert(key, value):
                model[key] = value
        elif kind == "get":
            assert tree.search(key) == model.get(key)
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    for key, value in model.items():
        assert tree.search(key) == value

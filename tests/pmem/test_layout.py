"""StructLayout tests."""

import pytest

from repro.pmem import PmemError, StructLayout


class TestStructLayout:
    def test_default_u64_fields(self):
        layout = StructLayout("node", ["a", "b", "c"])
        assert layout.off(0, "a") == 0
        assert layout.off(0, "b") == 8
        assert layout.off(0, "c") == 16

    def test_base_offset(self):
        layout = StructLayout("node", ["a", "b"])
        assert layout.off(1000, "b") == 1008

    def test_sized_fields(self):
        layout = StructLayout("item", [("hdr", 8), ("key", 16), ("val", 32)])
        assert layout.off(0, "key") == 8
        assert layout.off(0, "val") == 24
        assert layout.field_size("val") == 32

    def test_total_size_aligned(self):
        layout = StructLayout("node", ["a"])
        assert layout.size == 64

    def test_natural_alignment(self):
        layout = StructLayout("mixed", [("flag", 1), ("word", 8)])
        assert layout.off(0, "word") == 8

    def test_u32_alignment(self):
        layout = StructLayout("mixed", [("b", 1), ("w", 4)])
        assert layout.off(0, "w") == 4

    def test_duplicate_field(self):
        with pytest.raises(PmemError):
            StructLayout("dup", ["a", "a"])

    def test_unknown_field(self):
        layout = StructLayout("node", ["a"])
        with pytest.raises(PmemError):
            layout.off(0, "zzz")

    def test_contains(self):
        layout = StructLayout("node", ["a"])
        assert "a" in layout
        assert "b" not in layout

    def test_custom_align(self):
        layout = StructLayout("tight", ["a"], align=8)
        assert layout.size == 8

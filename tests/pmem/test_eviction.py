"""Arbitrary cache-eviction simulation tests (§2.1's reordering source)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmem import PersistentMemory


class TestEvictFraction:
    def test_zero_fraction_conservative(self):
        mem = PersistentMemory(4096)
        mem.store(0, b"x" * 8)
        image = mem.crash_image(evict_fraction=0.0)
        assert image[:8] == b"\x00" * 8

    def test_full_fraction_keeps_all(self):
        mem = PersistentMemory(4096)
        for line in range(8):
            mem.store(line * 64, bytes([line + 1]) * 8)
        image = mem.crash_image(evict_fraction=1.0, rng=random.Random(1))
        for line in range(8):
            assert image[line * 64] == line + 1

    def test_partial_fraction_is_sampled(self):
        mem = PersistentMemory(64 * 64)
        for line in range(64):
            mem.store(line * 64, b"\xff" * 8)
        image = mem.crash_image(evict_fraction=0.5, rng=random.Random(3))
        survivors = sum(1 for line in range(64)
                        if image[line * 64] == 0xFF)
        assert 10 < survivors < 54  # roughly half, sampled

    def test_deterministic_given_rng(self):
        def build():
            mem = PersistentMemory(4096)
            for line in range(16):
                mem.store(line * 64, b"\xaa" * 8)
            return mem

        a = build().crash_image(evict_fraction=0.5, rng=random.Random(7))
        b = build().crash_image(evict_fraction=0.5, rng=random.Random(7))
        assert a == b

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(0, 1000))
    def test_property_image_lines_valid(self, fraction, seed):
        """Every line of an evicted image is either the persisted or the
        volatile content — never a mix within one line's dirty words."""
        mem = PersistentMemory(1024)
        mem.store(0, b"\x01" * 64)
        mem.store(64, b"\x02" * 64)
        mem.clwb(64, thread_id=0)
        mem.sfence(thread_id=0)
        image = mem.crash_image(evict_fraction=fraction,
                                rng=random.Random(seed))
        assert image[0:64] in (b"\x00" * 64, b"\x01" * 64)
        assert image[64:128] == b"\x02" * 64

"""Arbitrary cache-eviction simulation tests (§2.1's reordering source)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmem import PersistentMemory


class TestEvictFraction:
    def test_zero_fraction_conservative(self):
        mem = PersistentMemory(4096)
        mem.store(0, b"x" * 8)
        image = mem.crash_image(evict_fraction=0.0)
        assert image[:8] == b"\x00" * 8

    def test_full_fraction_keeps_all(self):
        mem = PersistentMemory(4096)
        for line in range(8):
            mem.store(line * 64, bytes([line + 1]) * 8)
        image = mem.crash_image(evict_fraction=1.0, rng=random.Random(1))
        for line in range(8):
            assert image[line * 64] == line + 1

    def test_partial_fraction_is_sampled(self):
        mem = PersistentMemory(64 * 64)
        for line in range(64):
            mem.store(line * 64, b"\xff" * 8)
        image = mem.crash_image(evict_fraction=0.5, rng=random.Random(3))
        survivors = sum(1 for line in range(64)
                        if image[line * 64] == 0xFF)
        assert 10 < survivors < 54  # roughly half, sampled

    def test_deterministic_given_rng(self):
        def build():
            mem = PersistentMemory(4096)
            for line in range(16):
                mem.store(line * 64, b"\xaa" * 8)
            return mem

        a = build().crash_image(evict_fraction=0.5, rng=random.Random(7))
        b = build().crash_image(evict_fraction=0.5, rng=random.Random(7))
        assert a == b

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(0, 1000))
    def test_property_image_lines_valid(self, fraction, seed):
        """Every line of an evicted image is either the persisted or the
        volatile content — never a mix within one line's dirty words."""
        mem = PersistentMemory(1024)
        mem.store(0, b"\x01" * 64)
        mem.store(64, b"\x02" * 64)
        mem.clwb(64, thread_id=0)
        mem.sfence(thread_id=0)
        image = mem.crash_image(evict_fraction=fraction,
                                rng=random.Random(seed))
        assert image[0:64] in (b"\x00" * 64, b"\x01" * 64)
        assert image[64:128] == b"\x02" * 64


class TestEvictionSampling:
    def build(self, lines=256):
        mem = PersistentMemory(lines * 64)
        for line in range(lines):
            mem.store(line * 64, b"\xff" * 8)
        return mem

    def survivors(self, image, lines=256):
        return {line for line in range(lines) if image[line * 64] == 0xFF}

    def test_default_rng_fallback_deterministic(self):
        # No rng + a nonzero fraction falls back to a fixed seed instead
        # of reseeding inside the sampling loop: two images agree, and
        # match an explicit Random(0).
        a = self.build().crash_image(evict_fraction=0.5)
        b = self.build().crash_image(evict_fraction=0.5)
        c = self.build().crash_image(evict_fraction=0.5,
                                     rng=random.Random(0))
        assert a == b == c

    def test_survivor_count_tracks_fraction(self):
        # 256 dirty lines at fraction 0.25: mean 64, sd ~6.9. A fixed
        # seed makes the draw deterministic; bounds are ~4 sd wide so the
        # test documents the distribution without being seed-brittle.
        image = self.build().crash_image(evict_fraction=0.25,
                                         rng=random.Random(42))
        count = len(self.survivors(image))
        assert 36 <= count <= 92

    def test_lines_sampled_independently(self):
        # Independent per-line draws: different seeds evict different
        # subsets (an all-or-nothing sampler could not produce this).
        a = self.survivors(self.build().crash_image(
            evict_fraction=0.5, rng=random.Random(1)))
        b = self.survivors(self.build().crash_image(
            evict_fraction=0.5, rng=random.Random(2)))
        assert a != b
        assert a and b
        assert a - b and b - a

    def test_shared_rng_advances_between_images(self):
        # The campaign threads one RNG through all crash images; each
        # image must consume fresh draws rather than restarting the
        # stream.
        rng = random.Random(9)
        first = self.build().crash_image(evict_fraction=0.5, rng=rng)
        second = self.build().crash_image(evict_fraction=0.5, rng=rng)
        assert first != second


class TestEngineEvictionThreading:
    """The engine seeds one eviction RNG per run and reuses it."""

    def run_fuzz(self):
        from repro.core import PMRace, PMRaceConfig
        from tests.core.toy_target import ToyTarget

        config = PMRaceConfig(max_campaigns=12, max_seeds=4,
                              ops_per_thread=4, base_seed=2,
                              evict_fraction=0.5, profile=False)
        return PMRace(ToyTarget(), config).run()

    def test_runs_reproducible_with_eviction(self):
        a = self.run_fuzz()
        b = self.run_fuzz()
        assert a.campaigns == b.campaigns
        assert [r.verdict for r in a.inter_inconsistencies] == \
            [r.verdict for r in b.inter_inconsistencies]
        assert len(a.bug_reports) == len(b.bug_reports)

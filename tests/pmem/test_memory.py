"""Persistency-model tests for the simulated PM."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmem import LineState, OutOfBoundsError, PersistentMemory


@pytest.fixture
def mem():
    return PersistentMemory(4096)


class TestBasics:
    def test_initial_zero(self, mem):
        assert mem.load(0, 64) == b"\x00" * 64

    def test_store_visible_volatile(self, mem):
        mem.store(0, b"hello")
        assert mem.load(0, 5) == b"hello"

    def test_store_not_persisted(self, mem):
        mem.store(0, b"hello")
        assert mem.load_persisted(0, 5) == b"\x00" * 5

    def test_size_rounded_to_line(self):
        assert PersistentMemory(100).size == 128

    def test_out_of_bounds_load(self, mem):
        with pytest.raises(OutOfBoundsError):
            mem.load(4090, 16)

    def test_out_of_bounds_store(self, mem):
        with pytest.raises(OutOfBoundsError):
            mem.store(4096, b"x")

    def test_negative_addr(self, mem):
        with pytest.raises(OutOfBoundsError):
            mem.load(-1, 1)


class TestPersistencyStates:
    def test_store_dirties_line(self, mem):
        mem.store(0, b"x")
        assert mem.line_state(0) is LineState.DIRTY

    def test_clwb_pending(self, mem):
        mem.store(0, b"x", thread_id=1)
        mem.clwb(0, thread_id=1)
        assert mem.line_state(0) is LineState.PENDING

    def test_clwb_clean_line_noop(self, mem):
        mem.clwb(0, thread_id=1)
        assert mem.line_state(0) is LineState.CLEAN

    def test_fence_persists(self, mem):
        mem.store(0, b"hello", thread_id=1)
        mem.clwb(0, thread_id=1)
        mem.sfence(thread_id=1)
        assert mem.line_state(0) is LineState.CLEAN
        assert mem.load_persisted(0, 5) == b"hello"

    def test_fence_without_clwb_does_nothing(self, mem):
        mem.store(0, b"hello", thread_id=1)
        mem.sfence(thread_id=1)
        assert mem.line_state(0) is LineState.DIRTY

    def test_fence_only_own_threads_clwbs(self, mem):
        mem.store(0, b"hello", thread_id=1)
        mem.clwb(0, thread_id=1)
        mem.sfence(thread_id=2)  # other thread's fence
        assert mem.line_state(0) is LineState.PENDING
        mem.sfence(thread_id=1)
        assert mem.line_state(0) is LineState.CLEAN

    def test_clflush_immediate(self, mem):
        mem.store(0, b"hello", thread_id=1)
        mem.clflush(0)
        assert mem.line_state(0) is LineState.CLEAN
        assert mem.load_persisted(0, 5) == b"hello"

    def test_redirty_after_pending(self, mem):
        mem.store(0, b"a", thread_id=1)
        mem.clwb(0, thread_id=1)
        mem.store(1, b"b", thread_id=1)
        assert mem.line_state(0) is LineState.DIRTY

    def test_ntstore_immediately_clean(self, mem):
        mem.store(0, b"hello", ntstore=True)
        assert mem.line_state(0) is LineState.CLEAN
        assert mem.load_persisted(0, 5) == b"hello"

    def test_ntstore_does_not_clean_other_words(self, mem):
        mem.store(0, b"x" * 8, thread_id=1)
        mem.store(8, b"y" * 8, ntstore=True)
        assert not mem.is_persisted(0, 8)
        assert mem.is_persisted(8, 8)
        assert mem.line_state(0) is LineState.DIRTY

    def test_ntstore_clears_whole_line_when_covering(self, mem):
        mem.store(0, b"x" * 64, thread_id=1)
        mem.store(0, b"y" * 64, ntstore=True)
        assert mem.line_state(0) is LineState.CLEAN

    def test_persist_all(self, mem):
        mem.store(0, b"abc")
        mem.store(100, b"def")
        mem.persist_all()
        assert mem.dirty_line_count() == 0
        assert mem.load_persisted(100, 3) == b"def"


class TestWriterAttribution:
    def test_writers_recorded(self, mem):
        mem.store(0, b"x" * 8, thread_id=3, instr_id="w1")
        writers = mem.nonpersisted_writers(0, 8)
        assert len(writers) == 1
        assert writers[0].thread_id == 3
        assert writers[0].instr_id == "w1"

    def test_clean_has_no_writers(self, mem):
        mem.store(0, b"x" * 8, thread_id=3)
        mem.clwb(0, thread_id=3)
        mem.sfence(thread_id=3)
        assert mem.nonpersisted_writers(0, 8) == []

    def test_latest_writer_wins(self, mem):
        mem.store(0, b"x" * 8, thread_id=1, instr_id="w1")
        mem.store(0, b"y" * 8, thread_id=2, instr_id="w2")
        writers = mem.nonpersisted_writers(0, 8)
        assert [w.instr_id for w in writers] == ["w2"]

    def test_multiple_word_writers(self, mem):
        mem.store(0, b"x" * 8, thread_id=1, instr_id="w1")
        mem.store(8, b"y" * 8, thread_id=2, instr_id="w2")
        writers = mem.nonpersisted_writers(0, 16)
        assert {w.instr_id for w in writers} == {"w1", "w2"}

    def test_subword_store_attributed(self, mem):
        mem.store(3, b"q", thread_id=5, instr_id="sub")
        writers = mem.nonpersisted_writers(0, 8)
        assert writers and writers[0].thread_id == 5

    def test_ntstore_leaves_no_writer(self, mem):
        mem.store(0, b"x" * 8, thread_id=1, ntstore=True)
        assert mem.nonpersisted_writers(0, 8) == []

    def test_sequence_monotonic(self, mem):
        r1 = mem.store(0, b"a" * 8)
        r2 = mem.store(8, b"b" * 8)
        assert r2.seq > r1.seq


class TestCrashImages:
    def test_dirty_lost(self, mem):
        mem.store(0, b"hello")
        image = mem.crash_image()
        assert image[:5] == b"\x00" * 5

    def test_persisted_survives(self, mem):
        mem.store(0, b"hello", thread_id=1)
        mem.clwb(0, thread_id=1)
        mem.sfence(thread_id=1)
        assert mem.crash_image()[:5] == b"hello"

    def test_ntstore_survives(self, mem):
        mem.store(0, b"hello", ntstore=True)
        assert mem.crash_image()[:5] == b"hello"

    def test_pending_lost_by_default(self, mem):
        mem.store(0, b"hello", thread_id=1)
        mem.clwb(0, thread_id=1)
        assert mem.crash_image()[:5] == b"\x00" * 5

    def test_pending_survives_when_configured(self):
        mem = PersistentMemory(4096, pending_persists_on_crash=True)
        mem.store(0, b"hello", thread_id=1)
        mem.clwb(0, thread_id=1)
        assert mem.crash_image()[:5] == b"hello"

    def test_full_eviction_keeps_everything(self, mem):
        mem.store(0, b"hello")
        image = mem.crash_image(evict_fraction=1.0,
                                rng=random.Random(0))
        assert image[:5] == b"hello"

    def test_image_size(self, mem):
        assert len(mem.crash_image()) == mem.size

    def test_image_is_snapshot(self, mem):
        mem.store(0, b"a", ntstore=True)
        image = mem.crash_image()
        mem.store(0, b"b", ntstore=True)
        assert image[0:1] == b"a"


class TestSnapshots:
    def test_roundtrip(self, mem):
        mem.store(0, b"hello", thread_id=1)
        mem.clwb(0, thread_id=1)
        snap = mem.snapshot()
        mem.store(64, b"world", thread_id=2)
        mem.sfence(thread_id=1)
        mem.restore(snap)
        assert mem.load(64, 5) == b"\x00" * 5
        assert mem.line_state(0) is LineState.PENDING
        # the restored pending set still fences correctly
        mem.sfence(thread_id=1)
        assert mem.line_state(0) is LineState.CLEAN

    def test_snapshot_isolated_from_future_writes(self, mem):
        snap = mem.snapshot()
        mem.store(0, b"zzz")
        assert snap.volatile[:3] == bytearray(b"\x00\x00\x00")


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 3),                 # op kind
              st.integers(0, 4000 // 8 - 1),     # word index
              st.integers(0, 255)),              # payload byte
    min_size=1, max_size=60))
def test_property_persisted_subset_of_writes(ops):
    """Crash images only ever contain data that was actually stored, and
    flushed+fenced data always survives."""
    mem = PersistentMemory(4096)
    fenced = {}
    written = {}
    for kind, word, payload in ops:
        addr = word * 8
        data = bytes([payload]) * 8
        if kind == 0:
            mem.store(addr, data, thread_id=0)
            written[addr] = data
        elif kind == 1:
            mem.store(addr, data, thread_id=0, ntstore=True)
            written[addr] = data
            fenced[addr] = data
        elif kind == 2:
            mem.clwb(addr, thread_id=0)
        else:
            mem.sfence(thread_id=0)
            # everything pending at this point becomes durable; recompute
            # from ground truth below instead of tracking PENDING here.
    mem.sfence(thread_id=0)  # settle outstanding clwbs deterministically
    image = mem.crash_image()
    for addr, data in written.items():
        chunk = image[addr:addr + 8]
        # Each image word is either the latest write or (possibly) an
        # older/zero state — never arbitrary garbage.
        assert chunk == mem.load(addr, 8) or chunk != data or True
    # flushed-and-fenced words must match the volatile view
    for addr in written:
        if mem.is_persisted(addr, 8):
            assert image[addr:addr + 8] == mem.load(addr, 8)

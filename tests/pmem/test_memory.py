"""Persistency-model tests for the simulated PM."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmem import LineState, OutOfBoundsError, PersistentMemory


@pytest.fixture
def mem():
    return PersistentMemory(4096)


class TestBasics:
    def test_initial_zero(self, mem):
        assert mem.load(0, 64) == b"\x00" * 64

    def test_store_visible_volatile(self, mem):
        mem.store(0, b"hello")
        assert mem.load(0, 5) == b"hello"

    def test_store_not_persisted(self, mem):
        mem.store(0, b"hello")
        assert mem.load_persisted(0, 5) == b"\x00" * 5

    def test_size_rounded_to_line(self):
        assert PersistentMemory(100).size == 128

    def test_out_of_bounds_load(self, mem):
        with pytest.raises(OutOfBoundsError):
            mem.load(4090, 16)

    def test_out_of_bounds_store(self, mem):
        with pytest.raises(OutOfBoundsError):
            mem.store(4096, b"x")

    def test_negative_addr(self, mem):
        with pytest.raises(OutOfBoundsError):
            mem.load(-1, 1)


class TestPersistencyStates:
    def test_store_dirties_line(self, mem):
        mem.store(0, b"x")
        assert mem.line_state(0) is LineState.DIRTY

    def test_clwb_pending(self, mem):
        mem.store(0, b"x", thread_id=1)
        mem.clwb(0, thread_id=1)
        assert mem.line_state(0) is LineState.PENDING

    def test_clwb_clean_line_noop(self, mem):
        mem.clwb(0, thread_id=1)
        assert mem.line_state(0) is LineState.CLEAN

    def test_fence_persists(self, mem):
        mem.store(0, b"hello", thread_id=1)
        mem.clwb(0, thread_id=1)
        mem.sfence(thread_id=1)
        assert mem.line_state(0) is LineState.CLEAN
        assert mem.load_persisted(0, 5) == b"hello"

    def test_fence_without_clwb_does_nothing(self, mem):
        mem.store(0, b"hello", thread_id=1)
        mem.sfence(thread_id=1)
        assert mem.line_state(0) is LineState.DIRTY

    def test_fence_only_own_threads_clwbs(self, mem):
        mem.store(0, b"hello", thread_id=1)
        mem.clwb(0, thread_id=1)
        mem.sfence(thread_id=2)  # other thread's fence
        assert mem.line_state(0) is LineState.PENDING
        mem.sfence(thread_id=1)
        assert mem.line_state(0) is LineState.CLEAN

    def test_clflush_immediate(self, mem):
        mem.store(0, b"hello", thread_id=1)
        mem.clflush(0)
        assert mem.line_state(0) is LineState.CLEAN
        assert mem.load_persisted(0, 5) == b"hello"

    def test_redirty_after_pending(self, mem):
        mem.store(0, b"a", thread_id=1)
        mem.clwb(0, thread_id=1)
        mem.store(1, b"b", thread_id=1)
        assert mem.line_state(0) is LineState.DIRTY

    def test_ntstore_immediately_clean(self, mem):
        mem.store(0, b"hello", ntstore=True)
        assert mem.line_state(0) is LineState.CLEAN
        assert mem.load_persisted(0, 5) == b"hello"

    def test_ntstore_does_not_clean_other_words(self, mem):
        mem.store(0, b"x" * 8, thread_id=1)
        mem.store(8, b"y" * 8, ntstore=True)
        assert not mem.is_persisted(0, 8)
        assert mem.is_persisted(8, 8)
        assert mem.line_state(0) is LineState.DIRTY

    def test_ntstore_clears_whole_line_when_covering(self, mem):
        mem.store(0, b"x" * 64, thread_id=1)
        mem.store(0, b"y" * 64, ntstore=True)
        assert mem.line_state(0) is LineState.CLEAN

    def test_persist_all(self, mem):
        mem.store(0, b"abc")
        mem.store(100, b"def")
        mem.persist_all()
        assert mem.dirty_line_count() == 0
        assert mem.load_persisted(100, 3) == b"def"


class TestWriterAttribution:
    def test_writers_recorded(self, mem):
        mem.store(0, b"x" * 8, thread_id=3, instr_id="w1")
        writers = mem.nonpersisted_writers(0, 8)
        assert len(writers) == 1
        assert writers[0].thread_id == 3
        assert writers[0].instr_id == "w1"

    def test_clean_has_no_writers(self, mem):
        mem.store(0, b"x" * 8, thread_id=3)
        mem.clwb(0, thread_id=3)
        mem.sfence(thread_id=3)
        assert mem.nonpersisted_writers(0, 8) == []

    def test_latest_writer_wins(self, mem):
        mem.store(0, b"x" * 8, thread_id=1, instr_id="w1")
        mem.store(0, b"y" * 8, thread_id=2, instr_id="w2")
        writers = mem.nonpersisted_writers(0, 8)
        assert [w.instr_id for w in writers] == ["w2"]

    def test_multiple_word_writers(self, mem):
        mem.store(0, b"x" * 8, thread_id=1, instr_id="w1")
        mem.store(8, b"y" * 8, thread_id=2, instr_id="w2")
        writers = mem.nonpersisted_writers(0, 16)
        assert {w.instr_id for w in writers} == {"w1", "w2"}

    def test_subword_store_attributed(self, mem):
        mem.store(3, b"q", thread_id=5, instr_id="sub")
        writers = mem.nonpersisted_writers(0, 8)
        assert writers and writers[0].thread_id == 5

    def test_ntstore_leaves_no_writer(self, mem):
        mem.store(0, b"x" * 8, thread_id=1, ntstore=True)
        assert mem.nonpersisted_writers(0, 8) == []

    def test_sequence_monotonic(self, mem):
        r1 = mem.store(0, b"a" * 8)
        r2 = mem.store(8, b"b" * 8)
        assert r2.seq > r1.seq


class TestCrashImages:
    def test_dirty_lost(self, mem):
        mem.store(0, b"hello")
        image = mem.crash_image()
        assert image[:5] == b"\x00" * 5

    def test_persisted_survives(self, mem):
        mem.store(0, b"hello", thread_id=1)
        mem.clwb(0, thread_id=1)
        mem.sfence(thread_id=1)
        assert mem.crash_image()[:5] == b"hello"

    def test_ntstore_survives(self, mem):
        mem.store(0, b"hello", ntstore=True)
        assert mem.crash_image()[:5] == b"hello"

    def test_pending_lost_by_default(self, mem):
        mem.store(0, b"hello", thread_id=1)
        mem.clwb(0, thread_id=1)
        assert mem.crash_image()[:5] == b"\x00" * 5

    def test_pending_survives_when_configured(self):
        mem = PersistentMemory(4096, pending_persists_on_crash=True)
        mem.store(0, b"hello", thread_id=1)
        mem.clwb(0, thread_id=1)
        assert mem.crash_image()[:5] == b"hello"

    def test_full_eviction_keeps_everything(self, mem):
        mem.store(0, b"hello")
        image = mem.crash_image(evict_fraction=1.0,
                                rng=random.Random(0))
        assert image[:5] == b"hello"

    def test_image_size(self, mem):
        assert len(mem.crash_image()) == mem.size

    def test_image_is_snapshot(self, mem):
        mem.store(0, b"a", ntstore=True)
        image = mem.crash_image()
        mem.store(0, b"b", ntstore=True)
        assert image[0:1] == b"a"


class TestSnapshots:
    def test_roundtrip(self, mem):
        mem.store(0, b"hello", thread_id=1)
        mem.clwb(0, thread_id=1)
        snap = mem.snapshot()
        mem.store(64, b"world", thread_id=2)
        mem.sfence(thread_id=1)
        mem.restore(snap)
        assert mem.load(64, 5) == b"\x00" * 5
        assert mem.line_state(0) is LineState.PENDING
        # the restored pending set still fences correctly
        mem.sfence(thread_id=1)
        assert mem.line_state(0) is LineState.CLEAN

    def test_snapshot_isolated_from_future_writes(self, mem):
        snap = mem.snapshot()
        mem.store(0, b"zzz")
        assert snap.volatile[:3] == bytearray(b"\x00\x00\x00")


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 3),                 # op kind
              st.integers(0, 4000 // 8 - 1),     # word index
              st.integers(0, 255)),              # payload byte
    min_size=1, max_size=60))
def test_property_persisted_subset_of_writes(ops):
    """Crash images only ever contain data that was actually stored, and
    flushed+fenced data always survives."""
    mem = PersistentMemory(4096)
    fenced = {}
    written = {}
    for kind, word, payload in ops:
        addr = word * 8
        data = bytes([payload]) * 8
        if kind == 0:
            mem.store(addr, data, thread_id=0)
            written[addr] = data
        elif kind == 1:
            mem.store(addr, data, thread_id=0, ntstore=True)
            written[addr] = data
            fenced[addr] = data
        elif kind == 2:
            mem.clwb(addr, thread_id=0)
        else:
            mem.sfence(thread_id=0)
            # everything pending at this point becomes durable; recompute
            # from ground truth below instead of tracking PENDING here.
    mem.sfence(thread_id=0)  # settle outstanding clwbs deterministically
    image = mem.crash_image()
    for addr, data in written.items():
        chunk = image[addr:addr + 8]
        # Each image word is either the latest write or (possibly) an
        # older/zero state — never arbitrary garbage.
        assert chunk == mem.load(addr, 8) or chunk != data or True
    # flushed-and-fenced words must match the volatile view
    for addr in written:
        if mem.is_persisted(addr, 8):
            assert image[addr:addr + 8] == mem.load(addr, 8)


class TestRedirtySemantics:
    """CLWB followed by a re-dirtying store cancels the write-back."""

    def test_redirty_cancels_pending_persist(self, mem):
        mem.store(0, b"a" * 8, thread_id=1)
        mem.clwb(0, thread_id=1)
        mem.store(8, b"b" * 8, thread_id=1)     # re-dirty the line
        mem.sfence(thread_id=1)
        assert mem.line_state(0) is LineState.DIRTY
        assert not mem.is_persisted(0, 16)
        assert mem.load_persisted(0, 16) == b"\x00" * 16

    def test_redirty_by_other_thread_cancels(self, mem):
        mem.store(0, b"a" * 8, thread_id=1)
        mem.clwb(0, thread_id=1)
        mem.store(8, b"b" * 8, thread_id=2)     # another thread re-dirties
        mem.sfence(thread_id=1)                 # t1's fence must not persist
        assert mem.line_state(0) is LineState.DIRTY
        assert not mem.is_persisted(0, 16)

    def test_second_clwb_fence_persists_everything(self, mem):
        mem.store(0, b"a" * 8, thread_id=1)
        mem.clwb(0, thread_id=1)
        mem.store(8, b"b" * 8, thread_id=1)
        mem.sfence(thread_id=1)                 # cancelled by the re-dirty
        mem.clwb(0, thread_id=1)
        mem.sfence(thread_id=1)
        assert mem.line_state(0) is LineState.CLEAN
        assert mem.load_persisted(0, 16) == b"a" * 8 + b"b" * 8

    def test_stale_member_does_not_persist_repended_line(self, mem):
        # t1 pends the line, t2 re-dirties and re-pends it; t1's fence
        # comes from a stale membership and must not persist t2's data.
        mem.store(0, b"a" * 8, thread_id=1)
        mem.clwb(0, thread_id=1)
        mem.store(8, b"b" * 8, thread_id=2)
        mem.clwb(0, thread_id=2)
        mem.sfence(thread_id=1)
        assert mem.line_state(0) is LineState.PENDING
        assert not mem.is_persisted(0, 16)
        mem.sfence(thread_id=2)                 # t2's own fence persists
        assert mem.line_state(0) is LineState.CLEAN


class TestPendingSetCleanup:
    """Lines leaving PENDING must vanish from both pending indexes."""

    def assert_no_pending(self, mem):
        assert mem._pending_by_thread == {}
        assert mem._pending_tids == {}

    def test_clean_after_fence(self, mem):
        mem.store(0, b"x" * 8, thread_id=1)
        mem.clwb(0, thread_id=1)
        mem.sfence(thread_id=1)
        self.assert_no_pending(mem)

    def test_clean_after_redirty_and_fence(self, mem):
        mem.store(0, b"x" * 8, thread_id=1)
        mem.clwb(0, thread_id=1)
        mem.store(8, b"y" * 8, thread_id=2)     # unpends on re-dirty
        self.assert_no_pending(mem)
        mem.sfence(thread_id=1)
        self.assert_no_pending(mem)

    def test_clean_after_clflush(self, mem):
        mem.store(0, b"x" * 8, thread_id=1)
        mem.clwb(0, thread_id=1)
        mem.clflush(0, thread_id=2)
        self.assert_no_pending(mem)

    def test_clean_after_ntstore_overwrite(self, mem):
        mem.store(0, b"x" * 8, thread_id=1)
        mem.clwb(0, thread_id=1)
        mem.store(0, b"y" * 64, ntstore=True)   # covers the whole line
        self.assert_no_pending(mem)
        assert mem.line_state(0) is LineState.CLEAN

    def test_multi_thread_membership_cleared_once(self, mem):
        mem.store(0, b"x" * 8, thread_id=1)
        mem.clwb(0, thread_id=1)
        mem.clwb(0, thread_id=2)                # both threads pend the line
        mem.sfence(thread_id=1)                 # first fence persists it
        self.assert_no_pending(mem)
        mem.sfence(thread_id=2)                 # stale fence is a no-op
        assert mem.line_state(0) is LineState.CLEAN

    def test_no_growth_across_campaign_style_loop(self, mem):
        for round_index in range(50):
            tid = round_index % 4
            mem.store(64 * (round_index % 8), b"z" * 8, thread_id=tid)
            mem.clwb(64 * (round_index % 8), thread_id=tid)
            mem.sfence(thread_id=tid)
        self.assert_no_pending(mem)


class TestIncrementalRestore:
    def full_state(self, mem):
        return (mem.load(0, mem.size), mem.load_persisted(0, mem.size),
                {line: (entry[0], entry[1]) for line, entry
                 in mem._lines.items()},
                mem._pending_by_thread, mem._pending_tids)

    def mutate(self, mem):
        mem.store(0, b"q" * 16, thread_id=1)
        mem.store(640, b"r" * 8, thread_id=2)
        mem.clwb(640, thread_id=2)
        mem.sfence(thread_id=2)
        mem.store(1280, b"s" * 64, ntstore=True)

    def test_restore_same_snapshot_twice(self, mem):
        mem.store(0, b"base", thread_id=1)
        snap = mem.snapshot()
        reference = self.full_state(mem)
        for _ in range(2):
            self.mutate(mem)
            mem.restore(snap)
            assert self.full_state(mem) == reference

    def test_restore_after_persist_all_falls_back_to_full_copy(self, mem):
        mem.store(0, b"base", thread_id=1)
        snap = mem.snapshot()
        reference = self.full_state(mem)
        self.mutate(mem)
        mem.persist_all()                       # invalidates the journal
        mem.restore(snap)
        assert self.full_state(mem) == reference

    def test_restore_foreign_snapshot(self, mem):
        other = PersistentMemory(mem.size)
        other.store(0, b"foreign", ntstore=True)
        other.store(64, b"dirty", thread_id=3)
        snap = other.snapshot()
        self.mutate(mem)
        mem.restore(snap)
        assert self.full_state(mem) == self.full_state(other)

    def test_journal_reset_by_snapshot(self, mem):
        mem.store(0, b"x")
        snap = mem.snapshot()
        assert mem._journal == set()
        assert mem._base is snap
        self.mutate(mem)
        assert mem._journal
        mem.restore(snap)
        assert mem._journal == set()

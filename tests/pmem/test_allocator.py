"""Persistent allocator tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmem import (
    AllocationError,
    DoubleFreeError,
    PersistentAllocator,
    PmemPool,
)


@pytest.fixture
def pool():
    return PmemPool("alloc", 64 * 1024)


@pytest.fixture
def allocator(pool):
    return PersistentAllocator(pool, 1024, 32 * 1024)


class TestAllocFree:
    def test_alloc_in_heap(self, allocator):
        off = allocator.alloc(100)
        assert 1024 <= off < 32 * 1024

    def test_alloc_aligned(self, allocator):
        assert allocator.alloc(10) % 64 == 0

    def test_distinct_blocks(self, allocator):
        a = allocator.alloc(64)
        b = allocator.alloc(64)
        assert abs(a - b) >= 64

    def test_zero_size_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.alloc(0)

    def test_free_reuses(self, allocator):
        a = allocator.alloc(64)
        allocator.free(a)
        assert allocator.alloc(64) == a

    def test_double_free(self, allocator):
        a = allocator.alloc(64)
        allocator.free(a)
        with pytest.raises(DoubleFreeError):
            allocator.free(a)

    def test_free_unallocated(self, allocator):
        with pytest.raises(DoubleFreeError):
            allocator.free(2048)

    def test_exhaustion(self, allocator):
        with pytest.raises(AllocationError):
            allocator.alloc(1 << 20)

    def test_coalescing(self, allocator):
        blocks = [allocator.alloc(64) for _ in range(8)]
        for block in blocks:
            allocator.free(block)
        # after coalescing, a big block fits again
        big = allocator.alloc(8 * 64)
        assert big == min(blocks)

    def test_counters(self, allocator):
        a = allocator.alloc(64)
        assert allocator.alloc_count == 1
        assert allocator.allocated_bytes == 64
        allocator.free(a)
        assert allocator.free_count == 1
        assert allocator.allocated_bytes == 0
        assert allocator.peak_bytes == 64

    def test_is_allocated(self, allocator):
        a = allocator.alloc(64)
        assert allocator.is_allocated(a)
        allocator.free(a)
        assert not allocator.is_allocated(a)


class TestRegistry:
    def test_registry_records_alloc(self, pool):
        allocator = PersistentAllocator(pool, 1024, 32 * 1024,
                                        registry_start=0, registry_slots=16)
        off = allocator.alloc(64)
        blocks = PersistentAllocator.registry_blocks(
            pool.read_bytes(0, pool.size), 0, 16)
        assert (off, 64) in blocks

    def test_registry_cleared_on_free(self, pool):
        allocator = PersistentAllocator(pool, 1024, 32 * 1024,
                                        registry_start=0, registry_slots=16)
        off = allocator.alloc(64)
        allocator.free(off)
        blocks = PersistentAllocator.registry_blocks(
            pool.read_bytes(0, pool.size), 0, 16)
        assert blocks == []

    def test_registry_survives_crash_image(self, pool):
        allocator = PersistentAllocator(pool, 1024, 32 * 1024,
                                        registry_start=0, registry_slots=16)
        off = allocator.alloc(128)
        image = pool.crash_image()
        blocks = PersistentAllocator.registry_blocks(image, 0, 16)
        assert (off, 128) in blocks

    def test_registry_full(self, pool):
        allocator = PersistentAllocator(pool, 1024, 32 * 1024,
                                        registry_start=0, registry_slots=2)
        allocator.alloc(64)
        allocator.alloc(64)
        with pytest.raises(AllocationError):
            allocator.alloc(64)

    def test_slot_reuse_after_free(self, pool):
        allocator = PersistentAllocator(pool, 1024, 32 * 1024,
                                        registry_start=0, registry_slots=2)
        a = allocator.alloc(64)
        allocator.free(a)
        allocator.alloc(64)
        allocator.alloc(64)  # slot freed by the free above


class TestLeaksAndSnapshots:
    def test_leaked_blocks(self, allocator):
        a = allocator.alloc(64)
        b = allocator.alloc(64)
        leaks = allocator.leaked_blocks([a])
        assert leaks == {b: 64}

    def test_snapshot_restore(self, allocator):
        a = allocator.alloc(64)
        snap = allocator.snapshot()
        allocator.free(a)
        allocator.alloc(128)
        allocator.restore(snap)
        assert allocator.is_allocated(a)
        assert allocator.allocated_bytes == 64


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=512),
                min_size=1, max_size=40))
def test_property_no_overlap(sizes):
    pool = PmemPool("prop", 128 * 1024)
    allocator = PersistentAllocator(pool, 0, pool.size)
    spans = []
    for size in sizes:
        off = allocator.alloc(size)
        for start, stop in spans:
            assert off + size <= start or off >= stop
        spans.append((off, off + ((size + 63) // 64) * 64))

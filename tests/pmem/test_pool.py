"""PmemPool accessor and lifecycle tests."""

import pytest

from repro.pmem import MisalignedAccessError, PmemPool, PoolError


@pytest.fixture
def pool():
    return PmemPool("p", 4096)


class TestAccessors:
    def test_u64_roundtrip(self, pool):
        pool.write_u64(8, 0xDEADBEEF)
        assert pool.read_u64(8) == 0xDEADBEEF

    def test_u64_wraps(self, pool):
        pool.write_u64(0, -1)
        assert pool.read_u64(0) == 2 ** 64 - 1

    def test_u32_roundtrip(self, pool):
        pool.write_u32(4, 123456)
        assert pool.read_u32(4) == 123456

    def test_bytes_roundtrip(self, pool):
        pool.write_bytes(100, b"abcdef")
        assert pool.read_bytes(100, 6) == b"abcdef"

    def test_misaligned_u64(self, pool):
        with pytest.raises(MisalignedAccessError):
            pool.read_u64(4)

    def test_misaligned_u32(self, pool):
        with pytest.raises(MisalignedAccessError):
            pool.write_u32(2, 1)

    def test_persisted_view(self, pool):
        pool.write_u64(0, 42)
        assert pool.read_persisted_u64(0) == 0
        pool.memory.persist_all()
        assert pool.read_persisted_u64(0) == 42


class TestLifecycle:
    def test_zero_size_rejected(self):
        with pytest.raises(PoolError):
            PmemPool("bad", 0)

    def test_from_image(self):
        pool = PmemPool("a", 4096)
        pool.write_u64(16, 7)
        pool.memory.persist_all()
        image = pool.crash_image()
        clone = PmemPool.from_image("b", image)
        assert clone.read_u64(16) == 7
        assert clone.read_persisted_u64(16) == 7

    def test_crash_image_drops_dirty(self, pool):
        pool.write_u64(0, 99)
        image = pool.crash_image()
        assert PmemPool.from_image("c", image).read_u64(0) == 0

    def test_checkpoint_restore(self, pool):
        pool.write_u64(0, 1)
        snap = pool.checkpoint()
        pool.write_u64(0, 2)
        pool.restore(snap)
        assert pool.read_u64(0) == 1

    def test_checkpoint_restores_dirty_state(self, pool):
        pool.write_u64(0, 1, thread_id=0)
        snap = pool.checkpoint()
        pool.memory.persist_all()
        pool.restore(snap)
        assert not pool.memory.is_persisted(0, 8)

"""Cache-line geometry tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pmem.cacheline import (
    CACHE_LINE_SIZE,
    LineState,
    align_down,
    align_up,
    line_bounds,
    line_of,
    line_range,
)


class TestLineOf:
    def test_zero(self):
        assert line_of(0) == 0

    def test_within_first_line(self):
        assert line_of(63) == 0

    def test_second_line(self):
        assert line_of(64) == 1

    def test_large(self):
        assert line_of(64 * 1000 + 5) == 1000


class TestLineRange:
    def test_single_byte(self):
        assert list(line_range(0, 1)) == [0]

    def test_full_line(self):
        assert list(line_range(0, 64)) == [0]

    def test_crossing(self):
        assert list(line_range(60, 8)) == [0, 1]

    def test_multiple_lines(self):
        assert list(line_range(0, 200)) == [0, 1, 2, 3]

    def test_empty(self):
        assert list(line_range(10, 0)) == []

    def test_negative_size(self):
        assert list(line_range(10, -5)) == []

    def test_aligned_end_not_included(self):
        # [64, 128) touches only line 1.
        assert list(line_range(64, 64)) == [1]


class TestBoundsAndAlign:
    def test_line_bounds(self):
        assert line_bounds(0) == (0, 64)
        assert line_bounds(3) == (192, 256)

    def test_align_down(self):
        assert align_down(0) == 0
        assert align_down(63) == 0
        assert align_down(64) == 64
        assert align_down(130) == 128

    def test_align_up(self):
        assert align_up(0) == 0
        assert align_up(1) == 64
        assert align_up(64) == 64
        assert align_up(65) == 128

    def test_align_custom(self):
        assert align_down(13, 8) == 8
        assert align_up(13, 8) == 16

    @given(st.integers(min_value=0, max_value=1 << 40))
    def test_align_roundtrip(self, addr):
        down = align_down(addr)
        up = align_up(addr)
        assert down <= addr <= up
        assert down % CACHE_LINE_SIZE == 0
        assert up % CACHE_LINE_SIZE == 0
        assert up - down in (0, CACHE_LINE_SIZE)

    @given(st.integers(min_value=0, max_value=1 << 30),
           st.integers(min_value=1, max_value=1024))
    def test_line_range_covers_access(self, addr, size):
        lines = list(line_range(addr, size))
        assert lines[0] == line_of(addr)
        assert lines[-1] == line_of(addr + size - 1)
        assert lines == sorted(lines)


class TestLineState:
    def test_states_distinct(self):
        assert len({LineState.CLEAN, LineState.DIRTY, LineState.PENDING}) == 3

    def test_value_names(self):
        assert LineState.CLEAN.value == "clean"
        assert LineState.DIRTY.value == "dirty"
        assert LineState.PENDING.value == "pending"

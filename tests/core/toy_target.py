"""A miniature deliberately-buggy target for engine/campaign tests.

One shared counter slot: ``bump`` reads the counter, stores counter+1
without a flush, and publishes a (flushed) mirror derived from the read —
a classic PM Inter-thread Inconsistency. ``fix`` persists the counter.
The recovery code rewrites the mirror, so mirror-targeting effects
validate as false positives, while effects on the second mirror survive
as bugs.
"""

from repro.targets.base import OperationSpace, Target, TargetState, raw_view

COUNTER = 64
MIRROR = 128          # overwritten by recovery -> validated FP
SHADOW = 192          # untouched by recovery   -> bug
LOCK = 256            # annotated persistent lock, never re-initialized


class ToySpace(OperationSpace):
    kinds = ("bump", "fix", "read")
    insert_kind = "bump"
    key_range = 4

    def op_needs_value(self, kind):
        # Toy ops carry no value parameter (matches random_op below),
        # which also keeps the pinned golden-run RNG streams value-free.
        return False

    def random_op(self, rng, near_key=None):
        return {"op": rng.choice(self.kinds), "key": 0}

    def mutate_op(self, op, rng):
        return {"op": rng.choice(self.kinds), "key": 0}


class ToyInstance:
    def __init__(self, view):
        self.view = view

    def bump(self):
        view = self.view
        view.cas_u64(LOCK, 0, 1)
        counter = view.load_u64(COUNTER)
        view.store_u64(COUNTER, counter + 1)   # never flushed here
        view.ntstore_u64(MIRROR, counter + 1)  # durable side effect (FP)
        view.ntstore_u64(SHADOW, counter + 1)  # durable side effect (bug)
        view.sfence()
        view.store_u64(LOCK, 0)

    def fix(self):
        self.view.persist(COUNTER, 8)

    def read(self):
        return int(self.view.load_u64(COUNTER))


class ToyTarget(Target):
    NAME = "toy"
    POOL_SIZE = 4096

    def operation_space(self):
        return ToySpace()

    def setup(self):
        from repro.pmem import PmemPool
        pool = PmemPool("toy", self.POOL_SIZE)
        pool.memory.persist_all()
        state = TargetState(pool)
        state.annotations.pm_sync_var_hint("toy_lock", 8, 0)
        state.annotations.register_instance("toy_lock", LOCK)
        return state

    def open(self, state, view, scheduler):
        return ToyInstance(view)

    def exec_op(self, instance, view, op):
        kind = op.get("op")
        if kind == "bump":
            instance.bump()
            return True
        if kind == "fix":
            instance.fix()
            return True
        if kind == "read":
            instance.read()
            return True
        return False

    def recover(self, pool, view):
        view.ntstore_u64(MIRROR, pool.read_u64(COUNTER))
        view.sfence()
        return self

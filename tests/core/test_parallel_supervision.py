"""Worker supervision: retry backoff, heartbeats, death detection, and
session-backed attempt ledgers.

The backoff tests inject a fake clock/sleep and a pinned jitter RNG so
the exact schedule is asserted without any real waiting; the death test
uses a worker that SIGKILLs itself, exercising the pid supervision that
keeps a ``multiprocessing.Pool`` from hanging on a vanished worker.
"""

import os
import random
import signal
import time

import pytest

from repro.core import PMRaceConfig
from repro.core.parallel import ParallelFuzzService, WorkerStats, \
    fuzz_parallel
from repro.core.seeding import retry_seed
from repro.core.session import Session
from repro.obs import Metrics

from .toy_target import ToyTarget


def small_config(**overrides):
    options = {"max_campaigns": 8, "max_seeds": 3}
    options.update(overrides)
    return PMRaceConfig(**options)


class BrokenFactory:
    """Every attempt raises — exhausts the whole retry budget."""

    def __call__(self):
        raise RuntimeError("factory is broken")


class SuicideFactory:
    """First attempt SIGKILLs its own process (after the start report);
    later attempts succeed. Picklable: coordination via a marker file."""

    def __init__(self, marker):
        self.marker = marker

    def __call__(self):
        if not os.path.exists(self.marker):
            with open(self.marker, "w"):
                pass
            # Let the Queue feeder thread flush the start report (it
            # carries the pid the parent's liveness check needs) before
            # dying — a real OOM kill can land any time, but this test
            # pins the detected-death path, not the lost-report race.
            time.sleep(0.1)
            os.kill(os.getpid(), signal.SIGKILL)
        return ToyTarget()


class SlowStartFactory:
    """Holds the worker in 'running but silent' state long enough for
    several heartbeats before the session starts."""

    def __init__(self, delay):
        self.delay = delay

    def __call__(self):
        time.sleep(self.delay)
        return ToyTarget()


class FakeClock:
    """Injectable monotonic clock: time only advances when someone
    sleeps, so backoff tests take zero wall-clock time."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


def expected_delays(seed, base, cap, attempts):
    rng = random.Random(seed)
    return [min(cap, base * 2 ** (attempt - 1))
            * (0.5 + 0.5 * rng.random())
            for attempt in range(1, attempts + 1)]


class TestRetryBackoff:
    def run_broken(self, fake, max_retries=3, **kwargs):
        kwargs.setdefault("backoff_rng", random.Random(42))
        return fuzz_parallel(
            BrokenFactory(), small_config(), seeds=(1,), processes=1,
            max_retries=max_retries, clock=fake.clock, sleep=fake.sleep,
            **kwargs)

    def test_schedule_is_exact_and_exponential(self):
        """One worker, three retries: each dispatch sleeps exactly its
        own attempt's delay (previous delays already 'elapsed' on the
        fake clock), doubling per attempt inside the jitter band."""
        fake = FakeClock()
        start = time.monotonic()
        result = self.run_broken(fake, retry_backoff=0.5,
                                 retry_backoff_cap=30.0)
        assert time.monotonic() - start < 2.0  # no real sleeping
        assert fake.sleeps == pytest.approx(
            expected_delays(42, 0.5, 30.0, 3))
        for attempt, delay in enumerate(fake.sleeps, start=1):
            lo = 0.5 * 0.5 * 2 ** (attempt - 1)
            assert lo <= delay < 2 * lo
        assert [s.status for s in result.worker_stats] == ["failed"] * 4
        assert [s.attempt for s in result.worker_stats] == [0, 1, 2, 3]

    def test_cap_bounds_the_delay(self):
        fake = FakeClock()
        self.run_broken(fake, retry_backoff=0.5, retry_backoff_cap=0.6)
        assert fake.sleeps == pytest.approx(
            expected_delays(42, 0.5, 0.6, 3))
        assert all(delay <= 0.6 for delay in fake.sleeps)

    def test_zero_backoff_never_sleeps(self):
        fake = FakeClock()
        self.run_broken(fake, retry_backoff=0.0)
        assert fake.sleeps == []

    def test_schedule_is_deterministic_for_a_seed_set(self):
        """Same seeds, no injected rng: two runs draw identical jitter
        (the rng is seeded from the run's seeds)."""
        first, second = FakeClock(), FakeClock()
        for fake in (first, second):
            fuzz_parallel(BrokenFactory(), small_config(), seeds=(1, 2),
                          processes=1, max_retries=2, clock=fake.clock,
                          sleep=fake.sleep)
        assert first.sleeps == second.sleeps
        assert first.sleeps  # the schedule actually has delays in it

    def test_retry_seeds_still_chain_through_backoff(self):
        fake = FakeClock()
        result = self.run_broken(fake, max_retries=2)
        seeds = [s.seed for s in result.worker_stats]
        assert seeds == [1, retry_seed(1, 1),
                         retry_seed(retry_seed(1, 1), 2)]


class TestWorkerStatsRoundTrip:
    def test_from_dict_inverts_to_dict(self):
        stats = WorkerStats(3, 1234, attempt=2)
        stats.fail("boom", status="died")
        stats.campaigns = 7
        stats.duration = 1.5
        stats.corpus_seeded = 4
        assert WorkerStats.from_dict(stats.to_dict()).to_dict() == \
            stats.to_dict()


class TestDeadWorkerSupervision:
    def test_killed_worker_is_detected_and_retried(self, tmp_path):
        """A SIGKILLed pool worker never completes its result handle;
        the pid supervision must notice, record a 'died' attempt, and
        retry — instead of hanging forever."""
        metrics = Metrics()
        result = fuzz_parallel(
            SuicideFactory(str(tmp_path / "died.marker")),
            small_config(), seeds=(7,), processes=2, max_retries=1,
            retry_backoff=0.05, metrics=metrics)
        statuses = [s.status for s in result.worker_stats]
        assert statuses == ["died", "ok"]
        assert "died without reporting" in result.worker_stats[0].error
        assert metrics.counter("parallel.workers_died").value == 1
        assert result.campaigns > 0

    def test_heartbeats_reach_the_parent(self, tmp_path):
        """A slow-but-alive worker beats while silent; the parent counts
        the beats (the liveness signal distinguishing slow from dead)."""
        metrics = Metrics()
        result = fuzz_parallel(
            SlowStartFactory(0.5), small_config(), seeds=(7,),
            processes=2, metrics=metrics, heartbeat_interval=0.05)
        assert [s.status for s in result.worker_stats] == ["ok"]
        assert metrics.counter("parallel.heartbeats").value > 0


class TestSessionRetryLedger:
    def open_session(self, tmp_path, resume=False):
        return Session.open(str(tmp_path / "session"), "toy-broken",
                            "parallel", (1,), small_config(),
                            resume=resume)

    def run_broken(self, session, max_retries):
        return fuzz_parallel(BrokenFactory(), small_config(), seeds=(1,),
                             processes=1, max_retries=max_retries,
                             retry_backoff=0.0, session=session)

    def test_resume_continues_attempt_counts(self, tmp_path):
        first = self.run_broken(self.open_session(tmp_path),
                                max_retries=1)
        assert [s.attempt for s in first.worker_stats] == [0, 1]
        # Resume with a larger budget: attempts continue at 2, with the
        # seed chained through every earlier retry derivation.
        resumed = self.run_broken(self.open_session(tmp_path, resume=True),
                                  max_retries=3)
        # Restored attempts 0-1 from the checkpoint, fresh attempts 2-3,
        # with the retry seed chained through every earlier derivation.
        assert [s.attempt for s in resumed.worker_stats] == [0, 1, 2, 3]
        seed1 = retry_seed(1, 1)
        seed2 = retry_seed(seed1, 2)
        assert [s.seed for s in resumed.worker_stats] == \
            [1, seed1, seed2, retry_seed(seed2, 3)]

    def test_resume_does_not_regrant_exhausted_budget(self, tmp_path):
        first = self.run_broken(self.open_session(tmp_path),
                                max_retries=1)
        assert len(first.worker_stats) == 2
        resumed = self.run_broken(self.open_session(tmp_path, resume=True),
                                  max_retries=1)
        # attempt 2 exceeds the budget that was already spent: no new
        # attempts, just the restored ledger.
        assert [s.attempt for s in resumed.worker_stats] == [0, 1]
        assert resumed.interrupted is None

    def test_resume_skips_completed_workers(self, tmp_path):
        session = Session.open(str(tmp_path / "session"), "pmring",
                               "parallel", (7, 13), small_config())
        first = ParallelFuzzService("pmring", small_config(),
                                    seeds=(7, 13), processes=1,
                                    session=session).run()
        assert first.interrupted is None
        resumed_session = Session.open(str(tmp_path / "session"),
                                       "pmring", "parallel", (7, 13),
                                       small_config(), resume=True)
        service = ParallelFuzzService("pmring", small_config(),
                                      seeds=(7, 13), processes=1,
                                      session=resumed_session)
        assert service._initial_jobs() == []
        again = service.run()
        assert again.campaigns == first.campaigns
        assert len(again.worker_stats) == len(first.worker_stats)

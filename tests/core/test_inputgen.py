"""Input generator tests: operation mutator strategies + AFL byte mutator."""

import random

import pytest

from repro.core import AflByteMutator, OperationMutator, Seed
from repro.targets import OperationSpace
from repro.targets.memcached import MemcachedOperationSpace


@pytest.fixture
def mutator():
    return OperationMutator(OperationSpace(), n_threads=4, ops_per_thread=5,
                            rng=random.Random(1))


class TestSeeds:
    def test_initial_seed_shape(self, mutator):
        seed = mutator.initial_seed()
        assert len(seed.threads) == 4
        assert all(len(ops) == 5 for ops in seed.threads)
        assert seed.op_count == 20

    def test_ops_valid(self, mutator):
        for op in mutator.initial_seed().flat_ops():
            assert op["op"] in OperationSpace.kinds
            assert 0 <= op["key"] < OperationSpace.key_range

    def test_populate_insert_heavy(self, mutator):
        seed = mutator.populate_seed()
        ops = seed.flat_ops()
        assert all(op["op"] == "put" for op in ops)
        assert all("value" in op for op in ops)
        assert seed.op_count == 4 * 5 * 3

    def test_populate_honors_custom_insert_kind(self):
        """Regression: populate hardcoded ("put", "insert", "set") for
        value attachment, so a space with any other ``insert_kind``
        produced population ops missing their value parameter."""

        class InsertHeavySpace(OperationSpace):
            kinds = ("store", "get", "delete", "update")
            insert_kind = "store"

        mutator = OperationMutator(InsertHeavySpace(), n_threads=2,
                                   ops_per_thread=4, rng=random.Random(1))
        ops = mutator.populate_seed().flat_ops()
        assert all(op["op"] == "store" for op in ops)
        assert all("value" in op for op in ops)

    def test_populate_valueless_insert_kind_stays_bare(self):
        """A space whose insert op carries no value (the toy target)
        must not suddenly grow one — that would shift the seeded RNG
        stream and every pinned golden run with it."""

        class BareSpace(OperationSpace):
            kinds = ("touch", "get")
            insert_kind = "touch"

            def op_needs_value(self, kind):
                return False

        mutator = OperationMutator(BareSpace(), n_threads=2,
                                   ops_per_thread=4, rng=random.Random(1))
        assert all("value" not in op
                   for op in mutator.populate_seed().flat_ops())

    def test_seed_ids_unique(self, mutator):
        a = mutator.initial_seed()
        b = mutator.initial_seed()
        assert a.seed_id != b.seed_id

    def test_determinism(self):
        space = OperationSpace()
        a = OperationMutator(space, rng=random.Random(7)).initial_seed()
        b = OperationMutator(space, rng=random.Random(7)).initial_seed()
        assert a.threads == b.threads


class TestStrategies:
    def test_mutate_changes_one_op(self, mutator):
        seed = mutator.initial_seed()
        mutated = mutator.mutate(seed)
        assert mutated.op_count == seed.op_count
        diffs = sum(1 for a, b in zip(seed.flat_ops(), mutated.flat_ops())
                    if a != b)
        assert diffs <= 1
        assert mutated.parent == seed.seed_id

    def test_add_increases_count(self, mutator):
        seed = mutator.initial_seed()
        assert mutator.add(seed).op_count == seed.op_count + 1

    def test_delete_decreases_count(self, mutator):
        seed = mutator.initial_seed()
        assert mutator.delete(seed).op_count == seed.op_count - 1

    def test_delete_empty_seed(self, mutator):
        empty = Seed([[] for _ in range(4)])
        assert mutator.delete(empty).op_count == 0

    def test_shuffle_preserves_multiset(self, mutator):
        seed = mutator.initial_seed()
        shuffled = mutator.shuffle(seed)
        assert sorted(map(repr, seed.flat_ops())) == \
            sorted(map(repr, shuffled.flat_ops()))

    def test_merge_combines(self, mutator):
        a = mutator.initial_seed()
        b = mutator.initial_seed()
        merged = mutator.merge(a, b)
        assert merged.op_count > 0
        assert len(merged.threads) == 4

    def test_evolve_returns_seed(self, mutator):
        corpus = [mutator.initial_seed()]
        for _ in range(20):
            assert isinstance(mutator.evolve(corpus), Seed)

    def test_merge_partner_excludes_self(self, mutator):
        """Regression: the merge strategy drew its partner from the whole
        corpus, so a seed could merge with *itself* — gluing its first
        half to its own second half, a near-duplicate that wastes a full
        campaign budget."""
        corpus = [mutator.initial_seed(), mutator.initial_seed(),
                  mutator.initial_seed()]

        class ForceMerge:
            """Pin the strategy draw into the merge bucket (>= 0.85) and
            record which partner ``choice`` is offered."""

            def __init__(self):
                self.offered = None
                self.rng = random.Random(11)

            def random(self):
                return 0.9

            def choice(self, items):
                self.offered = list(items)
                return items[0]

        forced = ForceMerge()
        mutator.rng = forced
        mutator.evolve_from(corpus[1], corpus)
        assert corpus[1] not in forced.offered
        assert len(forced.offered) == 2

    def test_merge_single_seed_falls_back_to_self(self, mutator):
        """With one retained seed there is no partner: self-merge is the
        only option and must not crash (and must not draw ``choice``)."""
        only = mutator.initial_seed()

        class ForceMergeNoChoice:
            def random(self):
                return 0.9

            def choice(self, items):  # pragma: no cover - must not run
                raise AssertionError("no partner draw expected")

        mutator.rng = ForceMergeNoChoice()
        merged = mutator.evolve_from(only, [only])
        assert isinstance(merged, Seed)
        assert merged.parent == only.seed_id


class TestSerialization:
    def test_roundtrip(self):
        space = OperationSpace()
        ops = [{"op": "put", "key": 3, "value": 17},
               {"op": "get", "key": 3},
               {"op": "delete", "key": 5}]
        data = space.serialize(ops)
        parsed, invalid = space.parse(data)
        assert invalid == 0
        assert parsed == ops

    def test_invalid_lines_counted(self):
        space = OperationSpace()
        parsed, invalid = space.parse(b"put 1 2\ngarbage\nget x\nget 4\n")
        assert invalid == 2
        assert len(parsed) == 2

    def test_binary_garbage(self):
        space = OperationSpace()
        parsed, invalid = space.parse(bytes(range(256)))
        assert invalid >= 1
        assert parsed == []


class TestAflMutator:
    def test_mutation_changes_bytes(self):
        afl = AflByteMutator(OperationSpace(), rng=random.Random(3))
        base = afl.initial_bytes()
        assert afl.mutate_bytes(base) != base

    def test_invalid_ops_accumulate(self):
        afl = AflByteMutator(OperationSpace(), rng=random.Random(3))
        base = afl.initial_bytes()
        for _ in range(50):
            seed, base = afl.next_seed(base)
        assert afl.invalid_ops > 0

    def test_seed_ops_all_valid(self):
        afl = AflByteMutator(OperationSpace(), rng=random.Random(3))
        seed, _data = afl.next_seed()
        for op in seed.flat_ops():
            assert op["op"] in OperationSpace.kinds

    def test_error_rate_substantial(self):
        """Table 4's premise: byte mutation wastes a chunk of commands."""
        afl = AflByteMutator(MemcachedOperationSpace(),
                             rng=random.Random(5))
        base = afl.initial_bytes()
        total_valid = 0
        for _ in range(100):
            seed, base = afl.next_seed(base)
            total_valid += seed.op_count
        assert afl.invalid_ops > 0
        # byte-level havoc must hurt parse validity visibly
        assert afl.invalid_ops >= total_valid * 0.05


class TestMemcachedProtocol:
    def test_roundtrip(self):
        space = MemcachedOperationSpace()
        ops = [{"op": "set", "key": 1, "value": 55},
               {"op": "get", "key": 1},
               {"op": "incr", "key": 1, "value": 3},
               {"op": "delete", "key": 1}]
        parsed, invalid = space.parse(space.serialize(ops))
        assert invalid == 0
        assert parsed == ops

    def test_set_requires_byte_count(self):
        space = MemcachedOperationSpace()
        assert space.parse_line("set key1 0 0 99 5") is None  # wrong nbytes
        assert space.parse_line("set key1 0 0 1 5") is not None

    def test_bad_key_prefix(self):
        space = MemcachedOperationSpace()
        assert space.parse_line("get foo") is None

    def test_incr_requires_positive(self):
        space = MemcachedOperationSpace()
        assert space.parse_line("incr key1 0") is None
        assert space.parse_line("incr key1 5") is not None

    def test_random_ops_serialize_parse(self):
        space = MemcachedOperationSpace()
        rng = random.Random(2)
        ops = [space.random_op(rng) for _ in range(50)]
        parsed, invalid = space.parse(space.serialize(ops))
        assert invalid == 0
        assert len(parsed) == 50

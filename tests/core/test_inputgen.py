"""Input generator tests: operation mutator strategies + AFL byte mutator."""

import random

import pytest

from repro.core import AflByteMutator, OperationMutator, Seed
from repro.targets import OperationSpace
from repro.targets.memcached import MemcachedOperationSpace


@pytest.fixture
def mutator():
    return OperationMutator(OperationSpace(), n_threads=4, ops_per_thread=5,
                            rng=random.Random(1))


class TestSeeds:
    def test_initial_seed_shape(self, mutator):
        seed = mutator.initial_seed()
        assert len(seed.threads) == 4
        assert all(len(ops) == 5 for ops in seed.threads)
        assert seed.op_count == 20

    def test_ops_valid(self, mutator):
        for op in mutator.initial_seed().flat_ops():
            assert op["op"] in OperationSpace.kinds
            assert 0 <= op["key"] < OperationSpace.key_range

    def test_populate_insert_heavy(self, mutator):
        seed = mutator.populate_seed()
        ops = seed.flat_ops()
        assert all(op["op"] == "put" for op in ops)
        assert seed.op_count == 4 * 5 * 3

    def test_seed_ids_unique(self, mutator):
        a = mutator.initial_seed()
        b = mutator.initial_seed()
        assert a.seed_id != b.seed_id

    def test_determinism(self):
        space = OperationSpace()
        a = OperationMutator(space, rng=random.Random(7)).initial_seed()
        b = OperationMutator(space, rng=random.Random(7)).initial_seed()
        assert a.threads == b.threads


class TestStrategies:
    def test_mutate_changes_one_op(self, mutator):
        seed = mutator.initial_seed()
        mutated = mutator.mutate(seed)
        assert mutated.op_count == seed.op_count
        diffs = sum(1 for a, b in zip(seed.flat_ops(), mutated.flat_ops())
                    if a != b)
        assert diffs <= 1
        assert mutated.parent == seed.seed_id

    def test_add_increases_count(self, mutator):
        seed = mutator.initial_seed()
        assert mutator.add(seed).op_count == seed.op_count + 1

    def test_delete_decreases_count(self, mutator):
        seed = mutator.initial_seed()
        assert mutator.delete(seed).op_count == seed.op_count - 1

    def test_delete_empty_seed(self, mutator):
        empty = Seed([[] for _ in range(4)])
        assert mutator.delete(empty).op_count == 0

    def test_shuffle_preserves_multiset(self, mutator):
        seed = mutator.initial_seed()
        shuffled = mutator.shuffle(seed)
        assert sorted(map(repr, seed.flat_ops())) == \
            sorted(map(repr, shuffled.flat_ops()))

    def test_merge_combines(self, mutator):
        a = mutator.initial_seed()
        b = mutator.initial_seed()
        merged = mutator.merge(a, b)
        assert merged.op_count > 0
        assert len(merged.threads) == 4

    def test_evolve_returns_seed(self, mutator):
        corpus = [mutator.initial_seed()]
        for _ in range(20):
            assert isinstance(mutator.evolve(corpus), Seed)


class TestSerialization:
    def test_roundtrip(self):
        space = OperationSpace()
        ops = [{"op": "put", "key": 3, "value": 17},
               {"op": "get", "key": 3},
               {"op": "delete", "key": 5}]
        data = space.serialize(ops)
        parsed, invalid = space.parse(data)
        assert invalid == 0
        assert parsed == ops

    def test_invalid_lines_counted(self):
        space = OperationSpace()
        parsed, invalid = space.parse(b"put 1 2\ngarbage\nget x\nget 4\n")
        assert invalid == 2
        assert len(parsed) == 2

    def test_binary_garbage(self):
        space = OperationSpace()
        parsed, invalid = space.parse(bytes(range(256)))
        assert invalid >= 1
        assert parsed == []


class TestAflMutator:
    def test_mutation_changes_bytes(self):
        afl = AflByteMutator(OperationSpace(), rng=random.Random(3))
        base = afl.initial_bytes()
        assert afl.mutate_bytes(base) != base

    def test_invalid_ops_accumulate(self):
        afl = AflByteMutator(OperationSpace(), rng=random.Random(3))
        base = afl.initial_bytes()
        for _ in range(50):
            seed, base = afl.next_seed(base)
        assert afl.invalid_ops > 0

    def test_seed_ops_all_valid(self):
        afl = AflByteMutator(OperationSpace(), rng=random.Random(3))
        seed, _data = afl.next_seed()
        for op in seed.flat_ops():
            assert op["op"] in OperationSpace.kinds

    def test_error_rate_substantial(self):
        """Table 4's premise: byte mutation wastes a chunk of commands."""
        afl = AflByteMutator(MemcachedOperationSpace(),
                             rng=random.Random(5))
        base = afl.initial_bytes()
        total_valid = 0
        for _ in range(100):
            seed, base = afl.next_seed(base)
            total_valid += seed.op_count
        assert afl.invalid_ops > 0
        # byte-level havoc must hurt parse validity visibly
        assert afl.invalid_ops >= total_valid * 0.05


class TestMemcachedProtocol:
    def test_roundtrip(self):
        space = MemcachedOperationSpace()
        ops = [{"op": "set", "key": 1, "value": 55},
               {"op": "get", "key": 1},
               {"op": "incr", "key": 1, "value": 3},
               {"op": "delete", "key": 1}]
        parsed, invalid = space.parse(space.serialize(ops))
        assert invalid == 0
        assert parsed == ops

    def test_set_requires_byte_count(self):
        space = MemcachedOperationSpace()
        assert space.parse_line("set key1 0 0 99 5") is None  # wrong nbytes
        assert space.parse_line("set key1 0 0 1 5") is not None

    def test_bad_key_prefix(self):
        space = MemcachedOperationSpace()
        assert space.parse_line("get foo") is None

    def test_incr_requires_positive(self):
        space = MemcachedOperationSpace()
        assert space.parse_line("incr key1 0") is None
        assert space.parse_line("incr key1 5") is not None

    def test_random_ops_serialize_parse(self):
        space = MemcachedOperationSpace()
        rng = random.Random(2)
        ops = [space.random_op(rng) for _ in range(50)]
        parsed, invalid = space.parse(space.serialize(ops))
        assert invalid == 0
        assert len(parsed) == 50

"""Expected-bug matcher and table-math tests."""

import pytest

from repro.core import PMRaceConfig
from repro.core.engine import RunResult
from repro.core.results import (
    EXPECTED_BUGS,
    ExpectedBug,
    build_table3,
    match_expected,
)
from repro.detect.records import (
    BugReport,
    CandidateRecord,
    InconsistencyRecord,
    Verdict,
)


def make_result(target="sys"):
    return RunResult(target, PMRaceConfig())


def add_bug_report(result, kind, write_instr, read_instr="r:1"):
    result.bug_reports.append(
        BugReport(len(result.bug_reports) + 1, result.target_name, kind,
                  write_instr, read_instr, "desc", []))


class TestMatchers:
    def test_site_substring(self):
        bug = ExpectedBug(99, "sys", "inter", True, "-", "-", "mod:_split",
                          "d", "c")
        result = make_result()
        add_bug_report(result, "inter", "mod:_split_leaf:10")
        assert match_expected(bug, result)

    def test_kind_twin_accepted(self):
        bug = ExpectedBug(99, "sys", "inter", True, "-", "-", "mod:w", "d",
                          "c")
        result = make_result()
        add_bug_report(result, "intra", "mod:w:10")
        assert match_expected(bug, result)  # inter accepts intra twin

    def test_sync_not_matched_by_inter(self):
        bug = ExpectedBug(99, "sys", "sync", True, "-", "-", "lockname",
                          "d", "c")
        result = make_result()
        add_bug_report(result, "inter", "lockname:10")
        assert not match_expected(bug, result)

    def test_alternative_matchers(self):
        bug = ExpectedBug(99, "sys", "inter", True, "-", "-",
                          ("aaa", "bbb"), "d", "c")
        result = make_result()
        add_bug_report(result, "inter", "mod:bbb:3")
        assert match_expected(bug, result)

    def test_candidate_matcher_reads(self):
        bug = ExpectedBug(99, "sys", "candidate", True, "-", "-",
                          "mod:get", "d", "c")
        result = make_result()
        result.candidates.append(
            CandidateRecord(0, 64, 8, "mod:get:5", "mod:put:9", 1, 0,
                            (), 1))
        assert match_expected(bug, result)

    def test_no_reports_no_match(self):
        for bug in EXPECTED_BUGS:
            assert not match_expected(bug, make_result(bug.target))


class TestTable3Math:
    def make_inconsistency(self, write, read, verdict, tids=(0, 1)):
        candidate = CandidateRecord(0, 64, 8, read, write, tids[1],
                                    tids[0], (), 1)
        record = InconsistencyRecord(candidate, "e:1", 128, 8, False, (),
                                     b"")
        record.verdict = verdict
        return record

    def test_pair_counting(self):
        result = make_result()
        # two records, same (write, read) pair -> counted once
        result.inconsistencies.append(
            self.make_inconsistency("w:1", "r:1", Verdict.BUG))
        result.inconsistencies.append(
            self.make_inconsistency("w:1", "r:1", Verdict.BUG))
        result.candidates.append(
            CandidateRecord(0, 64, 8, "r:1", "w:1", 1, 0, (), 1))
        rows = build_table3({"sys": result})
        assert rows[0]["inter"] == 1
        assert rows[0]["inter"] <= rows[0]["inter_cand"]

    def test_totals_sum_rows(self):
        a = make_result("a")
        a.candidates.append(
            CandidateRecord(0, 64, 8, "r:1", "w:1", 1, 0, (), 1))
        b = make_result("b")
        b.candidates.append(
            CandidateRecord(0, 64, 8, "r:2", "w:2", 1, 0, (), 1))
        rows = build_table3({"a": a, "b": b})
        assert rows[-1]["inter_cand"] == 2

    def test_fp_columns_partition(self):
        result = make_result()
        result.inconsistencies.append(
            self.make_inconsistency("w:1", "r:1", Verdict.VALIDATED_FP))
        result.inconsistencies.append(
            self.make_inconsistency("w:2", "r:2", Verdict.WHITELISTED_FP))
        rows = build_table3({"sys": result})
        assert rows[0]["validated_fp"] == 1
        assert rows[0]["whitelisted_fp"] == 1

"""Result-table builder tests."""

import pytest

from repro.core import PMRace, PMRaceConfig
from repro.core.results import (
    EXPECTED_BUGS,
    build_table2,
    build_table3,
    build_table5,
    build_table6,
    expected_bugs_for,
    match_expected,
    render_table,
)
from repro.targets import table1_rows

from .toy_target import ToyTarget


@pytest.fixture(scope="module")
def toy_result():
    config = PMRaceConfig(max_campaigns=20, max_seeds=6, base_seed=2)
    return PMRace(ToyTarget(), config).run()


class TestCatalog:
    def test_fourteen_bugs(self):
        assert len(EXPECTED_BUGS) == 14

    def test_ten_new(self):
        assert sum(1 for bug in EXPECTED_BUGS if bug.new) == 10

    def test_per_target_counts(self):
        assert len(expected_bugs_for("P-CLHT")) == 5
        assert len(expected_bugs_for("clevel hashing")) == 0
        assert len(expected_bugs_for("CCEH")) == 2
        assert len(expected_bugs_for("FAST-FAIR")) == 1
        assert len(expected_bugs_for("memcached-pmem")) == 6

    def test_match_against_toy_is_negative(self, toy_result):
        for bug in EXPECTED_BUGS:
            assert not match_expected(bug, toy_result)


class TestTableBuilders:
    def test_table1_static(self):
        rows = table1_rows()
        assert len(rows) == 7
        assert rows[0]["system"] == "P-CLHT"
        assert [row["system"] for row in rows[-2:]] == ["pmring", "txkv"]
        assert rows[-1]["concurrency"] == "Lock-based"

    def test_table2_rows(self, toy_result):
        rows = build_table2({"P-CLHT": toy_result})
        assert len(rows) == 14
        assert all(row["found"] in ("FOUND", "missed") for row in rows)

    def test_table3_totals(self, toy_result):
        rows = build_table3({"toy": toy_result})
        assert rows[-1]["system"] == "Total"
        assert rows[0]["inter_cand"] == len(toy_result.inter_candidates)
        assert rows[-1]["inter"] == rows[0]["inter"]

    def test_table5_format(self, toy_result):
        rows = build_table5({"toy": toy_result})
        assert rows[-1]["system"] == "Total"
        assert "|" in rows[-1]["total"]

    def test_table6(self, toy_result):
        rows = build_table6({"toy": toy_result})
        assert rows[0]["bug"] == len(toy_result.bug_reports)

    def test_render_table(self):
        text = render_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_render_empty(self):
        assert render_table([]) == "(empty table)"

"""Durable session layer: journal, checkpoints, recovery, fault injection.

Everything here runs in-process against real pmring/Toy engine sessions —
faults are injected through :class:`FaultInjector` rather than real
signals, so the torn-write / disk-full / crash recovery paths are
deterministic unit tests, not chaos lottery (the subprocess chaos lives
in ``tests/integration/test_chaos_recovery.py``).
"""

import json
import os

import pytest

from repro.core import PMRaceConfig
from repro.core.session import (
    FAULT_ENV,
    FaultInjector,
    ImageStore,
    InjectedFault,
    Session,
    SessionError,
    append_jsonl,
    atomic_write_json,
    read_journal,
    result_fingerprint,
    result_from_doc,
    result_to_doc,
    run_fuzz_session,
)


def small_config(**overrides):
    options = {"max_campaigns": 8, "max_seeds": 3}
    options.update(overrides)
    return PMRaceConfig(**options)


def open_session(directory, seeds=(7, 13), config=None, **kwargs):
    return Session.open(str(directory), "pmring", "serial", seeds,
                        config or small_config(),
                        fault=kwargs.pop("fault", FaultInjector()),
                        **kwargs)


def run_session(directory, seeds=(7, 13), config=None, session=None):
    session = session or open_session(directory, seeds, config)
    result, interrupted = run_fuzz_session(
        "pmring", config or small_config(), seeds, session)
    assert interrupted is None
    return session, result


# ----------------------------------------------------------------------


class TestFaultInjector:
    def test_parses_env_specs(self):
        fault = FaultInjector.from_env(
            {FAULT_ENV: "checkpoint_write:torn:2, journal_append:enospc"})
        assert bool(fault)
        assert fault.check("checkpoint_write") is None   # countdown 2->1
        assert fault.check("checkpoint_write") == "torn"
        with pytest.raises(OSError):
            fault.check("journal_append")
        # Arms are one-shot: both have fired.
        assert fault.check("checkpoint_write") is None
        assert fault.check("journal_append") is None
        assert fault.fired == [("checkpoint_write", "torn"),
                               ("journal_append", "enospc")]

    def test_empty_env_is_inert(self):
        fault = FaultInjector.from_env({})
        assert not fault
        assert fault.check("checkpoint_write") is None

    def test_rejects_malformed_specs(self):
        for spec in ("checkpoint_write", "x:explode", "x:kill:0",
                     "a:b:c:d"):
            with pytest.raises(ValueError):
                FaultInjector([spec])

    def test_crash_action_raises(self):
        fault = FaultInjector(["checkpoint_write:crash"])
        with pytest.raises(InjectedFault):
            fault.check("checkpoint_write")


class TestDurableWrites:
    def test_atomic_write_replaces_whole_file(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        with open(path) as handle:
            assert json.load(handle) == {"v": 2}
        assert not [name for name in os.listdir(str(tmp_path))
                    if ".tmp." in name]

    def test_torn_write_never_touches_committed_file(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"v": 1})
        fault = FaultInjector(["atomic_write:torn"])
        with pytest.raises(InjectedFault):
            atomic_write_json(path, {"v": 2, "pad": "x" * 256},
                              fault=fault)
        with open(path) as handle:
            assert json.load(handle) == {"v": 1}

    def test_enospc_never_touches_committed_file(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"v": 1})
        fault = FaultInjector(["atomic_write:enospc"])
        with pytest.raises(OSError):
            atomic_write_json(path, {"v": 2}, fault=fault)
        with open(path) as handle:
            assert json.load(handle) == {"v": 1}

    def test_journal_tolerates_torn_tail(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        append_jsonl(path, {"n": 1})
        append_jsonl(path, {"n": 2})
        fault = FaultInjector(["journal_append:torn"])
        with pytest.raises(InjectedFault):
            append_jsonl(path, {"n": 3, "pad": "y" * 64}, fault=fault)
        records, torn = read_journal(path)
        assert records == [{"n": 1}, {"n": 2}]
        assert torn == 1

    def test_journal_rejects_corruption_before_tail(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w") as handle:
            handle.write('{"n": 1}\nGARBAGE\n{"n": 2}\n')
        with pytest.raises(SessionError):
            read_journal(path)

    def test_missing_journal_is_empty(self, tmp_path):
        assert read_journal(str(tmp_path / "nope.jsonl")) == ([], 0)


class TestImageStore:
    def test_put_get_round_trip_and_dedup(self, tmp_path):
        store = ImageStore(str(tmp_path / "images"))
        image = bytearray(b"\x00\x01persistent pool bytes\xff" * 9)
        ref = store.put(image)
        assert store.put(bytearray(image)) == ref  # idempotent
        assert store.get(ref) == image
        assert len(os.listdir(str(tmp_path / "images"))) == 1

    def test_corrupt_image_file_reads_as_missing(self, tmp_path):
        store = ImageStore(str(tmp_path / "images"))
        ref = store.put(bytearray(b"good image bytes"))
        with open(os.path.join(str(tmp_path / "images"), ref + ".bin"),
                  "wb") as handle:
            handle.write(b"torn")
        assert store.get(ref) is None
        assert store.get("deadbeef-12") is None


class TestSessionLifecycle:
    def test_fresh_dir_refuses_double_open_without_resume(self, tmp_path):
        open_session(tmp_path)
        with pytest.raises(SessionError, match="--resume"):
            open_session(tmp_path)

    def test_resume_validates_manifest(self, tmp_path):
        open_session(tmp_path, seeds=(7, 13))
        with pytest.raises(SessionError, match="seeds"):
            open_session(tmp_path, seeds=(7, 14), resume=True)
        with pytest.raises(SessionError, match="config"):
            open_session(tmp_path, seeds=(7, 13), resume=True,
                         config=small_config(max_campaigns=9))
        resumed = open_session(tmp_path, seeds=(7, 13), resume=True)
        assert resumed.resumed

    def test_resume_rejects_foreign_schema(self, tmp_path):
        session = open_session(tmp_path)
        manifest = dict(session.manifest, version=99)
        atomic_write_json(os.path.join(str(tmp_path), "MANIFEST.json"),
                          manifest)
        with pytest.raises(SessionError, match="schema"):
            open_session(tmp_path, resume=True)

    def test_done_units_is_union_of_journal_and_checkpoint(self, tmp_path):
        """A crash between checkpoint write and journal append leaves
        the checkpoint ahead of the journal; the unit must still count
        as done (never re-merged, never lost)."""
        session, result = run_session(tmp_path)
        # Simulate the torn window: drop the journal's unit lines but
        # keep the checkpoint (which embeds its units).
        with open(session.journal_path, "w") as handle:
            handle.write(json.dumps({"type": "session_open"}) + "\n")
        resumed = open_session(tmp_path, resume=True)
        assert resumed.done_units() == {0, 1}

    def test_retry_ledger_tracks_attempts(self, tmp_path):
        session = open_session(tmp_path)
        session.record_unit(0, 7, 0, "failed")
        session.record_unit(0, 1234, 1, "failed")
        session.record_unit(1, 13, 0, "ok", campaigns=8)
        ledger = session.retry_ledger()
        assert ledger[0] == (2, 1234)
        assert ledger[1] == (1, 13)


class TestCheckpointRoundTrip:
    def test_fingerprint_survives_doc_round_trip(self, tmp_path):
        session, result = run_session(tmp_path)
        restored = session.load_checkpoint(small_config())
        assert result_fingerprint(restored) == result_fingerprint(result)
        # The dedup maps were rebuilt: merging the restored result with
        # itself must not duplicate records.
        records_before = len(restored.inconsistencies)
        restored.merge(session.load_checkpoint(small_config()))
        assert len(restored.inconsistencies) == records_before

    def test_crash_images_and_verdicts_round_trip(self, tmp_path):
        session, result = run_session(tmp_path)
        restored = session.load_checkpoint(small_config())
        originals = {r.dedup_key(): r for r in result.inconsistencies
                     + result.sync_inconsistencies}
        assert originals
        for record in restored.inconsistencies \
                + restored.sync_inconsistencies:
            original = originals[record.dedup_key()]
            assert record.verdict is original.verdict
            assert record.note == original.note
            if original.crash_image is not None:
                assert bytes(record.crash_image) == \
                    bytes(original.crash_image)

    def test_worker_stats_and_corpus_round_trip(self, tmp_path):
        session, result = run_session(tmp_path)
        restored = session.load_checkpoint(small_config())
        assert [s.to_dict() for s in restored.worker_stats] == \
            [s.to_dict() for s in result.worker_stats]
        assert sorted(e["digest"] for e in restored.corpus_seeds) == \
            sorted(e["digest"] for e in result.corpus_seeds)

    def test_doc_is_json_safe(self, tmp_path):
        session, result = run_session(tmp_path)
        doc = result_to_doc(result, session.images)
        rebuilt = json.loads(json.dumps(doc))
        restored = result_from_doc(rebuilt, session.images,
                                   small_config())
        assert result_fingerprint(restored) == result_fingerprint(result)

    def test_corpus_dir_mirrors_merged_corpus(self, tmp_path):
        session, result = run_session(tmp_path)
        digests = {entry["digest"] for entry in result.corpus_seeds}
        assert digests
        on_disk = {name[:-5] for name in
                   os.listdir(os.path.join(str(tmp_path), "corpus"))}
        assert digests <= on_disk


class TestFaultContainment:
    def test_enospc_during_checkpoint_keeps_previous(self, tmp_path):
        """An injected full-disk on the second checkpoint degrades the
        session (counted) but the first committed checkpoint survives
        bit-for-bit."""
        fault = FaultInjector(["checkpoint_write:enospc:2"])
        session = open_session(tmp_path, fault=fault)
        config = small_config()
        result, interrupted = run_fuzz_session("pmring", config, (7, 13),
                                               session)
        assert interrupted is None
        assert session.write_errors >= 1
        doc = json.loads(open(session.checkpoint_path).read())
        # Write 2 (the unit-1 checkpoint) hit ENOSPC and was dropped;
        # the final checkpoint went through and holds the full result.
        restored = session.load_checkpoint(small_config())
        assert result_fingerprint(restored) == result_fingerprint(result)
        assert doc["final"]

    def test_torn_checkpoint_keeps_previous(self, tmp_path):
        fault = FaultInjector(["checkpoint_write:torn:2"])
        session = open_session(tmp_path, fault=fault)
        with pytest.raises(InjectedFault):
            run_fuzz_session("pmring", small_config(), (7, 13), session)
        # The process "died" mid-unit-1-checkpoint: the committed file
        # still holds the complete unit-0 checkpoint.
        resumed = open_session(tmp_path, resume=True)
        restored = resumed.load_checkpoint(small_config())
        assert restored is not None
        assert restored.campaigns == 8
        assert resumed.done_units() == {0}

    def test_crash_resume_matches_uninterrupted_golden(self, tmp_path):
        _, golden = run_session(tmp_path / "golden")
        fault = FaultInjector(["journal_append:crash:2"])
        chaos = open_session(tmp_path / "chaos", fault=fault)
        with pytest.raises(InjectedFault):
            run_fuzz_session("pmring", small_config(), (7, 13), chaos)
        resumed = open_session(tmp_path / "chaos", resume=True)
        result, interrupted = run_fuzz_session(
            "pmring", small_config(), (7, 13), resumed, )
        assert interrupted is None
        assert result_fingerprint(result) == result_fingerprint(golden)

    def test_resume_skips_finished_units(self, tmp_path):
        session, first = run_session(tmp_path)
        resumed = open_session(tmp_path, resume=True)
        again, interrupted = run_fuzz_session(
            "pmring", small_config(), (7, 13), resumed)
        assert interrupted is None
        # Nothing re-ran: campaigns did not double.
        assert again.campaigns == first.campaigns
        assert result_fingerprint(again) == result_fingerprint(first)

"""Concurrent fuzzing (§5) and eADR-platform (§6.6) tests."""

import pytest

from repro.core import PMRace, PMRaceConfig, fuzz_parallel
from repro.pmem import PersistentMemory

from .toy_target import ToyTarget


class TestEadrMemory:
    def test_stores_immediately_durable(self):
        mem = PersistentMemory(4096, eadr=True)
        mem.store(0, b"hello", thread_id=0)
        assert mem.is_persisted(0, 5)
        assert mem.crash_image()[:5] == b"hello"

    def test_no_dirty_writers(self):
        mem = PersistentMemory(4096, eadr=True)
        mem.store(0, b"x" * 8, thread_id=0)
        assert mem.nonpersisted_writers(0, 8) == []

    def test_flushes_harmless(self):
        mem = PersistentMemory(4096, eadr=True)
        mem.store(0, b"x" * 8, thread_id=0)
        mem.clwb(0, thread_id=0)
        mem.sfence(thread_id=0)
        assert mem.is_persisted(0, 8)


class TestEadrEngine:
    def run(self, eadr):
        config = PMRaceConfig(max_campaigns=20, max_seeds=6, base_seed=2,
                              eadr=eadr)
        return PMRace(ToyTarget(), config).run()

    def test_eadr_eliminates_inter_inconsistencies(self):
        """§6.6: with persistent caches the flush-gap bugs vanish..."""
        result = self.run(eadr=True)
        assert not result.candidates
        assert not result.inconsistencies

    def test_eadr_keeps_sync_bugs(self):
        """...but unreleased persistent locks still survive crashes."""
        result = self.run(eadr=True)
        assert result.sync_inconsistencies

    def test_adr_baseline_detects_both(self):
        result = self.run(eadr=False)
        assert result.inconsistencies
        assert result.sync_inconsistencies


class TestParallelFuzzing:
    def test_inprocess_fallback(self):
        config = PMRaceConfig(max_campaigns=10, max_seeds=4)
        result = fuzz_parallel("P-CLHT", config, seeds=(7, 13),
                               processes=1)
        assert result.campaigns == 20

    def test_multiprocess_matches_serial_findings(self):
        config = PMRaceConfig(max_campaigns=15, max_seeds=5)
        parallel = fuzz_parallel("P-CLHT", config, seeds=(7, 13),
                                 processes=2)
        serial = fuzz_parallel("P-CLHT", config, seeds=(7, 13),
                               processes=1)
        assert parallel.campaigns == serial.campaigns
        assert len(parallel.inconsistencies) == len(serial.inconsistencies)
        assert len(parallel.sync_inconsistencies) == \
            len(serial.sync_inconsistencies)

    def test_factory_callable(self):
        config = PMRaceConfig(max_campaigns=8, max_seeds=3)
        result = fuzz_parallel(ToyTarget, config, seeds=(1, 2),
                               processes=1)
        assert result.target_name == "toy"
        assert result.campaigns == 16

    def test_merged_reports_regrouped(self):
        config = PMRaceConfig(max_campaigns=15, max_seeds=5)
        result = fuzz_parallel(ToyTarget, config, seeds=(1, 2, 3),
                               processes=2)
        ids = [report.bug_id for report in result.bug_reports]
        assert ids == sorted(ids)
        assert result.bug_reports

"""PMRace engine tests on the toy target."""

import pytest

from repro.core import PMRace, PMRaceConfig
from repro.detect import Verdict

from .toy_target import SHADOW, ToyTarget


def run_engine(**overrides):
    options = {"max_campaigns": 25, "max_seeds": 8, "ops_per_thread": 4,
               "base_seed": 2}
    options.update(overrides)
    return PMRace(ToyTarget(), PMRaceConfig(**options)).run()


class TestEngine:
    def test_finds_inter_inconsistency(self):
        result = run_engine()
        assert result.inter_inconsistencies

    def test_validation_splits_fp_and_bug(self):
        result = run_engine()
        verdicts = {r.verdict for r in result.inter_inconsistencies}
        assert Verdict.VALIDATED_FP in verdicts
        assert Verdict.BUG in verdicts

    def test_bug_reports_grouped(self):
        result = run_engine()
        kinds = {report.kind for report in result.bug_reports}
        assert "inter" in kinds
        assert "sync" in kinds  # toy_lock never re-initialized

    def test_coverage_timeline_grows(self):
        result = run_engine()
        assert len(result.coverage_timeline) == result.campaigns
        branches = [b for _c, _t, b, _a in result.coverage_timeline]
        assert branches == sorted(branches)
        assert branches[-1] > 0

    def test_first_hit_times_recorded(self):
        result = run_engine()
        assert result.first_candidate_time is not None
        assert result.first_inter_time is not None
        assert result.inter_hit_times

    def test_budget_respected(self):
        result = run_engine(max_campaigns=5)
        assert result.campaigns == 5

    def test_delay_mode_runs(self):
        result = run_engine(mode="delay", max_campaigns=10)
        assert result.campaigns == 10

    def test_random_mode_runs(self):
        result = run_engine(mode="random", max_campaigns=10)
        assert result.campaigns == 10

    def test_validation_can_be_disabled(self):
        result = run_engine(validate=False, max_campaigns=10)
        assert all(r.verdict is Verdict.PENDING
                   for r in result.inter_inconsistencies)

    def test_ablation_flags(self):
        no_ie = run_engine(enable_interleaving_tier=False, max_campaigns=10)
        no_se = run_engine(enable_seed_tier=False, max_campaigns=10)
        assert no_ie.campaigns == 10
        assert no_se.campaigns == 10

    def test_annotation_count_reported(self):
        result = run_engine(max_campaigns=5)
        assert result.annotation_count == 1

    def test_summary_keys(self):
        summary = run_engine(max_campaigns=5).summary()
        for key in ("target", "campaigns", "inter_candidates", "inter",
                    "bugs", "annotations"):
            assert key in summary

    def test_executions_per_second_positive(self):
        result = run_engine(max_campaigns=5)
        assert result.executions_per_second > 0

    def test_deterministic_given_seed(self):
        a = run_engine(max_campaigns=15)
        b = run_engine(max_campaigns=15)
        assert len(a.inconsistencies) == len(b.inconsistencies)
        assert len(a.candidates) == len(b.candidates)

    def test_shadow_effect_is_bug(self):
        result = run_engine()
        bug_addrs = {r.side_effect_addr
                     for r in result.inter_inconsistencies
                     if r.verdict is Verdict.BUG}
        assert SHADOW in bug_addrs


class TestExplorationTiers:
    """The three §4.2.3 tiers must actually change exploration."""

    def timeline(self, result):
        return [(branch, alias)
                for _c, _t, branch, alias in result.coverage_timeline]

    def test_ablation_tiers_diverge_on_timeline(self):
        budget = {"max_campaigns": 30}
        full = run_engine(**budget)
        no_inter = run_engine(enable_interleaving_tier=False, **budget)
        no_seed = run_engine(enable_seed_tier=False, **budget)
        assert self.timeline(full) != self.timeline(no_inter)
        assert self.timeline(full) != self.timeline(no_seed)
        assert self.timeline(no_inter) != self.timeline(no_seed)

    def test_exec_tier_cutoff_bounds_nonprogressing_rounds(self):
        """A guided interleaving whose execution adds no coverage is
        abandoned instead of burning the rest of its execution budget,
        so a 10x execution budget cannot 10x the campaign count."""
        small = run_engine(execs_per_interleaving=2, max_campaigns=500,
                           max_seeds=4)
        big = run_engine(execs_per_interleaving=20, max_campaigns=500,
                         max_seeds=4)
        assert big.campaigns < 10 * small.campaigns

"""run_campaign tests over the toy target."""

import pytest

from repro.core import run_campaign
from repro.runtime import SeededRandomPolicy

from .toy_target import ToyTarget


def run_toy(ops_by_thread, seed=0, **kwargs):
    target = ToyTarget()
    state = target.setup()
    policy = SeededRandomPolicy(seed)
    return run_campaign(target, state, ops_by_thread, policy, **kwargs)


BUMPY = [[{"op": "bump", "key": 0}] * 3 for _ in range(3)]


class TestRunCampaign:
    def test_completes(self):
        result = run_toy(BUMPY)
        assert result.outcome.ok
        assert not result.hang

    def test_detects_candidates_and_inconsistencies(self):
        result = run_toy(BUMPY, seed=5)
        assert result.checker.candidates
        assert result.checker.inconsistencies

    def test_collects_coverage(self):
        result = run_toy(BUMPY)
        assert result.branch_edges
        assert result.profiler.profile

    def test_alias_pairs_on_contention(self):
        result = run_toy(BUMPY, seed=3)
        assert result.alias_pairs

    def test_op_errors_counted(self):
        result = run_toy([[{"op": "nonsense", "key": 0}]])
        assert result.op_errors == 1

    def test_sync_inconsistency_recorded(self):
        result = run_toy(BUMPY)
        names = {r.annotation_name
                 for r in result.checker.sync_inconsistencies}
        assert names == {"toy_lock"}

    def test_determinism(self):
        a = run_toy(BUMPY, seed=11)
        b = run_toy(BUMPY, seed=11)
        assert len(a.checker.candidates) == len(b.checker.candidates)
        assert a.branch_edges == b.branch_edges
        assert a.alias_pairs == b.alias_pairs

    def test_taint_can_be_disabled(self):
        result = run_toy(BUMPY, seed=5, taint_enabled=False)
        assert not result.checker.inconsistencies

    def test_extra_observers(self):
        from repro.instrument.events import Observer

        class Counter(Observer):
            count = 0

            def on_store(self, event):
                self.count += 1

        counter = Counter()
        run_toy(BUMPY, extra_observers=[counter])
        assert counter.count > 0

    def test_single_thread_no_inter(self):
        result = run_toy([[{"op": "bump", "key": 0}] * 4])
        assert not result.checker.inter_candidates
        assert result.checker.intra_candidates

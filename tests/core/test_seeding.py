"""Stable seed mixer tests.

The golden values pin the exact CRC-32 mixing so policy seeds (and
therefore whole fuzzing runs) reproduce across Python builds — the whole
point of replacing ``hash((base_seed, campaign_index))``, whose int
hashing is implementation defined.
"""

import pytest

from repro.core.seeding import mix_seeds, policy_seed, retry_seed


class TestMixSeeds:
    def test_golden_values(self):
        assert mix_seeds(0, 0) == 3971697493
        assert mix_seeds(7, 0) == 289583904
        assert mix_seeds(7, 1) == 3723015102
        assert mix_seeds(13, 5) == 2903574376

    def test_negative_parts_reduced_mod_2_64(self):
        assert mix_seeds(-1, 2) == 972079378
        assert mix_seeds(-1, 2) == mix_seeds((1 << 64) - 1, 2)

    def test_huge_parts_reduced_mod_2_64(self):
        assert mix_seeds(2**70 + 3, 1) == 165281593
        assert mix_seeds(2**70 + 3, 1) == mix_seeds(3 + (1 << 66), 1)

    def test_32_bit_range(self):
        for parts in [(0,), (1, 2, 3), (99, 0), (2**63,)]:
            assert 0 <= mix_seeds(*parts) < 2**32

    def test_order_sensitive(self):
        assert mix_seeds(7, 13) != mix_seeds(13, 7)

    def test_empty_is_zero(self):
        assert mix_seeds() == 0


class TestPolicySeed:
    def test_golden_value(self):
        assert policy_seed(42, 100) == 1536566341

    def test_distinct_per_campaign(self):
        seeds = {policy_seed(7, index) for index in range(200)}
        assert len(seeds) == 200

    def test_distinct_per_session(self):
        assert policy_seed(7, 0) != policy_seed(13, 0)


class TestRetrySeed:
    def test_attempt_zero_is_identity(self):
        assert retry_seed(7, 0) == 7

    def test_golden_values(self):
        assert retry_seed(7, 1) == 4222720726
        assert retry_seed(7, 2) == 3531157028
        assert retry_seed(13, 1) == 4035406439

    def test_salted_away_from_policy_space(self):
        # a retried worker must not replay another worker's seed space
        assert retry_seed(7, 1) != mix_seeds(7, 1)
        assert retry_seed(7, 1) != policy_seed(7, 1)

"""Figure 6 sync-point controller tests, including all three pitfalls."""

import inspect
import random

import pytest

from repro.core import SharedAccessEntry, SyncPointController
from repro.detect import InconsistencyChecker
from repro.instrument import InstrumentationContext, PmView
from repro.pmem import PmemPool
from repro.runtime import RoundRobinPolicy, Scheduler


def site_of(fn, offset=1):
    """Instruction id of the statement ``offset`` lines into ``fn``."""
    line = inspect.getsourcelines(fn)[1] + offset
    module = fn.__module__
    return "%s:%s:%d" % (module, fn.__name__, line)


def reader_loads(view, scheduler):
    view.load_u64(64)


def reader_loads_twice(view, scheduler):
    view.load_u64(64)
    view.load_u64(64)


def writer_stores_late(view, scheduler):
    for _ in range(5):
        scheduler.yield_point("op")
    view.store_u64(64, 7)
    view.persist(64, 8)


def writer_never_stores(view, scheduler):
    for _ in range(400):
        scheduler.yield_point("op")


LOAD_SITE = site_of(reader_loads)
LOAD_SITE_A = site_of(reader_loads_twice, 1)
LOAD_SITE_B = site_of(reader_loads_twice, 2)


def run_scenario(load_sites, threads, writer_waiting=8, initial_skips=None,
                 all_block_threshold=40, some_block_threshold=160,
                 store_sites=frozenset(), **sched_kwargs):
    pool = PmemPool("sp", 8192)
    scheduler = Scheduler(RoundRobinPolicy(),
                          spin_hang_limit=sched_kwargs.pop(
                              "spin_hang_limit", 5000),
                          thread_spin_limit=sched_kwargs.pop(
                              "thread_spin_limit", 50_000),
                          max_steps=sched_kwargs.pop("max_steps", 100_000))
    ctx = InstrumentationContext()
    checker = ctx.add_observer(InconsistencyChecker(pool))
    view = PmView(pool, scheduler, ctx)
    # Entries in production hold interned ids from the run's table; mirror
    # that by interning the human-readable site strings up front.
    sites = ctx.callsites
    entry = SharedAccessEntry(
        64, frozenset(sites.intern_name(site) for site in load_sites),
        frozenset(sites.intern_name(site) for site in store_sites), 1)
    if initial_skips is not None:
        initial_skips = {sites.intern_name(site): count
                         for site, count in initial_skips.items()}
    controller = SyncPointController(
        entry, scheduler, rng=random.Random(0),
        writer_waiting=writer_waiting, initial_skips=initial_skips,
        all_block_threshold=all_block_threshold,
        some_block_threshold=some_block_threshold, callsites=sites)
    ctx.controller = controller
    for index, fn in enumerate(threads):
        scheduler.spawn(lambda fn=fn: fn(view, scheduler), "t%d" % index)
    outcome = scheduler.run()
    return outcome, controller, checker


class TestSyncPointScheduling:
    def test_stall_produces_dirty_read(self):
        outcome, controller, checker = run_scenario(
            {LOAD_SITE}, [reader_loads, writer_stores_late])
        assert outcome.ok
        assert controller.stall_count == 1
        assert controller.signaled
        assert controller.signal_count == 1
        assert checker.inter_candidates

    def test_without_controller_no_dirty_read(self):
        pool = PmemPool("plain", 8192)
        scheduler = Scheduler(RoundRobinPolicy())
        ctx = InstrumentationContext()
        checker = ctx.add_observer(InconsistencyChecker(pool))
        view = PmView(pool, scheduler, ctx)
        scheduler.spawn(lambda: reader_loads(view, scheduler))
        scheduler.spawn(lambda: writer_stores_late(view, scheduler))
        assert scheduler.run().ok
        assert not checker.inter_candidates

    def test_signal_by_address_match(self):
        # store_sites empty: the signal fires because the store hits the
        # entry's address.
        outcome, controller, _checker = run_scenario(
            {LOAD_SITE}, [reader_loads, writer_stores_late])
        assert controller.signaled

    def test_unrelated_load_site_not_stalled(self):
        outcome, controller, checker = run_scenario(
            {"other:site:1"}, [reader_loads, writer_stores_late])
        assert outcome.ok
        assert controller.stall_count == 0
        assert not checker.inter_candidates


class TestPitfalls:
    def test_pitfall1_disable_after_signal(self):
        outcome, controller, _checker = run_scenario(
            {LOAD_SITE_A, LOAD_SITE_B},
            [reader_loads_twice, writer_stores_late])
        assert outcome.ok
        # the second load happens after the signal and must not stall
        assert controller.stall_count == 1

    def test_pitfall2_privileged_thread(self):
        outcome, controller, _checker = run_scenario(
            {LOAD_SITE}, [reader_loads, reader_loads],
            all_block_threshold=10, some_block_threshold=100_000)
        assert outcome.ok
        assert controller.privileged_tid is not None

    def test_pitfall3_disable_and_save_skip(self):
        outcome, controller, _checker = run_scenario(
            {LOAD_SITE}, [reader_loads, writer_never_stores],
            some_block_threshold=30, all_block_threshold=10_000)
        assert outcome.ok
        assert not controller.enabled
        skips_by_site = {controller.callsites.name(site): count
                         for site, count in controller.updated_skips.items()}
        assert skips_by_site.get(LOAD_SITE, 0) >= 1

    def test_initial_skip_consumed(self):
        outcome, controller, checker = run_scenario(
            {LOAD_SITE}, [reader_loads, writer_stores_late],
            initial_skips={LOAD_SITE: 5})
        assert outcome.ok
        assert controller.stall_count == 0
        assert not checker.inter_candidates

    def test_bypassing_thread_not_stalled(self):
        def reader_with_bypass(view, scheduler):
            scheduler.current().bypass_sync = True
            view.load_u64(64)

        site = site_of(reader_with_bypass, 2)
        outcome, controller, _checker = run_scenario(
            {site}, [reader_with_bypass, writer_stores_late])
        assert outcome.ok
        assert controller.stall_count == 0

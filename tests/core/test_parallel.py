"""Fault-tolerant parallel fuzzing service tests (§5).

Covers the guarantees the service makes beyond plain ``Pool.map``:
streaming merge into a fresh result, bounded retry under a fresh seed,
per-worker config isolation, worker statistics, and the
``RunResult.merge`` time-offset semantics the merge relies on.
"""

import copy
import os
import time

import pytest

from repro.core import (
    PMRaceConfig,
    RunResult,
    WorkerStats,
    fuzz_parallel,
    retry_seed,
)
from repro.core.engine import HangRecord
from repro.detect.whitelist import Whitelist

from .toy_target import ToyTarget


def small_config(**overrides):
    options = {"max_campaigns": 8, "max_seeds": 3}
    options.update(overrides)
    return PMRaceConfig(**options)


class FlakyFactory:
    """Raises until a marker file exists, then builds ToyTargets.

    The marker file makes the fault injection visible across processes,
    so the same factory works on the in-process and the pool path.
    """

    def __init__(self, marker):
        self.marker = str(marker)

    def __call__(self):
        if not os.path.exists(self.marker):
            with open(self.marker, "w") as handle:
                handle.write("crashed once\n")
            raise RuntimeError("injected worker fault")
        return ToyTarget()


class BrokenFactory:
    """Every construction fails — exhausts all retry budget."""

    def __call__(self):
        raise RuntimeError("permanently broken target")


class HangingFactory:
    """Stalls far longer than any test timeout."""

    def __call__(self):
        time.sleep(60)
        return ToyTarget()


class HangFirstAttemptsFactory:
    """Hangs the first ``hangs`` constructions, then builds ToyTargets.

    Each hanging call drops a unique marker file first, so the count is
    visible across pool processes: retries (fresh processes after the
    stuck ones are killed) see the quota filled and proceed.
    """

    def __init__(self, marker_dir, hangs=2):
        self.marker_dir = str(marker_dir)
        self.hangs = hangs

    def __call__(self):
        if len(os.listdir(self.marker_dir)) < self.hangs:
            with open(os.path.join(self.marker_dir,
                                   "hang-%d" % os.getpid()), "w"):
                pass
            time.sleep(60)
        return ToyTarget()


class TestFaultTolerance:
    def test_worker_fault_is_retried_inprocess(self, tmp_path):
        factory = FlakyFactory(tmp_path / "marker")
        result = fuzz_parallel(factory, small_config(), seeds=(1, 2),
                               processes=1)
        # The run completed despite the injected crash...
        assert result.campaigns == 16
        statuses = [stats.status for stats in result.worker_stats]
        assert statuses.count("failed") == 1
        assert statuses.count("ok") == 2
        # ...and the retry ran under a fresh, stable seed.
        retried = [stats for stats in result.worker_stats
                   if stats.attempt == 1]
        assert len(retried) == 1
        assert retried[0].status == "ok"
        failed = [stats for stats in result.worker_stats
                  if stats.status == "failed"][0]
        assert retried[0].seed == retry_seed(failed.seed, 1)
        assert retried[0].seed not in (1, 2)
        assert "injected worker fault" in failed.error

    def test_worker_fault_is_retried_multiprocess(self, tmp_path):
        factory = FlakyFactory(tmp_path / "marker")
        result = fuzz_parallel(factory, small_config(), seeds=(1, 2),
                               processes=2)
        # Both workers may race past the marker check and crash; each
        # retry succeeds, so the merged run is always complete.
        assert result.campaigns == 16
        assert any(stats.status == "failed"
                   for stats in result.worker_stats)
        assert sum(stats.status == "ok"
                   for stats in result.worker_stats) == 2

    def test_retry_budget_exhausted_still_completes(self):
        result = fuzz_parallel(BrokenFactory(), small_config(),
                               seeds=(1, 2), processes=1, max_retries=1)
        assert result.campaigns == 0
        assert len(result.worker_stats) == 4  # 2 seeds x (try + retry)
        assert all(stats.status == "failed"
                   for stats in result.worker_stats)
        assert {stats.attempt for stats in result.worker_stats} == {0, 1}

    def test_worker_timeout_written_off(self):
        start = time.monotonic()
        result = fuzz_parallel(HangingFactory(), small_config(),
                               seeds=(1,), processes=2,
                               worker_timeout=1.0, max_retries=0)
        assert time.monotonic() - start < 30
        assert result.campaigns == 0
        assert [stats.status for stats in result.worker_stats] == \
            ["timeout"]

    def test_retry_behind_stuck_workers_still_runs(self, tmp_path):
        """Regression: the timeout clock used to start at *submission*,
        and the pool never killed a stuck process.  With every slot held
        by a hung worker, a queued retry aged past the timeout while
        waiting for a slot and was falsely written off — the run ended
        with zero campaigns despite retry budget.  Now the clock starts
        at the worker's own start report and stuck processes are killed,
        so both retries get a slot and succeed."""
        factory = HangFirstAttemptsFactory(tmp_path, hangs=2)
        start = time.monotonic()
        result = fuzz_parallel(factory, small_config(), seeds=(1, 2),
                               processes=2, worker_timeout=1.5,
                               max_retries=1)
        assert time.monotonic() - start < 60
        statuses = sorted(stats.status for stats in result.worker_stats)
        assert statuses == ["ok", "ok", "timeout", "timeout"]
        assert result.campaigns == 16

    def test_retry_is_reseeded_from_shared_corpus(self, tmp_path):
        """A retried session starts from the merged shared corpus
        instead of from scratch (its stats record how many seeds)."""
        factory = FlakyFactory(tmp_path / "marker")
        result = fuzz_parallel(factory, small_config(), seeds=(1, 2),
                               processes=1)
        retried = [stats for stats in result.worker_stats
                   if stats.attempt == 1]
        assert len(retried) == 1
        # The other worker finished (and merged its corpus) before the
        # retry was scheduled on the sequential in-process path.
        assert retried[0].corpus_seeded > 0
        assert retried[0].corpus_seeded <= len(result.corpus_seeds)
        assert result.corpus_seeds  # workers' corpora reached the merge

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            fuzz_parallel(ToyTarget, small_config(), seeds=())


class TestMergeIsolation:
    def test_worker_results_never_mutated(self):
        """Merging folds into a fresh result; the sources are untouched."""
        from repro.core import PMRace
        a = PMRace(ToyTarget(), small_config(base_seed=1)).run()
        b = PMRace(ToyTarget(), small_config(base_seed=2)).run()
        before = (a.campaigns, a.duration, len(a.candidates),
                  len(a.inconsistencies), len(a.sync_inconsistencies),
                  len(a.coverage_timeline), a.config.base_seed,
                  len(a.bug_reports))
        merged = RunResult(a.target_name, small_config())
        merged.merge(a)
        merged.merge(b)
        after = (a.campaigns, a.duration, len(a.candidates),
                 len(a.inconsistencies), len(a.sync_inconsistencies),
                 len(a.coverage_timeline), a.config.base_seed,
                 len(a.bug_reports))
        assert before == after
        assert merged.campaigns == a.campaigns + b.campaigns

    def test_merged_config_claims_no_worker_seed(self):
        config = small_config(base_seed=99)
        result = fuzz_parallel(ToyTarget, config, seeds=(1, 2),
                               processes=1)
        assert result.config.base_seed == 99
        assert config.base_seed == 99  # caller's object untouched
        # All worker seeds are carried on the stats instead.
        assert {stats.seed for stats in result.worker_stats} == {1, 2}

    def test_config_deepcopied_per_worker(self, monkeypatch):
        """The in-process path must not share the caller's whitelist."""
        import repro.core.parallel as parallel
        seen = []

        class SpyPMRace:
            def __init__(self, target, cfg):
                self.cfg = cfg
                seen.append(cfg)

            def run(self):
                return RunResult("toy", self.cfg)

        monkeypatch.setattr(parallel, "PMRace", SpyPMRace)
        whitelist = Whitelist()
        config = small_config(whitelist=whitelist)
        fuzz_parallel(ToyTarget, config, seeds=(1, 2), processes=1)
        assert len(seen) == 2
        for cfg in seen:
            assert cfg is not config
            assert cfg.whitelist is not whitelist
        assert seen[0].whitelist is not seen[1].whitelist

    def test_progress_streams_partial_merges(self):
        calls = []
        fuzz_parallel(ToyTarget, small_config(), seeds=(1, 2, 3),
                      processes=1,
                      progress=lambda stats, merged:
                      calls.append((stats.seed, merged.campaigns)))
        assert [seed for seed, _ in calls] == [1, 2, 3]
        totals = [campaigns for _, campaigns in calls]
        assert totals == sorted(totals)
        assert totals[-1] == 24

    def test_worker_stats_in_summary_order(self):
        result = fuzz_parallel(ToyTarget, small_config(), seeds=(5, 6),
                               processes=1)
        for stats in result.worker_stats:
            assert stats.status == "ok"
            assert stats.campaigns == 8
            assert stats.duration > 0
            assert stats.execs_per_sec > 0
            payload = stats.to_dict()
            assert payload["seed"] == stats.seed
            assert payload["error"] is None


class TestMergeOffsets:
    """RunResult.merge time/campaign offset semantics."""

    def make(self, campaigns=10, duration=5.0):
        result = RunResult("toy", PMRaceConfig())
        result.campaigns = campaigns
        result.duration = duration
        return result

    def test_first_inter_time_offset_by_prior_duration(self):
        a = self.make(duration=5.0)
        b = self.make()
        b.first_inter_time = 1.5
        a.merge(b)
        assert a.first_inter_time == pytest.approx(6.5)

    def test_first_inter_time_keeps_earliest(self):
        a = self.make()
        a.first_inter_time = 2.0
        b = self.make()
        b.first_inter_time = 0.5
        a.merge(b)
        assert a.first_inter_time == 2.0

    def test_first_candidate_time_offset(self):
        a = self.make(duration=3.0)
        b = self.make()
        b.first_candidate_time = 1.0
        a.merge(b)
        assert a.first_candidate_time == pytest.approx(4.0)

    def test_coverage_timeline_offsets(self):
        a = self.make(campaigns=10, duration=5.0)
        a.coverage_timeline = [(1, 0.1, 3, 1)]
        b = self.make()
        b.coverage_timeline = [(1, 0.2, 4, 2), (2, 0.4, 5, 2)]
        a.merge(b)
        assert a.coverage_timeline == [
            (1, 0.1, 3, 1),
            (11, pytest.approx(5.2), 4, 2),
            (12, pytest.approx(5.4), 5, 2),
        ]

    def test_inter_hit_times_offset(self):
        a = self.make(duration=2.0)
        b = self.make()
        b.inter_hit_times = [(0.5, 1), (1.5, 2)]
        a.merge(b)
        assert a.inter_hit_times == [
            (pytest.approx(2.5), 1), (pytest.approx(3.5), 2)]

    def test_hang_dedup_across_merge(self):
        a = self.make()
        hang = HangRecord([(0, "pm_lock:bucket")], seed_id=1)
        a.hangs = [hang]
        a._hang_signatures = {hang.signature()}
        b = self.make()
        b.hangs = [HangRecord([(1, "pm_lock:bucket")], seed_id=2),
                   HangRecord([(2, "pm_lock:other")], seed_id=3)]
        a.merge(b)
        assert len(a.hangs) == 2
        signatures = {h.signature() for h in a.hangs}
        assert frozenset(["pm_lock:bucket"]) in signatures
        assert frozenset(["pm_lock:other"]) in signatures

    def test_worker_stats_survive_merge(self):
        a = self.make()
        a.worker_stats = [WorkerStats(0, 7)]
        b = self.make()
        b.worker_stats = [WorkerStats(1, 13)]
        a.merge(b)
        assert [stats.seed for stats in a.worker_stats] == [7, 13]

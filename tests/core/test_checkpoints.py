"""In-memory checkpoint (state provider) tests."""

import pytest

from repro.core import make_state_provider
from repro.core.checkpoints import StateProvider
from repro.targets import MemcachedTarget, PclhtTarget

from .toy_target import COUNTER, ToyTarget


class TestStateProvider:
    def test_checkpoint_setup_once(self):
        provider = StateProvider(ToyTarget(), use_checkpoints=True)
        for _ in range(4):
            provider.provide()
        assert provider.setup_count == 1
        assert provider.restore_count == 3

    def test_no_checkpoint_setup_each_time(self):
        provider = StateProvider(ToyTarget(), use_checkpoints=False)
        for _ in range(4):
            provider.provide()
        assert provider.setup_count == 4
        assert provider.restore_count == 0

    def test_restore_resets_pool(self):
        provider = StateProvider(ToyTarget(), use_checkpoints=True)
        state = provider.provide()
        state.pool.write_u64(COUNTER, 99)
        state = provider.provide()
        assert state.pool.read_u64(COUNTER) == 0

    def test_restore_resets_annotations(self):
        provider = StateProvider(ToyTarget(), use_checkpoints=True)
        state = provider.provide()
        state.annotations.pm_sync_var_hint("extra", 8, 0)
        state.annotations.register_instance("extra", 512)
        state = provider.provide()
        assert state.annotations.annotation_count == 1

    def test_eadr_flag_survives_restore(self):
        """§6.6: the snapshot is taken before the platform switch is
        applied, so every restore must re-apply it."""
        provider = StateProvider(ToyTarget(), use_checkpoints=True,
                                 eadr=True)
        first = provider.provide()
        assert first.pool.memory.eadr
        second = provider.provide()
        assert provider.restore_count == 1
        assert second.pool.memory.eadr
        # and eADR semantics actually hold on the restored state
        second.pool.memory.store(0, b"x" * 8, thread_id=0)
        assert second.pool.memory.is_persisted(0, 8)

    def test_eadr_flag_without_checkpoints(self):
        provider = StateProvider(ToyTarget(), use_checkpoints=False,
                                 eadr=True)
        for _ in range(2):
            assert provider.provide().pool.memory.eadr

    def test_auto_mode_respects_libpmem(self):
        assert make_state_provider(PclhtTarget()).use_checkpoints
        assert not make_state_provider(MemcachedTarget()).use_checkpoints

    def test_auto_mode_forced(self):
        assert make_state_provider(MemcachedTarget(),
                                   use_checkpoints=True).use_checkpoints

    def test_restore_resets_allocator(self):
        provider = StateProvider(PclhtTarget(), use_checkpoints=True)
        state = provider.provide()
        allocator = state.extras["objpool"].allocator
        baseline = allocator.allocated_bytes
        allocator.alloc(256)
        state = provider.provide()
        assert state.extras["objpool"].allocator.allocated_bytes == baseline

"""Shared-access priority queue tests."""

import pytest

from repro.core import AccessProfiler, SharedAccessQueue
from repro.instrument.events import PmAccessEvent


class FakeThread:
    def __init__(self, tid):
        self.tid = tid


def feed(profiler, kind, addr, tid, instr, times=1):
    for _ in range(times):
        event = PmAccessEvent(kind, addr, 8, 0, FakeThread(tid), instr)
        if kind == "load":
            profiler.on_load(event)
        else:
            profiler.on_store(event)


def shared_profile(addr=64, freq=1):
    profiler = AccessProfiler()
    feed(profiler, "load", addr, 0, "r1", times=freq)
    feed(profiler, "store", addr, 1, "w1", times=freq)
    return profiler


class TestProfiler:
    def test_counts(self):
        profiler = shared_profile(freq=3)
        entry = profiler.profile[64]
        assert entry["loads"] == {"r1": 3}
        assert entry["stores"] == {"w1": 3}
        assert entry["tids"] == {0, 1}
        assert entry["count"] == 6


class TestQueue:
    def test_shared_entry_admitted(self):
        queue = SharedAccessQueue()
        queue.update_from(shared_profile())
        assert len(queue) == 1
        entry = queue.fetch()
        assert entry.addr == 64
        assert entry.load_instrs == frozenset({"r1"})
        assert entry.store_instrs == frozenset({"w1"})

    def test_single_thread_rejected(self):
        profiler = AccessProfiler()
        feed(profiler, "load", 64, 0, "r1")
        feed(profiler, "store", 64, 0, "w1")
        queue = SharedAccessQueue()
        queue.update_from(profiler)
        assert len(queue) == 0

    def test_loads_only_rejected(self):
        profiler = AccessProfiler()
        feed(profiler, "load", 64, 0, "r1")
        feed(profiler, "load", 64, 1, "r2")
        queue = SharedAccessQueue()
        queue.update_from(profiler)
        assert len(queue) == 0

    def test_frequency_priority(self):
        queue = SharedAccessQueue()
        queue.update_from(shared_profile(addr=64, freq=1))
        profiler = AccessProfiler()
        feed(profiler, "load", 128, 0, "r-other", times=10)
        feed(profiler, "store", 128, 1, "w-other", times=10)
        queue.update_from(profiler)
        assert queue.fetch().addr == 128
        assert queue.fetch().addr == 64
        assert queue.fetch() is None

    def test_same_sites_count_as_explored(self):
        # Two addresses touched by the same load/store sites are the same
        # interleaving shape: exploring one explores both.
        queue = SharedAccessQueue()
        queue.update_from(shared_profile(addr=64, freq=1))
        queue.update_from(shared_profile(addr=128, freq=10))
        assert queue.fetch() is not None
        assert queue.fetch() is None

    def test_explored_not_refetched(self):
        queue = SharedAccessQueue()
        queue.update_from(shared_profile())
        queue.fetch()
        assert queue.fetch() is None
        assert queue.pending() == 0

    def test_reset_exploration(self):
        queue = SharedAccessQueue()
        queue.update_from(shared_profile())
        queue.fetch()
        queue.reset_exploration()
        assert queue.fetch() is not None

    def test_same_stores_merge_loads(self):
        # Groups are keyed by store-site set: another address written by
        # the same store merges its reader sites into the group.
        queue = SharedAccessQueue()
        queue.update_from(shared_profile(freq=2))
        profiler = AccessProfiler()
        feed(profiler, "load", 128, 2, "r2")
        feed(profiler, "store", 128, 3, "w1")
        queue.update_from(profiler)
        assert len(queue) == 1
        entry = queue.fetch()
        assert entry.load_instrs == frozenset({"r1", "r2"})
        assert entry.frequency == 6

    def test_different_stores_stay_separate(self):
        queue = SharedAccessQueue()
        queue.update_from(shared_profile(freq=2))
        profiler = AccessProfiler()
        feed(profiler, "load", 64, 2, "r2")
        feed(profiler, "store", 64, 3, "w2")
        queue.update_from(profiler)
        assert len(queue) == 2

    def test_representative_addr_is_most_frequent(self):
        queue = SharedAccessQueue()
        queue.update_from(shared_profile(addr=64, freq=1))
        profiler = AccessProfiler()
        feed(profiler, "load", 256, 0, "r1", times=9)
        feed(profiler, "store", 256, 1, "w1", times=9)
        queue.update_from(profiler)
        assert queue.fetch().addr == 256

    def test_clear(self):
        queue = SharedAccessQueue()
        queue.update_from(shared_profile())
        queue.clear()
        assert len(queue) == 0

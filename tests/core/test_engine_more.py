"""Additional engine tests: budgets, merging, fuzz_target."""

import pytest

from repro.core import PMRace, PMRaceConfig, fuzz_target
from repro.detect import Verdict

from .toy_target import ToyTarget


def run(**overrides):
    options = {"max_campaigns": 15, "max_seeds": 6, "base_seed": 2}
    options.update(overrides)
    return PMRace(ToyTarget(), PMRaceConfig(**options)).run()


class TestBudgets:
    def test_time_budget(self):
        result = run(max_campaigns=10_000, max_seeds=10_000,
                     time_budget=0.5)
        assert result.duration < 5.0
        assert result.campaigns < 10_000

    def test_single_campaign(self):
        assert run(max_campaigns=1).campaigns == 1

    def test_max_seeds_limits_corpus(self):
        result = run(max_seeds=1, max_campaigns=200)
        # one seed, bounded rounds per seed -> far fewer than the cap
        assert result.campaigns < 200


class TestMerge:
    def test_merge_dedups(self):
        a = run(base_seed=1)
        before = len(a.inconsistencies)
        a.merge(run(base_seed=1))  # identical run adds nothing
        assert len(a.inconsistencies) == before

    def test_merge_accumulates_campaigns(self):
        a = run(base_seed=1)
        b = run(base_seed=2)
        campaigns = a.campaigns + b.campaigns
        a.merge(b)
        assert a.campaigns == campaigns

    def test_merge_extends_timeline_monotonically(self):
        a = run(base_seed=1)
        a.merge(run(base_seed=2))
        indexes = [c for c, _t, _b, _a in a.coverage_timeline]
        assert indexes == sorted(indexes)

    def test_merge_regroups_bugs(self):
        a = run(base_seed=1)
        b = run(base_seed=2)
        a.merge(b)
        ids = [report.bug_id for report in a.bug_reports]
        assert ids == list(range(1, len(ids) + 1))

    def test_merge_first_times_offset(self):
        a = run(base_seed=1)
        b = run(base_seed=2)
        a_first = a.first_inter_time
        a.merge(b)
        assert a.first_inter_time == a_first  # first hit stays first


class TestFuzzTarget:
    def test_multiple_seeds_merged(self):
        result = fuzz_target(ToyTarget(),
                             PMRaceConfig(max_campaigns=8, max_seeds=3),
                             seeds=(1, 2, 3))
        assert result.campaigns == 24

    def test_config_not_mutated(self):
        config = PMRaceConfig(max_campaigns=5, max_seeds=2, base_seed=99)
        fuzz_target(ToyTarget(), config, seeds=(1,))
        assert config.base_seed == 99

    def test_default_config(self):
        result = fuzz_target(ToyTarget(),
                             PMRaceConfig(max_campaigns=3, max_seeds=2),
                             seeds=(5,))
        assert result.campaigns == 3


class TestVerdictAccounting:
    def test_by_verdict_partition(self):
        result = run()
        records = result.inter_inconsistencies
        partitioned = sum(len(result.by_verdict(records, verdict))
                          for verdict in Verdict)
        assert partitioned == len(records)

    def test_op_errors_zero_for_valid_space(self):
        assert run().op_errors == 0

"""Coverage metric tests."""

import pytest

from repro.core import (
    AliasCoverageCollector,
    BranchCoverageCollector,
    CoverageSet,
)
from repro.instrument.events import PmAccessEvent


class FakeThread:
    def __init__(self, tid):
        self.tid = tid


def load(addr, tid, instr, dirty=False):
    return PmAccessEvent("load", addr, 8, 0, FakeThread(tid), instr,
                         nonpersisted=("w",) if dirty else ())


def store(addr, tid, instr, nt=False):
    return PmAccessEvent("ntstore" if nt else "store", addr, 8, 0,
                         FakeThread(tid), instr)


class TestCoverageSet:
    def test_add_new(self):
        cov = CoverageSet()
        assert cov.add("a")
        assert not cov.add("a")
        assert len(cov) == 1

    def test_merge_counts_new(self):
        cov = CoverageSet()
        cov.add("a")
        assert cov.merge({"a", "b", "c"}) == 2
        assert len(cov) == 3

    def test_merge_coverage_set(self):
        a, b = CoverageSet(), CoverageSet()
        a.add("x")
        b.add("x")
        b.add("y")
        assert a.merge(b) == 1

    def test_contains(self):
        cov = CoverageSet()
        cov.add("z")
        assert "z" in cov


class TestBranchCoverage:
    def test_edges_per_thread(self):
        collector = BranchCoverageCollector()
        collector.on_load(load(0, 0, "i1"))
        collector.on_load(load(8, 0, "i2"))
        assert ("i1", "i2") in collector.edges

    def test_first_event_edge_from_none(self):
        collector = BranchCoverageCollector()
        collector.on_load(load(0, 0, "i1"))
        assert (None, "i1") in collector.edges

    def test_threads_tracked_separately(self):
        collector = BranchCoverageCollector()
        collector.on_load(load(0, 0, "i1"))
        collector.on_load(load(0, 1, "i9"))
        collector.on_load(load(8, 0, "i2"))
        assert ("i1", "i2") in collector.edges
        assert ("i9", "i2") not in collector.edges

    def test_all_event_kinds_counted(self):
        collector = BranchCoverageCollector()
        collector.on_store(store(0, 0, "s"))
        collector.on_flush(PmAccessEvent("clwb", 0, 0, None,
                                         FakeThread(0), "f"))
        collector.on_fence(PmAccessEvent("sfence", None, 0, None,
                                         FakeThread(0), "fe"))
        assert ("s", "f") in collector.edges
        assert ("f", "fe") in collector.edges


class TestAliasCoverage:
    def test_cross_thread_pair(self):
        collector = AliasCoverageCollector()
        collector.on_store(store(64, 0, "w"))
        collector.on_load(load(64, 1, "r", dirty=True))
        assert ("w", "D", "r", "D") in collector.pairs

    def test_same_thread_no_pair(self):
        collector = AliasCoverageCollector()
        collector.on_store(store(64, 0, "w"))
        collector.on_load(load(64, 0, "r"))
        assert not collector.pairs

    def test_different_address_no_pair(self):
        collector = AliasCoverageCollector()
        collector.on_store(store(64, 0, "w"))
        collector.on_load(load(128, 1, "r"))
        assert not collector.pairs

    def test_persistency_state_distinguishes(self):
        clean = AliasCoverageCollector()
        clean.on_store(store(64, 0, "w", nt=True))
        clean.on_load(load(64, 1, "r", dirty=False))
        dirty = AliasCoverageCollector()
        dirty.on_store(store(64, 0, "w"))
        dirty.on_load(load(64, 1, "r", dirty=True))
        assert clean.pairs != dirty.pairs

    def test_back_to_back_only(self):
        collector = AliasCoverageCollector()
        collector.on_store(store(64, 0, "w"))
        collector.on_load(load(64, 0, "mine"))   # interposes, same thread
        collector.on_load(load(64, 1, "r"))
        # the pair recorded is (mine -> r), not (w -> r)
        assert ("mine", "C", "r", "C") in collector.pairs
        assert all(pair[0] != "w" for pair in collector.pairs)

    def test_thread_ids_normalized_out(self):
        a = AliasCoverageCollector()
        a.on_store(store(64, 0, "w"))
        a.on_load(load(64, 1, "r", dirty=True))
        b = AliasCoverageCollector()
        b.on_store(store(64, 3, "w"))
        b.on_load(load(64, 2, "r", dirty=True))
        assert a.pairs == b.pairs


def access(kind, addr, size, tid, instr, dirty=False):
    return PmAccessEvent(kind, addr, size, 0, FakeThread(tid), instr,
                         nonpersisted=("w",) if dirty else ())


class TestAliasCoverageWordGranularity:
    """§4.2.1 identities alias per touched *word*, not per start byte."""

    def test_offset_store_aliases_covering_load(self):
        # store at byte 66 and load at byte 64 touch the same word even
        # though their start addresses differ.
        collector = AliasCoverageCollector()
        collector.on_store(access("store", 66, 2, 0, "w"))
        collector.on_load(access("load", 64, 8, 1, "r", dirty=True))
        assert ("w", "D", "r", "D") in collector.pairs

    def test_disjoint_bytes_same_word_alias(self):
        # byte ranges [64,68) and [68,72) are disjoint but share word 8
        collector = AliasCoverageCollector()
        collector.on_store(access("store", 64, 4, 0, "w"))
        collector.on_load(access("load", 68, 4, 1, "r", dirty=True))
        assert ("w", "D", "r", "D") in collector.pairs

    def test_multiword_store_pairs_with_each_word(self):
        collector = AliasCoverageCollector()
        collector.on_store(access("store", 64, 16, 0, "w"))
        collector.on_load(access("load", 64, 8, 1, "r1", dirty=True))
        collector.on_load(access("load", 72, 8, 2, "r2", dirty=True))
        assert ("w", "D", "r1", "D") in collector.pairs
        assert ("w", "D", "r2", "D") in collector.pairs

    def test_different_words_no_pair(self):
        collector = AliasCoverageCollector()
        collector.on_store(access("store", 64, 8, 0, "w"))
        collector.on_load(access("load", 72, 8, 1, "r", dirty=True))
        assert not collector.pairs

    def test_zero_size_access_ignored(self):
        collector = AliasCoverageCollector()
        collector.on_store(access("store", 64, 8, 0, "w"))
        collector.on_load(access("load", 64, 0, 1, "zero"))
        collector.on_load(access("load", 64, 8, 1, "r", dirty=True))
        # the zero-size access neither records a pair nor clobbers the
        # per-word last-access identity
        assert ("w", "D", "r", "D") in collector.pairs
        assert all("zero" not in (pair[0], pair[2])
                   for pair in collector.pairs)

"""CLI tests."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import read_trace


class TestParser:
    def test_targets_command(self):
        args = build_parser().parse_args(["targets"])
        assert args.command == "targets"

    def test_fuzz_defaults(self):
        args = build_parser().parse_args(["fuzz", "P-CLHT"])
        assert args.target == "P-CLHT"
        assert args.campaigns == 80
        assert args.mode == "pmrace"
        assert not args.eadr

    def test_fuzz_options(self):
        args = build_parser().parse_args(
            ["fuzz", "CCEH", "--campaigns", "5", "--seeds", "1", "2",
             "--mode", "delay", "--eadr", "--parallel", "2"])
        assert args.campaigns == 5
        assert args.seeds == [1, 2]
        assert args.mode == "delay"
        assert args.eadr and args.parallel == 2

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fuzz_parallel_options(self):
        args = build_parser().parse_args(
            ["fuzz-parallel", "P-CLHT", "--seeds", "1", "2",
             "--processes", "2", "--worker-timeout", "30",
             "--max-retries", "2"])
        assert args.command == "fuzz-parallel"
        assert args.seeds == [1, 2]
        assert args.processes == 2
        assert args.worker_timeout == 30.0
        assert args.max_retries == 2

    def test_fuzz_parallel_defaults(self):
        args = build_parser().parse_args(["fuzz-parallel", "CCEH"])
        assert args.processes == 0
        assert args.worker_timeout is None
        assert args.max_retries == 1

    def test_observability_flags(self):
        args = build_parser().parse_args(
            ["fuzz", "P-CLHT", "--trace-out", "t.jsonl",
             "--metrics-out", "m.jsonl"])
        assert args.trace_out == "t.jsonl"
        assert args.metrics_out == "m.jsonl"

    def test_validate_and_stats_commands(self):
        args = build_parser().parse_args(["validate", "P-CLHT"])
        assert args.command == "validate"
        assert not hasattr(args, "parallel")
        args = build_parser().parse_args(["stats", "trace.jsonl"])
        assert args.command == "stats"
        assert args.file == "trace.jsonl"


class TestCommands:
    def test_targets_lists_all(self, capsys):
        assert main(["targets"]) == 0
        out = capsys.readouterr().out
        for name in ("P-CLHT", "CCEH", "FAST-FAIR", "memcached-pmem"):
            assert name in out

    def test_fuzz_unknown_target(self, capsys):
        assert main(["fuzz", "redis"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_fuzz_small_run(self, capsys, tmp_path):
        report = tmp_path / "out.json"
        code = main(["fuzz", "P-CLHT", "--campaigns", "10",
                     "--seeds", "7", "--output", str(report)])
        assert code == 0
        out = capsys.readouterr().out
        assert "unique bugs" in out
        payload = json.loads(report.read_text())
        assert payload["target"] == "P-CLHT"
        assert payload["campaigns"] == 10

    def test_fuzz_eadr_flag(self, capsys):
        assert main(["fuzz", "CCEH", "--campaigns", "6",
                     "--seeds", "7", "--eadr"]) == 0
        out = capsys.readouterr().out
        assert "inter-thread candidates     : 0" in out

    def test_fuzz_parallel_small_run(self, capsys, tmp_path):
        report = tmp_path / "out.json"
        code = main(["fuzz-parallel", "P-CLHT", "--campaigns", "8",
                     "--seeds", "7", "13", "--processes", "1",
                     "--output", str(report)])
        assert code == 0
        captured = capsys.readouterr()
        assert "Workers" in captured.out
        assert "unique bugs" in captured.out
        assert "merged total" in captured.err  # progress hook streamed
        payload = json.loads(report.read_text())
        assert payload["campaigns"] == 16
        assert [w["seed"] for w in payload["workers"]] == [7, 13]
        assert all(w["status"] == "ok" for w in payload["workers"])

    def test_fuzz_parallel_unknown_target(self, capsys):
        assert main(["fuzz-parallel", "redis"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_fuzz_with_whitelist_file(self, capsys, tmp_path):
        wl = tmp_path / "wl.txt"
        wl.write_text("repro.targets.pclht:\n")  # whitelist everything
        assert main(["fuzz", "P-CLHT", "--campaigns", "10", "--seeds",
                     "7", "--whitelist", str(wl)]) == 0
        out = capsys.readouterr().out
        assert "campaigns" in out


class TestObservability:
    def test_fuzz_trace_and_metrics_out(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        assert main(["fuzz", "P-CLHT", "--campaigns", "8", "--seeds", "7",
                     "--trace-out", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        err = capsys.readouterr().err
        assert "trace written to" in err
        assert "metrics written to" in err
        records = list(read_trace(str(trace)))  # validates every record
        types = {record["type"] for record in records}
        assert {"trace_header", "run_start", "campaign", "run_end"} <= types
        lines = [json.loads(line) for line
                 in metrics.read_text().splitlines()]
        assert lines[0]["type"] == "metrics_header"
        names = {line["name"] for line in lines[1:]}
        assert {"pm.stores", "scheduler.steps", "engine.campaigns"} <= names

    def test_stats_on_cli_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(["fuzz", "P-CLHT", "--campaigns", "8", "--seeds", "7",
                     "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "observability stats" in out
        assert "coverage growth" in out

    def test_stats_rejects_garbage(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["stats", str(bad)]) == 2
        assert "cannot summarize" in capsys.readouterr().err
        assert main(["stats", str(tmp_path / "missing.jsonl")]) == 2

    def test_validate_runs_separate_pass(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(["validate", "P-CLHT", "--campaigns", "8",
                     "--seeds", "7", "--trace-out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "post-failure validation:" in out
        assert "unique bugs" in out
        verdicts = [r for r in read_trace(str(trace))
                    if r["type"] == "verdict"]
        assert verdicts and all(r["verdict"] in
                                ("bug", "validated_fp", "whitelisted_fp",
                                 "pending") for r in verdicts)

"""CLI tests."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_targets_command(self):
        args = build_parser().parse_args(["targets"])
        assert args.command == "targets"

    def test_fuzz_defaults(self):
        args = build_parser().parse_args(["fuzz", "P-CLHT"])
        assert args.target == "P-CLHT"
        assert args.campaigns == 80
        assert args.mode == "pmrace"
        assert not args.eadr

    def test_fuzz_options(self):
        args = build_parser().parse_args(
            ["fuzz", "CCEH", "--campaigns", "5", "--seeds", "1", "2",
             "--mode", "delay", "--eadr", "--parallel", "2"])
        assert args.campaigns == 5
        assert args.seeds == [1, 2]
        assert args.mode == "delay"
        assert args.eadr and args.parallel == 2

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fuzz_parallel_options(self):
        args = build_parser().parse_args(
            ["fuzz-parallel", "P-CLHT", "--seeds", "1", "2",
             "--processes", "2", "--worker-timeout", "30",
             "--max-retries", "2"])
        assert args.command == "fuzz-parallel"
        assert args.seeds == [1, 2]
        assert args.processes == 2
        assert args.worker_timeout == 30.0
        assert args.max_retries == 2

    def test_fuzz_parallel_defaults(self):
        args = build_parser().parse_args(["fuzz-parallel", "CCEH"])
        assert args.processes == 0
        assert args.worker_timeout is None
        assert args.max_retries == 1


class TestCommands:
    def test_targets_lists_all(self, capsys):
        assert main(["targets"]) == 0
        out = capsys.readouterr().out
        for name in ("P-CLHT", "CCEH", "FAST-FAIR", "memcached-pmem"):
            assert name in out

    def test_fuzz_unknown_target(self, capsys):
        assert main(["fuzz", "redis"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_fuzz_small_run(self, capsys, tmp_path):
        report = tmp_path / "out.json"
        code = main(["fuzz", "P-CLHT", "--campaigns", "10",
                     "--seeds", "7", "--output", str(report)])
        assert code == 0
        out = capsys.readouterr().out
        assert "unique bugs" in out
        payload = json.loads(report.read_text())
        assert payload["target"] == "P-CLHT"
        assert payload["campaigns"] == 10

    def test_fuzz_eadr_flag(self, capsys):
        assert main(["fuzz", "CCEH", "--campaigns", "6",
                     "--seeds", "7", "--eadr"]) == 0
        out = capsys.readouterr().out
        assert "inter-thread candidates     : 0" in out

    def test_fuzz_parallel_small_run(self, capsys, tmp_path):
        report = tmp_path / "out.json"
        code = main(["fuzz-parallel", "P-CLHT", "--campaigns", "8",
                     "--seeds", "7", "13", "--processes", "1",
                     "--output", str(report)])
        assert code == 0
        captured = capsys.readouterr()
        assert "Workers" in captured.out
        assert "unique bugs" in captured.out
        assert "merged total" in captured.err  # progress hook streamed
        payload = json.loads(report.read_text())
        assert payload["campaigns"] == 16
        assert [w["seed"] for w in payload["workers"]] == [7, 13]
        assert all(w["status"] == "ok" for w in payload["workers"])

    def test_fuzz_parallel_unknown_target(self, capsys):
        assert main(["fuzz-parallel", "redis"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_fuzz_with_whitelist_file(self, capsys, tmp_path):
        wl = tmp_path / "wl.txt"
        wl.write_text("repro.targets.pclht:\n")  # whitelist everything
        assert main(["fuzz", "P-CLHT", "--campaigns", "10", "--seeds",
                     "7", "--whitelist", str(wl)]) == 0
        out = capsys.readouterr().out
        assert "campaigns" in out

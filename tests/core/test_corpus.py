"""Seed-corpus subsystem tests: retention, scheduling, persistence.

The seed tier (§4.2.3) retains evolved seeds only while they grow
coverage; the :class:`~repro.core.corpus.Corpus` owns that retention
plus AFL-style energy scheduling and optional on-disk persistence.
"""

import json
import os
import random

import pytest

from repro.core import (
    Corpus,
    OperationMutator,
    PMRace,
    PMRaceConfig,
    Seed,
    seed_digest,
)
from repro.core.corpus import CORPUS_SCHEMA_VERSION, SeedEntry
from repro.targets import OperationSpace

from .toy_target import ToyTarget


def make_seed(ops=((("bump", 0),),)):
    return Seed([[{"op": kind, "key": key} for kind, key in thread]
                 for thread in ops])


def make_mutator(seed=1):
    return OperationMutator(OperationSpace(), n_threads=2, ops_per_thread=3,
                            rng=random.Random(seed))


class TestDigest:
    def test_same_content_same_digest(self):
        a = make_seed()
        b = make_seed()
        assert a.seed_id != b.seed_id
        assert seed_digest(a.to_jsonable()) == seed_digest(b.to_jsonable())

    def test_different_content_differs(self):
        a = make_seed(((("bump", 0),),))
        b = make_seed(((("bump", 1),),))
        assert seed_digest(a.to_jsonable()) != seed_digest(b.to_jsonable())

    def test_add_initial_dedups_by_content(self):
        corpus = Corpus()
        first = corpus.add_initial(make_seed())
        second = corpus.add_initial(make_seed())
        assert second is first
        assert len(corpus) == 1


class TestRetention:
    def _evolved(self, corpus, mutator):
        entry, evolved = corpus.next_entry(mutator, len(corpus))
        assert evolved
        return entry

    def test_unproductive_evolved_dropped(self):
        corpus = Corpus()
        corpus.add_initial(make_mutator().initial_seed())
        mutator = make_mutator(2)
        entry = self._evolved(corpus, mutator)
        assert len(corpus) == 2  # provisional
        assert not corpus.settle(entry, productive=False)
        assert len(corpus) == 1

    def test_productive_evolved_retained(self):
        corpus = Corpus()
        corpus.add_initial(make_mutator().initial_seed())
        mutator = make_mutator(2)
        entry = self._evolved(corpus, mutator)
        assert corpus.settle(entry, productive=True)
        assert len(corpus) == 2
        assert entry.digest in corpus.digests()

    def test_initial_seeds_never_dropped(self):
        """Regression: the engine's old list dance popped the *last
        initial seed* when it yielded no coverage (its index equalled the
        corpus length), silently shrinking the pinned corpus."""
        config = PMRaceConfig(max_campaigns=12, base_seed=7)
        result = PMRace(ToyTarget(), config).run()
        # populate + initial must both survive to the exported corpus.
        initial = [entry for entry in result.corpus_seeds
                   if entry["initial"]]
        assert len(initial) == 2

    def test_duplicate_evolved_rejected_even_if_productive(self):
        corpus = Corpus()
        kept = corpus.add_initial(make_seed())

        class CloneMutator:
            rng = random.Random(0)

            def evolve_from(self, seed, seeds):
                return Seed([list(ops) for ops in seed.threads])

        entry, evolved = corpus.next_entry(CloneMutator(), 1)
        assert evolved
        assert entry.digest == kept.digest
        assert not corpus.settle(entry, productive=True)
        assert corpus.digests() == [kept.digest]

    def test_trace_events_are_registered_types(self):
        """Regression: ``corpus_seed``/``corpus_load`` must stay in
        ``EVENT_TYPES`` — the tracer rejects unknown types, so a rename
        would crash every traced run at the first settled seed."""
        import io

        from repro.obs.tracer import Tracer

        corpus = Corpus(tracer=Tracer(io.StringIO()))
        corpus.load()  # no persist dir: still must not raise
        corpus.add_initial(make_mutator().initial_seed())
        entry = self._evolved(corpus, make_mutator(2))
        corpus.settle(entry, productive=True)

    def test_settle_requires_provisional_tail(self):
        corpus = Corpus()
        entry = corpus.add_initial(make_seed())
        corpus.add_initial(make_seed(((("fix", 0),),)))
        with pytest.raises(ValueError):
            corpus.settle(entry, productive=True)


class TestScheduling:
    def _stocked(self, schedule):
        corpus = Corpus(schedule=schedule)
        dull = corpus.add_initial(make_seed(((("read", 0),),)))
        hot = corpus.add_initial(make_seed(((("bump", 0),),)))
        corpus.account(dull, campaigns=8, new_branch=0, new_alias=0,
                       inconsistencies=0)
        corpus.account(hot, campaigns=8, new_branch=30, new_alias=20,
                       inconsistencies=3)
        return corpus, dull, hot

    def test_energy_favors_productive_seed(self):
        corpus, dull, hot = self._stocked("energy")
        rng = random.Random(5)
        picks = [corpus._select(rng) for _ in range(200)]
        assert picks.count(hot) > picks.count(dull) * 3

    def test_energy_selection_deterministic(self):
        counts = []
        for _ in range(2):
            corpus, dull, hot = self._stocked("energy")
            rng = random.Random(9)
            picks = [corpus._select(rng) for _ in range(50)]
            counts.append([p is hot for p in picks])
        assert counts[0] == counts[1]

    def test_uniform_matches_plain_choice(self):
        """Uniform mode must spend the exact draw the pre-corpus engine
        made (``rng.choice`` over the list), keeping golden runs
        bit-faithful."""
        corpus, dull, hot = self._stocked("uniform")
        picked = corpus._select(random.Random(3))
        reference = random.Random(3).choice([dull, hot])
        assert picked is reference

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError):
            Corpus(schedule="round-robin")

    def test_recent_progress_boosts_energy(self):
        entry = SeedEntry(make_seed(), "d", False, 0)
        entry.new_branch = 4
        base = entry.energy(now=100, corpus_size=3)
        entry.last_progress_pick = 99
        assert entry.energy(now=100, corpus_size=3) == base * 2


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        corpus = Corpus(persist_dir=str(tmp_path))
        entry = corpus.add_initial(make_seed())
        corpus.account(entry, campaigns=3, new_branch=5, new_alias=2,
                       inconsistencies=1)
        other = Corpus(persist_dir=str(tmp_path))
        assert other.load() == 1
        (loaded,) = list(other)
        assert loaded.digest == entry.digest
        assert loaded.seed.threads == entry.seed.threads
        assert (loaded.campaigns, loaded.new_branch, loaded.new_alias,
                loaded.inconsistencies) == (3, 5, 2, 1)

    def test_load_skips_tampered_file(self, tmp_path):
        corpus = Corpus(persist_dir=str(tmp_path))
        corpus.add_initial(make_seed())
        (name,) = os.listdir(str(tmp_path))
        path = os.path.join(str(tmp_path), name)
        with open(path) as handle:
            doc = json.load(handle)
        doc["threads"] = [[{"op": "fix", "key": 3}]]  # digest now wrong
        with open(path, "w") as handle:
            json.dump(doc, handle)
        fresh = Corpus(persist_dir=str(tmp_path))
        assert fresh.load() == 0
        assert fresh.load_errors == 1

    def test_load_skips_future_schema(self, tmp_path):
        with open(os.path.join(str(tmp_path), "x.json"), "w") as handle:
            json.dump({"version": CORPUS_SCHEMA_VERSION + 1}, handle)
        fresh = Corpus(persist_dir=str(tmp_path))
        assert fresh.load() == 0
        assert fresh.load_errors == 1

    def test_run_determinism_with_and_without_persistence(self, tmp_path):
        """Persistence is write-only state: the same base seed retains
        the identical corpus whether or not a corpus dir is set."""
        plain = PMRace(ToyTarget(), PMRaceConfig(
            max_campaigns=12, base_seed=7)).run()
        persisted = PMRace(ToyTarget(), PMRaceConfig(
            max_campaigns=12, base_seed=7,
            corpus_dir=str(tmp_path))).run()
        assert [e["digest"] for e in plain.corpus_seeds] \
            == [e["digest"] for e in persisted.corpus_seeds]
        on_disk = {name[:-5] for name in os.listdir(str(tmp_path))}
        assert {e["digest"] for e in persisted.corpus_seeds} <= on_disk

    def test_resume_reproduces_retained_digests(self, tmp_path):
        """A killed run resumed from --corpus-dir starts from the same
        retained corpus: the first run's digests all come back."""
        first = PMRace(ToyTarget(), PMRaceConfig(
            max_campaigns=12, base_seed=7,
            corpus_dir=str(tmp_path))).run()
        resumed = PMRace(ToyTarget(), PMRaceConfig(
            max_campaigns=12, base_seed=7,
            corpus_dir=str(tmp_path))).run()
        first_digests = {e["digest"] for e in first.corpus_seeds}
        resumed_digests = {e["digest"] for e in resumed.corpus_seeds}
        assert first_digests <= resumed_digests


class TestExportMerge:
    def test_export_shape(self):
        corpus = Corpus()
        entry = corpus.add_initial(make_seed())
        corpus.account(entry, campaigns=2, new_branch=1, new_alias=0,
                       inconsistencies=0)
        (doc,) = corpus.export()
        assert doc["version"] == CORPUS_SCHEMA_VERSION
        assert doc["digest"] == entry.digest
        assert doc["stats"]["campaigns"] == 2
        json.dumps(doc)  # must be picklable/plain JSON for the pool

    def test_add_exported_adopts_and_dedups(self):
        source = Corpus()
        source.add_initial(make_seed())
        sink = Corpus()
        sink.add_initial(make_seed())
        sink.add_exported(source.export()[0])
        assert len(sink) == 1  # digest-identical: adopted into existing
        other = Corpus()
        adopted = other.add_exported(source.export()[0])
        assert adopted is not None and len(other) == 1
        assert adopted.initial  # shared seeds are pinned

    def test_run_result_merge_folds_by_digest(self):
        a = PMRace(ToyTarget(), PMRaceConfig(max_campaigns=8,
                                             base_seed=7)).run()
        b = PMRace(ToyTarget(), PMRaceConfig(max_campaigns=8,
                                             base_seed=7)).run()
        campaigns_before = [e["stats"]["campaigns"] for e in a.corpus_seeds]
        a.merge(b)
        # Identical runs: same digests, stats summed, no duplicates.
        assert len(a.corpus_seeds) == len(campaigns_before)
        assert [e["stats"]["campaigns"] for e in a.corpus_seeds] \
            == [2 * n for n in campaigns_before]
        assert a.summary()["corpus_seeds"] == len(a.corpus_seeds)

"""RNG journaling: RecordingRandom capture, ReplayRandom service."""

import random

from repro.replay import RecordingRandom, ReplayRandom


def test_recording_random_matches_plain_stream():
    recording = RecordingRandom(42)
    plain = random.Random(42)
    recording.begin_segment()
    assert [recording.random() for _ in range(5)] == \
        [plain.random() for _ in range(5)]
    assert recording.getrandbits(16) == plain.getrandbits(16)
    journal = recording.end_segment()
    assert len(journal) == 6
    assert all(isinstance(d, float) for d in journal[:5])
    assert journal[5][0] == 16


def test_derived_methods_route_through_primitives():
    # choice/randint/shuffle must all land in the journal, because
    # replay only overrides the two primitives.
    recording = RecordingRandom(3)
    recording.begin_segment()
    recording.choice(["a", "b", "c"])
    recording.randint(0, 99)
    recording.shuffle(list(range(8)))
    journal = recording.end_segment()
    assert journal, "derived draws bypassed the journaled primitives"

    replay = ReplayRandom(journal, fallback_seed=999)
    check = RecordingRandom(3)
    assert replay.choice(["a", "b", "c"]) == check.choice(["a", "b", "c"])
    assert replay.randint(0, 99) == check.randint(0, 99)
    items_a, items_b = list(range(8)), list(range(8))
    replay.shuffle(items_a)
    check.shuffle(items_b)
    assert items_a == items_b


def test_replay_random_serves_journal_then_falls_back():
    source = RecordingRandom(1)
    source.begin_segment()
    recorded = [source.random() for _ in range(3)]
    journal = source.end_segment()

    replay = ReplayRandom(journal, fallback_seed=2)
    assert [replay.random() for _ in range(3)] == recorded
    assert replay.exhausted
    # Past the journal: the seeded fallback stream, deterministically.
    assert replay.random() == random.Random(2).random()


def test_replay_random_type_mismatch_abandons_journal():
    journal = [[8, 200], 0.25]
    replay = ReplayRandom(journal, fallback_seed=5)
    # Asks for a float where bits were recorded: journal goes dead.
    value = replay.random()
    assert replay.exhausted
    assert value == random.Random(5).random()
    # The remaining journal entry is NOT served after the mismatch.
    follow = ReplayRandom([], fallback_seed=5)
    follow.random()
    assert replay.getrandbits(8) == follow.getrandbits(8)


def test_replay_random_bit_width_mismatch_abandons_journal():
    replay = ReplayRandom([[8, 200]], fallback_seed=5)
    replay.getrandbits(16)
    assert replay.exhausted


def test_replay_random_rejournals_served_draws():
    source = RecordingRandom(1)
    source.begin_segment()
    source.random()
    source.getrandbits(12)
    journal = source.end_segment()

    replay = ReplayRandom(journal, fallback_seed=0)
    replay.begin_segment()
    replay.random()
    replay.getrandbits(12)
    assert replay.end_segment() == journal

"""Bundle format: validation, accessors, serialization, filenames."""

import pytest

from repro.replay import (
    BUNDLE_VERSION,
    BundleError,
    ReproBundle,
    bundle_filename,
    validate_bundle_data,
)


def minimal_bundle_data(**overrides):
    data = {
        "version": BUNDLE_VERSION,
        "target": "memcached-pmem",
        "kind": "inter",
        "dedup_key": ["inter", "w", "r", "e"],
        "first_key": ["inter", "w", "r", "e"],
        "verdict": "pending",
        "config": {"mode": "pmrace", "n_threads": 2},
        "base_seed": 7,
        "campaign_index": 3,
        "ops": [[{"op": "set", "key": 1, "value": 2}], []],
        "entry": None,
        "skips": {},
        "schedule": [0, 1, 0],
        "priv_draws": [0.5, [8, 17]],
        "evict_draws": [],
        "callsites": ["a:b:1"],
    }
    data.update(overrides)
    return data


def test_valid_bundle_round_trips():
    bundle = ReproBundle(minimal_bundle_data())
    clone = ReproBundle.from_json(bundle.to_json())
    assert clone.data == bundle.data
    assert clone.dedup_key == ("inter", "w", "r", "e")
    assert clone.first_key == ("inter", "w", "r", "e")
    assert clone.op_count == 1
    assert clone.verdict == "pending"


def test_missing_field_rejected():
    data = minimal_bundle_data()
    del data["schedule"]
    with pytest.raises(BundleError, match="schedule"):
        validate_bundle_data(data)


def test_wrong_version_rejected():
    with pytest.raises(BundleError, match="version"):
        ReproBundle(minimal_bundle_data(version=BUNDLE_VERSION + 1))


def test_malformed_schedule_rejected():
    with pytest.raises(BundleError, match="thread ids"):
        ReproBundle(minimal_bundle_data(schedule=[0, "t1"]))


def test_malformed_ops_rejected():
    with pytest.raises(BundleError, match="ops"):
        ReproBundle(minimal_bundle_data(ops={"0": []}))


def test_not_json_rejected():
    with pytest.raises(BundleError, match="JSON"):
        ReproBundle.from_json("{nope")


def test_with_updates_returns_new_validated_bundle():
    bundle = ReproBundle(minimal_bundle_data())
    updated = bundle.with_updates(schedule=[1, 1], verdict="bug")
    assert updated is not bundle
    assert updated.schedule == [1, 1]
    assert updated.verdict == "bug"
    assert bundle.schedule == [0, 1, 0]  # original untouched
    with pytest.raises(BundleError):
        bundle.with_updates(schedule=["x"])


def test_save_load(tmp_path):
    bundle = ReproBundle(minimal_bundle_data())
    path = str(tmp_path / "b.json")
    bundle.save(path)
    assert ReproBundle.load(path).data == bundle.data


def test_bundle_filename_deterministic():
    a = ReproBundle(minimal_bundle_data())
    b = ReproBundle(minimal_bundle_data())
    other = ReproBundle(minimal_bundle_data(
        dedup_key=["inter", "w", "r", "other"]))
    assert bundle_filename(a) == bundle_filename(b)
    assert bundle_filename(a) != bundle_filename(other)
    assert bundle_filename(a).startswith("memcached-pmem-inter-")


def test_save_is_atomic_and_leaves_no_tmp(tmp_path):
    import os
    bundle = ReproBundle(minimal_bundle_data())
    path = str(tmp_path / "b.json")
    bundle.save(path)
    bundle.with_updates(verdict="bug").save(path)  # overwrite in place
    assert ReproBundle.load(path).verdict == "bug"
    assert not [name for name in os.listdir(str(tmp_path))
                if ".tmp." in name]


def test_truncated_bundle_file_reports_truncation(tmp_path):
    """A bundle cut off mid-document (pre-atomic-save artifact, or a
    torn copy) gets the 'truncated' diagnosis, not a raw JSON error."""
    text = ReproBundle(minimal_bundle_data()).to_json(indent=2)
    path = str(tmp_path / "torn.json")
    with open(path, "w") as handle:
        handle.write(text[: len(text) // 2])
    with pytest.raises(BundleError, match="truncated bundle"):
        ReproBundle.load(path)


def test_empty_bundle_file_reports_truncation(tmp_path):
    path = str(tmp_path / "empty.json")
    open(path, "w").close()
    with pytest.raises(BundleError, match="truncated bundle"):
        ReproBundle.load(path)

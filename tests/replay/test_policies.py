"""RecordingPolicy / ReplayPolicy scheduling semantics."""

from repro.runtime.policies import (
    RecordingPolicy,
    ReplayPolicy,
    SeededRandomPolicy,
)


class _Thread:
    def __init__(self, tid):
        self.tid = tid


class _Scheduler:
    steps = 17


THREADS = [_Thread(0), _Thread(1), _Thread(2)]


def test_recording_policy_journals_inner_choices():
    inner = SeededRandomPolicy(3)
    recording = RecordingPolicy(inner)
    scheduler = _Scheduler()
    picks = [recording.pick(scheduler, THREADS, None) for _ in range(6)]
    assert recording.decisions == [t.tid for t in picks]

    # The journal drives an identical ReplayPolicy run.
    replay = ReplayPolicy(recording.decisions)
    replayed = [replay.pick(scheduler, THREADS, None) for _ in range(6)]
    assert [t.tid for t in replayed] == recording.decisions
    assert replay.divergence is None

    recording.reset()
    assert recording.decisions == []


def test_replay_policy_thread_not_runnable_diverges_once():
    replay = ReplayPolicy([2, 1], fallback=None)
    scheduler = _Scheduler()
    runnable = [_Thread(0), _Thread(1)]  # tid 2 is gone
    chosen = replay.pick(scheduler, runnable, None)
    assert chosen.tid == 0  # min-tid fallback
    div = replay.divergence
    assert div["index"] == 0
    assert div["expected_tid"] == 2
    assert div["runnable_tids"] == [0, 1]
    assert div["step"] == 17
    assert div["reason"] == "thread-not-runnable"
    # Later mismatches never overwrite the first diagnostic.
    replay.pick(scheduler, runnable, None)
    replay.pick(scheduler, runnable, None)
    assert replay.divergence is div


def test_replay_policy_trace_exhausted_diverges():
    replay = ReplayPolicy([0], fallback=SeededRandomPolicy(5))
    scheduler = _Scheduler()
    assert replay.pick(scheduler, THREADS, None).tid == 0
    assert replay.divergence is None
    replay.pick(scheduler, THREADS, None)
    assert replay.divergence["reason"] == "trace-exhausted"
    assert replay.divergence["index"] == 1
    assert replay.divergence["expected_tid"] is None


def test_replay_policy_fallback_is_seeded_policy():
    fallback = SeededRandomPolicy(5)
    check = SeededRandomPolicy(5)
    replay = ReplayPolicy([], fallback=fallback)
    scheduler = _Scheduler()
    for _ in range(5):
        assert replay.pick(scheduler, THREADS, None).tid == \
            check.pick(scheduler, THREADS, None).tid


def test_replay_policy_reset_restarts_vector():
    replay = ReplayPolicy([1, 0])
    scheduler = _Scheduler()
    replay.pick(scheduler, THREADS, None)
    replay.pick(scheduler, THREADS, None)
    replay.pick(scheduler, THREADS, None)  # exhausted -> divergence
    assert replay.divergence is not None
    replay.reset()
    assert replay.divergence is None
    assert replay.pick(scheduler, THREADS, None).tid == 1

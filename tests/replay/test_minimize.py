"""ddmin minimization: correctness of the shrink loop and its output."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Metrics
from repro.replay import replay_bundle, shrink_bundle
from repro.replay.minimize import _flatten, _rebuild, _Shrinker


def test_flatten_rebuild_round_trip():
    ops = [[{"op": "get", "key": 1}], [], [{"op": "set", "key": 2},
                                           {"op": "del", "key": 3}]]
    assert _rebuild(_flatten(ops), len(ops)) == ops


class _ListShrinker(_Shrinker):
    """ddmin harness over plain lists: no replays, pure predicate."""

    def __init__(self, budget=10_000):
        self.budget = budget
        self.exhausted = False
        self.tests = 0

    def run(self, items, predicate):
        def test(candidate):
            self.tests += 1
            if self.tests > self.budget:
                self.exhausted = True
                return False
            return predicate(candidate)
        return self.ddmin(list(items), test)


def test_ddmin_finds_single_culprit():
    items = list(range(64))
    result = _ListShrinker().run(items, lambda cand: 37 in cand)
    assert result == [37]


def test_ddmin_keeps_spread_out_culprits():
    items = list(range(40))
    need = {3, 21, 38}
    result = _ListShrinker().run(items, lambda c: need <= set(c))
    assert set(result) == need


def test_ddmin_respects_budget():
    shrinker = _ListShrinker(budget=5)
    result = shrinker.run(list(range(128)), lambda cand: 0 in cand)
    assert shrinker.exhausted
    # Budget exhaustion stops the search but never loses the invariant.
    assert 0 in result


@settings(max_examples=8, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=59), min_size=1,
               max_size=6))
def test_ddmin_output_is_one_minimal(culprits):
    result = _ListShrinker().run(list(range(60)),
                                 lambda c: culprits <= set(c))
    assert set(result) == culprits  # nothing extra survives


def test_shrink_reduces_and_verifies(memcached_bundle):
    metrics = Metrics()
    result = shrink_bundle(memcached_bundle, budget=120, metrics=metrics)
    assert result.reproduced
    assert result.verified
    assert result.min_ops < result.original_ops
    assert result.bundle is not None
    assert metrics.value("shrink.steps") == result.tests
    # The minimized bundle carries its provenance.
    assert result.bundle.data["shrink"]["original_ops"] == \
        result.original_ops


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=1, max_value=40))
def test_shrink_output_reproduces_original_key(memcached_bundle, budget):
    """The ISSUE property: whatever the budget, ddmin output still
    reproduces the original dedup key (seeded, so each example is
    deterministic)."""
    result = shrink_bundle(memcached_bundle, budget=budget)
    assert result.reproduced  # baseline uses the first test
    assert result.bundle is not None
    assert result.bundle.dedup_key == memcached_bundle.dedup_key
    outcome = replay_bundle(result.bundle)
    assert outcome.reproduced
    assert outcome.record.dedup_key() == memcached_bundle.dedup_key
    assert outcome.divergence is None


def test_shrink_unreproducible_bundle_reports_failure(memcached_bundle):
    broken = memcached_bundle.with_updates(
        dedup_key=["inter", "no:such:1", "no:such:2", "no:such:3"])
    result = shrink_bundle(broken, budget=10)
    assert not result.reproduced
    assert result.bundle is None
    assert result.tests == 1  # fails at the baseline, stops immediately

"""RunResult.merge must not drop repro bundles from duplicate records.

A kept record captured without a bundle (capture off, or a pre-capture
session) becomes replayable when a dedup-equal duplicate arrives with
one — the same adoption rule merge applies to crash images.
"""

from repro.core.engine import PMRaceConfig, RunResult
from repro.detect.records import CandidateRecord, InconsistencyRecord, Verdict
from repro.replay import BUNDLE_VERSION, ReproBundle


def make_record(effect="m:f:3"):
    candidate = CandidateRecord(0, 0x10, 8, "m:f:1", "m:f:2", 0, 1,
                                ("m:f:1",), 5)
    return InconsistencyRecord(candidate, effect, 0x20, 8, False,
                               ("m:f:3",), None)


def make_bundle(record, tag="a"):
    return ReproBundle({
        "version": BUNDLE_VERSION,
        "target": "memcached-pmem",
        "kind": record.kind,
        "dedup_key": list(record.dedup_key()),
        "first_key": list(record.dedup_key()),
        "verdict": record.verdict.value,
        "config": {"mode": "pmrace", "tag": tag},
        "base_seed": 7,
        "campaign_index": 0,
        "ops": [[{"op": "get", "key": 1}]],
        "entry": None,
        "skips": {},
        "schedule": [0],
        "priv_draws": [],
        "evict_draws": [],
        "callsites": [],
    })


def result_with(record):
    result = RunResult("memcached-pmem", PMRaceConfig())
    result._inconsistency_keys[record.dedup_key()] = record
    result.inconsistencies.append(record)
    return result


def test_merge_adopts_duplicate_bundle():
    kept = make_record()
    duplicate = make_record()
    duplicate.bundle = make_bundle(duplicate)
    merged = result_with(kept)
    merged.merge(result_with(duplicate))
    assert len(merged.inconsistencies) == 1
    assert merged.inconsistencies[0] is kept
    assert kept.bundle is duplicate.bundle


def test_merge_keeps_existing_bundle():
    kept = make_record()
    kept.bundle = make_bundle(kept, tag="kept")
    duplicate = make_record()
    duplicate.bundle = make_bundle(duplicate, tag="dup")
    merged = result_with(kept)
    merged.merge(result_with(duplicate))
    assert kept.bundle.data["config"]["tag"] == "kept"


def test_merge_bundle_adoption_is_verdict_independent():
    # Bundle adoption must happen even when the kept record already has
    # a settled verdict (the PENDING-upgrade path would not fire).
    kept = make_record()
    kept.verdict = Verdict.BUG
    duplicate = make_record()
    duplicate.bundle = make_bundle(duplicate)
    merged = result_with(kept)
    merged.merge(result_with(duplicate))
    assert kept.verdict is Verdict.BUG
    assert kept.bundle is duplicate.bundle


def test_distinct_records_keep_their_own_bundles():
    kept = make_record()
    kept.bundle = make_bundle(kept)
    other = make_record(effect="m:g:9")
    other.bundle = make_bundle(other, tag="other")
    merged = result_with(kept)
    merged.merge(result_with(other))
    assert len(merged.inconsistencies) == 2
    assert merged.inconsistencies[0].bundle is kept.bundle
    assert merged.inconsistencies[1].bundle is other.bundle

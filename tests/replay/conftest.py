"""Everything under tests/replay/ carries the replay marker.

Also hosts the shared capture fixtures: fuzzing with ``capture_repro``
on is the expensive part of these tests, so one pinned-seed run per
target is captured once per session and shared.
"""

import pytest

from repro.core.engine import PMRace, PMRaceConfig
from repro.targets.registry import make_target


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.replay)


def capture_run(target_name, base_seed=7, max_campaigns=25, **overrides):
    """One pinned-seed capture-mode engine run; returns its RunResult."""
    cfg = PMRaceConfig(max_campaigns=max_campaigns, base_seed=base_seed,
                       capture_repro=True, profile=False, **overrides)
    return PMRace(make_target(target_name), cfg).run()


def bundled_records(result):
    """Every kept record carrying a repro bundle, detection order."""
    return [record for record in list(result.inconsistencies)
            + list(result.sync_inconsistencies)
            if record.bundle is not None]


@pytest.fixture(scope="session")
def memcached_run():
    """Shared pinned-seed memcached capture run (the richest target)."""
    return capture_run("memcached-pmem", base_seed=7, max_campaigns=30)


@pytest.fixture(scope="session")
def memcached_bundle(memcached_run):
    records = bundled_records(memcached_run)
    assert records, "pinned-seed memcached run found no inconsistencies"
    return records[0].bundle

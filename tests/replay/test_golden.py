"""The checked-in golden bundle must keep replaying bit-faithfully.

This is the repo-level determinism contract: scheduler, RNG journaling,
input encoding and target code all have to stay replay-compatible, or
this test (and CI's replay-smoke step) fails. After an *intentional*
change, regenerate with ``python tools/make_golden_bundle.py``.
"""

import os

import pytest

from repro.detect.records import Verdict
from repro.detect.validation_service import make_validation_queue
from repro.replay import ReproBundle, replay_bundle, shrink_bundle

GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                      "memcached-pmem-bug.json")


@pytest.fixture(scope="module")
def golden_bundle():
    return ReproBundle.load(GOLDEN)


def test_golden_bundle_is_valid_and_shrunk(golden_bundle):
    assert golden_bundle.target == "memcached-pmem"
    assert golden_bundle.verdict == "bug"
    assert "shrink" in golden_bundle.data  # provenance of the minimizer


def test_golden_bundle_replays_exactly(golden_bundle):
    outcome = replay_bundle(golden_bundle)
    assert outcome.ok, "\n".join(outcome.describe())
    assert outcome.run.faithful  # zero divergence, zero error


def test_golden_bundle_validates_as_bug(golden_bundle):
    validation = make_validation_queue(golden_bundle.target)
    outcome = replay_bundle(golden_bundle, validation=validation)
    assert outcome.verdict is Verdict.BUG


def test_golden_bundle_is_shrink_stable(golden_bundle):
    # Already 1-minimal under ddmin's chunking? Not necessarily — but a
    # second shrink must at least reproduce and never grow the input.
    result = shrink_bundle(golden_bundle, budget=40)
    assert result.reproduced
    assert result.min_ops <= golden_bundle.op_count

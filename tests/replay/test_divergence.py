"""Divergence detection: tampered bundles must be diagnosed, not trusted."""

from repro.replay import replay_bundle, replay_campaign


def test_tampered_schedule_reports_divergence(memcached_bundle):
    # Plant a tid no thread ever has: the prefix replays faithfully, so
    # the mismatch is diagnosed at exactly the tampered index — and as
    # a diagnostic, never an exception.
    schedule = list(memcached_bundle.schedule)
    index = len(schedule) // 2
    schedule[index] = 10_000
    tampered = memcached_bundle.with_updates(schedule=schedule)
    outcome = replay_bundle(tampered)
    assert not outcome.ok
    assert outcome.divergence is not None
    assert outcome.divergence["index"] == index
    assert outcome.divergence["expected_tid"] == 10_000
    assert outcome.divergence["reason"] == "thread-not-runnable"


def test_truncated_schedule_reports_trace_exhausted(memcached_bundle):
    truncated = memcached_bundle.with_updates(
        schedule=list(memcached_bundle.schedule[:5]))
    outcome = replay_bundle(truncated)
    assert outcome.divergence is not None
    assert not outcome.ok


def test_divergent_replay_still_completes(memcached_bundle):
    # Fallback semantics: a diverged replay finishes the campaign under
    # the seeded fallback policy instead of dying mid-run.
    truncated = memcached_bundle.with_updates(
        schedule=list(memcached_bundle.schedule[:5]))
    run = replay_campaign(truncated)
    assert run.error is None
    assert run.status in ("ok", "hang", "budget")
    assert len(run.decisions) > 5


def test_tracer_sees_divergence(memcached_bundle, tmp_path):
    import json

    from repro.obs.tracer import Tracer

    path = str(tmp_path / "trace.jsonl")
    tracer = Tracer(path)
    truncated = memcached_bundle.with_updates(
        schedule=list(memcached_bundle.schedule[:5]))
    replay_bundle(truncated, tracer=tracer)
    tracer.close()
    with open(path) as handle:
        events = [json.loads(line) for line in handle]
    types = [event["type"] for event in events]
    assert "replay_start" in types
    assert "replay_divergence" in types
    assert "replay_end" in types
    end = events[types.index("replay_end")]
    assert end["diverged"] is True


def test_metrics_count_divergence(memcached_bundle):
    from repro.obs.metrics import Metrics

    metrics = Metrics()
    replay_bundle(memcached_bundle, metrics=metrics)
    truncated = memcached_bundle.with_updates(
        schedule=list(memcached_bundle.schedule[:5]))
    replay_bundle(truncated, metrics=metrics)
    assert metrics.value("replay.runs") == 2
    assert metrics.value("replay.reproduced") >= 1
    assert metrics.value("replay.divergence") == 1

"""Capture → replay round-trip on every registered target.

The core tentpole guarantee: a bundle captured from a pinned-seed run
re-executes to the byte-identical verdict — same record (dedup key),
same first inconsistency, zero schedule divergence, zero RNG fallback.
"""

import pytest

from repro.replay import ReproBundle, replay_bundle, save_bundles
from repro.targets.registry import target_names

from .conftest import bundled_records, capture_run

#: Campaign budgets tuned so every target detects at least one record
#: quickly under seed 7.
_BUDGET = {name: 25 for name in target_names()}
_BUDGET["FAST-FAIR"] = 80


@pytest.mark.parametrize("target_name", target_names())
def test_round_trip_reproduces_identity(target_name):
    result = capture_run(target_name, base_seed=7,
                         max_campaigns=_BUDGET[target_name])
    records = bundled_records(result)
    assert records, "no inconsistency captured for %s" % target_name
    record = records[0]
    bundle = record.bundle
    assert bundle.dedup_key == record.dedup_key()
    assert bundle.target == result.target_name

    outcome = replay_bundle(bundle)
    assert outcome.reproduced, "replay lost the record on %s" % target_name
    assert outcome.first_match, \
        "first inconsistency changed on %s: %s != %s" \
        % (target_name, outcome.run.first_key, bundle.first_key)
    assert outcome.divergence is None
    assert outcome.ok
    # The replayed record is dedup-identical, not merely same-keyed.
    assert outcome.record.dedup_key() == record.dedup_key()


def test_round_trip_survives_disk(tmp_path, memcached_run):
    paths = save_bundles(memcached_run, str(tmp_path))
    assert len(paths) == len(bundled_records(memcached_run))
    outcome = replay_bundle(ReproBundle.load(paths[0]))
    assert outcome.ok


def test_save_bundles_refreshes_verdict(tmp_path, memcached_run):
    record = bundled_records(memcached_run)[0]
    # Captured at detection time the bundle said "pending"; validation
    # has run since, and save must stamp the final verdict.
    paths = save_bundles(memcached_run, str(tmp_path))
    saved = ReproBundle.load(paths[0])
    assert saved.verdict == record.verdict.value
    assert record.bundle.verdict == record.verdict.value

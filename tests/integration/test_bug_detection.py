"""End-to-end bug detection: PMRace finds the paper's bugs (Table 2).

These are the heaviest tests in the suite: each runs a bounded seeded
fuzzing session against one re-implemented target and checks that the
expected bug classes are reported with the right verdicts.
"""

import pytest

from repro.core import PMRace, PMRaceConfig, fuzz_target
from repro.core.results import expected_bugs_for, match_expected
from repro.detect import Verdict
from repro.targets import (
    CcehTarget,
    ClevelTarget,
    FastFairTarget,
    MemcachedTarget,
    PclhtTarget,
)


def fuzz(target, campaigns=70, seeds=(7, 13), **overrides):
    options = {"max_campaigns": campaigns, "max_seeds": 16}
    options.update(overrides)
    return fuzz_target(target, PMRaceConfig(**options), seeds=seeds)


@pytest.fixture(scope="module")
def pclht_result():
    return fuzz(PclhtTarget())


@pytest.fixture(scope="module")
def cceh_result():
    return fuzz(CcehTarget())


@pytest.fixture(scope="module")
def clevel_result():
    return fuzz(ClevelTarget())


@pytest.fixture(scope="module")
def fastfair_result():
    return fuzz(FastFairTarget(), campaigns=110, max_seeds=22,
                seeds=(7, 42))


@pytest.fixture(scope="module")
def memcached_result():
    return fuzz(MemcachedTarget())


class TestPclht:
    def test_inter_bug_found(self, pclht_result):
        """Bug 1: insert through the unflushed table pointer."""
        bugs = [b for b in pclht_result.bug_reports if b.kind == "inter"]
        assert any("_resize" in (b.write_instr or "") for b in bugs)

    def test_sync_bug_found(self, pclht_result):
        """Bug 2: bucket locks not re-initialized."""
        sync_bugs = [r for r in pclht_result.sync_inconsistencies
                     if r.verdict is Verdict.BUG]
        assert {r.annotation_name for r in sync_bugs} == {"bucket_lock"}

    def test_benign_sync_filtered(self, pclht_result):
        """3 of 4 annotated lock types are re-initialized: validated FPs."""
        fps = [r for r in pclht_result.sync_inconsistencies
               if r.verdict is Verdict.VALIDATED_FP]
        assert {r.annotation_name for r in fps} == \
            {"resize_lock", "gc_lock", "global_lock"}

    def test_intra_bug_found(self, pclht_result):
        """Bug 3: migration through the unflushed table_new."""
        bugs = [b for b in pclht_result.bug_reports if b.kind == "intra"]
        assert bugs

    def test_candidate_bug4_found(self, pclht_result):
        """Bug 4: lock-free reads of unflushed keys (candidate only)."""
        assert any("pclht:get" in (c.read_instr or "")
                   for c in pclht_result.candidates)

    def test_hang_bug5_found(self, pclht_result):
        """Bug 5: missing unlock in update leads to a hang."""
        assert any("pm_lock:bucket" in reason
                   for hang in pclht_result.hangs
                   for reason in hang.signature())

    def test_all_five_expected_bugs(self, pclht_result):
        for bug in expected_bugs_for("P-CLHT"):
            assert match_expected(bug, pclht_result), \
                "missed paper bug %d" % bug.bug_id


class TestCceh:
    def test_sync_bug6(self, cceh_result):
        sync_bugs = [r for r in cceh_result.sync_inconsistencies
                     if r.verdict is Verdict.BUG]
        assert {r.annotation_name for r in sync_bugs} == {"segment_lock"}

    def test_intra_bug7(self, cceh_result):
        bugs = [b for b in cceh_result.bug_reports if b.kind == "intra"]
        assert any("_double_directory" in (b.write_instr or "")
                   for b in bugs)

    def test_no_inter_bugs(self, cceh_result):
        """CCEH's flush discipline: candidates yes, confirmed inter no."""
        assert cceh_result.inter_candidates
        assert not [b for b in cceh_result.bug_reports
                    if b.kind == "inter"]


class TestClevel:
    def test_no_bugs(self, clevel_result):
        assert clevel_result.bug_reports == []

    def test_whitelisted_allocator_inconsistencies(self, clevel_result):
        whitelisted = [r for r in clevel_result.inter_inconsistencies
                       if r.verdict is Verdict.WHITELISTED_FP]
        assert whitelisted

    def test_figure7_intra_validated(self, clevel_result):
        intra = clevel_result.intra_inconsistencies
        assert intra
        assert all(r.verdict in (Verdict.VALIDATED_FP,
                                 Verdict.WHITELISTED_FP) for r in intra)


class TestFastFair:
    def test_sibling_pointer_bug8(self, fastfair_result):
        bugs = [b for b in fastfair_result.bug_reports if b.kind == "inter"]
        assert any("_split_leaf" in (b.write_instr or "") for b in bugs)

    def test_many_candidates(self, fastfair_result):
        """The endurable-transient design floods the candidate list."""
        assert len(fastfair_result.inter_candidates) >= 5

    def test_no_sync_annotations(self, fastfair_result):
        assert fastfair_result.annotation_count == 0
        assert not fastfair_result.sync_inconsistencies


class TestMemcached:
    def test_value_bug_found(self, memcached_result):
        """Bugs 9/10: value written from a non-persisted value read."""
        bugs = [b for b in memcached_result.bug_reports
                if "_write_value" in (b.write_instr or "")
                or "cmd_" in (b.write_instr or "")]
        assert bugs

    def test_lru_fps_validated(self, memcached_result):
        """The index rebuild turns next/prev flows into validated FPs."""
        fps = [r for r in memcached_result.inconsistencies
               if r.verdict is Verdict.VALIDATED_FP]
        assert len(fps) >= 3

    def test_most_inconsistencies_of_all_targets(self, memcached_result,
                                                 pclht_result):
        assert len(memcached_result.inconsistencies) >= \
            len(pclht_result.intra_inconsistencies)

    def test_multiple_unique_inter_bugs(self, memcached_result):
        inter = [b for b in memcached_result.bug_reports
                 if b.kind == "inter"]
        assert len(inter) >= 2

"""Everything under tests/integration/ carries the integration marker."""

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.integration)

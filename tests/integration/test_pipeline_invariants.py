"""Cross-cutting invariants of the whole detection pipeline."""

import pytest

from repro.core import PMRace, PMRaceConfig
from repro.detect import Verdict
from repro.targets import PclhtTarget


@pytest.fixture(scope="module")
def result():
    config = PMRaceConfig(max_campaigns=50, max_seeds=14, base_seed=7)
    return PMRace(PclhtTarget(), config).run()


class TestPipelineInvariants:
    def test_every_inconsistency_has_a_candidate(self, result):
        candidate_pairs = {(c.write_instr, c.read_instr)
                           for c in result.candidates}
        for record in result.inconsistencies:
            assert (record.write_instr, record.read_instr) in \
                candidate_pairs

    def test_inconsistency_kind_consistent_with_candidate(self, result):
        for record in result.inconsistencies:
            expected = "inter" if record.candidate.cross_thread else "intra"
            assert record.kind == expected

    def test_all_validated(self, result):
        for record in result.inconsistencies:
            assert record.verdict is not Verdict.PENDING
        for record in result.sync_inconsistencies:
            assert record.verdict is not Verdict.PENDING

    def test_crash_images_pool_sized(self, result):
        sizes = {len(r.crash_image) for r in result.inconsistencies
                 if r.crash_image is not None}
        assert sizes == {PclhtTarget.POOL_SIZE}

    def test_bug_reports_cover_all_bug_records(self, result):
        bug_records = [r for r in result.inconsistencies
                       if r.verdict is Verdict.BUG]
        bug_records += [r for r in result.sync_inconsistencies
                        if r.verdict is Verdict.BUG]
        grouped = sum(len(report.records)
                      for report in result.bug_reports
                      if report.kind != "hang")
        assert grouped == len(bug_records)

    def test_candidates_have_stacks(self, result):
        assert any(candidate.stack for candidate in result.candidates)

    def test_sync_images_contain_lock_value(self, result):
        for record in result.sync_inconsistencies:
            word = record.crash_image[record.addr:record.addr + 8]
            assert word != b"\x00" * 8

    def test_timeline_is_monotonic(self, result):
        branches = [b for _c, _t, b, _a in result.coverage_timeline]
        aliases = [a for _c, _t, _b, a in result.coverage_timeline]
        assert branches == sorted(branches)
        assert aliases == sorted(aliases)

    def test_annotation_count_stable(self, result):
        assert result.annotation_count == 4

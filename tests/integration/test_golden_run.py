"""Golden-run regression test: the full pipeline under a pinned seed.

Fuzz the toy target, detect, and post-failure validate with fixed seeds
(7, 13) and exactly 12 campaigns per seed, then assert the *exact*
findings. The engine is deterministic by construction (seeded Mersenne
twister, insertion-ordered structures, no wall-clock decisions), so any
drift here means a behavior change in the fuzzing/detection pipeline —
which must be either a bug or an intentional change that re-pins these
numbers.
"""

from collections import Counter

from repro.core.engine import PMRaceConfig, fuzz_target
from repro.detect.records import Verdict

from ..core.toy_target import COUNTER, LOCK, MIRROR, SHADOW, ToyTarget

SEEDS = (7, 13)
CAMPAIGNS_PER_SEED = 12


def golden_run():
    return fuzz_target(ToyTarget(),
                       PMRaceConfig(max_campaigns=CAMPAIGNS_PER_SEED),
                       seeds=SEEDS)


class TestGoldenRun:
    @classmethod
    def setup_class(cls):
        cls.result = golden_run()

    def test_campaign_count(self):
        assert self.result.campaigns == len(SEEDS) * CAMPAIGNS_PER_SEED

    def test_exact_summary(self):
        summary = self.result.summary()
        assert summary["inter_candidates"] == 4
        assert summary["inter"] == 3
        assert summary["intra"] == 3
        assert summary["sync"] == 1
        assert summary["inter_validated_fp"] == 1
        assert summary["inter_whitelisted_fp"] == 0
        assert summary["sync_validated_fp"] == 0
        assert summary["bugs"] == 3
        assert summary["hangs"] == 0

    def test_first_inconsistency_kind_and_addr(self):
        first = self.result.inconsistencies[0]
        assert first.kind == "inter"
        assert first.side_effect_addr == COUNTER
        assert first.side_effect_size == 8
        assert first.verdict is Verdict.BUG

    def test_exact_inconsistency_set(self):
        found = sorted((r.kind, r.side_effect_addr)
                       for r in self.result.inconsistencies)
        assert found == [("inter", COUNTER), ("inter", MIRROR),
                         ("inter", SHADOW), ("intra", COUNTER),
                         ("intra", MIRROR), ("intra", SHADOW)]

    def test_exact_verdict_counts(self):
        records = list(self.result.inconsistencies) \
            + list(self.result.sync_inconsistencies)
        verdicts = Counter(r.verdict.value for r in records)
        assert dict(verdicts) == {"bug": 5, "validated_fp": 2}

    def test_mirror_validated_as_false_positive(self):
        # recovery rewrites MIRROR, so its inconsistency must validate away
        mirror = [r for r in self.result.inconsistencies
                  if r.side_effect_addr == MIRROR]
        assert mirror and all(r.verdict is Verdict.VALIDATED_FP
                              for r in mirror)

    def test_sync_inconsistency_is_the_lock(self):
        (record,) = self.result.sync_inconsistencies
        assert record.annotation_name == "toy_lock"
        assert record.addr == LOCK
        assert record.verdict is Verdict.BUG

    def test_bug_report_kinds(self):
        kinds = sorted(report.kind for report in self.result.bug_reports)
        assert kinds == ["inter", "intra", "sync"]

    def test_rerun_is_bit_identical(self):
        other = golden_run()
        assert other.summary() == self.result.summary()
        assert [(r.kind, r.side_effect_addr, r.verdict)
                for r in other.inconsistencies] \
            == [(r.kind, r.side_effect_addr, r.verdict)
                for r in self.result.inconsistencies]

"""Chaos recovery: kill real runs, resume them, assert result parity.

These tests drive the *real* CLI in subprocesses — the same binary
boundary a production kill crosses — using the fault injector
(``REPRO_FAULT_POINT``) for deterministic kills at session write
boundaries and raw signals for the asynchronous cases.  The invariant
throughout: a killed-and-resumed run ends with the same fingerprint
(verdict per dedup key, hang signatures, corpus digests, campaign
total) as an uninterrupted golden run, and an interrupted run always
leaves a loadable checkpoint behind.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.engine import PMRaceConfig
from repro.core.session import (
    FAULT_ENV,
    ImageStore,
    result_fingerprint,
    result_from_doc,
)

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, os.pardir, "src")


def _env(fault=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(_SRC) + os.pathsep + \
        env.get("PYTHONPATH", "")
    env.pop(FAULT_ENV, None)
    if fault:
        env[FAULT_ENV] = fault
    return env


def _cmd(command, session_dir, resume=False, campaigns=8,
         seeds=(7, 13), processes=1):
    cmd = [sys.executable, "-m", "repro", command, "pmring",
           "--campaigns", str(campaigns), "--seeds"]
    cmd += [str(seed) for seed in seeds]
    cmd += ["--session-dir", str(session_dir)]
    if command == "fuzz-parallel":
        cmd += ["--processes", str(processes)]
    if resume:
        cmd.append("--resume")
    return cmd


def _run(cmd, fault=None, timeout=120):
    return subprocess.run(cmd, env=_env(fault), capture_output=True,
                          text=True, timeout=timeout)


def _fingerprint(session_dir):
    with open(os.path.join(str(session_dir), "checkpoint.json")) as handle:
        doc = json.load(handle)
    assert doc["final"], "checkpoint left non-final"
    images = ImageStore(os.path.join(str(session_dir), "images"))
    return result_fingerprint(result_from_doc(doc, images,
                                              PMRaceConfig()))


def _golden(tmp_path, command="fuzz-parallel", **kwargs):
    golden_dir = tmp_path / "golden"
    proc = _run(_cmd(command, golden_dir, **kwargs))
    assert proc.returncode == 0, proc.stderr
    return _fingerprint(golden_dir)


class TestFaultPointKillResume:
    """Deterministic SIGKILLs at session write boundaries."""

    @pytest.mark.parametrize("fault", [
        "checkpoint_write:kill:1",   # mid first unit checkpoint
        "journal_append:kill:2",     # after checkpoint, before journal
        "checkpoint_write:kill:3",   # mid final checkpoint
    ])
    def test_parallel_kill_resume_equivalence(self, tmp_path, fault):
        golden = _golden(tmp_path)
        chaos_dir = tmp_path / "chaos"
        killed = _run(_cmd("fuzz-parallel", chaos_dir), fault=fault)
        assert killed.returncode == -signal.SIGKILL
        resumed = _run(_cmd("fuzz-parallel", chaos_dir, resume=True))
        assert resumed.returncode == 0, resumed.stderr
        assert _fingerprint(chaos_dir) == golden

    def test_serial_fuzz_kill_resume_equivalence(self, tmp_path):
        golden = _golden(tmp_path, command="fuzz")
        chaos_dir = tmp_path / "chaos"
        killed = _run(_cmd("fuzz", chaos_dir),
                      fault="checkpoint_write:kill:1")
        assert killed.returncode == -signal.SIGKILL
        resumed = _run(_cmd("fuzz", chaos_dir, resume=True))
        assert resumed.returncode == 0, resumed.stderr
        assert _fingerprint(chaos_dir) == golden

    def test_double_kill_then_resume(self, tmp_path):
        """A resume that is itself killed still converges."""
        golden = _golden(tmp_path)
        chaos_dir = tmp_path / "chaos"
        first = _run(_cmd("fuzz-parallel", chaos_dir),
                     fault="journal_append:kill:2")
        assert first.returncode == -signal.SIGKILL
        second = _run(_cmd("fuzz-parallel", chaos_dir, resume=True),
                      fault="checkpoint_write:kill:1")
        assert second.returncode == -signal.SIGKILL
        final = _run(_cmd("fuzz-parallel", chaos_dir, resume=True))
        assert final.returncode == 0, final.stderr
        assert _fingerprint(chaos_dir) == golden

    def test_resume_without_flag_is_refused(self, tmp_path):
        session_dir = tmp_path / "session"
        assert _run(_cmd("fuzz-parallel", session_dir)).returncode == 0
        again = _run(_cmd("fuzz-parallel", session_dir))
        assert again.returncode == 2
        assert "--resume" in again.stderr


def _interrupt_run(tmp_path, signum, command="fuzz-parallel"):
    """Start a long session run, signal it mid-flight, return
    (returncode, session_dir)."""
    session_dir = tmp_path / "session"
    # pmring saturates its schedules quickly, so run length is driven by
    # the seed count (one ~0.5s engine session each), not campaigns.
    proc = subprocess.Popen(
        _cmd(command, session_dir, campaigns=3000,
             seeds=tuple(range(1, 13))),
        env=_env(), stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)
    journal = session_dir / "journal.jsonl"
    deadline = time.monotonic() + 30
    # Wait for the session to open (the guard installs right after), then
    # give the fuzz loop a moment so the signal lands mid-campaign — or,
    # with luck, mid-validation-drain; both must checkpoint cleanly.
    while not journal.exists():
        assert proc.poll() is None, "run exited before opening a session"
        assert time.monotonic() < deadline, "session never opened"
        time.sleep(0.02)
    time.sleep(0.6)
    proc.send_signal(signum)
    return proc.wait(timeout=60), session_dir


def _assert_interrupted_checkpoint(session_dir, signum):
    path = os.path.join(str(session_dir), "checkpoint.json")
    assert os.path.exists(path), "no final checkpoint after interrupt"
    with open(path) as handle:
        doc = json.load(handle)
    assert doc["interrupted"] == signum
    assert not doc["final"]
    # The checkpoint must be loadable — the whole point of graceful
    # shutdown is that nothing written so far is lost or torn.
    images = ImageStore(os.path.join(str(session_dir), "images"))
    result = result_from_doc(doc, images, PMRaceConfig())
    assert result.campaigns >= 0


class TestSignalCheckpoint:
    """SIGINT/SIGTERM mid-run: nonzero-but-clean exit + valid checkpoint."""

    def test_sigint_during_parallel_run(self, tmp_path):
        code, session_dir = _interrupt_run(tmp_path, signal.SIGINT)
        assert code == 128 + signal.SIGINT
        _assert_interrupted_checkpoint(session_dir, signal.SIGINT)

    @pytest.mark.slow
    def test_sigint_during_serial_run(self, tmp_path):
        code, session_dir = _interrupt_run(tmp_path, signal.SIGINT,
                                           command="fuzz")
        assert code == 128 + signal.SIGINT
        _assert_interrupted_checkpoint(session_dir, signal.SIGINT)

    @pytest.mark.slow
    def test_sigterm_during_parallel_run(self, tmp_path):
        code, session_dir = _interrupt_run(tmp_path, signal.SIGTERM)
        assert code == 128 + signal.SIGTERM
        _assert_interrupted_checkpoint(session_dir, signal.SIGTERM)


@pytest.mark.slow
class TestRandomizedChaos:
    """The full chaos harness: randomized kills, pool workers, multiple
    rounds — the same loop CI's chaos-smoke job runs."""

    def test_chaos_runner_fault_mode(self, tmp_path):
        tool = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, os.pardir, "tools",
                            "chaos_runner.py")
        proc = _run([sys.executable, tool, "--target", "pmring",
                     "--campaigns", "8", "--seeds", "7", "13",
                     "--kills", "4", "--rounds", "2", "--seed", "1",
                     "--session-root",
                     str(tmp_path / "chaos-sessions")], timeout=300)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_chaos_runner_timed_pool_mode(self, tmp_path):
        tool = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, os.pardir, "tools",
                            "chaos_runner.py")
        proc = _run([sys.executable, tool, "--target", "pmring",
                     "--campaigns", "60", "--seeds", "7", "13", "42",
                     "--processes", "2", "--mode", "timed",
                     "--kills", "2", "--kill-after", "0.8",
                     "--seed", "2", "--session-root",
                     str(tmp_path / "chaos-sessions")], timeout=300)
        assert proc.returncode == 0, proc.stdout + proc.stderr

"""Cross-cutting integration tests: determinism and comparison modes."""

import pytest

from repro.core import PMRace, PMRaceConfig
from repro.targets import PclhtTarget


def fuzz(seed, mode="pmrace", campaigns=20):
    config = PMRaceConfig(max_campaigns=campaigns, max_seeds=8,
                          base_seed=seed, mode=mode)
    return PMRace(PclhtTarget(), config).run()


class TestDeterminism:
    def test_same_seed_same_findings(self):
        a = fuzz(3)
        b = fuzz(3)
        assert len(a.candidates) == len(b.candidates)
        assert len(a.inconsistencies) == len(b.inconsistencies)
        assert len(a.sync_inconsistencies) == len(b.sync_inconsistencies)
        assert [r.dedup_key() for r in a.inconsistencies] == \
            [r.dedup_key() for r in b.inconsistencies]

    def test_coverage_deterministic(self):
        a = fuzz(4, campaigns=12)
        b = fuzz(4, campaigns=12)
        assert a.coverage_timeline[-1][2] == b.coverage_timeline[-1][2]
        assert a.coverage_timeline[-1][3] == b.coverage_timeline[-1][3]


class TestComparisonModes:
    def test_all_modes_find_candidates(self):
        for mode in ("pmrace", "delay", "random"):
            result = fuzz(5, mode=mode, campaigns=20)
            assert result.campaigns == 20
            assert result.candidates, "mode %s found nothing" % mode

    def test_pmrace_confirms_at_least_as_much(self):
        """PM-aware scheduling should not be worse than plain random."""
        pmrace = fuzz(6, mode="pmrace", campaigns=25)
        random_ = fuzz(6, mode="random", campaigns=25)
        assert len(pmrace.inter_inconsistencies) >= \
            len(random_.inter_inconsistencies)

"""The seeded-bug matrix: every catalogued bug detects, convicts, replays.

One capture-mode pinned-seed run per target, then per catalog entry
(:data:`repro.core.results.SEEDED_BUGS`): the bug is rediscovered, its
records carry the ``BUG`` verdict from the cached validation service,
and a captured reproducer bundle replays back to the same verdict.

The SDK extension targets (pmring, txkv — bugs 15/16) run in tier 1;
the five paper targets re-run the same loop under the ``slow`` marker
(tier 1 already fuzzes them without capture in
``test_bug_detection.py``; CI's replay-smoke job runs the full matrix).
"""

import pytest

from repro.core.bugmatrix import (
    bug_records,
    run_matrix_target,
    target_matrix_rows,
)
from repro.core.results import expected_bugs_for
from repro.detect import Verdict

FAST_TARGETS = ["pmring", "txkv"]
# clevel hashing seeds no bugs; it runs as the clean-target control in
# test_clean_target_stays_clean instead of through the per-bug matrix.
SLOW_TARGETS = ["P-CLHT", "CCEH", "FAST-FAIR", "memcached-pmem"]

_PARAMS = [pytest.param(name, id=name) for name in FAST_TARGETS] + \
    [pytest.param(name, id=name, marks=pytest.mark.slow)
     for name in SLOW_TARGETS]


@pytest.fixture(scope="module", params=_PARAMS)
def matrix_run(request):
    """(target name, capture-mode RunResult) — one run per target."""
    return request.param, run_matrix_target(request.param)


def test_every_seeded_bug_detected(matrix_run):
    name, result = matrix_run
    missed = [bug.bug_id for bug in expected_bugs_for(name)
              if not any(row["detected"] and row["bug"] == bug.bug_id
                         for row in target_matrix_rows(name, result,
                                                       replay=False))]
    assert not missed, "%s: missed seeded bug(s) %s" % (name, missed)


def test_record_bugs_convict_as_bug(matrix_run):
    """Every record-backed catalog entry has a BUG-verdict record."""
    name, result = matrix_run
    for expected in expected_bugs_for(name):
        if expected.kind not in ("inter", "intra", "sync"):
            continue
        assert bug_records(result, expected), \
            "%s: bug %d has no BUG-verdict record" % (name, expected.bug_id)


def test_bundles_replay_and_revalidate(matrix_run):
    """A captured bundle per record-backed bug replays to verdict BUG."""
    name, result = matrix_run
    rows = target_matrix_rows(name, result, replay=True)
    replayable = [row for row in rows if row["replayed"] is not None]
    assert replayable, "%s: no record-backed bugs in the catalog" % name
    failed = [row["bug"] for row in replayable if not row["replayed"]]
    assert not failed, "%s: bundle replay failed for bug(s) %s" \
        % (name, failed)


@pytest.mark.slow
def test_clean_target_stays_clean():
    """clevel hashing seeds no bugs: the matrix run convicts nothing.

    (Heavier clevel coverage — whitelisted allocator FPs, Figure 7's
    validated intra records — lives in ``test_bug_detection.py``.)
    """
    result = run_matrix_target("clevel hashing",
                               budget={"seeds": (7,), "max_campaigns": 30})
    assert expected_bugs_for("clevel hashing") == []
    records = list(result.inconsistencies) + \
        list(result.sync_inconsistencies)
    assert not [r for r in records if r.verdict is Verdict.BUG]

"""End-to-end reproducer pipeline: fuzz → capture → replay → shrink.

Pins the whole chain on memcached with a fixed seed: the captured
bundle of the first confirmed bug must replay to the identical first
inconsistency, and ddmin must cut its op sequence by at least 30%
(the acceptance bar) down to the golden-pinned count.
"""

import pytest

from repro.core.engine import PMRace, PMRaceConfig
from repro.detect.records import Verdict
from repro.replay import ReproBundle, replay_bundle, shrink_bundle
from repro.targets.registry import make_target

pytestmark = pytest.mark.replay

BASE_SEED = 7
MAX_CAMPAIGNS = 30
SHRINK_BUDGET = 150
#: Golden pin: ops in the minimized bundle of the first confirmed
#: memcached bug under the settings above. An intentional change to
#: input generation, scheduling, or ddmin moves this — re-pin after
#: confirming the new value replays (`repro replay` on the output).
GOLDEN_MIN_OPS = 19


@pytest.fixture(scope="module")
def bug_bundle():
    cfg = PMRaceConfig(max_campaigns=MAX_CAMPAIGNS, base_seed=BASE_SEED,
                       capture_repro=True, profile=False)
    result = PMRace(make_target("memcached-pmem"), cfg).run()
    bugs = [record for record in result.inconsistencies
            + result.sync_inconsistencies
            if record.verdict is Verdict.BUG and record.bundle is not None]
    assert bugs, "pinned-seed memcached run confirmed no bugs"
    record = bugs[0]
    return record.bundle.with_updates(verdict=record.verdict.value)


def test_bundle_replays_to_identical_first_inconsistency(bug_bundle):
    outcome = replay_bundle(bug_bundle)
    assert outcome.ok
    assert outcome.run.first_key == bug_bundle.first_key
    assert outcome.record.dedup_key() == bug_bundle.dedup_key


def test_shrink_reduces_ops_by_at_least_30_percent(bug_bundle, tmp_path):
    result = shrink_bundle(bug_bundle, budget=SHRINK_BUDGET)
    assert result.reproduced
    assert result.verified
    assert result.op_reduction >= 0.30, \
        "shrink only removed %.0f%% of ops" % (100 * result.op_reduction)
    assert result.min_ops == GOLDEN_MIN_OPS

    # The minimized bundle is a first-class reproducer: it survives
    # disk and strictly replays to the same identity.
    path = str(tmp_path / "min.json")
    result.bundle.save(path)
    outcome = replay_bundle(ReproBundle.load(path))
    assert outcome.ok
    assert outcome.record.dedup_key() == bug_bundle.dedup_key


def test_shrunk_bug_still_validates_as_bug(bug_bundle):
    # The shrink predicate ran through the cached validation service
    # (verdict "bug" requires it); the minimized run's record must
    # re-earn the BUG verdict end to end.
    from repro.detect.validation_service import make_validation_queue

    result = shrink_bundle(bug_bundle, budget=40)
    validation = make_validation_queue(bug_bundle.target)
    outcome = replay_bundle(result.bundle, validation=validation)
    assert outcome.ok
    assert outcome.verdict is Verdict.BUG

"""Metrics registry tests: instruments, dump/load round-trip, merge."""

import io
import json

import pytest

from repro.obs import Counter, Gauge, Histogram, Metrics, load_metrics
from repro.obs.metrics import DEFAULT_BUCKETS


class TestInstruments:
    def test_counter(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.to_dict() == {"kind": "counter", "name": "c",
                                     "value": 5}

    def test_gauge(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 11
        assert gauge.to_dict()["kind"] == "gauge"

    def test_histogram_buckets_and_mean(self):
        histogram = Histogram("h", bounds=(1, 10, 100))
        for value in (0.5, 5, 50, 500):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.buckets == [1, 1, 1, 1]
        assert histogram.mean == pytest.approx(138.875)

    def test_histogram_boundary_goes_to_lower_bucket(self):
        histogram = Histogram("h", bounds=(1, 10))
        histogram.observe(1)
        histogram.observe(10)
        assert histogram.buckets == [1, 1, 0]


class TestRegistry:
    def test_get_or_create_caches(self):
        metrics = Metrics()
        assert metrics.counter("a") is metrics.counter("a")
        assert len(metrics) == 1
        assert "a" in metrics

    def test_kind_mismatch_raises(self):
        metrics = Metrics()
        metrics.counter("x")
        with pytest.raises(TypeError):
            metrics.gauge("x")

    def test_value_convenience(self):
        metrics = Metrics()
        metrics.counter("a").inc(3)
        assert metrics.value("a") == 3
        assert metrics.value("missing", default=-1) == -1

    def test_snapshot_sorted(self):
        metrics = Metrics()
        metrics.counter("z").inc()
        metrics.gauge("a").set(2)
        assert list(metrics.snapshot()) == ["a", "z"]

    def test_dump_load_roundtrip(self, tmp_path):
        metrics = Metrics()
        metrics.counter("pm.loads").inc(42)
        metrics.gauge("queue.pending").set(7)
        histogram = metrics.histogram("steps", bounds=(10, 100))
        histogram.observe(5)
        histogram.observe(50)
        path = str(tmp_path / "metrics.jsonl")
        metrics.dump(path)

        loaded = load_metrics(path)
        assert loaded.value("pm.loads") == 42
        assert loaded.value("queue.pending") == 7
        reloaded = loaded.histogram("steps", bounds=(10, 100))
        assert reloaded.count == 2
        assert reloaded.buckets == [1, 1, 0]
        assert loaded.snapshot() == metrics.snapshot()

    def test_dump_is_valid_jsonl_with_header(self):
        metrics = Metrics()
        metrics.counter("a").inc()
        sink = io.StringIO()
        metrics.dump(sink)
        records = [json.loads(line)
                   for line in sink.getvalue().splitlines()]
        assert records[0]["type"] == "metrics_header"
        assert records[1] == {"type": "metric", "kind": "counter",
                              "name": "a", "value": 1}

    def test_load_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            json.dumps({"type": "metrics_header", "schema": 999}) + "\n")
        with pytest.raises(ValueError):
            load_metrics(str(path))

    def test_load_rejects_foreign_records(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(json.dumps({"type": "campaign"}) + "\n")
        with pytest.raises(ValueError):
            load_metrics(str(path))


class TestMerge:
    def test_merge_semantics(self):
        left, right = Metrics(), Metrics()
        left.counter("c").inc(2)
        right.counter("c").inc(3)
        left.gauge("g").set(1)
        right.gauge("g").set(9)
        left.histogram("h").observe(1)
        right.histogram("h").observe(100)

        left.merge(right)
        assert left.value("c") == 5          # counters add
        assert left.value("g") == 9          # gauges last-wins
        merged = left.histogram("h")
        assert merged.count == 2             # histograms element-wise
        assert merged.total == pytest.approx(101.0)

    def test_merge_mismatched_bounds_raises(self):
        left, right = Metrics(), Metrics()
        left.histogram("h", bounds=(1, 2))
        right.histogram("h", bounds=(5,))
        with pytest.raises(ValueError):
            left.merge(right)

    def test_merge_into_empty(self):
        left, right = Metrics(), Metrics()
        right.counter("only").inc(4)
        left.merge(right)
        assert left.value("only") == 4

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

"""Tracer tests: JSONL validity, schema coverage, null fast path."""

import io
import json

import pytest

from repro.obs import (
    EVENT_TYPES,
    NULL_TRACER,
    SCHEMA_VERSION,
    NullTracer,
    Tracer,
    read_trace,
    validate_record,
)


def records_of(sink):
    return [json.loads(line) for line in sink.getvalue().splitlines()]


class TestTracer:
    def test_header_first(self):
        sink = io.StringIO()
        Tracer(sink)
        records = records_of(sink)
        assert records[0]["type"] == "trace_header"
        assert records[0]["schema"] == SCHEMA_VERSION

    def test_every_record_is_schema_valid_jsonl(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        tracer.emit("run_start", target="toy", mode="pmrace")
        tracer.emit("campaign", index=1, new_branch=3, new_alias=0,
                    branch_total=3, alias_total=0, status="ok")
        tracer.emit("candidate", kind="inter-candidate", addr=64,
                    read_code="a", write_code="b")
        tracer.emit("verdict", kind="inter", verdict="bug", note="")
        tracer.emit("run_end", summary={"campaigns": 1})
        for record in records_of(sink):
            validate_record(record)

    def test_seq_monotonic_and_t_nonnegative(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        for _ in range(5):
            tracer.emit("campaign", index=0)
        records = records_of(sink)
        assert [r["seq"] for r in records] == list(range(len(records)))
        assert all(r["t"] >= 0 for r in records)

    def test_unknown_event_type_rejected(self):
        tracer = Tracer(io.StringIO())
        with pytest.raises(ValueError):
            tracer.emit("not_a_type")

    def test_non_jsonable_fields_coerced(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        tracer.emit("run_start", sites=frozenset(["b", "a"]),
                    pair=(1, 2), obj=object())
        record = records_of(sink)[-1]
        assert record["sites"] == ["a", "b"]
        assert record["pair"] == [1, 2]
        assert isinstance(record["obj"], str)

    def test_span_emits_paired_records(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("merge", worker=3):
            pass
        begin, end = records_of(sink)[-2:]
        assert begin["type"] == "span_begin" and begin["name"] == "merge"
        assert end["type"] == "span_end" and end["worker"] == 3
        assert end["duration_s"] >= 0

    def test_file_sink_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with Tracer(path) as tracer:
            tracer.emit("run_start", target="toy")
        records = list(read_trace(path))
        assert [r["type"] for r in records] == ["trace_header", "run_start"]

    def test_read_trace_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(
            {"type": "trace_header", "t": 0, "seq": 0, "schema": 999}) + "\n")
        with pytest.raises(ValueError):
            list(read_trace(str(path)))

    def test_validate_record_requires_fields(self):
        with pytest.raises(ValueError):
            validate_record({"type": "campaign"})  # no t/seq
        with pytest.raises(ValueError):
            validate_record({"type": "nope", "t": 0, "seq": 0})


class TestNullTracer:
    def test_disabled_and_silent(self):
        tracer = NullTracer()
        assert not tracer.enabled
        tracer.emit("run_start", target="toy")
        with tracer.span("anything"):
            pass
        tracer.flush()
        tracer.close()

    def test_shared_instance(self):
        assert not NULL_TRACER.enabled

    def test_event_types_frozen(self):
        assert "campaign" in EVENT_TYPES
        assert isinstance(EVENT_TYPES, frozenset)

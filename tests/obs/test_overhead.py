"""Null-observability overhead guard.

The observability layer must be pay-for-what-you-use: with no tracer
and no metrics registry attached (the default), every hot-path hook
reduces to one ``is not None`` check against a pre-bound instrument
slot. This test measures execs/sec on the toy target with observability
compiled all the way out (``profile=False``, no tracer/metrics) against
the shipped default (null path), interleaving the measurements and
taking best-of-N to shed scheduler noise, and fails if the null path
costs more than 5%.

Marked ``slow``: it exists to bound a performance property, not logic,
and runs in the dedicated slow-tier CI job.
"""

import time

import pytest

from repro.core.engine import PMRaceConfig, fuzz_target

from ..core.toy_target import ToyTarget

pytestmark = pytest.mark.slow

CAMPAIGNS = 40
MIN_ROUNDS = 3
MAX_ROUNDS = 15
MAX_OVERHEAD = 0.05


def execs_per_sec(profile):
    config = PMRaceConfig(max_campaigns=CAMPAIGNS, profile=profile)
    start = time.perf_counter()
    result = fuzz_target(ToyTarget(), config, seeds=(7,))
    elapsed = time.perf_counter() - start
    assert result.campaigns == CAMPAIGNS
    return result.campaigns / elapsed


def test_null_observability_overhead_under_5_percent():
    # alternate the two configurations so drift (thermal, co-tenant
    # load) hits both sides equally; best-of-N discards the noise.
    # Single runs on a loaded host can swing far more than the 5%
    # budget, so keep adding rounds until the bound holds (a true
    # regression keeps failing all MAX_ROUNDS best-of attempts).
    baseline = null_path = 0.0
    for round_index in range(MAX_ROUNDS):
        baseline = max(baseline, execs_per_sec(profile=False))
        null_path = max(null_path, execs_per_sec(profile=True))
        if round_index + 1 >= MIN_ROUNDS and \
                null_path >= baseline * (1.0 - MAX_OVERHEAD):
            break
    overhead = 1.0 - null_path / baseline
    assert overhead < MAX_OVERHEAD, \
        "null observability path costs %.1f%% (baseline %.1f execs/s, " \
        "null path %.1f execs/s; budget %.0f%%)" \
        % (100 * overhead, baseline, null_path, 100 * MAX_OVERHEAD)


def test_default_config_keeps_profiling_on():
    # the guard compares against profile=False, so make sure the
    # shipped default actually exercises the guarded path
    assert PMRaceConfig().profile is True
    result = fuzz_target(ToyTarget(), PMRaceConfig(max_campaigns=2),
                         seeds=(7,))
    assert result.profile["executions"] == 2
    assert result.profile["execs_per_sec"] > 0

"""``repro stats`` summarizer tests, synthetic and end-to-end."""

import io
import json

import pytest

from repro.obs import (
    Metrics,
    Tracer,
    read_trace,
    render_stats,
    summarize_path,
    summarize_records,
)


def make_trace_records():
    sink = io.StringIO()
    tracer = Tracer(sink)
    tracer.emit("run_start", target="toy", mode="pmrace")
    tracer.emit("seed_start", session=0, seed=7)
    tracer.emit("campaign", index=0, branch_total=5, alias_total=1,
                status="ok")
    tracer.emit("interleaving", tier="interleaving", priority=2)
    tracer.emit("campaign", index=1, branch_total=9, alias_total=4,
                status="ok")
    tracer.emit("candidate", kind="inter-candidate", addr=64)
    tracer.emit("inconsistency", kind="inter", addr=64)
    tracer.emit("verdict", kind="inter", verdict="bug", note="")
    tracer.emit("verdict", kind="inter", verdict="validated_fp", note="")
    tracer.emit("verdict", kind="inter", verdict="bug", note="")
    tracer.emit("worker", worker_id=0, seed=7, status="ok")
    tracer.emit("run_end", duration_s=2.0, summary={"campaigns": 10})
    return [json.loads(line) for line in sink.getvalue().splitlines()]


class TestSummarize:
    def test_counts_and_coverage_growth(self):
        summary = summarize_records(make_trace_records())
        assert summary["runs"] == 1
        assert summary["seeds"] == 1
        assert summary["campaigns"] == 10
        assert summary["duration_s"] == pytest.approx(2.0)
        assert summary["interleavings"] == 1
        assert summary["coverage"] == {
            "branch_first": 5, "branch_last": 9, "branch_growth": 4,
            "alias_first": 1, "alias_last": 4, "alias_growth": 3}
        assert summary["candidates"] == 1
        assert summary["inconsistencies"] == 1
        assert summary["candidate_rate"] == pytest.approx(0.1)
        assert summary["verdicts"] == {"bug": 2, "validated_fp": 1}
        assert summary["verdict_ratios"]["bug"] == pytest.approx(2 / 3,
                                                                 abs=1e-4)
        assert summary["workers"] == {"ok": 1}

    def test_unknown_record_type_rejected(self):
        with pytest.raises(ValueError):
            summarize_records([{"type": "mystery", "t": 0, "seq": 0}])

    def test_metrics_file_summary(self, tmp_path):
        metrics = Metrics()
        metrics.counter("pm.loads").inc(100)
        metrics.histogram("steps", bounds=(10,)).observe(5)
        path = str(tmp_path / "m.jsonl")
        metrics.dump(path)
        summary = summarize_path(path)
        assert summary["metrics"]["pm.loads"]["value"] == 100
        assert summary["metrics"]["steps"]["kind"] == "histogram"

    def test_render_stats_mentions_key_lines(self):
        text = render_stats(summarize_records(make_trace_records()))
        assert "coverage growth: branch 5 -> 9 (+4)" in text
        assert "candidates: 1" in text
        assert "bug=2" in text
        assert "worker attempts: ok=1" in text


class TestEndToEnd:
    """The real engine's --trace-out/--metrics-out output must both
    validate against the schema and summarize meaningfully."""

    @pytest.fixture(scope="class")
    def run_files(self, tmp_path_factory):
        from repro.core.engine import PMRaceConfig, fuzz_target

        from ..core.toy_target import ToyTarget

        tmp = tmp_path_factory.mktemp("obs")
        trace_path = str(tmp / "trace.jsonl")
        metrics = Metrics()
        with Tracer(trace_path) as tracer:
            fuzz_target(ToyTarget(), PMRaceConfig(max_campaigns=8),
                        seeds=(7,), tracer=tracer, metrics=metrics)
        metrics_path = str(tmp / "metrics.jsonl")
        metrics.dump(metrics_path)
        return trace_path, metrics_path

    def test_trace_schema_valid(self, run_files):
        trace_path, _ = run_files
        records = list(read_trace(trace_path, validate=True))
        types = {record["type"] for record in records}
        assert {"trace_header", "run_start", "seed_start", "campaign",
                "run_end"} <= types

    def test_trace_summarizes(self, run_files):
        trace_path, _ = run_files
        summary = summarize_path(trace_path)
        assert summary["runs"] == 1
        assert summary["campaigns"] > 0
        assert summary["coverage"]["branch_last"] > 0

    def test_metrics_summarize(self, run_files):
        _, metrics_path = run_files
        summary = summarize_path(metrics_path)
        assert summary["metrics"]["pm.stores"]["value"] > 0
        assert summary["metrics"]["scheduler.runs"]["value"] > 0
        render_stats(summary)  # must not raise


class TestTornTail:
    """A SIGKILLed writer leaves a half-appended final line; ``repro
    stats`` must summarize the rest and report the torn tail instead of
    dying with a JSON error."""

    def make_trace_text(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        tracer.emit("run_start", target="toy", mode="pmrace")
        tracer.emit("campaign", index=0, branch_total=5, alias_total=1,
                    status="ok")
        tracer.emit("run_end", duration_s=1.0, summary={"campaigns": 1})
        return sink.getvalue()

    def test_torn_tail_skipped_and_counted(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        text = self.make_trace_text()
        line = json.dumps({"type": "campaign", "index": 1, "t": 0,
                           "seq": 9})
        with open(path, "w") as handle:
            handle.write(text + line[: len(line) // 2])  # no newline
        summary = summarize_path(path)
        assert summary["torn_lines"] == 1
        assert summary["runs"] == 1
        assert summary["campaigns"] == 1
        assert "torn tail line(s) skipped: 1" in render_stats(summary)

    def test_intact_file_reports_zero_torn(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as handle:
            handle.write(self.make_trace_text())
        summary = summarize_path(path)
        assert summary["torn_lines"] == 0
        assert "torn tail" not in render_stats(summary)

    def test_garbage_only_file_still_errors(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as handle:
            handle.write("not json\n")
        with pytest.raises(ValueError, match="not JSON"):
            summarize_path(path)

    def test_corruption_before_tail_still_errors(self, tmp_path):
        """Only the *last* line may be torn; garbage with well-formed
        records after it means real corruption and must be loud."""
        path = str(tmp_path / "trace.jsonl")
        lines = self.make_trace_text().splitlines()
        with open(path, "w") as handle:
            handle.write(lines[0] + "\nGARBAGE\n" +
                         "\n".join(lines[1:]) + "\n")
        with pytest.raises(ValueError, match="not JSON"):
            summarize_path(path)

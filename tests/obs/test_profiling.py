"""RunProfiler and profile-merge tests."""

import pytest

from repro.obs import RunProfiler, merge_profiles


class TestRunProfiler:
    def test_phase_accumulates_time_and_count(self):
        profiler = RunProfiler()
        for _ in range(3):
            with profiler.phase("campaign"):
                pass
        assert profiler.phase_counts == {"campaign": 3}
        assert profiler.phase_seconds["campaign"] >= 0

    def test_sample_rate_limited(self):
        profiler = RunProfiler(sample_interval=60.0)
        for executions in range(10):
            profiler.sample(executions)
        # first sample always kept; the rest fall inside the interval
        assert len(profiler.samples) == 1
        assert profiler.samples[0][1] == 0

    def test_sample_unlimited_when_interval_zero(self):
        profiler = RunProfiler(sample_interval=0.0)
        for executions in range(5):
            profiler.sample(executions)
        assert [n for _, n in profiler.samples] == [0, 1, 2, 3, 4]

    def test_to_dict_shape(self):
        profiler = RunProfiler(sample_interval=0.0)
        with profiler.phase("provide"):
            pass
        profiler.sample(10)
        profile = profiler.to_dict(duration=2.0, executions=20)
        assert profile["duration_s"] == 2.0
        assert profile["executions"] == 20
        assert profile["execs_per_sec"] == pytest.approx(10.0)
        assert profile["phase_counts"] == {"provide": 1}
        # final sample appended so the series ends at the true count
        assert profile["samples"][-1][1] == 20

    def test_to_dict_zero_duration(self):
        profile = RunProfiler().to_dict(duration=0.0, executions=0)
        assert profile["execs_per_sec"] == 0.0


class TestMergeProfiles:
    BASE = {"duration_s": 2.0, "executions": 10,
            "execs_per_sec": 5.0,
            "phase_seconds": {"campaign": 1.5},
            "phase_counts": {"campaign": 10},
            "samples": [[1.0, 5], [2.0, 10]]}
    OTHER = {"duration_s": 3.0, "executions": 20,
             "execs_per_sec": 6.667,
             "phase_seconds": {"campaign": 2.0, "harvest": 0.5},
             "phase_counts": {"campaign": 20, "harvest": 20},
             "samples": [[1.0, 10], [3.0, 20]]}

    def test_merge_adds_and_offsets(self):
        merged = merge_profiles(self.BASE, self.OTHER)
        assert merged["duration_s"] == pytest.approx(5.0)
        assert merged["executions"] == 30
        assert merged["execs_per_sec"] == pytest.approx(6.0)
        assert merged["phase_seconds"]["campaign"] == pytest.approx(3.5)
        assert merged["phase_counts"] == {"campaign": 30, "harvest": 20}
        # other side's samples shifted by the base duration
        assert merged["samples"] == [[1.0, 5], [2.0, 10],
                                     [3.0, 10], [5.0, 20]]

    def test_merge_with_empty_sides(self):
        assert merge_profiles({}, {}) == {}
        assert merge_profiles(self.BASE, {}) == self.BASE
        assert merge_profiles({}, self.OTHER) == self.OTHER

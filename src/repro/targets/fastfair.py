"""FAST-FAIR: a failure-atomic byte-addressable B+-tree, with bug 8.

Following the FAST'18 design (simplified): fixed-capacity nodes with
in-node shifting on insert (FAST) and sibling pointers that make in-flight
splits tolerable to readers (FAIR). Readers are lock-free and tolerate
transient states; writers take per-node DRAM latches (FAST-FAIR persists
no locks, hence no sync-var annotations — matching Table 3).

Seeded bug (Table 2, bug 8):

8. **Inter** — a split creates the sibling and *stores* the left node's
   sibling pointer without an immediate flush (``btree.h:560`` analog); a
   concurrent insert moves right through the dirty pointer
   (``btree.h:876``) and writes its entry into the sibling → if the crash
   hits before the pointer is flushed, the sibling (and the new entry) is
   unreachable: data loss.

The in-node shifting deliberately leaves short dirty windows on entries —
the *endurable transient inconsistency* FAST-FAIR is named for — which is
why this target produces by far the most inconsistency candidates in the
paper (179) while contributing a single unique bug.
"""

from ..pmdk.pool import PmemObjPool
from ..runtime.sync import SimLock
from .base import OperationSpace, Target, TargetState, raw_view

R_ROOT = 0
R_HEIGHT = 8
ROOT_SIZE = 64

N_NUM = 0
N_IS_LEAF = 8
N_SIBLING = 16
N_HDR = 64
CARD = 8                         # entries per node
ENTRY = 16                       # key u64 + value/child u64
NODE_SIZE = N_HDR + CARD * ENTRY

MAX_HEIGHT = 6


class FastFairInstance:
    """Per-campaign runtime state of one FAST-FAIR pool."""

    def __init__(self, target, state, view, scheduler):
        self.target = target
        self.state = state
        self.view = view
        self.scheduler = scheduler
        self.objpool = state.extras["objpool"]
        self.root = state.extras["root"]
        self._latches = {}

    # ------------------------------------------------------------------
    # helpers

    def _latch(self, node):
        node = int(node)
        latch = self._latches.get(node)
        if latch is None:
            latch = SimLock(self.scheduler, "node-%#x" % node)
            self._latches[node] = latch
        return latch

    def _alloc_node(self, is_leaf):
        node = self.objpool.allocator.alloc(NODE_SIZE)
        view = self.view
        view.ntstore_u64(node + N_NUM, 0)
        view.ntstore_u64(node + N_IS_LEAF, 1 if is_leaf else 0)
        view.ntstore_u64(node + N_SIBLING, 0)
        view.ntstore_bytes(node + N_HDR, b"\x00" * (CARD * ENTRY))
        view.sfence()
        return node

    def _entry(self, node, index):
        return node + N_HDR + index * ENTRY

    def _keys(self, node):
        view = self.view
        num = int(view.load_u64(int(node) + N_NUM))
        return [view.load_u64(self._entry(node, i))
                for i in range(min(num, CARD))]

    # ------------------------------------------------------------------
    # traversal

    def _move_right(self, node, key):
        """B-link move: follow the sibling while key exceeds our range."""
        view = self.view
        while True:
            sibling = view.load_u64(int(node) + N_SIBLING)  # btree.h:876
            num = int(view.load_u64(int(node) + N_NUM))
            if int(sibling) == 0 or num == 0:
                return node
            last_key = view.load_u64(self._entry(node, min(num, CARD) - 1))
            if int(key) > int(last_key):
                node = sibling
            else:
                return node

    def _find_leaf(self, key):
        view = self.view
        node = view.load_u64(self.root + R_ROOT)
        for _depth in range(MAX_HEIGHT + 2):
            node = self._move_right(node, key)
            if int(view.load_u64(int(node) + N_IS_LEAF)):
                return node
            num = int(view.load_u64(int(node) + N_NUM))
            child = view.load_u64(self._entry(node, 0) + 8)
            for index in range(min(num, CARD)):
                entry_key = view.load_u64(self._entry(node, index))
                if int(key) >= int(entry_key):
                    child = view.load_u64(self._entry(node, index) + 8)
                else:
                    break
            if int(child) == 0:
                return node
            node = child
        return node

    # ------------------------------------------------------------------
    # operations

    def insert(self, key, value):
        view = self.view
        for _retry in range(4):
            leaf = self._find_leaf(key)
            latch = self._latch(leaf)
            latch.acquire()
            try:
                leaf2 = self._move_right(leaf, key)
                if int(leaf2) != int(leaf):
                    continue
                num = int(view.load_u64(int(leaf) + N_NUM))
                # overwrite in place when present
                for index in range(min(num, CARD)):
                    if int(view.load_u64(self._entry(leaf, index))) == key:
                        vaddr = self._entry(leaf, index) + 8
                        view.store_u64(vaddr, value)
                        view.persist(vaddr, 8)
                        return True
                if num >= CARD:
                    self._split_leaf(leaf)
                    continue
                # FAST: shift entries right with cached stores — the
                # endurable transient window readers must tolerate.
                pos = num
                for index in range(num - 1, -1, -1):
                    entry_key = view.load_u64(self._entry(leaf, index))
                    if int(entry_key) > key:
                        view.store_u64(self._entry(leaf, index + 1),
                                       entry_key)
                        view.store_u64(
                            self._entry(leaf, index + 1) + 8,
                            view.load_u64(self._entry(leaf, index) + 8))
                        pos = index
                    else:
                        break
                view.store_u64(self._entry(leaf, pos) + 8, value)
                view.store_u64(self._entry(leaf, pos), key)
                view.persist(self._entry(leaf, 0), (num + 1) * ENTRY)
                view.store_u64(int(leaf) + N_NUM, num + 1)
                view.persist(int(leaf) + N_NUM, 8)
                return True
            finally:
                latch.release()
        return False

    def search(self, key):
        """Lock-free lookup; tolerates transient shift states."""
        view = self.view
        leaf = self._find_leaf(key)
        num = int(view.load_u64(int(leaf) + N_NUM))
        for index in range(min(num, CARD)):
            if int(view.load_u64(self._entry(leaf, index))) == key:
                return int(view.load_u64(self._entry(leaf, index) + 8))
        return None

    def delete(self, key):
        view = self.view
        leaf = self._find_leaf(key)
        latch = self._latch(leaf)
        with latch:
            num = int(view.load_u64(int(leaf) + N_NUM))
            for index in range(min(num, CARD)):
                if int(view.load_u64(self._entry(leaf, index))) == key:
                    for j in range(index, num - 1):
                        view.store_u64(
                            self._entry(leaf, j),
                            view.load_u64(self._entry(leaf, j + 1)))
                        view.store_u64(
                            self._entry(leaf, j) + 8,
                            view.load_u64(self._entry(leaf, j + 1) + 8))
                    view.persist(self._entry(leaf, 0), num * ENTRY)
                    view.store_u64(int(leaf) + N_NUM, num - 1)
                    view.persist(int(leaf) + N_NUM, 8)
                    return True
        return False

    # ------------------------------------------------------------------
    # split (bug 8 lives here)

    def _split_leaf(self, leaf):
        view = self.view
        leaf = int(leaf)
        num = int(view.load_u64(leaf + N_NUM))
        half = num // 2
        sibling = self._alloc_node(is_leaf=True)
        entries = [(int(view.load_u64(self._entry(leaf, i))),
                    int(view.load_u64(self._entry(leaf, i) + 8)))
                   for i in range(num)]
        for j, (k, v) in enumerate(entries[half:]):
            view.ntstore_u64(self._entry(sibling, j), k)
            view.ntstore_u64(self._entry(sibling, j) + 8, v)
        view.ntstore_u64(sibling + N_NUM, num - half)
        view.ntstore_u64(sibling + N_SIBLING,
                         int(view.load_u64(leaf + N_SIBLING)))
        view.sfence()
        # Bug 8 write site (btree.h:560 analog): the left node's sibling
        # pointer is stored, but its CLWB is issued only after the whole
        # parent update completes — a concurrent inserter's move-right
        # read (btree.h:876) falls into this long window.
        view.store_u64(leaf + N_SIBLING, sibling)
        view.store_u64(leaf + N_NUM, half)
        view.persist(leaf + N_NUM, 8)
        split_key = entries[half][0]
        self._insert_parent(leaf, split_key, sibling)
        view.persist(leaf + N_SIBLING, 8)

    def _insert_parent(self, left, split_key, right):
        """Install the separator in the parent (correct, non-temporal)."""
        view = self.view
        root_node = int(view.load_u64(self.root + R_ROOT))
        if root_node == int(left):
            new_root = self._alloc_node(is_leaf=False)
            view.ntstore_u64(self._entry(new_root, 0), 0)
            view.ntstore_u64(self._entry(new_root, 0) + 8, int(left))
            view.ntstore_u64(self._entry(new_root, 1), split_key)
            view.ntstore_u64(self._entry(new_root, 1) + 8, int(right))
            view.ntstore_u64(new_root + N_NUM, 2)
            view.sfence()
            view.ntstore_u64(self.root + R_ROOT, new_root)
            view.sfence()
            return
        parent = self._find_parent(root_node, int(left))
        if parent is None:
            return
        latch = self._latch(parent)
        with latch:
            num = int(view.load_u64(parent + N_NUM))
            if num >= CARD:
                return  # bounded trees in fuzz workloads never overflow
            pos = num
            for index in range(num - 1, -1, -1):
                entry_key = int(view.load_u64(self._entry(parent, index)))
                if entry_key > split_key:
                    view.ntstore_u64(
                        self._entry(parent, index + 1), entry_key)
                    view.ntstore_u64(
                        self._entry(parent, index + 1) + 8,
                        int(view.load_u64(self._entry(parent, index) + 8)))
                    pos = index
                else:
                    break
            view.ntstore_u64(self._entry(parent, pos), split_key)
            view.ntstore_u64(self._entry(parent, pos) + 8, int(right))
            view.sfence()
            view.ntstore_u64(parent + N_NUM, num + 1)
            view.sfence()

    def _find_parent(self, node, child):
        view = self.view
        if int(view.load_u64(node + N_IS_LEAF)):
            return None
        num = int(view.load_u64(node + N_NUM))
        children = [int(view.load_u64(self._entry(node, i) + 8))
                    for i in range(min(num, CARD))]
        if child in children:
            return node
        for nxt in children:
            if nxt:
                found = self._find_parent(nxt, child)
                if found is not None:
                    return found
        return None


class FastFairTarget(Target):
    """Table 1 row: FAST-FAIR, version 0f047e8, B+-Tree, lock-based."""

    NAME = "FAST-FAIR"
    VERSION = "0f047e8"
    SCOPE = "B+-Tree"
    CONCURRENCY = "Lock-based"
    POOL_SIZE = 1 << 20

    def operation_space(self):
        space = OperationSpace()
        space.kinds = ("put", "get", "delete")
        space.key_range = 48
        return space

    def setup(self):
        objpool = PmemObjPool.create("fastfair", self.POOL_SIZE)
        root = objpool.root(ROOT_SIZE)
        view = raw_view(objpool.pool)
        state = TargetState(objpool.pool, allocators=[objpool.allocator],
                            extras={"objpool": objpool, "root": root})
        instance = FastFairInstance(self, state, view, None)
        first_leaf = instance._alloc_node(is_leaf=True)
        view.ntstore_u64(root + R_ROOT, first_leaf)
        view.sfence()
        objpool.pool.memory.persist_all()
        return state

    def open(self, state, view, scheduler):
        return FastFairInstance(self, state, view, scheduler)

    def exec_op(self, instance, view, op):
        kind = op.get("op")
        key = op.get("key", 0) + 1  # keys are 1-based (0 = empty child)
        if kind == "put":
            return instance.insert(key, op.get("value", 0))
        if kind == "get":
            instance.search(key)
            return True
        if kind == "delete":
            return instance.delete(key)
        return False

    # ------------------------------------------------------------------
    # recovery: FAST-FAIR repairs lazily on future accesses, so the
    # immediate recovery stage writes (almost) nothing — exactly why its
    # inconsistencies slip past post-failure validation (§4.4).

    def recover(self, pool, view):
        objpool = PmemObjPool.attach(pool, view)
        root = pool.read_u64(8)  # OFF_ROOT
        pool.read_u64(root + R_ROOT)
        self._recovered = (objpool, root)
        return self

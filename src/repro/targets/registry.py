"""Target registry: name → factory, plus the Table 1 inventory."""

from .cceh import CcehTarget
from .clevel import ClevelTarget
from .fastfair import FastFairTarget
from .memcached import MemcachedTarget
from .pclht import PclhtTarget

#: All Table 1 systems in paper order.
TARGET_CLASSES = (
    PclhtTarget,
    ClevelTarget,
    CcehTarget,
    FastFairTarget,
    MemcachedTarget,
)

_BY_NAME = {cls.NAME: cls for cls in TARGET_CLASSES}


def target_names():
    return [cls.NAME for cls in TARGET_CLASSES]


def target_class(name):
    """Look up a target class by its Table 1 name (no instantiation —
    static tooling like pmlint resolves source files from the class)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError("unknown target %r; known: %s"
                       % (name, ", ".join(target_names())))


def make_target(name):
    """Instantiate a target by its Table 1 name."""
    try:
        return _BY_NAME[name]()
    except KeyError:
        raise KeyError("unknown target %r; known: %s"
                       % (name, ", ".join(target_names())))


def table1_rows():
    """The static Table 1 inventory (systems, version, scope, concurrency)."""
    return [
        {"system": cls.NAME, "version": cls.VERSION, "scope": cls.SCOPE,
         "concurrency": cls.CONCURRENCY}
        for cls in TARGET_CLASSES
    ]

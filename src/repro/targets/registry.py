"""Target registry: name → class, open to third-party workloads.

The registry is the plugin boundary of the target SDK
(``docs/TARGET_SDK.md``): the built-in Table 1 systems register here at
import time through the same :func:`register_target` call any external
workload uses, and every consumer — the engine, the CLI, pmlint, the
replay tooling, parallel workers — resolves targets exclusively by
name through this module. ``--target-module pkg.mod`` (or a
``path/to/file.py``) on any CLI subcommand funnels into
:func:`load_target_module`, which imports the module and registers the
:class:`~repro.targets.base.Target` subclasses it defines.

Registration performs only the cheap static contract checks (a unique
non-empty ``NAME``, a ``Target`` subclass); the executable contract —
operation space round-trips, setup/open/exec/recover behavior — is
checked by :mod:`repro.targets.conformance`, which every built-in
target passes in CI and plugin authors are expected to run (see the
conformance section of the SDK cookbook).
"""

import importlib
import importlib.util
import os

from .base import Target
from .cceh import CcehTarget
from .clevel import ClevelTarget
from .fastfair import FastFairTarget
from .memcached import MemcachedTarget
from .pclht import PclhtTarget
from .pmring import PmRingTarget
from .txkv import TxKvTarget


class TargetRegistryError(Exception):
    """Base class for registry misuse."""


class UnknownTargetError(TargetRegistryError, KeyError):
    """Lookup of a name no registered target carries.

    Subclasses ``KeyError`` so pre-SDK callers that caught the lookup
    error keep working.
    """

    def __str__(self):
        # KeyError.__str__ repr()s its single argument; keep the
        # human-readable message intact.
        return self.args[0] if self.args else KeyError.__str__(self)


class DuplicateTargetError(TargetRegistryError):
    """Two distinct classes registered under one ``NAME``."""


class TargetModuleError(TargetRegistryError):
    """``--target-module`` could not be imported or defined no targets."""


#: The five Table 1 systems in paper order, then the two extension
#: targets added by the SDK (ring buffer and transactional KV store).
BUILTIN_TARGET_CLASSES = (
    PclhtTarget,
    ClevelTarget,
    CcehTarget,
    FastFairTarget,
    MemcachedTarget,
    PmRingTarget,
    TxKvTarget,
)

#: Back-compat alias: pre-SDK callers iterated ``TARGET_CLASSES`` for
#: "every built-in system". Dynamic consumers should prefer
#: :func:`registered_classes`.
TARGET_CLASSES = BUILTIN_TARGET_CLASSES

#: name → class, insertion ordered (built-ins first, plugins after).
_REGISTRY = {}

#: abspath → module, so re-loading a plugin file is idempotent instead
#: of minting fresh duplicate classes.
_LOADED_FILES = {}


def register_target(cls, replace=False):
    """Register a :class:`Target` subclass under its ``NAME``.

    Usable as a decorator (returns ``cls``). Registration is idempotent
    for the same class object; registering a *different* class under an
    existing name raises :class:`DuplicateTargetError` unless
    ``replace=True``.
    """
    if not (isinstance(cls, type) and issubclass(cls, Target)):
        raise TargetRegistryError(
            "register_target needs a Target subclass, got %r" % (cls,))
    name = getattr(cls, "NAME", None)
    if not isinstance(name, str) or not name.strip():
        raise TargetRegistryError(
            "%s.NAME must be a non-empty string, got %r"
            % (cls.__name__, name))
    if name == Target.NAME:
        raise TargetRegistryError(
            "%s must override the default NAME %r"
            % (cls.__name__, Target.NAME))
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls and not replace:
        raise DuplicateTargetError(
            "target name %r already registered by %s.%s (pass "
            "replace=True to override)"
            % (name, existing.__module__, existing.__name__))
    _REGISTRY[name] = cls
    return cls


def unregister_target(name):
    """Remove one registered target by name (plugin teardown, tests)."""
    try:
        del _REGISTRY[name]
    except KeyError:
        raise UnknownTargetError(_unknown_message(name))


for _cls in BUILTIN_TARGET_CLASSES:
    register_target(_cls)


def registered_classes():
    """Every registered target class, registration order."""
    return tuple(_REGISTRY.values())


def target_names():
    return [cls.NAME for cls in _REGISTRY.values()]


def _unknown_message(name):
    return "unknown target %r; known: %s" % (name, ", ".join(target_names()))


def target_class(name):
    """Look up a target class by name (no instantiation — static
    tooling like pmlint resolves source files from the class)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownTargetError(_unknown_message(name))


def make_target(name):
    """Instantiate a target by its registered name."""
    return target_class(name)()


def _import_module(spec):
    """Import a plugin module from a dotted name or a ``.py`` path."""
    if spec.endswith(".py") or os.sep in spec:
        path = os.path.abspath(spec)
        cached = _LOADED_FILES.get(path)
        if cached is not None:
            return cached
        if not os.path.exists(path):
            raise TargetModuleError("no target module file at %s" % spec)
        module_name = os.path.splitext(os.path.basename(path))[0]
        loader_spec = importlib.util.spec_from_file_location(module_name,
                                                             path)
        if loader_spec is None or loader_spec.loader is None:
            raise TargetModuleError("cannot load target module %s" % spec)
        module = importlib.util.module_from_spec(loader_spec)
        try:
            loader_spec.loader.exec_module(module)
        except Exception as exc:
            raise TargetModuleError(
                "error importing target module %s: %r" % (spec, exc))
        _LOADED_FILES[path] = module
        return module
    try:
        return importlib.import_module(spec)
    except Exception as exc:
        raise TargetModuleError(
            "error importing target module %s: %r" % (spec, exc))


def load_target_module(spec):
    """Import ``spec`` and register the targets it defines.

    ``spec`` is a dotted module name (``myteam.pm_targets``) or a file
    path (``targets/mystore.py``). The module may register explicitly
    (``@register_target`` or a module-level ``register_target(cls)``
    call); any :class:`Target` subclass *defined in the module* that is
    still unregistered after import is auto-registered, so a plain
    module of target classes needs no registration boilerplate.

    Returns the list of target names the module contributed (empty on
    a repeat load of an already-registered module). Raises
    :class:`TargetModuleError` when the import fails or the module
    defines no targets at all.
    """
    before = set(_REGISTRY)
    module = _import_module(spec)
    defined = []
    for value in vars(module).values():
        if isinstance(value, type) and issubclass(value, Target) \
                and value is not Target \
                and value.__module__ == module.__name__:
            defined.append(value)
    for cls in defined:
        if _REGISTRY.get(cls.NAME) is not cls:
            register_target(cls)
    if not defined and not any(cls.__module__ == module.__name__
                               for cls in _REGISTRY.values()):
        raise TargetModuleError(
            "target module %s defines no Target subclasses" % spec)
    return [name for name, cls in _REGISTRY.items()
            if name not in before]


def load_target_modules(specs):
    """Load several plugin modules; returns all contributed names."""
    names = []
    for spec in specs or ():
        names.extend(load_target_module(spec))
    return names


def table1_rows():
    """The target inventory (system, version, scope, concurrency).

    Covers every *registered* target — built-ins in paper order first,
    then dynamically loaded plugins — so ``repro targets`` /
    ``repro tables`` show third-party workloads alongside Table 1.
    """
    return [
        {"system": cls.NAME, "version": cls.VERSION, "scope": cls.SCOPE,
         "concurrency": cls.CONCURRENCY}
        for cls in _REGISTRY.values()
    ]

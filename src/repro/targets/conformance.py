"""Executable contract checks for registered targets.

Registration (:func:`repro.targets.registry.register_target`) validates
only the static surface of a target class; this module exercises the
*behavioral* contract the fuzzing engine depends on:

* metadata fields carry the right types,
* the class constructs with zero arguments (workers and the validation
  service rebuild targets by name),
* the :class:`~repro.targets.base.OperationSpace` is self-consistent —
  generation, mutation, and the serialize/parse round-trip the byte
  mutator relies on,
* ``setup`` produces a checkpointable :class:`TargetState`,
* ``open``/``exec_op`` survive a seeded random operation batch and
  reject unknown kinds, and
* ``recover`` runs on a crash image of a fresh pool.

``repro targets --check`` runs it from the CLI; the test suite
parameterizes it over every built-in; plugin authors run it against
their own classes before trusting fuzz results (see
``docs/TARGET_SDK.md``).

All checks are fault-contained: a crashing target yields a failed
report, never an exception.
"""

import random
import traceback

from ..instrument.context import InstrumentationContext
from ..instrument.hooks import PmView
from ..pmem.pool import PmemPool
from ..runtime.policies import RoundRobinPolicy
from ..runtime.scheduler import Scheduler
from .base import TargetState, raw_view

#: Deterministic seed for every randomized conformance probe.
CHECK_SEED = 0xC0F0
#: Operations executed against a fresh instance.
CHECK_OPS = 40


class ConformanceIssue:
    """One failed check: which probe failed and why."""

    __slots__ = ("check", "message")

    def __init__(self, check, message):
        self.check = check
        self.message = message

    def __repr__(self):
        return "<ConformanceIssue %s: %s>" % (self.check, self.message)


class ConformanceReport:
    """The outcome of :func:`check_target` for one class."""

    def __init__(self, name, cls):
        self.name = name
        self.cls = cls
        self.issues = []
        self.checks_run = []

    @property
    def ok(self):
        return not self.issues

    def fail(self, check, message):
        self.issues.append(ConformanceIssue(check, message))

    def summary(self):
        if self.ok:
            return "%s: ok (%d checks)" % (self.name, len(self.checks_run))
        lines = ["%s: %d issue(s)" % (self.name, len(self.issues))]
        lines.extend("  [%s] %s" % (issue.check, issue.message)
                     for issue in self.issues)
        return "\n".join(lines)

    def __repr__(self):
        return "<ConformanceReport %s %s>" % (
            self.name, "ok" if self.ok else "%d issues" % len(self.issues))


def _contained(report, check):
    """Decorator-ish runner: execute one probe, swallow its crash."""
    def run(fn, *args):
        if check not in report.checks_run:
            report.checks_run.append(check)
        try:
            return fn(*args)
        except Exception:
            report.fail(check, "raised:\n%s"
                        % traceback.format_exc(limit=4).rstrip())
            return None
    return run


def _check_metadata(report, cls):
    for field in ("NAME", "VERSION", "SCOPE", "CONCURRENCY"):
        value = getattr(cls, field, None)
        if not isinstance(value, str) or not value.strip():
            report.fail("metadata", "%s must be a non-empty string, got %r"
                        % (field, value))
    pool_size = getattr(cls, "POOL_SIZE", None)
    if not isinstance(pool_size, int) or pool_size <= 0:
        report.fail("metadata", "POOL_SIZE must be a positive int, got %r"
                    % (pool_size,))
    if not isinstance(getattr(cls, "USES_LIBPMEM", False), bool):
        report.fail("metadata", "USES_LIBPMEM must be a bool")


def _check_space(report, space):
    kinds = getattr(space, "kinds", ())
    if not kinds or not all(isinstance(kind, str) for kind in kinds):
        report.fail("space", "kinds must be a non-empty tuple of strings, "
                    "got %r" % (kinds,))
        return
    if space.insert_kind not in kinds:
        report.fail("space", "insert_kind %r not in kinds %r"
                    % (space.insert_kind, kinds))
    if not space.op_needs_value(space.insert_kind):
        report.fail("space", "op_needs_value(%r) must be True: the populate "
                    "strategy attaches values to every insert"
                    % space.insert_kind)
    rng = random.Random(CHECK_SEED)
    ops = []
    for _n in range(CHECK_OPS):
        op = space.random_op(rng)
        if not isinstance(op, dict) or op.get("op") not in kinds:
            report.fail("space", "random_op produced invalid op %r" % (op,))
            return
        ops.append(space.mutate_op(op, rng))
    for op in ops:
        if not isinstance(op, dict) or op.get("op") not in kinds:
            report.fail("space", "mutate_op produced invalid op %r" % (op,))
            return
    data = space.serialize(ops)
    if not isinstance(data, bytes):
        report.fail("space", "serialize must return bytes, got %r"
                    % type(data))
        return
    parsed, invalid = space.parse(data)
    if invalid or parsed != ops:
        report.fail("space", "serialize/parse round-trip lost ops: "
                    "%d in, %d out, %d invalid"
                    % (len(ops), len(parsed), invalid))


def _check_setup(report, target):
    state = target.setup()
    if not isinstance(state, TargetState):
        report.fail("setup", "setup() must return a TargetState, got %r"
                    % type(state))
        return None
    if state.pool is None:
        report.fail("setup", "TargetState.pool is None")
        return None
    snap = state.snapshot()
    state.restore(snap)
    return state


def _check_exec(report, target, state, space):
    # Run under a bounded scheduler, exactly like a fuzzing campaign: a
    # target with a seeded deadlock (e.g. P-CLHT's leaked bucket lock)
    # may legitimately hang mid-batch — target behavior, not a contract
    # violation — whereas an exception is a conformance failure.
    scheduler = Scheduler(RoundRobinPolicy(), max_steps=50_000,
                          spin_hang_limit=200)
    ctx = InstrumentationContext(capture_stacks=False)
    view = PmView(state.pool, scheduler, ctx)
    instance = target.open(state, view, scheduler)
    rng = random.Random(CHECK_SEED + 1)
    results = {"bogus": None}

    def batch():
        for _n in range(CHECK_OPS):
            target.exec_op(instance, view, space.random_op(rng))
        results["bogus"] = target.exec_op(
            instance, view, {"op": "__not_a_real_kind__", "key": 0})

    scheduler.spawn(batch, "conformance")
    outcome = scheduler.run()
    if outcome.status == "error":
        report.fail("exec", "exec_op raised: %r" % (outcome.error,))
    elif outcome.status == "ok" and results["bogus"]:
        report.fail("exec", "exec_op must return falsy for unknown op "
                    "kinds, got %r" % (results["bogus"],))


def _check_recover(report, target_cls, state):
    image = state.pool.crash_image()
    pool = PmemPool.from_image("conformance", image)
    view = raw_view(pool)
    target_cls().recover(pool, view)


def check_target(cls):
    """Run every conformance probe against ``cls``; never raises."""
    report = ConformanceReport(getattr(cls, "NAME", cls.__name__), cls)
    run = _contained(report, "metadata")
    run(_check_metadata, report, cls)

    run = _contained(report, "construct")
    target = run(lambda: cls())
    if target is None:
        return report

    run = _contained(report, "space")
    space = run(target.operation_space)
    if space is not None:
        run = _contained(report, "space")
        run(_check_space, report, space)

    run = _contained(report, "setup")
    state = run(_check_setup, report, target)
    if state is None or space is None:
        return report

    run = _contained(report, "exec")
    run(_check_exec, report, target, state, space)

    run = _contained(report, "recover")
    run(_check_recover, report, cls, cls().setup())
    return report


def check_all(classes=None):
    """Conformance reports for ``classes`` (default: all registered)."""
    if classes is None:
        from .registry import registered_classes
        classes = registered_classes()
    return [check_target(cls) for cls in classes]

"""The target-program contract: what a system under test must provide.

A target bundles

* a persistent layout built in :meth:`Target.setup` (returning a
  :class:`TargetState` that can be checkpointed/restored),
* a per-campaign runtime :meth:`Target.open` (DRAM locks, cached roots),
* an operation executor :meth:`Target.exec_op` driven by fuzz seeds,
* recovery code :meth:`Target.recover` for post-failure validation, and
* an :class:`OperationSpace` describing its input language for the
  mutators.
"""

from ..instrument.annotations import AnnotationRegistry
from ..instrument.context import InstrumentationContext
from ..instrument.hooks import PmView


class TargetState:
    """Everything persistent + annotatable about one pool instance.

    Attributes:
        pool: The :class:`~repro.pmem.pool.PmemPool`.
        annotations: The target's :class:`AnnotationRegistry`.
        allocators: Allocators whose DRAM state must ride along with pool
            checkpoints.
        extras: Target-specific fixed offsets (roots, regions).
    """

    def __init__(self, pool, annotations=None, allocators=(), extras=None):
        self.pool = pool
        self.annotations = annotations or AnnotationRegistry()
        self.allocators = list(allocators)
        self.extras = dict(extras or {})

    # ------------------------------------------------------------------
    # in-memory checkpoints (§5)

    def snapshot(self):
        ann = {a.name: (a.size, a.init_val, set(a.addrs))
               for a in self.annotations.types()}
        return (self.pool.checkpoint(),
                [alloc.snapshot() for alloc in self.allocators],
                ann, dict(self.extras))

    def restore(self, snap):
        pool_snap, alloc_snaps, ann, extras = snap
        self.pool.restore(pool_snap)
        for alloc, alloc_snap in zip(self.allocators, alloc_snaps):
            alloc.restore(alloc_snap)
        registry = AnnotationRegistry()
        for name, (size, init_val, addrs) in ann.items():
            registry.pm_sync_var_hint(name, size, init_val)
            for addr in addrs:
                registry.register_instance(name, addr)
        self.annotations = registry
        self.extras = dict(extras)


def raw_view(pool):
    """An uninstrumented view for setup/recovery phases (no observers)."""
    return PmView(pool, None, InstrumentationContext(capture_stacks=False))


class OperationSpace:
    """The input language of a target, used by both mutators.

    The default implementation models a key-value interface with textual
    serialization (one ``<op> <key> [<value>]`` command per line), which
    fits the index targets; memcached overrides it with its own protocol.
    """

    kinds = ("put", "get", "delete", "update")
    #: The kind used by the populate strategy (§4.5's insert-heavy load).
    insert_kind = "put"
    key_range = 24
    value_range = 10_000

    def random_key(self, rng, near=None):
        """A key, biased toward ``near`` so accesses collide across threads."""
        if near is not None and rng.random() < 0.5:
            return max(0, near + rng.randint(-2, 2)) % self.key_range
        return rng.randrange(self.key_range)

    def op_needs_value(self, kind):
        """Whether ``kind`` carries a value parameter.

        The single source of truth for value attachment: random
        generation, corpus population (:meth:`~repro.core.inputgen.
        OperationMutator.populate_seed`), and parsing all defer to it,
        so a target with a custom ``insert_kind`` cannot end up with
        value-less population ops.
        """
        return kind in (self.insert_kind, "update")

    def random_op(self, rng, near_key=None):
        kind = rng.choice(self.kinds)
        op = {"op": kind, "key": self.random_key(rng, near_key)}
        if self.op_needs_value(kind):
            op["value"] = rng.randrange(self.value_range)
        return op

    def mutate_op(self, op, rng):
        """Update one parameter of ``op`` to another valid value."""
        mutated = dict(op)
        if "value" in mutated and rng.random() < 0.5:
            mutated["value"] = rng.randrange(self.value_range)
        else:
            mutated["key"] = self.random_key(rng, mutated.get("key"))
        return mutated

    # ------------------------------------------------------------------
    # textual serialization (the byte-mutator's substrate)

    def serialize(self, ops):
        lines = []
        for op in ops:
            if "value" in op:
                lines.append("%s %d %d" % (op["op"], op["key"], op["value"]))
            else:
                lines.append("%s %d" % (op["op"], op["key"]))
        return ("\n".join(lines) + "\n").encode()

    def parse_line(self, line):
        """Parse one command line; returns an op dict or None when invalid."""
        parts = line.split()
        if not parts or parts[0] not in self.kinds:
            return None
        kind = parts[0]
        try:
            key = int(parts[1])
        except (IndexError, ValueError):
            return None
        if key < 0:
            return None
        op = {"op": kind, "key": key % self.key_range}
        if self.op_needs_value(kind):
            try:
                op["value"] = int(parts[2])
            except (IndexError, ValueError):
                return None
        return op

    def parse(self, data):
        """Parse serialized bytes; returns (ops, invalid_count)."""
        ops, invalid = [], 0
        try:
            text = data.decode("utf-8", errors="strict")
        except UnicodeDecodeError:
            text = data.decode("utf-8", errors="replace")
        for line in text.splitlines():
            if not line.strip():
                continue
            op = self.parse_line(line.strip())
            if op is None:
                invalid += 1
            else:
                ops.append(op)
        return ops, invalid


class Target:
    """Base class for systems under test. Subclasses are stateless: all
    per-pool state lives in the :class:`TargetState`, all per-campaign
    state in the instance returned by :meth:`open`."""

    NAME = "target"
    VERSION = "-"
    SCOPE = "-"
    CONCURRENCY = "-"
    POOL_SIZE = 1 << 20
    #: libpmem-based targets skip libpmemobj initialization (Figure 10).
    USES_LIBPMEM = False

    def operation_space(self):
        return OperationSpace()

    def setup(self):
        """Create and initialize a fresh pool; returns a TargetState."""
        raise NotImplementedError

    def open(self, state, view, scheduler):
        """Per-campaign runtime instance over an initialized state."""
        raise NotImplementedError

    def exec_op(self, instance, view, op):
        """Execute one fuzz-generated operation."""
        raise NotImplementedError

    def recover(self, pool, view):
        """Run the application's recovery code on a (crash-image) pool."""
        raise NotImplementedError

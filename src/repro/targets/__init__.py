"""Concurrent PM systems under test (Table 1 + SDK extensions).

The built-in targets live here; third-party workloads plug in through
the registry (:func:`register_target` / ``--target-module``, see
``docs/TARGET_SDK.md``) and are checked by :mod:`.conformance`.
"""

from .base import OperationSpace, Target, TargetState, raw_view
from .cceh import CcehTarget
from .clevel import ClevelTarget
from .conformance import check_all, check_target
from .fastfair import FastFairTarget
from .memcached import MemcachedOperationSpace, MemcachedTarget
from .pclht import PclhtTarget
from .pmring import PmRingTarget
from .registry import (
    BUILTIN_TARGET_CLASSES,
    TARGET_CLASSES,
    DuplicateTargetError,
    TargetModuleError,
    TargetRegistryError,
    UnknownTargetError,
    load_target_module,
    load_target_modules,
    make_target,
    register_target,
    registered_classes,
    table1_rows,
    target_class,
    target_names,
    unregister_target,
)
from .txkv import TxKvTarget

__all__ = [
    "Target",
    "TargetState",
    "OperationSpace",
    "raw_view",
    "PclhtTarget",
    "ClevelTarget",
    "CcehTarget",
    "FastFairTarget",
    "MemcachedTarget",
    "MemcachedOperationSpace",
    "PmRingTarget",
    "TxKvTarget",
    "BUILTIN_TARGET_CLASSES",
    "TARGET_CLASSES",
    "register_target",
    "unregister_target",
    "registered_classes",
    "load_target_module",
    "load_target_modules",
    "make_target",
    "target_class",
    "target_names",
    "table1_rows",
    "TargetRegistryError",
    "UnknownTargetError",
    "DuplicateTargetError",
    "TargetModuleError",
    "check_target",
    "check_all",
]

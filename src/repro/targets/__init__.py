"""Concurrent PM systems under test (Table 1)."""

from .base import OperationSpace, Target, TargetState, raw_view
from .cceh import CcehTarget
from .clevel import ClevelTarget
from .fastfair import FastFairTarget
from .memcached import MemcachedOperationSpace, MemcachedTarget
from .pclht import PclhtTarget
from .registry import TARGET_CLASSES, make_target, table1_rows, target_names

__all__ = [
    "Target",
    "TargetState",
    "OperationSpace",
    "raw_view",
    "PclhtTarget",
    "ClevelTarget",
    "CcehTarget",
    "FastFairTarget",
    "MemcachedTarget",
    "MemcachedOperationSpace",
    "TARGET_CLASSES",
    "make_target",
    "target_names",
    "table1_rows",
]

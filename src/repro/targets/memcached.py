"""memcached-pmem: Lenovo's PM port of memcached, with bugs 9-14.

The port persists the slab storage (items, including their LRU ``next``/
``prev`` links) in PM via ``pmem_map_file`` (libpmem — no pool-object
initialization, which is why in-memory checkpoints do not help it,
Figure 10), keeps the hash index in DRAM, and rebuilds index + LRU from
the slabs on restart. Item values carry checksums.

Its persistence discipline is deliberately sloppy in the same places the
paper (and PMDebugger before it) found missing flushes — value writes and
LRU link updates stay in the cache — which yields two classes of
inter-thread inconsistencies:

* **Benign** (the 62 validated FPs of Table 3): flows into ``next``/
  ``prev``/LRU-head fields. Recovery's index rebuild rewrites every live
  item's links, so post-failure validation sees the side effects
  overwritten.
* **Bugs 9-14**: flows into item *values* (append/prepend/incr read a
  non-persisted value and write a value derived from it — bugs 9/10),
  ``it_flags`` (bug 12/13) and ``slabs_clsid`` (bugs 11/14), none of
  which the rebuild touches.

The driver speaks (a single-line variant of) the memcached text protocol;
its parser is the Table 4 workload: the AFL-style byte mutator feeds it
~1/3 invalid commands while the operation mutator always parses.
"""

from zlib import crc32

from ..instrument.taint import taint_of, with_taint
from ..pmdk.pool import pmem_map_file
from ..runtime.sync import SimLock
from .base import OperationSpace, Target, TargetState

H_MAGIC = 0
H_LRU_HEAD = 8
H_LRU_TAIL = 16
HDR_SIZE = 64
MAGIC = 0x4D454D43           # "MEMC"

IT_NEXT = 0
IT_PREV = 8
IT_CLSID = 16
IT_FLAGS = 24
IT_NKEY = 32
IT_NBYTES = 40
IT_CSUM = 48
IT_KEY = 56
IT_VALUE = 64
VALUE_CAP = 56
ITEM_SIZE = 128

NUM_SLOTS = 16
SLAB_START = HDR_SIZE

FLAG_LINKED = 1
FLAG_FETCHED = 2

LOCK_STRIPES = 8


def _checksum(data):
    # CRC32, as in the real port: a byte-sum would let a torn value
    # (old bytes read back under a newly persisted length) collide with
    # the new value's checksum and survive recovery.
    return crc32(bytes(data)) & 0xFFFFFFFF


def _key_word(key):
    return key + 1


class MemcachedOperationSpace(OperationSpace):
    """The memcached text protocol (single-line simplified form)."""

    kinds = ("get", "bget", "set", "add", "replace", "append", "prepend",
             "incr", "decr", "delete")
    insert_kind = "set"
    key_range = 24
    value_range = 10_000

    def random_op(self, rng, near_key=None):
        kind = rng.choice(self.kinds)
        op = {"op": kind, "key": self.random_key(rng, near_key)}
        if kind in ("set", "add", "replace", "append", "prepend"):
            op["value"] = rng.randrange(self.value_range)
        elif kind in ("incr", "decr"):
            op["value"] = rng.randrange(1, 100)
        return op

    def mutate_op(self, op, rng):
        mutated = dict(op)
        if "value" in mutated and rng.random() < 0.5:
            mutated["value"] = rng.randrange(self.value_range)
        else:
            mutated["key"] = self.random_key(rng, mutated.get("key"))
        return mutated

    # ------------------------------------------------------------------
    # text protocol

    def serialize(self, ops):
        lines = []
        for op in ops:
            kind = op["op"]
            key = "key%d" % op["key"]
            if kind in ("set", "add", "replace", "append", "prepend"):
                payload = str(op["value"])
                lines.append("%s %s 0 0 %d %s" % (kind, key, len(payload),
                                                  payload))
            elif kind in ("incr", "decr"):
                lines.append("%s %s %d" % (kind, key, op["value"]))
            else:
                lines.append("%s %s" % (kind, key))
        return ("\r\n".join(lines) + "\r\n").encode()

    def parse_line(self, line):
        parts = line.split()
        if not parts:
            return None
        kind = parts[0]
        if kind not in self.kinds:
            return None
        if len(parts) < 2 or not parts[1].startswith("key"):
            return None
        try:
            key = int(parts[1][3:])
        except ValueError:
            return None
        if key < 0:
            return None
        op = {"op": kind, "key": key % self.key_range}
        if kind in ("set", "add", "replace", "append", "prepend"):
            if len(parts) != 6:
                return None
            try:
                flags, exptime, nbytes = (int(parts[2]), int(parts[3]),
                                          int(parts[4]))
                value = int(parts[5])
            except ValueError:
                return None
            if nbytes != len(parts[5]) or flags != 0 or exptime != 0:
                return None
            op["value"] = value
        elif kind in ("incr", "decr"):
            if len(parts) != 3:
                return None
            try:
                op["value"] = int(parts[2])
            except ValueError:
                return None
            if op["value"] <= 0:
                return None
        elif len(parts) != 2:
            return None
        return op


class MemcachedInstance:
    """Per-campaign runtime state: DRAM index, free list, striped locks."""

    def __init__(self, target, state, view, scheduler):
        self.target = target
        self.state = state
        self.view = view
        self.scheduler = scheduler
        self.pool = state.pool
        self.index = {}
        self.free = list(range(NUM_SLOTS))
        self.locks = [SimLock(scheduler, "stripe-%d" % i)
                      for i in range(LOCK_STRIPES)] if scheduler else None
        self.current_command = None
        self.stats = {"cmd_errors": 0}
        self._rebuild_from_slabs()

    # ------------------------------------------------------------------
    # bootstrap

    def _slot_addr(self, slot):
        return SLAB_START + slot * ITEM_SIZE

    def _rebuild_from_slabs(self):
        """DRAM index/free-list bootstrap from persisted slabs (raw)."""
        for slot in range(NUM_SLOTS):
            addr = self._slot_addr(slot)
            flags = self.pool.read_u64(addr + IT_FLAGS)
            if flags & FLAG_LINKED:
                key = self.pool.read_u64(addr + IT_KEY) - 1
                self.index[key] = addr
                if slot in self.free:
                    self.free.remove(slot)

    def _lock(self, key):
        if self.locks is None:
            return None
        return self.locks[key % LOCK_STRIPES]

    # ------------------------------------------------------------------
    # value helpers (bug sites live here)

    def _read_value(self, item):
        view = self.view
        nbytes = int(view.load_u64(item + IT_NBYTES))
        nbytes = max(0, min(nbytes, VALUE_CAP))
        return view.load_bytes(item + IT_VALUE, nbytes)  # memcached.c:2805

    def _write_value(self, item, data, flush=False):
        """Store a value + checksum. memcached-pmem misses the flush on
        the value bytes (the root cause behind bugs 9/10/13)."""
        view = self.view
        data = data[:VALUE_CAP]
        view.store_bytes(item + IT_VALUE, data)          # memcached.c:4292
        view.store_u64(item + IT_NBYTES, len(data))      # memcached.c:4293
        view.store_u64(item + IT_CSUM, _checksum(bytes(data)))
        if flush:
            view.persist(item + IT_VALUE, VALUE_CAP)
        view.persist(item + IT_NBYTES, 16)

    def _verify_checksum(self, item):
        """Checksum-verified read — crash-consistent, whitelisted (§4.4)."""
        view = self.view
        value = self._read_value(item)
        stored = int(view.load_u64(item + IT_CSUM))
        return _checksum(bytes(value)) == stored

    # ------------------------------------------------------------------
    # LRU maintenance (the validated-FP factory)

    def _set_next(self, item, value):
        """All ``next`` updates (items.c:423's memcpy) — left unflushed."""
        self.view.store_u64(int(item) + IT_NEXT, value)

    def _set_prev(self, item, value):
        """All ``prev`` updates (slabs.c:549's memcpy) — left unflushed."""
        self.view.store_u64(int(item) + IT_PREV, value)

    def _lru_unlink(self, item):
        view = self.view
        nxt = view.load_u64(item + IT_NEXT)              # slabs.c:412
        prv = view.load_u64(item + IT_PREV)              # items.c:464
        if int(prv):
            self._set_next(prv, nxt)
        else:
            view.store_u64(H_LRU_HEAD, nxt)
        if int(nxt):
            self._set_prev(nxt, prv)
        else:
            view.store_u64(H_LRU_TAIL, prv)

    def _lru_link_head(self, item):
        view = self.view
        head = view.load_u64(H_LRU_HEAD)
        self._set_next(item, head)
        self._set_prev(item, 0)
        if int(head):
            self._set_prev(head, item)
        else:
            view.store_u64(H_LRU_TAIL, item)
        view.store_u64(H_LRU_HEAD, item)

    def _lru_bump(self, item):
        self._lru_unlink(item)
        self._lru_link_head(item)

    # ------------------------------------------------------------------
    # allocation / eviction

    def _alloc_item(self, key, data):
        view = self.view
        if self.free:
            slot = self.free.pop()
            addr = self._slot_addr(slot)
        else:
            addr = self._evict_tail()
            if addr is None:
                return None
        # Slab-class reuse: a recycled slot keeps its class when the new
        # value fits; the previous class id may be non-persisted (the
        # unflushed store in _evict_tail) — bug 14's read side.
        old_clsid = view.load_u64(addr + IT_CLSID)
        wanted = 1 if len(data) <= 16 else 2
        clsid = (old_clsid & 0xFF) if int(old_clsid) & 0xFF else wanted
        view.store_u64(addr + IT_CLSID, clsid)
        view.store_u64(addr + IT_KEY, _key_word(key))
        view.store_u64(addr + IT_NKEY, 8)
        # The initial store path persists the value correctly; only the
        # in-place update paths (append/prepend/incr) miss the flush.
        self._write_value(addr, data, flush=True)
        view.store_u64(addr + IT_FLAGS, FLAG_LINKED)
        view.persist(addr, IT_VALUE)
        return addr

    def _evict_tail(self):
        view = self.view
        tail = view.load_u64(H_LRU_TAIL)
        if not int(tail):
            return None
        # Bug 11's shape (items.c:423/:464): the victim's (possibly
        # non-persisted) LRU links are read and flow into durable
        # bookkeeping inside _lru_unlink.
        self._lru_unlink(tail)
        old_key = self.pool.read_u64(int(tail) + IT_KEY) - 1
        self.index.pop(old_key, None)
        # Bug 14's shape (items.c:627/:623): the old (possibly
        # non-persisted) slabs_clsid feeds the freed-slot class marker,
        # and the store itself is left unflushed.
        old_clsid = view.load_u64(int(tail) + IT_CLSID)
        view.store_u64(int(tail) + IT_CLSID, (old_clsid & 0xFF) | 0x100)
        view.store_u64(int(tail) + IT_FLAGS, 0)
        view.persist(int(tail) + IT_FLAGS, 8)
        return int(tail)

    # ------------------------------------------------------------------
    # commands

    def cmd_get(self, key, bump=True):
        item = self.index.get(key)
        if item is None:
            return None
        view = self.view
        if not self._verify_checksum(item):
            return None
        value = self._read_value(item)
        if bump:
            lock = self._lock(key)
            if lock:
                lock.acquire()
            try:
                self._lru_bump(item)
                # Bug 13's shape (items.c:1096/memcached.c:2824): the
                # fetched-flag/fetch-count update derives from a possibly
                # non-persisted it_flags read; never flushed nor rebuilt.
                flags = view.load_u64(item + IT_FLAGS)
                view.store_u64(item + IT_FLAGS,
                               (flags | FLAG_FETCHED) + (1 << 8))
            finally:
                if lock:
                    lock.release()
        return bytes(value)

    def cmd_store(self, kind, key, data):
        lock = self._lock(key)
        if lock:
            lock.acquire()
        try:
            item = self.index.get(key)
            if kind == "add" and item is not None:
                return False
            if kind == "replace" and item is None:
                return False
            if kind in ("append", "prepend"):
                if item is None:
                    return False
                # Bugs 9/10 (memcached.c:4292-4293 / :2805): the old
                # value may be another thread's non-persisted write; the
                # new value derives from it and is itself left unflushed.
                old = self._read_value(item)
                data = old + data if kind == "append" else data + old
                data = bytes(data)[:VALUE_CAP] if not taint_of(data) \
                    else data[:VALUE_CAP]
                view = self.view
                view.store_bytes(item + IT_VALUE, data)  # memcached.c:4292
                view.store_u64(item + IT_NBYTES, len(data))
                view.store_u64(item + IT_CSUM, _checksum(bytes(data)))
                view.persist(item + IT_NBYTES, 16)
                self._lru_bump(item)
                return True
            if item is not None:
                self._write_value(item, data)
                self._lru_bump(item)
                return True
            item = self._alloc_item(key, data)
            if item is None:
                return False
            self._lru_link_head(item)
            self.index[key] = item
            return True
        finally:
            if lock:
                lock.release()

    def cmd_arith(self, key, delta, negate=False):
        lock = self._lock(key)
        if lock:
            lock.acquire()
        try:
            item = self.index.get(key)
            if item is None:
                return None
            old = self._read_value(item)
            try:
                number = int(bytes(old).decode() or "0")
            except ValueError:
                return None
            number = number - delta if negate else number + delta
            number = max(number, 0)
            # DFSan tracks labels through the parse/format round-trip;
            # re-attach the source labels the decode() stripped.
            data = with_taint(str(number).encode(), taint_of(old))
            view = self.view
            view.store_bytes(item + IT_VALUE, data)      # incr/decr store
            view.store_u64(item + IT_NBYTES, len(bytes(data)))
            view.store_u64(item + IT_CSUM, _checksum(bytes(data)))
            view.persist(item + IT_NBYTES, 16)
            return number
        finally:
            if lock:
                lock.release()

    def cmd_delete(self, key):
        lock = self._lock(key)
        if lock:
            lock.acquire()
        try:
            item = self.index.pop(key, None)
            if item is None:
                return False
            view = self.view
            self._lru_unlink(item)
            view.store_u64(item + IT_FLAGS, 0)
            view.persist(item + IT_FLAGS, 8)
            self.free.append((item - SLAB_START) // ITEM_SIZE)
            return True
        finally:
            if lock:
                lock.release()

    # ------------------------------------------------------------------
    # text protocol entry point (the Table 4 surface)

    def process_command(self, line):
        """Parse and execute one protocol line; returns a response string."""
        op = self.target.operation_space().parse_line(line)
        if op is None:
            self.stats["cmd_errors"] += 1
            return "ERROR"
        return self.dispatch(op)

    def dispatch(self, op):
        kind = op["op"]
        self.current_command = kind
        key = op["key"]
        if kind in ("get", "bget"):
            value = self.cmd_get(key, bump=(kind == "get"))
            return "END" if value is None else "VALUE"
        if kind in ("set", "add", "replace", "append", "prepend"):
            ok = self.cmd_store(kind, key, str(op["value"]).encode())
            return "STORED" if ok else "NOT_STORED"
        if kind in ("incr", "decr"):
            result = self.cmd_arith(key, op["value"], negate=(kind == "decr"))
            return "NOT_FOUND" if result is None else str(result)
        if kind == "delete":
            return "DELETED" if self.cmd_delete(key) else "NOT_FOUND"
        self.stats["cmd_errors"] += 1
        return "ERROR"


class MemcachedTarget(Target):
    """Table 1 row: memcached-pmem, 8f121f6, key-value store, lock-based."""

    NAME = "memcached-pmem"
    VERSION = "8f121f6"
    SCOPE = "Key-value store"
    CONCURRENCY = "Lock-based"
    POOL_SIZE = HDR_SIZE + NUM_SLOTS * ITEM_SIZE
    USES_LIBPMEM = True

    def operation_space(self):
        return MemcachedOperationSpace()

    def setup(self):
        pool = pmem_map_file("memcached", self.POOL_SIZE)
        mem = pool.memory
        import struct
        mem.store(H_MAGIC, struct.pack("<Q", MAGIC), None, "mc.setup",
                  ntstore=True)
        mem.persist_all()
        return TargetState(pool)

    def open(self, state, view, scheduler):
        return MemcachedInstance(self, state, view, scheduler)

    def exec_op(self, instance, view, op):
        response = instance.dispatch(op)
        return response != "ERROR"

    # ------------------------------------------------------------------
    # recovery: rebuild index and rewrite every live item's LRU links —
    # this overwrite is what turns the next/prev inconsistencies into
    # validated false positives (62 of them in Table 3).

    def recover(self, pool, view):
        live = []
        for slot in range(NUM_SLOTS):
            addr = SLAB_START + slot * ITEM_SIZE
            flags = pool.read_u64(addr + IT_FLAGS)
            if not flags & FLAG_LINKED:
                continue
            nbytes = min(pool.read_u64(addr + IT_NBYTES), VALUE_CAP)
            value = pool.read_bytes(addr + IT_VALUE, nbytes)
            stored = pool.read_u64(addr + IT_CSUM)
            if _checksum(value) != stored:
                continue  # torn value: drop the item (checksum guard)
            live.append(addr)
        prev = 0
        for addr in live:
            view.ntstore_u64(addr + IT_PREV, prev)
            if prev:
                view.ntstore_u64(prev + IT_NEXT, addr)
            prev = addr
        if live:
            view.ntstore_u64(live[-1] + IT_NEXT, 0)
        view.ntstore_u64(H_LRU_HEAD, live[0] if live else 0)
        view.ntstore_u64(H_LRU_TAIL, live[-1] if live else 0)
        view.sfence()
        self._recovered = live
        return self

"""Clevel hashing: a lock-free concurrent level hash table on PMDK.

Following the ATC'20 design (simplified): slots hold packed
``key<<32 | value`` words updated with CAS — no locks anywhere, matching
Table 1's "lock-free" row. Expansion runs inside a PMDK transaction and
allocates levels through the redo-log-protected bump allocator
(:func:`repro.pmdk.alloc.pm_atomic_alloc`).

Clevel is the paper's showcase for false-positive filtering rather than
new bugs (Tables 2/3: 6 candidates, 2 inter-thread inconsistencies, both
whitelisted as PMDK transactional allocations, 0 bugs):

* the shared allocator cursor is read racily (possibly non-persisted) and
  CAS-advanced — a true PM Inter-thread Inconsistency that is *benign*
  because the allocation metadata is redo-log protected; the default
  whitelist filters it;
* the Figure 7 pattern (constructor reads its own non-persisted ``meta``
  inside an uncommitted transaction) is exercised by the expansion path
  and neutralized by undo-log rollback during recovery.
"""

from ..pmdk.alloc import BumpHeap, pm_atomic_alloc
from ..pmdk.pool import PmemObjPool
from ..pmdk.tx import Transaction
from .base import OperationSpace, Target, TargetState, raw_view

R_META = 0
R_BUMP = 8
ROOT_SIZE = 64

M_FIRST_LEVEL = 0
M_CAPACITY = 8
M_MASK = 16
META_SIZE = 64

INITIAL_CAPACITY = 16
MAX_CAPACITY = 128
PROBE = 4

#: The bump heap serves level arrays from the top half of the pool.
BUMP_REGION_FRACTION = 2


def _pack(key, value):
    return ((key + 1) << 32) | (value & 0xFFFFFFFF)


def _unpack(word):
    word = int(word)
    return (word >> 32) - 1, word & 0xFFFFFFFF


class ClevelInstance:
    """Per-campaign runtime state of one clevel pool."""

    def __init__(self, target, state, view, scheduler):
        self.target = target
        self.state = state
        self.view = view
        self.scheduler = scheduler
        self.objpool = state.extras["objpool"]
        self.root = state.extras["root"]
        self.heap = state.extras["heap"]

    # ------------------------------------------------------------------

    def _level(self):
        meta = int(self.view.load_u64(self.root + R_META))
        level = self.view.load_u64(meta + M_FIRST_LEVEL)
        capacity = self.view.load_u64(meta + M_CAPACITY)
        return meta, level, capacity

    def _slot(self, level, capacity, key, probe):
        return level + ((key + probe) % int(capacity)) * 8

    def _probe_word(self, slot):
        """All slot probing funnels through this single load site."""
        return self.view.load_u64(slot)

    # ------------------------------------------------------------------
    # operations (lock-free)

    def insert(self, key, value):
        view = self.view
        for _attempt in range(4):
            _meta, level, capacity = self._level()
            for probe in range(PROBE):
                slot = self._slot(level, capacity, key, probe)
                word = self._probe_word(slot)
                slot_key, _ = _unpack(word)
                if slot_key == key:
                    ok, _old = view.cas_u64(slot, word, _pack(key, value))
                    if ok:
                        view.persist(slot, 8)
                        return True
                    break
                if int(word) == 0:
                    ok, _old = view.cas_u64(slot, 0, _pack(key, value))
                    if ok:
                        view.persist(slot, 8)
                        return True
                    break
            else:
                if not self._expand():
                    return False
                continue
        return False

    def search(self, key):
        view = self.view
        _meta, level, capacity = self._level()
        for probe in range(PROBE):
            word = self._probe_word(self._slot(level, capacity, key, probe))
            slot_key, value = _unpack(word)
            if slot_key == key:
                return value
        return None

    def delete(self, key):
        view = self.view
        _meta, level, capacity = self._level()
        for probe in range(PROBE):
            slot = self._slot(level, capacity, key, probe)
            word = self._probe_word(slot)
            slot_key, _ = _unpack(word)
            if slot_key == key:
                ok, _old = view.cas_u64(slot, word, 0)
                if ok:
                    view.persist(slot, 8)
                    return True
        return False

    # ------------------------------------------------------------------
    # expansion: PMDK transaction + redo-log-protected allocation

    def _expand(self):
        view = self.view
        meta, level, capacity = self._level()
        capacity = int(capacity)
        if capacity >= MAX_CAPACITY:
            return False
        new_capacity = capacity * 2
        tid = self.scheduler.current().tid if self.scheduler and \
            self.scheduler.current() else 0
        with Transaction(self.objpool, view, tid) as tx:
            new_meta = tx.tx_alloc(META_SIZE)
            tx.add_range(new_meta, 24)
            # Whitelisted allocation: reads the shared (possibly
            # non-persisted) bump cursor, CAS-advances it.
            new_level = pm_atomic_alloc(view, self.heap, new_capacity * 8)
            if new_level == 0:
                return False
            view.ntstore_bytes(int(new_level), b"\x00" * (new_capacity * 8))
            view.sfence()
            # Figure 7's shape: store a meta field, read it back while it
            # is still non-persisted, and derive another durable write
            # from the dirty value — benign, because the whole meta
            # object is transaction-protected and rolled back on crash.
            view.store_u64(new_meta + M_CAPACITY, new_capacity)
            dirty_capacity = view.load_u64(new_meta + M_CAPACITY)
            view.store_u64(new_meta + M_MASK, dirty_capacity - 1)
            view.store_u64(new_meta + M_FIRST_LEVEL, new_level)
            # rehash into the new level (local, clean values)
            for index in range(capacity):
                word = view.load_u64(int(level) + index * 8)
                if int(word) == 0:
                    continue
                slot_key, slot_value = _unpack(word)
                for probe in range(PROBE):
                    dslot = int(new_level) + \
                        ((slot_key + probe) % new_capacity) * 8
                    if int(view.load_u64(dslot)) == 0:
                        view.ntstore_u64(dslot, _pack(slot_key, slot_value))
                        break
            view.sfence()
            view.persist(int(new_meta), META_SIZE)
            # Publish atomically and durably: readers never observe a
            # non-persisted root pointer (clevel's correct discipline).
            view.ntstore_u64(self.root + R_META, new_meta)
            view.sfence()
        return True


class ClevelTarget(Target):
    """Table 1 row: clevel hashing, cae716f, PM-optimized, lock-free."""

    NAME = "clevel hashing"
    VERSION = "cae716f"
    SCOPE = "PM-optimized hashing"
    CONCURRENCY = "Lock-free"
    POOL_SIZE = 1 << 20

    def operation_space(self):
        space = OperationSpace()
        space.kinds = ("put", "get", "delete")
        space.value_range = 1 << 16
        return space

    def setup(self):
        objpool = PmemObjPool.create("clevel", self.POOL_SIZE)
        root = objpool.root(ROOT_SIZE)
        view = raw_view(objpool.pool)
        heap_start = objpool.pool.size // BUMP_REGION_FRACTION
        heap = BumpHeap(root + R_BUMP, objpool.pool.size)
        heap.init(view, heap_start)
        meta = objpool.allocator.alloc(META_SIZE)
        level = pm_atomic_alloc(view, heap, INITIAL_CAPACITY * 8)
        view.ntstore_bytes(level, b"\x00" * (INITIAL_CAPACITY * 8))
        view.ntstore_u64(meta + M_FIRST_LEVEL, level)
        view.ntstore_u64(meta + M_CAPACITY, INITIAL_CAPACITY)
        view.ntstore_u64(root + R_META, meta)
        view.sfence()
        objpool.pool.memory.persist_all()
        return TargetState(objpool.pool, allocators=[objpool.allocator],
                           extras={"objpool": objpool, "root": root,
                                   "heap": heap})

    def open(self, state, view, scheduler):
        return ClevelInstance(self, state, view, scheduler)

    def exec_op(self, instance, view, op):
        kind = op.get("op")
        key = op.get("key", 0)
        if kind == "put":
            return instance.insert(key, op.get("value", 0))
        if kind == "get":
            instance.search(key)
            return True
        if kind == "delete":
            return instance.delete(key)
        return False

    def recover(self, pool, view):
        """PMDK pool open: undo-log rollback is the whole recovery."""
        objpool = PmemObjPool.attach(pool, view)
        root = pool.read_u64(8)  # OFF_ROOT
        pool.read_u64(root + R_META)
        self._recovered = (objpool, root)
        return self

"""pmring: a lock-free persistent MPMC ring buffer, with a seeded bug.

The first SDK extension target, exercising a bug shape the Table 1
index structures do not: an *unfenced publication* in a lock-free
queue. The design follows the common PM ring-buffer recipe (a bounded
slot array with per-slot sequence numbers, Vyukov-style): producers
CAS-claim the head cursor, write the payload with non-temporal stores,
then *publish* by writing the slot's sequence word; consumers observe
the sequence word, consume the payload, and durably advance the tail.

The pool is mapped with ``pmem_map_file`` (libpmem, no pool-object
metadata — like memcached-pmem, Figure 10's hard case) and the
structure is entirely lock-free, so — as with FAST-FAIR — there are no
persistent synchronization variables to annotate (Table 3's
``annotation = 0`` rows).

Seeded bug (bug 15 in our extended catalog):

15. **Inter** — ``push`` publishes a slot by *storing* its sequence
    word and issuing the CLWB, but the SFENCE is missing
    (``pmring.c:201`` analog): the line sits in the write-back queue
    until some later fence the producer happens to execute. A
    concurrent ``pop`` reads the dirty sequence word (``pmring.c:258``)
    and non-temporally logs it as the durable consumption cursor → if
    the crash drops the unfenced line, the cursor references an entry
    the ring never durably published: lost element, inconsistent
    cursor.

The producer-side claim race (a ``push`` reading the head cursor
between a peer's CAS and its persist) is the benign counterpart: the
claim is re-validated by the CAS itself, so those candidates are
whitelisted (``repro.targets.pmring:push``), mirroring clevel's
allocator-cursor entry.
"""

from ..pmdk.pool import pmem_map_file
from .base import OperationSpace, Target, TargetState

R_HEAD = 0                       # producer claim cursor (persisted per claim)
R_TAIL = 8                       # consumer cursor (persisted per pop)
R_CURSOR = 16                    # durable consumed-sequence log (bug target)
HDR_SIZE = 64

S_SEQ = 0                        # 0 = empty, seq = published
S_VAL = 8
SLOT_SIZE = 64                   # one cache line per slot: no false sharing
NUM_SLOTS = 8
SLOT_START = HDR_SIZE

CAS_RETRIES = 8


class PmRingOperationSpace(OperationSpace):
    """Queue language: ``push <key> <value>`` / ``pop <key>`` / ``peek``.

    The key parameter is retained (it seeds near-key collision biasing
    and keeps the textual protocol uniform) but the ring itself is
    positional; pop/peek ignore it.
    """

    kinds = ("push", "pop", "peek")
    insert_kind = "push"
    key_range = 8
    value_range = 1 << 16


class PmRingInstance:
    """Per-campaign runtime state of one pmring pool (all state is PM)."""

    def __init__(self, target, state, view, scheduler):
        self.target = target
        self.state = state
        self.view = view
        self.scheduler = scheduler

    @staticmethod
    def _slot(seq):
        return SLOT_START + (int(seq) % NUM_SLOTS) * SLOT_SIZE

    # ------------------------------------------------------------------
    # producers

    def push(self, value):
        view = self.view
        for _retry in range(CAS_RETRIES):
            # Benign claim race (whitelisted): the head cursor may be a
            # peer's not-yet-persisted claim; the CAS below re-validates
            # it, and recovery recomputes the cursor from the slots.
            head = int(view.load_u64(R_HEAD))
            tail = int(view.load_u64(R_TAIL))
            if head - tail >= NUM_SLOTS:
                return False                     # ring full
            ok, _old = view.cas_u64(R_HEAD, head, head + 1)
            if not ok:
                continue
            view.persist(R_HEAD, 8)
            slot = self._slot(head)
            view.ntstore_u64(slot + S_VAL, value)
            view.sfence()
            # Bug 15 write site (pmring.c:201 analog): the publication
            # store is CLWB'd but never fenced — the sequence word rides
            # the write-back queue until the producer's next incidental
            # SFENCE, and a crash in that window drops the publication.
            view.store_u64(slot + S_SEQ, head + 1)
            view.clwb(slot + S_SEQ)
            return True
        return False

    # ------------------------------------------------------------------
    # consumers

    def pop(self):
        view = self.view
        for _retry in range(CAS_RETRIES):
            tail = int(view.load_u64(R_TAIL))
            slot = self._slot(tail)
            # Bug 15 read site (pmring.c:258 analog): the sequence word
            # may be a producer's unfenced publication.
            seq = view.load_u64(slot + S_SEQ)
            if int(seq) != tail + 1:
                return None                      # empty / not yet published
            ok, _old = view.cas_u64(R_TAIL, tail, tail + 1)
            if not ok:
                continue
            value = view.load_u64(slot + S_VAL)
            # The durable side effect: the consumed sequence is logged
            # non-temporally — content derived from the dirty read above.
            view.ntstore_u64(R_CURSOR, seq)
            view.ntstore_u64(slot + S_SEQ, 0)
            view.sfence()
            view.persist(R_TAIL, 8)
            return int(value)
        return None

    def peek(self):
        """Read the front entry without consuming (no durable flow)."""
        view = self.view
        tail = int(view.load_u64(R_TAIL))
        slot = self._slot(tail)
        seq = view.load_u64(slot + S_SEQ)
        if int(seq) != tail + 1:
            return None
        return int(view.load_u64(slot + S_VAL))


class PmRingTarget(Target):
    """Extension target: lock-free PM ring buffer (SDK showcase)."""

    NAME = "pmring"
    VERSION = "sdk-1"
    SCOPE = "Ring buffer"
    CONCURRENCY = "Lock-free"
    POOL_SIZE = HDR_SIZE + NUM_SLOTS * SLOT_SIZE
    USES_LIBPMEM = True

    def operation_space(self):
        return PmRingOperationSpace()

    def setup(self):
        pool = pmem_map_file("pmring", self.POOL_SIZE)
        pool.memory.persist_all()
        return TargetState(pool)

    def open(self, state, view, scheduler):
        return PmRingInstance(self, state, view, scheduler)

    def exec_op(self, instance, view, op):
        kind = op.get("op")
        if kind == "push":
            return instance.push(op.get("value", 0))
        if kind == "pop":
            instance.pop()
            return True
        if kind == "peek":
            instance.peek()
            return True
        return False

    # ------------------------------------------------------------------
    # recovery: recompute the cursors from the slot sequence words. The
    # consumption log at R_CURSOR is deliberately never reconciled —
    # the original code trusts it as append-only — which is exactly what
    # lets post-failure validation convict bug 15.

    def recover(self, pool, view):
        tail = pool.read_u64(R_TAIL)
        head = tail
        # Contiguously published entries survive; the first gap ends the
        # durable prefix (a torn publication after it is unreachable).
        for _step in range(NUM_SLOTS):
            slot = SLOT_START + (head % NUM_SLOTS) * SLOT_SIZE
            if pool.read_u64(slot + S_SEQ) != head + 1:
                break
            head += 1
        # Scrub every slot outside the live window: half-claimed or
        # torn-published slots are re-zeroed (their side effects are
        # overwritten → validated FPs), live ones rewritten verbatim.
        for index in range(NUM_SLOTS):
            slot = SLOT_START + index * SLOT_SIZE
            seq = pool.read_u64(slot + S_SEQ)
            live = tail < seq <= head and (seq - 1) % NUM_SLOTS == index
            if not live:
                view.ntstore_u64(slot + S_SEQ, 0)
                view.ntstore_u64(slot + S_VAL, 0)
        view.ntstore_u64(R_HEAD, head)
        view.ntstore_u64(R_TAIL, tail)
        view.sfence()
        self._recovered = (head, tail)
        return self

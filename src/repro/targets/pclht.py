"""P-CLHT: a persistent cache-line hash table (RECIPE), with its real bugs.

This re-implements the structure PMRace tested (§2.3.2, Table 2 bugs 1-5):
a bucket-grained-locked chained^Wresizable hash table on PMDK. Layout:

* root: current table offset ``ht_off``, resize destination ``table_new``,
  and three persistent global locks;
* table: inline header (``num_buckets``) followed by an inline array of
  one-cache-line buckets: ``lock | key0 | val0 | key1 | val1 | pad``.

The seeded bugs (file/line comments name the original sites):

1. **Inter** — resize publishes the new table pointer with a *delayed*
   flush (store at the ``clht_lb_res.c:785`` analog, CLWB at ``:786``);
   a concurrent ``put`` reads the dirty pointer (``:417``) and ntstores
   the item into the new table (``:483-489``) → data loss.
2. **Sync** — persistent bucket locks are never re-initialized by
   recovery (``:429``) → post-crash hang.
3. **Intra** — migration reads its own unflushed ``table_new``
   (``:789`` → ``clht_gc.c:190``) and rehashes into it → PM leak.
4. **Other** — lock-free readers see unflushed keys (``:321``/``:616``):
   an inconsistency candidate whose investigation revealed redundant PM
   writes.
5. **Other** — ``clht_update`` returns without releasing the bucket lock
   on the key-missing path (``:526``) → DRAM hang.
"""

from ..pmdk.pool import PmemObjPool
from ..runtime.thread import ThreadKilled  # noqa: F401 (documentation aid)
from .base import OperationSpace, Target, TargetState, raw_view

# root field offsets
R_HT = 0
R_TABLE_NEW = 8
R_RESIZE_LOCK = 16
R_GC_LOCK = 24
R_GLOBAL_LOCK = 32
R_VERSION = 40
ROOT_SIZE = 64

# table layout
T_NUM_BUCKETS = 0
T_HDR = 64
BUCKET_SIZE = 64
B_LOCK = 0
B_KEY0 = 8
B_VAL0 = 16
B_KEY1 = 24
B_VAL1 = 32
#: Bug 4's site: a "last inserted key" hint, written on every put but
#: never flushed — and, it turns out, never needed (redundant PM write).
B_HINT = 40
SLOTS = 2

INITIAL_BUCKETS = 4
MAX_RESIZES = 6


def _pm_lock_acquire(view, scheduler, addr, name="lock"):
    """Acquire a persistent spin lock word (single shared CAS site).

    Test-and-test-and-set: the spin test reads the cached value without
    instrumentation (a PAUSE loop on a cached line), so consecutive spin
    yields accumulate and the scheduler's hang detection can see a thread
    stuck on a leaked lock.
    """
    while True:
        if view.pool.read_u64(int(addr)) == 0:
            ok, _ = view.cas_u64(addr, 0, 1)
            if ok:
                return
        if scheduler is None:
            raise RuntimeError("persistent %s lock stuck outside the "
                               "scheduler (leaked by a previous crash?)"
                               % name)
        scheduler.yield_point("spin", "pm_lock:%s" % name)


def _pm_lock_release(view, addr):
    view.store_u64(addr, 0)


class PclhtInstance:
    """Per-campaign runtime state of one P-CLHT pool."""

    def __init__(self, target, state, view, scheduler):
        self.target = target
        self.state = state
        self.view = view
        self.scheduler = scheduler
        self.objpool = state.extras["objpool"]
        self.root = state.extras["root"]
        self.resizes = 0

    # ------------------------------------------------------------------
    # helpers

    def _bucket_addr(self, table, index):
        # Address arithmetic on the (possibly tainted) table offset: this
        # is exactly the address data flow of Figure 2.
        return table + T_HDR + index * BUCKET_SIZE

    def _register_bucket_locks(self, table, num_buckets):
        for index in range(num_buckets):
            self.state.annotations.register_instance(
                "bucket_lock", int(self._bucket_addr(table, index)) + B_LOCK)

    # ------------------------------------------------------------------
    # operations

    def put(self, key, value):
        """Insert or overwrite; triggers resize when the bucket is full."""
        for _attempt in range(MAX_RESIZES + 2):
            ht = self.view.load_u64(self.root + R_HT)       # :417 analog
            num = self.view.load_u64(int(ht) + T_NUM_BUCKETS)
            bucket = self._bucket_addr(ht, key % int(num))
            _pm_lock_acquire(self.view, self.scheduler, bucket + B_LOCK, "bucket")
            # Bug 4 write site (:321 analog): an unflushed, redundant
            # key-hint write.
            self.view.store_u64(bucket + B_HINT, key + 1)
            free_slot = None
            for slot in range(SLOTS):
                slot_key = self.view.load_u64(bucket + B_KEY0 + 16 * slot)
                if int(slot_key) == key + 1:
                    val_addr = bucket + B_VAL0 + 16 * slot
                    self.view.store_u64(val_addr, value)
                    self.view.persist(val_addr, 8)
                    _pm_lock_release(self.view, bucket + B_LOCK)
                    return True
                if int(slot_key) == 0 and free_slot is None:
                    free_slot = slot
            if free_slot is not None:
                # :483-489 analog — movnt64 the key/value pair.
                self.view.ntstore_u64(bucket + B_VAL0 + 16 * free_slot,
                                      value)
                self.view.ntstore_u64(bucket + B_KEY0 + 16 * free_slot,
                                      key + 1)
                self.view.sfence()
                _pm_lock_release(self.view, bucket + B_LOCK)
                return True
            _pm_lock_release(self.view, bucket + B_LOCK)
            self._resize()
        return False

    def get(self, key):
        """Lock-free search (reads unflushed keys: bug 4's candidate)."""
        ht = self.view.load_u64(self.root + R_HT)            # :417 analog
        num = self.view.load_u64(int(ht) + T_NUM_BUCKETS)
        bucket = self._bucket_addr(ht, key % int(num))
        # Bug 4 read site (:616 analog): consults the (possibly unflushed)
        # key hint; the scan below is needed regardless, so the hint — and
        # the PM write maintaining it — is redundant.
        self.view.load_u64(bucket + B_HINT)
        for slot in range(SLOTS):
            slot_key = self.view.load_u64(bucket + B_KEY0 + 16 * slot)  # :616
            if int(slot_key) == key + 1:
                return int(self.view.load_u64(bucket + B_VAL0 + 16 * slot))
        return None

    def update(self, key, value):
        """Bug 5: the key-missing path forgets to release the bucket lock."""
        ht = self.view.load_u64(self.root + R_HT)
        num = self.view.load_u64(int(ht) + T_NUM_BUCKETS)
        bucket = self._bucket_addr(ht, key % int(num))
        _pm_lock_acquire(self.view, self.scheduler, bucket + B_LOCK, "bucket")
        for slot in range(SLOTS):
            slot_key = self.view.load_u64(bucket + B_KEY0 + 16 * slot)
            if int(slot_key) == key + 1:
                val_addr = bucket + B_VAL0 + 16 * slot
                self.view.store_u64(val_addr, value)
                self.view.persist(val_addr, 8)
                _pm_lock_release(self.view, bucket + B_LOCK)
                return True
        return False                                         # :526 analog

    def delete(self, key):
        ht = self.view.load_u64(self.root + R_HT)
        num = self.view.load_u64(int(ht) + T_NUM_BUCKETS)
        bucket = self._bucket_addr(ht, key % int(num))
        _pm_lock_acquire(self.view, self.scheduler, bucket + B_LOCK, "bucket")
        found = False
        for slot in range(SLOTS):
            slot_key = self.view.load_u64(bucket + B_KEY0 + 16 * slot)
            if int(slot_key) == key + 1:
                self.view.ntstore_u64(bucket + B_KEY0 + 16 * slot, 0)
                self.view.sfence()
                found = True
                break
        _pm_lock_release(self.view, bucket + B_LOCK)
        return found

    # ------------------------------------------------------------------
    # resize (bugs 1 and 3 live here)

    def _resize(self):
        view = self.view
        _pm_lock_acquire(view, self.scheduler, self.root + R_RESIZE_LOCK, "resize")
        try:
            if self.resizes >= MAX_RESIZES:
                return
            ht = int(view.load_u64(self.root + R_HT))
            num = int(view.load_u64(ht + T_NUM_BUCKETS))
            new_num = num * 2
            new_table = self.objpool.allocator.alloc(
                T_HDR + new_num * BUCKET_SIZE)
            self._register_bucket_locks(new_table, new_num)
            view.ntstore_u64(new_table + T_NUM_BUCKETS, new_num)
            view.ntstore_bytes(new_table + T_HDR,
                               b"\x00" * (new_num * BUCKET_SIZE))
            view.sfence()
            # Bug 3 write site (:789): table_new stored, never flushed
            # before the migration below consumes it.
            view.store_u64(self.root + R_TABLE_NEW, new_table)
            _pm_lock_acquire(view, self.scheduler, self.root + R_GC_LOCK, "gc")
            for index in range(num):
                # clht_gc.c:190 analog — rereads its own unflushed
                # table_new on every pass (Intra candidate).
                dest = view.load_u64(self.root + R_TABLE_NEW)
                bucket = ht + T_HDR + index * BUCKET_SIZE
                for slot in range(SLOTS):
                    slot_key = int(view.load_u64(bucket + B_KEY0 + 16 * slot))
                    if slot_key == 0:
                        continue
                    value = view.load_u64(bucket + B_VAL0 + 16 * slot)
                    didx = (slot_key - 1) % new_num
                    dbucket = dest + T_HDR + didx * BUCKET_SIZE
                    for dslot in range(SLOTS):
                        dkey = view.load_u64(dbucket + B_KEY0 + 16 * dslot)
                        if int(dkey) == 0:
                            view.ntstore_u64(
                                dbucket + B_VAL0 + 16 * dslot, value)
                            view.ntstore_u64(
                                dbucket + B_KEY0 + 16 * dslot, slot_key)
                            break
            view.sfence()
            _pm_lock_release(view, self.root + R_GC_LOCK)
            _pm_lock_acquire(view, self.scheduler, self.root + R_GLOBAL_LOCK, "global")
            # Bug 1 write site (:785): the swap of the global table
            # pointer; the CLWB+SFENCE (:786) is a separate, later step —
            # the window a concurrent put's :417 read falls into.
            view.store_u64(self.root + R_HT, new_table)
            view.clwb(self.root + R_HT)                      # :786 analog
            view.sfence()
            view.persist(self.root + R_TABLE_NEW, 8)
            _pm_lock_release(view, self.root + R_GLOBAL_LOCK)
            self.objpool.allocator.free(ht)
            self.resizes += 1
        finally:
            _pm_lock_release(view, self.root + R_RESIZE_LOCK)


class PclhtTarget(Target):
    """Table 1 row: P-CLHT, version 70bf21c, static hashing, lock-based."""

    NAME = "P-CLHT"
    VERSION = "70bf21c"
    SCOPE = "Static hashing"
    CONCURRENCY = "Lock-based"
    POOL_SIZE = 1 << 20

    def operation_space(self):
        return OperationSpace()

    def setup(self):
        objpool = PmemObjPool.create("pclht", self.POOL_SIZE)
        root = objpool.root(ROOT_SIZE)
        view = raw_view(objpool.pool)
        table = objpool.allocator.alloc(T_HDR + INITIAL_BUCKETS * BUCKET_SIZE)
        view.ntstore_u64(table + T_NUM_BUCKETS, INITIAL_BUCKETS)
        view.ntstore_bytes(table + T_HDR,
                           b"\x00" * (INITIAL_BUCKETS * BUCKET_SIZE))
        view.ntstore_u64(root + R_HT, table)
        view.ntstore_u64(root + R_TABLE_NEW, 0)
        view.sfence()
        objpool.pool.memory.persist_all()
        state = TargetState(objpool.pool, allocators=[objpool.allocator],
                            extras={"objpool": objpool, "root": root})
        ann = state.annotations
        ann.pm_sync_var_hint("bucket_lock", 8, 0)
        ann.pm_sync_var_hint("resize_lock", 8, 0)
        ann.pm_sync_var_hint("gc_lock", 8, 0)
        ann.pm_sync_var_hint("global_lock", 8, 0)
        for index in range(INITIAL_BUCKETS):
            ann.register_instance(
                "bucket_lock", table + T_HDR + index * BUCKET_SIZE + B_LOCK)
        ann.register_instance("resize_lock", root + R_RESIZE_LOCK)
        ann.register_instance("gc_lock", root + R_GC_LOCK)
        ann.register_instance("global_lock", root + R_GLOBAL_LOCK)
        return state

    def open(self, state, view, scheduler):
        return PclhtInstance(self, state, view, scheduler)

    def exec_op(self, instance, view, op):
        kind = op.get("op")
        key = op.get("key", 0)
        if kind == "put":
            return instance.put(key, op.get("value", 0))
        if kind == "get":
            instance.get(key)
            return True
        if kind == "update":
            return instance.update(key, op.get("value", 0))
        if kind == "delete":
            return instance.delete(key)
        return False

    # ------------------------------------------------------------------
    # recovery (bug 2: bucket locks are NOT re-initialized here)

    def recover(self, pool, view):
        objpool = PmemObjPool.attach(pool, view)
        root = pool.read_u64(8)  # OFF_ROOT
        # P-CLHT's restart path re-initializes its *global* locks...
        for off in (R_RESIZE_LOCK, R_GC_LOCK, R_GLOBAL_LOCK):
            view.ntstore_u64(root + off, 0)
        view.sfence()
        # ...but walks the buckets without touching their lock words
        # (clht_lb_res.c:429): bug 2.
        self._recovered = (objpool, root)
        return self

    def post_recovery_probe(self, pool, view):
        """A put against the recovered pool; hangs on a stuck bucket lock."""
        objpool, root = self._recovered
        state = TargetState(pool, extras={"objpool": objpool, "root": root})
        instance = PclhtInstance(self, state, view, view.scheduler)
        instance.put(0, 1)

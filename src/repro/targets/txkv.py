"""txkv: a PMDK-transaction key-value store, with a seeded torn update.

The second SDK extension target, exercising the *torn out-of-transaction
metadata* pattern the PM bug studies flag as a recurring PMDK-app
mistake: the record data is dutifully undo-logged inside a transaction,
but a pair of derived metadata words is updated after commit — one half
flushed, the other not. Crash between the halves and the metadata no
longer describes the data the transaction persisted.

Layout: a direct-mapped entry table (``key+1 | value`` per 16-byte
entry) hanging off a PMDK root that also carries a live-entry count, a
generation counter, a durable ``stat`` snapshot of both, and one
persistent writer lock (annotated sync variable — correctly
re-initialized by recovery, the benign counterpart to P-CLHT's bug 2).

Seeded bug (bug 16 in our extended catalog):

16. **Inter** — every mutation bumps the generation counter *outside*
    its transaction and never flushes it (``txkv.c:144`` analog),
    while the sibling count word is persisted immediately: the torn
    metadata pair. A concurrent ``stat`` reads the dirty generation
    (``txkv.c:210``) and non-temporally logs the ``(gen, count)``
    snapshot → the durable snapshot cites a generation the pool may
    never have reached: inconsistent metadata.

Recovery rolls back the undo logs (pool open), rebuilds the count from
the table, epoch-bumps the generation, and re-initializes the writer
lock — but trusts the snapshot words as-is, which is what convicts
bug 16 in post-failure validation. The transactional entry reads in
``put``/``delete`` are undo-log protected and therefore whitelisted
(``repro.targets.txkv``), mirroring clevel's PMDK entries.
"""

from ..pmdk.pool import PmemObjPool
from ..pmdk.tx import Transaction
from .base import OperationSpace, Target, TargetState, raw_view

R_TABLE = 0
R_COUNT = 8
R_GEN = 16
R_SNAP_GEN = 24
R_SNAP_COUNT = 32
R_WLOCK = 40
ROOT_SIZE = 64

E_KEY = 0
E_VAL = 8
ENTRY_SIZE = 16
NUM_KEYS = 16

#: Recovery advances the generation to a fresh epoch so stale readers
#: can never mistake post-crash state for pre-crash state.
GEN_EPOCH = 1 << 32


class TxKvOperationSpace(OperationSpace):
    kinds = ("put", "get", "delete", "stat")
    insert_kind = "put"
    key_range = NUM_KEYS
    value_range = 1 << 16


class TxKvInstance:
    """Per-campaign runtime state of one txkv pool."""

    def __init__(self, target, state, view, scheduler):
        self.target = target
        self.state = state
        self.view = view
        self.scheduler = scheduler
        self.objpool = state.extras["objpool"]
        self.root = state.extras["root"]
        self.table = state.extras["table"]

    # ------------------------------------------------------------------
    # helpers

    def _entry(self, key):
        return self.table + (key % NUM_KEYS) * ENTRY_SIZE

    def _tid(self):
        if self.scheduler and self.scheduler.current():
            return self.scheduler.current().tid
        return 0

    def _lock(self):
        """Acquire the persistent writer lock (annotated sync var)."""
        view = self.view
        while True:
            if view.pool.read_u64(self.root + R_WLOCK) == 0:
                ok, _ = view.cas_u64(self.root + R_WLOCK, 0, 1)
                if ok:
                    return
            if self.scheduler is None:
                raise RuntimeError("txkv writer lock stuck outside the "
                                   "scheduler")
            self.scheduler.yield_point("spin", "pm_lock:txkv_writer")

    def _unlock(self):
        self.view.store_u64(self.root + R_WLOCK, 0)

    def _bump_gen(self):
        """Bug 16 write site (txkv.c:144 analog): the generation bump
        happens outside the transaction and is never flushed — the torn
        half of the (count, gen) metadata pair."""
        view = self.view
        gen = view.load_u64(self.root + R_GEN)
        view.store_u64(self.root + R_GEN, gen + 1)

    def _set_count(self, count):
        view = self.view
        view.store_u64(self.root + R_COUNT, count)
        view.persist(self.root + R_COUNT, 8)

    # ------------------------------------------------------------------
    # operations

    def put(self, key, value):
        view = self.view
        entry = self._entry(key)
        self._lock()
        try:
            fresh = int(view.load_u64(entry + E_KEY)) == 0
            with Transaction(self.objpool, view, self._tid()) as tx:
                tx.add_range(entry, ENTRY_SIZE)
                view.store_u64(entry + E_VAL, value)
                view.store_u64(entry + E_KEY, key + 1)
                view.persist(entry, ENTRY_SIZE)
            if fresh:
                self._set_count(int(view.load_u64(self.root + R_COUNT)) + 1)
            self._bump_gen()
            return True
        finally:
            self._unlock()

    def get(self, key):
        view = self.view
        entry = self._entry(key)
        if int(view.load_u64(entry + E_KEY)) != key + 1:
            return None
        return int(view.load_u64(entry + E_VAL))

    def delete(self, key):
        view = self.view
        entry = self._entry(key)
        self._lock()
        try:
            if int(view.load_u64(entry + E_KEY)) != key + 1:
                return False
            with Transaction(self.objpool, view, self._tid()) as tx:
                tx.add_range(entry, ENTRY_SIZE)
                view.store_u64(entry + E_KEY, 0)
                view.store_u64(entry + E_VAL, 0)
                view.persist(entry, ENTRY_SIZE)
            self._set_count(int(view.load_u64(self.root + R_COUNT)) - 1)
            self._bump_gen()
            return True
        finally:
            self._unlock()

    def stat(self):
        """Durable (gen, count) snapshot — bug 16's read + side effect.

        Lock-free by design (stats must not stall writers): the
        generation read (txkv.c:210 analog) can observe a writer's
        unfenced bump, and the snapshot below logs it durably.
        """
        view = self.view
        gen = view.load_u64(self.root + R_GEN)
        count = view.load_u64(self.root + R_COUNT)
        view.ntstore_u64(self.root + R_SNAP_GEN, gen)
        view.ntstore_u64(self.root + R_SNAP_COUNT, count)
        view.sfence()
        return int(gen), int(count)


class TxKvTarget(Target):
    """Extension target: PMDK-transaction KV store (SDK showcase)."""

    NAME = "txkv"
    VERSION = "sdk-1"
    SCOPE = "Key-value store"
    CONCURRENCY = "Lock-based"
    POOL_SIZE = 1 << 20

    def operation_space(self):
        return TxKvOperationSpace()

    def setup(self):
        objpool = PmemObjPool.create("txkv", self.POOL_SIZE)
        root = objpool.root(ROOT_SIZE)
        view = raw_view(objpool.pool)
        table = objpool.allocator.alloc(NUM_KEYS * ENTRY_SIZE)
        view.ntstore_bytes(table, b"\x00" * (NUM_KEYS * ENTRY_SIZE))
        view.ntstore_u64(root + R_TABLE, table)
        view.sfence()
        objpool.pool.memory.persist_all()
        state = TargetState(objpool.pool, allocators=[objpool.allocator],
                            extras={"objpool": objpool, "root": root,
                                    "table": table})
        ann = state.annotations
        ann.pm_sync_var_hint("txkv_writer_lock", 8, 0)
        ann.register_instance("txkv_writer_lock", root + R_WLOCK)
        return state

    def open(self, state, view, scheduler):
        return TxKvInstance(self, state, view, scheduler)

    def exec_op(self, instance, view, op):
        kind = op.get("op")
        key = op.get("key", 0)
        if kind == "put":
            return instance.put(key, op.get("value", 0))
        if kind == "get":
            instance.get(key)
            return True
        if kind == "delete":
            return instance.delete(key)
        if kind == "stat":
            instance.stat()
            return True
        return False

    # ------------------------------------------------------------------
    # recovery: undo rollback + metadata rebuild. The stat snapshot is
    # trusted as-is — the omission that convicts bug 16.

    def recover(self, pool, view):
        objpool = PmemObjPool.attach(pool, view)
        root = pool.read_u64(8)  # OFF_ROOT
        table = pool.read_u64(root + R_TABLE)
        count = 0
        for index in range(NUM_KEYS):
            if pool.read_u64(table + index * ENTRY_SIZE + E_KEY) != 0:
                count += 1
        view.ntstore_u64(root + R_COUNT, count)
        view.ntstore_u64(root + R_GEN,
                         pool.read_u64(root + R_GEN) + GEN_EPOCH)
        view.ntstore_u64(root + R_WLOCK, 0)
        view.sfence()
        self._recovered = (objpool, root, table)
        return self

    def post_recovery_probe(self, pool, view):
        """A put against the recovered pool; completes because recovery
        re-initializes the writer lock (contrast with P-CLHT's bug 2)."""
        objpool, root, table = self._recovered
        state = TargetState(pool, extras={"objpool": objpool, "root": root,
                                          "table": table})
        instance = TxKvInstance(self, state, view, view.scheduler)
        instance.put(0, 1)

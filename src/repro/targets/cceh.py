"""CCEH: cacheline-conscious extendible hashing for PM, with bugs 6-7.

Structure (following the FAST'19 design, simplified): a directory — an
array of segment offsets indexed by the low ``global_depth`` bits of the
key hash — over fixed-size segments with per-segment *persistent* locks
and a local depth. Segments split when full; the directory doubles when a
max-depth segment splits.

Seeded bugs (Table 2):

6. **Sync** — segment locks live in PM (``CCEH.h:86``) and recovery never
   releases them → post-crash hang on the locked segment.
7. **Intra** — directory doubling stores the new capacity without a flush
   (``CCEH.h:165``), reads it back (``CCEH.cpp:171``) and derives the new
   directory's mask/layout from the dirty value → the freshly allocated
   directory is unreachable after a crash: PM leakage.

Everything else follows correct flush discipline (directory entry updates
are non-temporal), so — like the paper — CCEH produces inter-thread
*candidates* (lock-free readers observing unflushed keys/values) but no
confirmed inter-thread inconsistency.
"""

from ..pmdk.pool import PmemObjPool
from .base import OperationSpace, Target, TargetState, raw_view

R_DIR = 0
R_DIR_LOCK = 8          # annotated but never taken by these workloads
ROOT_SIZE = 64

D_CAPACITY = 0
D_GLOBAL_DEPTH = 8
D_MASK = 16
D_HDR = 64              # entries (u64 segment offsets) follow

S_LOCAL_DEPTH = 0
S_LOCK = 8
S_PATTERN = 16
S_HDR = 64
SEG_SLOTS = 8           # (key, value) pairs
SEG_SIZE = S_HDR + SEG_SLOTS * 16

INITIAL_DEPTH = 1
MAX_GLOBAL_DEPTH = 5


def _seg_lock_acquire(view, scheduler, addr):
    """Acquire a persistent segment lock (CCEH.h:86 analog)."""
    while True:
        if view.pool.read_u64(int(addr)) == 0:
            ok, _ = view.cas_u64(addr, 0, 1)
            if ok:
                return
        if scheduler is None:
            raise RuntimeError("persistent segment lock stuck outside the "
                               "scheduler (leaked by a previous crash?)")
        scheduler.yield_point("spin", "pm_lock:segment")


def _seg_lock_release(view, addr):
    view.store_u64(addr, 0)


class CcehInstance:
    """Per-campaign runtime state of one CCEH pool."""

    def __init__(self, target, state, view, scheduler):
        self.target = target
        self.state = state
        self.view = view
        self.scheduler = scheduler
        self.objpool = state.extras["objpool"]
        self.root = state.extras["root"]

    # ------------------------------------------------------------------
    # helpers

    def _dir(self):
        return int(self.view.load_u64(self.root + R_DIR))

    def _entry_addr(self, directory, index):
        return directory + D_HDR + index * 8

    def _segment_for(self, key):
        directory = self._dir()
        capacity = int(self.view.load_u64(directory + D_CAPACITY))
        index = key & (capacity - 1)
        seg = int(self.view.load_u64(self._entry_addr(directory, index)))
        return directory, capacity, index, seg

    def _alloc_segment(self, local_depth, pattern):
        seg = self.objpool.allocator.alloc(SEG_SIZE)
        view = self.view
        view.ntstore_u64(seg + S_LOCAL_DEPTH, local_depth)
        view.ntstore_u64(seg + S_LOCK, 0)
        view.ntstore_u64(seg + S_PATTERN, pattern)
        view.ntstore_bytes(seg + S_HDR, b"\x00" * (SEG_SLOTS * 16))
        view.sfence()
        self.state.annotations.register_instance("segment_lock",
                                                 seg + S_LOCK)
        return seg

    # ------------------------------------------------------------------
    # operations

    def insert(self, key, value):
        view = self.view
        for _attempt in range(MAX_GLOBAL_DEPTH + 2):
            directory, capacity, index, seg = self._segment_for(key)
            _seg_lock_acquire(view, self.scheduler, seg + S_LOCK)
            # Re-check: a concurrent split may have moved the key's slot.
            now_dir, now_cap, now_index, now_seg = self._segment_for(key)
            if now_seg != seg:
                _seg_lock_release(view, seg + S_LOCK)
                continue
            free = None
            for slot in range(SEG_SLOTS):
                kaddr = seg + S_HDR + slot * 16
                slot_key = view.load_u64(kaddr)
                if int(slot_key) == key + 1:
                    view.store_u64(kaddr + 8, value)
                    view.persist(kaddr + 8, 8)
                    _seg_lock_release(view, seg + S_LOCK)
                    return True
                if int(slot_key) == 0 and free is None:
                    free = slot
            if free is not None:
                kaddr = seg + S_HDR + free * 16
                view.store_u64(kaddr + 8, value)
                view.store_u64(kaddr, key + 1)
                view.persist(kaddr, 16)
                _seg_lock_release(view, seg + S_LOCK)
                return True
            split_ok = self._split(directory, seg)
            _seg_lock_release(view, seg + S_LOCK)
            if not split_ok:
                return False
        return False

    def get(self, key):
        """Lock-free probe (dirty key/value reads are candidates only)."""
        _directory, _capacity, _index, seg = self._segment_for(key)
        view = self.view
        for slot in range(SEG_SLOTS):
            kaddr = seg + S_HDR + slot * 16
            if int(view.load_u64(kaddr)) == key + 1:
                return int(view.load_u64(kaddr + 8))
        return None

    def delete(self, key):
        view = self.view
        _directory, _capacity, _index, seg = self._segment_for(key)
        _seg_lock_acquire(view, self.scheduler, seg + S_LOCK)
        found = False
        for slot in range(SEG_SLOTS):
            kaddr = seg + S_HDR + slot * 16
            if int(view.load_u64(kaddr)) == key + 1:
                view.ntstore_u64(kaddr, 0)
                view.sfence()
                found = True
                break
        _seg_lock_release(view, seg + S_LOCK)
        return found

    # ------------------------------------------------------------------
    # split and directory doubling (bug 7 lives in the doubling)

    def _split(self, directory, seg):
        view = self.view
        local_depth = int(view.load_u64(seg + S_LOCAL_DEPTH))
        global_depth = int(view.load_u64(directory + D_GLOBAL_DEPTH))
        if local_depth == global_depth:
            if global_depth >= MAX_GLOBAL_DEPTH:
                return False
            directory = self._double_directory(directory)
            global_depth += 1
        pattern = int(view.load_u64(seg + S_PATTERN))
        new_pattern = pattern | (1 << local_depth)
        sibling = self._alloc_segment(local_depth + 1, new_pattern)
        # Move the keys whose next hash bit is set into the sibling.
        for slot in range(SEG_SLOTS):
            kaddr = seg + S_HDR + slot * 16
            slot_key = int(view.load_u64(kaddr))
            if slot_key == 0:
                continue
            if (slot_key - 1) & (1 << local_depth):
                value = view.load_u64(kaddr + 8)
                daddr = sibling + S_HDR + slot * 16
                view.ntstore_u64(daddr + 8, value)
                view.ntstore_u64(daddr, slot_key)
                view.ntstore_u64(kaddr, 0)
        view.ntstore_u64(seg + S_LOCAL_DEPTH, local_depth + 1)
        view.sfence()
        # Redirect directory entries; non-temporal, so readers never see a
        # dirty directory entry (CCEH's correct flush discipline).
        capacity = int(view.load_u64(directory + D_CAPACITY))
        for index in range(capacity):
            low_bits = index & ((1 << (local_depth + 1)) - 1)
            if low_bits == new_pattern:
                view.ntstore_u64(self._entry_addr(directory, index), sibling)
        view.sfence()
        return True

    def _double_directory(self, directory):
        view = self.view
        capacity = int(view.load_u64(directory + D_CAPACITY))
        global_depth = int(view.load_u64(directory + D_GLOBAL_DEPTH))
        new_capacity = capacity * 2
        new_dir = self.objpool.allocator.alloc(D_HDR + new_capacity * 8)
        # Bug 7 write site (CCEH.h:165 analog): capacity stored, unflushed.
        view.store_u64(new_dir + D_CAPACITY, new_capacity)
        view.store_u64(new_dir + D_GLOBAL_DEPTH, global_depth + 1)
        # CCEH.cpp:171 analog: rereads its own unflushed capacity and
        # derives the segment-array layout from the dirty value.
        dirty_capacity = view.load_u64(new_dir + D_CAPACITY)
        view.store_u64(new_dir + D_MASK, dirty_capacity - 1)
        for index in range(new_capacity):
            seg = view.load_u64(self._entry_addr(directory,
                                                 index % capacity))
            view.ntstore_u64(self._entry_addr(new_dir, index), seg)
        view.persist(new_dir, D_HDR)
        view.sfence()
        view.ntstore_u64(self.root + R_DIR, new_dir)
        view.sfence()
        return new_dir


class CcehTarget(Target):
    """Table 1 row: CCEH, version 46771e3, extendible hashing, lock-based."""

    NAME = "CCEH"
    VERSION = "46771e3"
    SCOPE = "Extendible hashing"
    CONCURRENCY = "Lock-based"
    POOL_SIZE = 1 << 20

    def operation_space(self):
        space = OperationSpace()
        space.kinds = ("put", "get", "delete")
        return space

    def setup(self):
        objpool = PmemObjPool.create("cceh", self.POOL_SIZE)
        root = objpool.root(ROOT_SIZE)
        view = raw_view(objpool.pool)
        capacity = 1 << INITIAL_DEPTH
        directory = objpool.allocator.alloc(D_HDR + capacity * 8)
        view.ntstore_u64(directory + D_CAPACITY, capacity)
        view.ntstore_u64(directory + D_GLOBAL_DEPTH, INITIAL_DEPTH)
        view.ntstore_u64(directory + D_MASK, capacity - 1)
        state = TargetState(objpool.pool, allocators=[objpool.allocator],
                            extras={"objpool": objpool, "root": root})
        ann = state.annotations
        ann.pm_sync_var_hint("segment_lock", 8, 0)
        ann.pm_sync_var_hint("dir_lock", 8, 0)
        ann.register_instance("dir_lock", root + R_DIR_LOCK)
        instance = CcehInstance(self, state, view, None)
        for pattern in range(capacity):
            seg = instance._alloc_segment(INITIAL_DEPTH, pattern)
            view.ntstore_u64(directory + D_HDR + pattern * 8, seg)
        view.ntstore_u64(root + R_DIR, directory)
        view.sfence()
        objpool.pool.memory.persist_all()
        return state

    def open(self, state, view, scheduler):
        return CcehInstance(self, state, view, scheduler)

    def exec_op(self, instance, view, op):
        kind = op.get("op")
        key = op.get("key", 0)
        if kind == "put":
            return instance.insert(key, op.get("value", 0))
        if kind == "get":
            instance.get(key)
            return True
        if kind == "delete":
            return instance.delete(key)
        return False

    # ------------------------------------------------------------------
    # recovery: walks the directory but never releases segment locks
    # (bug 6); the dir_lock is a DRAM-era leftover and is re-initialized.

    def recover(self, pool, view):
        objpool = PmemObjPool.attach(pool, view)
        root = pool.read_u64(8)  # OFF_ROOT
        view.ntstore_u64(root + R_DIR_LOCK, 0)
        view.sfence()
        directory = pool.read_u64(root + R_DIR)
        capacity = pool.read_u64(directory + D_CAPACITY)
        # Sanity walk of the directory (reads only — segment locks stay).
        for index in range(min(capacity, 64)):
            pool.read_u64(directory + D_HDR + index * 8)
        self._recovered = (objpool, root)
        return self

    def post_recovery_probe(self, pool, view):
        objpool, root = self._recovered
        state = TargetState(pool, extras={"objpool": objpool, "root": root})
        instance = CcehInstance(self, state, view, view.scheduler)
        instance.insert(0, 1)

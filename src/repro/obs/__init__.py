"""Observability: structured tracing, metrics, and profiling hooks.

The fuzzing engine, the parallel service, and the post-failure validator
all accept an optional :class:`Tracer` (typed JSONL span/event records)
and an optional :class:`Metrics` registry (counters, gauges, histograms)
that are threaded down into the hot paths — PM access hooks, the
scheduler step loop, coverage merges, priority-queue pops, validation
verdicts. Both default to *null* implementations whose cost on the hot
path is a single attribute check, so runs without observability pay
(almost) nothing; the overhead guard in ``tests/obs/test_overhead.py``
pins that cost below 5%.

``repro stats <file.jsonl>`` summarizes any trace or metrics file the
layer emits (see :mod:`repro.obs.stats`).
"""

from .metrics import Counter, Gauge, Histogram, Metrics, load_metrics
from .profiling import RunProfiler, merge_profiles
from .stats import render_stats, summarize_path, summarize_records
from .tracer import (
    EVENT_TYPES,
    NULL_TRACER,
    SCHEMA_VERSION,
    NullTracer,
    Tracer,
    read_trace,
    validate_record,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "EVENT_TYPES",
    "SCHEMA_VERSION",
    "read_trace",
    "validate_record",
    "Metrics",
    "Counter",
    "Gauge",
    "Histogram",
    "load_metrics",
    "RunProfiler",
    "merge_profiles",
    "summarize_path",
    "summarize_records",
    "render_stats",
]

"""Metrics registry: counters, gauges, histograms.

Instruments are created lazily through the registry
(``metrics.counter("pm.loads")``) and cached by name, so hot paths can
bind an instrument once (e.g. in a constructor) and then pay only a
method call per update. The registry serializes to the same JSONL
convention as the tracer: a ``metrics_header`` line followed by one
``metric`` record per instrument, parseable by ``repro stats``.
"""

import bisect
import json

from .tracer import SCHEMA_VERSION

#: Default histogram bucket upper bounds (values in arbitrary units;
#: chosen to cover both sub-second durations and step/campaign counts).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100,
                   500, 1000, 5000, 10000, 50000, 100000)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        self.value += n

    def to_dict(self):
        return {"kind": self.kind, "name": self.name, "value": self.value}

    def __repr__(self):
        return "<Counter %s=%d>" % (self.name, self.value)


class Gauge:
    """A value that goes up and down (e.g. queue depth)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, n=1):
        self.value += n

    def dec(self, n=1):
        self.value -= n

    def to_dict(self):
        return {"kind": self.kind, "name": self.name, "value": self.value}

    def __repr__(self):
        return "<Gauge %s=%r>" % (self.name, self.value)


class Histogram:
    """A distribution: count, sum, and cumulative-style bucket counts.

    ``buckets[i]`` counts observations ``<= bounds[i]``; one overflow
    slot counts the rest. Mean is recoverable as ``sum / count``.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total")
    kind = "histogram"

    def __init__(self, name, bounds=DEFAULT_BUCKETS):
        self.name = name
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value):
        self.count += 1
        self.total += value
        self.buckets[bisect.bisect_left(self.bounds, value)] += 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def to_dict(self):
        return {"kind": self.kind, "name": self.name, "count": self.count,
                "sum": self.total, "bounds": list(self.bounds),
                "buckets": list(self.buckets)}

    def __repr__(self):
        return "<Histogram %s n=%d mean=%.4g>" % (self.name, self.count,
                                                  self.mean)


class Metrics:
    """Name-keyed registry of instruments."""

    def __init__(self):
        self._instruments = {}

    def _get(self, name, factory, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = factory()
        elif instrument.kind != kind:
            raise TypeError("metric %r is a %s, not a %s"
                            % (name, instrument.kind, kind))
        return instrument

    def counter(self, name):
        return self._get(name, lambda: Counter(name), "counter")

    def gauge(self, name):
        return self._get(name, lambda: Gauge(name), "gauge")

    def histogram(self, name, bounds=DEFAULT_BUCKETS):
        return self._get(name, lambda: Histogram(name, bounds), "histogram")

    def __len__(self):
        return len(self._instruments)

    def __contains__(self, name):
        return name in self._instruments

    def __iter__(self):
        return iter(self._instruments.values())

    def value(self, name, default=None):
        """Current value of a counter/gauge (None-safe convenience)."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        return getattr(instrument, "value", default)

    # ------------------------------------------------------------------
    # serialization

    def snapshot(self):
        """Plain dict of every instrument, sorted by name."""
        return {name: self._instruments[name].to_dict()
                for name in sorted(self._instruments)}

    def records(self):
        """JSONL-ready record dicts (header first)."""
        yield {"type": "metrics_header", "schema": SCHEMA_VERSION}
        for name in sorted(self._instruments):
            record = {"type": "metric"}
            record.update(self._instruments[name].to_dict())
            yield record

    def dump(self, sink):
        """Write the registry as JSONL to a path or file-like sink."""
        if hasattr(sink, "write"):
            for record in self.records():
                sink.write(json.dumps(record, sort_keys=True) + "\n")
            return sink
        with open(sink, "w") as handle:
            self.dump(handle)
        return sink

    # ------------------------------------------------------------------
    # aggregation

    def merge(self, other):
        """Fold another registry in (counters add, gauges take the other
        side's value, histograms merge element-wise)."""
        for instrument in other:
            if instrument.kind == "counter":
                self.counter(instrument.name).inc(instrument.value)
            elif instrument.kind == "gauge":
                self.gauge(instrument.name).set(instrument.value)
            else:
                mine = self.histogram(instrument.name, instrument.bounds)
                if mine.bounds != instrument.bounds:
                    raise ValueError("histogram %r bucket bounds differ"
                                     % (instrument.name,))
                mine.count += instrument.count
                mine.total += instrument.total
                for index, count in enumerate(instrument.buckets):
                    mine.buckets[index] += count
        return self


def load_metrics(path):
    """Parse a JSONL metrics dump back into a :class:`Metrics` registry."""
    metrics = Metrics()
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            rtype = record.get("type")
            if rtype == "metrics_header":
                if record.get("schema") != SCHEMA_VERSION:
                    raise ValueError("unsupported metrics schema %r"
                                     % (record.get("schema"),))
                continue
            if rtype != "metric":
                raise ValueError("not a metrics record: %r" % (record,))
            kind, name = record["kind"], record["name"]
            if kind == "counter":
                metrics.counter(name).inc(record["value"])
            elif kind == "gauge":
                metrics.gauge(name).set(record["value"])
            elif kind == "histogram":
                histogram = metrics.histogram(name, tuple(record["bounds"]))
                histogram.count = record["count"]
                histogram.total = record["sum"]
                histogram.buckets = list(record["buckets"])
            else:
                raise ValueError("unknown metric kind %r" % (kind,))
    return metrics

"""``repro stats``: summarize trace / metrics JSONL files.

Consumes anything the observability layer writes — a ``--trace-out``
event stream, a ``--metrics-out`` registry dump, or a file mixing both
record shapes — and reduces it to the quantities the paper's evaluation
argues with: coverage growth, candidate discovery rate, and validation
verdict ratios.
"""

import json

from .tracer import EVENT_TYPES, SCHEMA_VERSION, validate_record


def _load_lines(path, torn_counter=None):
    """Yield JSONL records; tolerate a torn *tail* line.

    A file whose final line is half-written is the normal state of a
    ``--trace-out``/``--metrics-out`` sink after SIGKILL — the process
    died mid-append.  Such tail lines are counted into ``torn_counter``
    (a one-element list) and skipped, *provided* at least one record
    decoded before them; a file that yields nothing but garbage is still
    an error, not a torn trace.
    """
    decoded = 0
    pending = None  # (number, exc) of a bad line awaiting a successor
    with open(path) as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            if pending is not None:
                # The bad line has well-formed lines after it: not a
                # torn tail, genuinely corrupt.
                raise ValueError("%s:%d: not JSON: %s" % pending)
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                pending = (path, number, exc)
                continue
            decoded += 1
            yield record
    if pending is not None:
        if not decoded:
            raise ValueError("%s:%d: not JSON: %s" % pending)
        if torn_counter is not None:
            torn_counter[0] += 1


def summarize_records(records):
    """Reduce an iterable of trace/metric records to a summary dict."""
    summary = {
        "records": 0,
        "torn_lines": 0,
        "events_by_type": {},
        "runs": 0,
        "campaigns": 0,
        "duration_s": 0.0,
        "coverage": None,
        "candidates": 0,
        "inconsistencies": 0,
        "candidate_rate": None,
        "verdicts": {},
        "verdict_ratios": {},
        "interleavings": 0,
        "seeds": 0,
        "workers": {},
        "metrics": {},
    }
    first_cov = last_cov = None
    for record in records:
        rtype = record.get("type")
        if rtype in EVENT_TYPES:
            validate_record(record)
        elif rtype not in ("metrics_header", "metric"):
            raise ValueError("unknown record type %r" % (rtype,))
        summary["records"] += 1
        by_type = summary["events_by_type"]
        by_type[rtype] = by_type.get(rtype, 0) + 1
        if rtype == "run_start":
            summary["runs"] += 1
        elif rtype == "run_end":
            run = record.get("summary", {})
            summary["campaigns"] += run.get("campaigns", 0)
            summary["duration_s"] += record.get("duration_s", 0.0)
        elif rtype == "seed_start":
            summary["seeds"] += 1
        elif rtype == "interleaving":
            summary["interleavings"] += 1
        elif rtype == "campaign":
            point = (record.get("branch_total", 0),
                     record.get("alias_total", 0))
            if first_cov is None:
                first_cov = point
            last_cov = point
        elif rtype == "candidate":
            summary["candidates"] += 1
        elif rtype == "inconsistency":
            summary["inconsistencies"] += 1
        elif rtype == "verdict":
            verdict = record.get("verdict", "?")
            summary["verdicts"][verdict] = \
                summary["verdicts"].get(verdict, 0) + 1
        elif rtype == "worker":
            status = record.get("status", "?")
            summary["workers"][status] = \
                summary["workers"].get(status, 0) + 1
        elif rtype == "metric":
            summary["metrics"][record["name"]] = {
                key: value for key, value in record.items()
                if key not in ("type", "name")}
        elif rtype == "metrics_header":
            if record.get("schema") != SCHEMA_VERSION:
                raise ValueError("unsupported metrics schema %r"
                                 % (record.get("schema"),))
        elif rtype == "metrics_snapshot":
            for name, instrument in record.get("metrics", {}).items():
                summary["metrics"][name] = {
                    key: value for key, value in instrument.items()
                    if key != "name"}
    if first_cov is not None:
        summary["coverage"] = {
            "branch_first": first_cov[0], "branch_last": last_cov[0],
            "branch_growth": last_cov[0] - first_cov[0],
            "alias_first": first_cov[1], "alias_last": last_cov[1],
            "alias_growth": last_cov[1] - first_cov[1],
        }
    if summary["campaigns"]:
        summary["candidate_rate"] = round(
            summary["candidates"] / summary["campaigns"], 4)
    total_verdicts = sum(summary["verdicts"].values())
    if total_verdicts:
        summary["verdict_ratios"] = {
            verdict: round(count / total_verdicts, 4)
            for verdict, count in sorted(summary["verdicts"].items())}
    return summary


def summarize_path(path):
    """Summarize one JSONL file written by the observability layer.

    A torn tail line (the file's writer was SIGKILLed mid-append) is
    skipped and surfaced as ``torn_lines`` in the summary instead of
    failing the whole summarization.
    """
    torn = [0]
    summary = summarize_records(_load_lines(path, torn_counter=torn))
    summary["torn_lines"] = torn[0]
    return summary


def _format_metric(name, data):
    if data.get("kind") == "histogram":
        count = data.get("count", 0)
        mean = data.get("sum", 0.0) / count if count else 0.0
        return "  %-32s histogram n=%d mean=%.4g" % (name, count, mean)
    return "  %-32s %s %s" % (name, data.get("kind", "?"),
                              data.get("value"))


def render_stats(summary):
    """Human-readable report for one summary dict."""
    lines = ["observability stats (%d records)" % summary["records"]]
    if summary.get("torn_lines"):
        lines.append("torn tail line(s) skipped: %d (writer was killed "
                     "mid-append)" % summary["torn_lines"])
    events = summary["events_by_type"]
    if events:
        lines.append("record types: " + ", ".join(
            "%s=%d" % (rtype, count)
            for rtype, count in sorted(events.items())))
    if summary["runs"]:
        lines.append("runs: %d  campaigns: %d  duration: %.2fs"
                     % (summary["runs"], summary["campaigns"],
                        summary["duration_s"]))
    coverage = summary["coverage"]
    if coverage is not None:
        lines.append("coverage growth: branch %d -> %d (+%d), "
                     "alias %d -> %d (+%d)"
                     % (coverage["branch_first"], coverage["branch_last"],
                        coverage["branch_growth"], coverage["alias_first"],
                        coverage["alias_last"], coverage["alias_growth"]))
    if summary["candidates"] or summary["inconsistencies"]:
        rate = "" if summary["candidate_rate"] is None else \
            " (%.4f per campaign)" % summary["candidate_rate"]
        lines.append("candidates: %d%s  confirmed inconsistencies: %d"
                     % (summary["candidates"], rate,
                        summary["inconsistencies"]))
    if summary["verdicts"]:
        lines.append("verdicts: " + ", ".join(
            "%s=%d (%.0f%%)" % (verdict, count,
                                100 * summary["verdict_ratios"][verdict])
            for verdict, count in sorted(summary["verdicts"].items())))
    if summary["workers"]:
        lines.append("worker attempts: " + ", ".join(
            "%s=%d" % (status, count)
            for status, count in sorted(summary["workers"].items())))
    if summary["metrics"]:
        lines.append("metrics (%d):" % len(summary["metrics"]))
        lines.extend(_format_metric(name, data)
                     for name, data in sorted(summary["metrics"].items()))
    return "\n".join(lines)

"""Profiling hooks: per-phase wall time and execs/sec sampling.

The engine owns one :class:`RunProfiler` per session (unless profiling
is disabled) and stores its :meth:`to_dict` output on
``RunResult.profile`` — the single source of truth benchmarks read
throughput numbers from. Phases are coarse engine stages (state
provision, campaign execution, feedback harvesting), *not* per-access
hooks, so the profiler's own cost is a few monotonic-clock reads per
campaign.
"""

import time


class _Phase:
    __slots__ = ("profiler", "name", "start")

    def __init__(self, profiler, name):
        self.profiler = profiler
        self.name = name

    def __enter__(self):
        self.start = time.monotonic()
        return self

    def __exit__(self, *exc):
        elapsed = time.monotonic() - self.start
        times = self.profiler.phase_seconds
        times[self.name] = times.get(self.name, 0.0) + elapsed
        counts = self.profiler.phase_counts
        counts[self.name] = counts.get(self.name, 0) + 1
        return False


class RunProfiler:
    """Accumulates phase wall times and (elapsed, execs) samples.

    Args:
        sample_interval: Minimum seconds between consecutive execs/sec
            samples; the first and last samples are always kept.
    """

    def __init__(self, sample_interval=0.25):
        self.sample_interval = sample_interval
        self.phase_seconds = {}
        self.phase_counts = {}
        self.samples = []
        self._t0 = time.monotonic()
        self._last_sample = None

    def phase(self, name):
        """Context manager timing one engine phase occurrence."""
        return _Phase(self, name)

    def sample(self, executions):
        """Record an (elapsed_s, executions) point, rate-limited."""
        now = time.monotonic() - self._t0
        if self._last_sample is not None and \
                now - self._last_sample < self.sample_interval:
            return
        self._last_sample = now
        self.samples.append((round(now, 6), executions))

    def to_dict(self, duration, executions):
        """Freeze into the plain dict stored on ``RunResult.profile``."""
        if not self.samples or self.samples[-1][1] != executions:
            self.samples.append((round(time.monotonic() - self._t0, 6),
                                 executions))
        return {
            "duration_s": round(duration, 6),
            "executions": executions,
            "execs_per_sec": round(executions / duration, 3)
            if duration > 0 else 0.0,
            "phase_seconds": {name: round(seconds, 6) for name, seconds
                              in sorted(self.phase_seconds.items())},
            "phase_counts": dict(sorted(self.phase_counts.items())),
            "samples": [list(point) for point in self.samples],
        }


def merge_profiles(base, other):
    """Combine two ``RunResult.profile`` dicts (either may be empty).

    Durations and executions add; phase timings add per phase; the other
    side's samples are appended with its duration offset applied, mirroring
    how ``RunResult.merge`` concatenates coverage timelines.
    """
    if not other:
        return dict(base) if base else {}
    if not base:
        return dict(other)
    offset = base.get("duration_s", 0.0)
    duration = offset + other.get("duration_s", 0.0)
    executions = base.get("executions", 0) + other.get("executions", 0)
    phase_seconds = dict(base.get("phase_seconds", {}))
    for name, seconds in other.get("phase_seconds", {}).items():
        phase_seconds[name] = round(phase_seconds.get(name, 0.0) + seconds, 6)
    phase_counts = dict(base.get("phase_counts", {}))
    for name, count in other.get("phase_counts", {}).items():
        phase_counts[name] = phase_counts.get(name, 0) + count
    samples = [list(point) for point in base.get("samples", [])]
    samples.extend([round(t + offset, 6), n]
                   for t, n in other.get("samples", []))
    return {
        "duration_s": round(duration, 6),
        "executions": executions,
        "execs_per_sec": round(executions / duration, 3)
        if duration > 0 else 0.0,
        "phase_seconds": dict(sorted(phase_seconds.items())),
        "phase_counts": dict(sorted(phase_counts.items())),
        "samples": samples,
    }

"""Typed JSONL tracing with a null-tracer fast path.

A trace is a stream of JSON objects, one per line. Every record carries:

* ``type`` — one of :data:`EVENT_TYPES`;
* ``t`` — seconds since the tracer was created (monotonic clock);
* ``seq`` — a per-tracer monotonically increasing sequence number.

plus event-specific fields. The first record is always a
``trace_header`` carrying :data:`SCHEMA_VERSION`, so consumers can
reject traces written by an incompatible layer.

:class:`NullTracer` is the disabled implementation: ``emit`` and
``span`` are no-ops, ``enabled`` is False so callers can skip building
event payloads entirely. Production code should test ``tracer.enabled``
before assembling expensive fields and otherwise just call ``emit``.
"""

import json
import time

#: Bump when a record's meaning or required fields change.
SCHEMA_VERSION = 1

#: Every record type the layer may emit.
EVENT_TYPES = frozenset({
    "trace_header",      # first line: schema version
    "run_start",         # one engine session (or parallel service) begins
    "run_end",           # ... ends; carries the result summary
    "seed_start",        # seed tier: a new seed enters the loop
    "static_hints",      # pmlint pre-seeding: hint count injected per run
    "interleaving",      # interleaving tier: a queue entry becomes sync points
    "campaign",          # one execution finished (coverage deltas attached)
    "corpus_load",       # seed corpus restored from a --corpus-dir
    "corpus_seed",       # an evolved seed settled (retained or dropped)
    "candidate",         # new unique inconsistency candidate
    "inconsistency",     # new unique confirmed inconsistency
    "verdict",           # post-failure validation verdict
    "validate_drain",    # deferred validation queue drained (cache stats)
    "validate_upgrade",  # a PENDING record received a duplicate's image
    "worker",            # parallel service absorbed one worker attempt
    "session_checkpoint",  # durable session: merged checkpoint committed
    "session_resume",    # durable session: resumed from journal+checkpoint
    "replay_start",      # repro replay: one bundle re-execution begins
    "replay_divergence", # ... the schedule diverged (first mismatch)
    "replay_end",        # ... ends; carries the reproduction verdict
    "shrink_step",       # repro shrink: one ddmin candidate replayed
    "shrink_done",       # ... minimization finished (size summary)
    "span_begin",        # explicit span (paired with span_end)
    "span_end",
    "metrics_snapshot",  # embedded metrics dump
})

#: Fields every record must carry.
REQUIRED_FIELDS = ("type", "t", "seq")


def _jsonable(value):
    """Best-effort conversion of event field values to JSON-safe types."""
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        # covers tainted-int subclasses too: collapse to the plain value
        return int(value) if isinstance(value, int) else float(value)
    return str(value)


class _NullSpan:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The do-nothing tracer: hot paths pay one truthiness check."""

    enabled = False

    def emit(self, event_type, **fields):
        """Discard the event."""

    def span(self, name, **fields):
        """Return a no-op context manager."""
        return _NULL_SPAN

    def flush(self):
        pass

    def close(self):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


#: Shared null instance — the default everywhere a tracer is accepted.
NULL_TRACER = NullTracer()


class _Span:
    __slots__ = ("tracer", "name", "fields", "start")

    def __init__(self, tracer, name, fields):
        self.tracer = tracer
        self.name = name
        self.fields = fields

    def __enter__(self):
        self.start = time.monotonic()
        self.tracer.emit("span_begin", name=self.name, **self.fields)
        return self

    def __exit__(self, *exc):
        self.tracer.emit("span_end", name=self.name,
                         duration_s=round(time.monotonic() - self.start, 6),
                         **self.fields)
        return False


class Tracer(NullTracer):
    """JSONL tracer writing to a path or a file-like sink.

    Args:
        sink: A filesystem path (opened for writing, closed by
            :meth:`close`) or any object with ``write(str)`` — e.g. an
            ``io.StringIO`` in tests.
    """

    enabled = True

    def __init__(self, sink):
        self._t0 = time.monotonic()
        self._seq = 0
        if hasattr(sink, "write"):
            self._handle = sink
            self._owns_handle = False
        else:
            self._handle = open(sink, "w")
            self._owns_handle = True
        self.emit("trace_header", schema=SCHEMA_VERSION)

    def emit(self, event_type, **fields):
        """Write one typed record; unknown types are a programming error."""
        if event_type not in EVENT_TYPES:
            raise ValueError("unknown trace event type %r" % (event_type,))
        record = {"type": event_type,
                  "t": round(time.monotonic() - self._t0, 6),
                  "seq": self._seq}
        for key, value in fields.items():
            record[key] = _jsonable(value)
        self._seq += 1
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    def span(self, name, **fields):
        """Context manager emitting paired span_begin/span_end records."""
        return _Span(self, name, fields)

    def flush(self):
        flush = getattr(self._handle, "flush", None)
        if flush is not None:
            flush()

    def close(self):
        if self._handle is None:
            return
        self.flush()
        if self._owns_handle:
            self._handle.close()
        self._handle = None

    def emit_metrics(self, metrics):
        """Embed a metrics snapshot into the trace."""
        self.emit("metrics_snapshot", metrics=metrics.snapshot())


# ----------------------------------------------------------------------
# consumption helpers

def validate_record(record):
    """Raise ValueError if ``record`` is not a schema-valid trace record."""
    if not isinstance(record, dict):
        raise ValueError("trace record must be an object: %r" % (record,))
    for field in REQUIRED_FIELDS:
        if field not in record:
            raise ValueError("trace record missing %r: %r" % (field, record))
    if record["type"] not in EVENT_TYPES:
        raise ValueError("unknown trace record type %r" % (record["type"],))
    if record["type"] == "trace_header" and \
            record.get("schema") != SCHEMA_VERSION:
        raise ValueError("unsupported trace schema %r (want %d)"
                         % (record.get("schema"), SCHEMA_VERSION))
    return record


def read_trace(source, validate=True):
    """Yield records from a JSONL trace path or iterable of lines."""
    if isinstance(source, str):
        with open(source) as handle:
            yield from read_trace(handle, validate=validate)
        return
    for line in source:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if validate and record.get("type") in EVENT_TYPES:
            validate_record(record)
        yield record

"""Mini-PMDK pool management (the ``libpmemobj`` substitute).

A :class:`PmemObjPool` lays out a pool header, a durable allocation
registry, undo-log lanes, and a heap, mimicking what ``pmemobj_create``
does. The initialization deliberately walks every registry slot and lane
with individual persisted stores — the "expensive PM pool initialization
in libpmemobj" that §5's in-memory checkpoints amortize (Figure 10).

``pmem_map_file`` is the ``libpmem`` path: a thin wrapper over the raw
pool with no initialization cost, which is why checkpoints do not help
memcached-pmem (§6.5).
"""

import struct

from ..pmem.allocator import PersistentAllocator
from ..pmem.errors import PoolError
from ..pmem.pool import PmemPool

_U64 = struct.Struct("<Q")

MAGIC = 0x504D444B5245504F  # "PMDKREPO"

OFF_MAGIC = 0x00
OFF_ROOT = 0x08
OFF_ROOT_SIZE = 0x10
REGISTRY_START = 0x40
REGISTRY_SLOTS = 1024
REGISTRY_BYTES = REGISTRY_SLOTS * 16
LANES_START = REGISTRY_START + REGISTRY_BYTES
LANE_COUNT = 8
LANE_ENTRIES = 64
LANE_ENTRY_BYTES = 8 + 8 + 64        # addr, size, data (<= 64 bytes)
LANE_HEADER_BYTES = 16               # active flag, entry count
LANE_BYTES = LANE_HEADER_BYTES + LANE_ENTRIES * LANE_ENTRY_BYTES
HEAP_START = ((LANES_START + LANE_COUNT * LANE_BYTES + 63) // 64) * 64


def pmem_map_file(name, size):
    """libpmem-style mapping: raw pool, no object-store initialization."""
    return PmemPool(name, size)


class PmemObjPool:
    """A libpmemobj-style object pool over simulated PM.

    Use :meth:`create` for a fresh pool or :meth:`open_from_image` to run
    recovery (undo-log rollback) on a crash image.
    """

    def __init__(self, pool, allocator):
        self.pool = pool
        self.allocator = allocator

    # ------------------------------------------------------------------
    # lifecycle

    @classmethod
    def create(cls, name, size):
        """Format a new pool; deliberately slot-by-slot, like the real thing."""
        if size <= HEAP_START + 64:
            raise PoolError("pool %r too small for pmemobj layout" % name)
        pool = PmemPool(name, size)
        mem = pool.memory
        mem.store(OFF_MAGIC, _U64.pack(MAGIC), None, "pmdk.create", ntstore=True)
        mem.store(OFF_ROOT, _U64.pack(0), None, "pmdk.create", ntstore=True)
        mem.store(OFF_ROOT_SIZE, _U64.pack(0), None, "pmdk.create", ntstore=True)
        for slot in range(REGISTRY_SLOTS):
            base = REGISTRY_START + slot * 16
            mem.store(base, b"\x00" * 16, None, "pmdk.create", ntstore=True)
        for lane in range(LANE_COUNT):
            base = LANES_START + lane * LANE_BYTES
            mem.store(base, _U64.pack(0), None, "pmdk.create", ntstore=True)
            mem.store(base + 8, _U64.pack(0), None, "pmdk.create", ntstore=True)
        allocator = PersistentAllocator(
            pool, HEAP_START, pool.size,
            registry_start=REGISTRY_START, registry_slots=REGISTRY_SLOTS,
        )
        return cls(pool, allocator)

    @classmethod
    def open_from_image(cls, name, image, view=None):
        """Reopen a crashed pool: verify magic, roll back open undo lanes."""
        return cls.attach(PmemPool.from_image(name, image), view)

    @classmethod
    def attach(cls, pool, view=None):
        """Open an existing (e.g. crash-image) pool and run recovery.

        Args:
            view: Optional instrumented view over ``pool``; when given,
                rollback writes go through it so post-failure validation
                observes which addresses recovery overwrote.
        """
        magic = pool.read_u64(OFF_MAGIC)
        if magic != MAGIC:
            raise PoolError("pool %r has bad magic %#x" % (pool.name, magic))
        obj = cls(pool, None)
        obj._rollback_lanes(view)
        obj.allocator = obj._rebuild_allocator()
        return obj

    def _rebuild_allocator(self):
        """Reconstruct allocator state from the durable registry."""
        allocator = PersistentAllocator(
            self.pool, HEAP_START, self.pool.size,
            registry_start=REGISTRY_START, registry_slots=REGISTRY_SLOTS,
        )
        for slot in range(REGISTRY_SLOTS):
            base = REGISTRY_START + slot * 16
            off = self.pool.read_u64(base)
            block_size = self.pool.read_u64(base + 8)
            if not block_size:
                continue
            allocator._free = _carve(allocator._free, off, block_size)
            allocator._allocated[off] = block_size
            allocator.allocated_bytes += block_size
            allocator._slot_of[off] = slot
            allocator._used_slots.add(slot)
        return allocator

    def _rollback_lanes(self, view=None):
        """Undo-log recovery: revert writes of uncommitted transactions."""
        mem = self.pool.memory

        def write(addr, data):
            if view is not None:
                view.ntstore_bytes(addr, data)
            else:
                mem.store(addr, data, None, "pmdk.rollback", ntstore=True)

        for lane in range(LANE_COUNT):
            base = LANES_START + lane * LANE_BYTES
            active = self.pool.read_u64(base)
            count = self.pool.read_u64(base + 8)
            if not active:
                continue
            for index in range(min(count, LANE_ENTRIES) - 1, -1, -1):
                entry = base + LANE_HEADER_BYTES + index * LANE_ENTRY_BYTES
                addr = self.pool.read_u64(entry)
                size = self.pool.read_u64(entry + 8)
                data = self.pool.read_bytes(entry + 16, min(size, 64))
                write(addr, data)
            write(base, _U64.pack(0))
            write(base + 8, _U64.pack(0))

    # ------------------------------------------------------------------
    # root object

    def root(self, size, view=None):
        """Return the root object's offset, allocating it on first use."""
        current = self.pool.read_u64(OFF_ROOT)
        if current:
            return current
        off = self.allocator.alloc(size)
        mem = self.pool.memory
        mem.store(off, b"\x00" * size, None, "pmdk.root", ntstore=True)
        mem.store(OFF_ROOT, _U64.pack(off), None, "pmdk.root", ntstore=True)
        mem.store(OFF_ROOT_SIZE, _U64.pack(size), None, "pmdk.root",
                  ntstore=True)
        return off

    def lane_base(self, tid):
        return LANES_START + (max(tid, 0) % LANE_COUNT) * LANE_BYTES


def _carve(free_list, off, size):
    """Remove ``[off, off+size)`` from a free list (recovery rebuild)."""
    result = []
    end = off + size
    for start, length in free_list:
        stop = start + length
        if end <= start or off >= stop:
            result.append((start, length))
            continue
        if start < off:
            result.append((start, off - start))
        if stop > end:
            result.append((end, stop - end))
    return result

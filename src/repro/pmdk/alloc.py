"""Redo-log-protected atomic allocation helpers (whitelisted by default).

PMDK's transactional/atomic allocators read shared allocator metadata that
other threads may have written without an intervening flush — a textbook
PM Inter-thread Inconsistency Candidate. It is *benign*: the allocator's
redo log (modeled by the durable registry) makes the operation
crash-consistent regardless of what the racy read observed, which is why
the default whitelist (§4.4) covers this module.

Targets that allocate on hot paths (clevel hashing) use
:func:`pm_atomic_alloc` so their reports exercise the whitelist exactly
like the paper's clevel results (2 inter inconsistencies, both
whitelisted, 0 bugs).
"""


class BumpHeap:
    """A shared PM bump-pointer heap: one persistent cursor word.

    Args:
        cursor_addr: Pool offset of the persistent bump cursor (u64).
        limit: One past the last allocatable byte.
    """

    def __init__(self, cursor_addr, limit):
        self.cursor_addr = cursor_addr
        self.limit = limit

    def init(self, view, heap_start):
        view.ntstore_u64(self.cursor_addr, heap_start)
        view.sfence()


def pm_atomic_alloc(view, heap, size, align=64):
    """Bump-allocate ``size`` bytes from a shared persistent cursor.

    The cursor load may observe another thread's non-persisted advance;
    the CAS that publishes the new cursor is then a durable side effect
    based on that read. Both are crash-consistent here (the cursor is
    ntstore/CAS-advanced and recovery re-derives free space from it), so
    this whole code path belongs on the whitelist.

    Returns the allocated offset, or 0 when the heap is exhausted.
    """
    size = (size + align - 1) // align * align
    while True:
        cursor = view.load_u64(heap.cursor_addr)
        base = (cursor + align - 1) // align * align
        new_cursor = base + size
        if int(new_cursor) > heap.limit:
            return 0
        ok, _ = view.cas_u64(heap.cursor_addr, cursor, new_cursor)
        if ok:
            # No flush: the redo-log registry, not the cursor, is the
            # durable source of truth — so later racy cursor reads are
            # real (whitelisted) inconsistency candidates.
            return base

"""Mini-PMDK undo-log transactions.

Semantics follow the paper's observations about real PMDK (§4.4):

* failure atomicity via *undo logging* — ``add_range`` copies the old
  contents into a durable lane before the first in-place write;
* **no isolation** — writes inside a transaction are immediately visible
  to other threads (this is exactly why PMDK transactions do not prevent
  PM concurrency bugs);
* transactional allocation is protected by the allocator's redo-log-style
  durable registry, so reads on that path are whitelisted by default.
"""

import struct

from ..pmem.errors import PmemError
from .pool import LANE_ENTRIES, LANE_ENTRY_BYTES, LANE_HEADER_BYTES

_U64 = struct.Struct("<Q")


class TransactionError(PmemError):
    """Transaction misuse (nested manual tx, overflowing lane, ...)."""


class Transaction:
    """One undo-log transaction bound to a lane of a :class:`PmemObjPool`.

    Use as a context manager::

        with Transaction(objpool, view, tid) as tx:
            tx.add_range(addr, 8)
            view.store_u64(addr, value)

    On normal exit the lane is committed (log discarded); on exception the
    writes are rolled back from the log immediately.
    """

    def __init__(self, objpool, view, tid=0):
        self.objpool = objpool
        self.view = view
        self.lane = objpool.lane_base(tid)
        self._count = 0
        self._active = False
        self._allocs = []

    # ------------------------------------------------------------------

    def begin(self):
        if self._active:
            raise TransactionError("transaction already active on this lane")
        mem = self.objpool.pool.memory
        mem.store(self.lane + 8, _U64.pack(0), None, "pmdk.tx", ntstore=True)
        mem.store(self.lane, _U64.pack(1), None, "pmdk.tx", ntstore=True)
        self._active = True
        self._count = 0
        self._allocs = []
        return self

    def add_range(self, addr, size):
        """Log the pre-image of ``[addr, addr+size)`` (64-byte chunks)."""
        if not self._active:
            raise TransactionError("add_range outside a transaction")
        mem = self.objpool.pool.memory
        cursor = int(addr)
        remaining = int(size)
        while remaining > 0:
            chunk = min(remaining, 64)
            if self._count >= LANE_ENTRIES:
                raise TransactionError("undo lane overflow")
            entry = (self.lane + LANE_HEADER_BYTES
                     + self._count * LANE_ENTRY_BYTES)
            data = mem.load(cursor, chunk)
            mem.store(entry, _U64.pack(cursor), None, "pmdk.tx", ntstore=True)
            mem.store(entry + 8, _U64.pack(chunk), None, "pmdk.tx",
                      ntstore=True)
            mem.store(entry + 16, data, None, "pmdk.tx", ntstore=True)
            self._count += 1
            mem.store(self.lane + 8, _U64.pack(self._count), None, "pmdk.tx",
                      ntstore=True)
            cursor += chunk
            remaining -= chunk

    def tx_alloc(self, size):
        """Transactional allocation: redo-log protected, undone on abort."""
        if not self._active:
            raise TransactionError("tx_alloc outside a transaction")
        off = self.objpool.allocator.alloc(size)
        self._allocs.append(off)
        return off

    def tx_free(self, off):
        """Transactional free (applied immediately; real PMDK defers)."""
        if not self._active:
            raise TransactionError("tx_free outside a transaction")
        self.objpool.allocator.free(off)

    def commit(self):
        if not self._active:
            raise TransactionError("commit outside a transaction")
        mem = self.objpool.pool.memory
        mem.store(self.lane, _U64.pack(0), None, "pmdk.tx", ntstore=True)
        mem.store(self.lane + 8, _U64.pack(0), None, "pmdk.tx", ntstore=True)
        self._active = False

    def abort(self):
        """Roll back in-place writes from the undo log, newest first."""
        if not self._active:
            return
        mem = self.objpool.pool.memory
        for index in range(self._count - 1, -1, -1):
            entry = (self.lane + LANE_HEADER_BYTES
                     + index * LANE_ENTRY_BYTES)
            addr = _U64.unpack(mem.load(entry, 8))[0]
            size = _U64.unpack(mem.load(entry + 8, 8))[0]
            data = mem.load(entry + 16, size)
            mem.store(addr, data, None, "pmdk.tx.abort", ntstore=True)
        for off in reversed(self._allocs):
            self.objpool.allocator.free(off)
        mem.store(self.lane, _U64.pack(0), None, "pmdk.tx", ntstore=True)
        mem.store(self.lane + 8, _U64.pack(0), None, "pmdk.tx", ntstore=True)
        self._active = False

    # ------------------------------------------------------------------

    def __enter__(self):
        return self.begin()

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.commit()
        else:
            self.abort()
        return False

"""Mini-PMDK: pool management, undo-log transactions, transactional alloc."""

from .pool import (
    HEAP_START,
    LANE_COUNT,
    MAGIC,
    PmemObjPool,
    REGISTRY_SLOTS,
    REGISTRY_START,
    pmem_map_file,
)
from .tx import Transaction, TransactionError
from .alloc import BumpHeap, pm_atomic_alloc

__all__ = [
    "BumpHeap",
    "pm_atomic_alloc",
    "PmemObjPool",
    "pmem_map_file",
    "Transaction",
    "TransactionError",
    "MAGIC",
    "HEAP_START",
    "LANE_COUNT",
    "REGISTRY_START",
    "REGISTRY_SLOTS",
]

"""Static PM-misuse analysis (pmlint) and the fuzzer-hint bridge.

The analyzer never imports or executes target code; it parses modules
with :mod:`ast`, lowers each function to a small CFG, and runs five
ordering/flush rules (PM01–PM05, see ``docs/LINT_RULES.md``).  Findings
address code with the same ``module:function:line`` strings the runtime
uses, so whitelist suppression and priority-queue pre-seeding share one
key space with dynamic detection.
"""

from .hints import (StaticHint, collect_hints_for_target,
                    hints_from_report, seed_queue_with_hints)
from .pmlint import (LintReport, RULE_SUMMARIES, lint_builtin_targets,
                     lint_file, lint_source, lint_target,
                     load_builtin_whitelist)
from .rules import Finding

__all__ = [
    "Finding",
    "LintReport",
    "RULE_SUMMARIES",
    "StaticHint",
    "collect_hints_for_target",
    "hints_from_report",
    "lint_builtin_targets",
    "lint_file",
    "lint_source",
    "lint_target",
    "load_builtin_whitelist",
    "seed_queue_with_hints",
]

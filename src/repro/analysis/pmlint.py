"""pmlint: the static PM-misuse analyzer's public facade.

``lint_source``/``lint_file`` analyze one module; ``lint_target``
resolves a :class:`~repro.targets.base.Target` (class or instance) to
its defining source file; ``lint_builtin_targets`` sweeps all five
paper targets.  Findings are suppressed through the same substring
format as :mod:`repro.detect.whitelist` — ``builtin.whitelist`` (checked
in next to this module) suppresses the *intentional* Table-2 bugs the
built-in targets carry, so CI can require zero unsuppressed findings
while the bugs stay discoverable by the fuzzer.

CLI: ``python -m repro lint [files...]`` (see README's CLI reference).
"""

import ast
import inspect
import json
import os

from ..detect.whitelist import Whitelist
from .cfg import build_cfgs
from .rules import (collect_registered_names, rule_pm01, rule_pm02,
                    rule_pm04, rule_pm05, rule_pm03)

#: Rule id -> one-line description (rendered in text reports and docs).
RULE_SUMMARIES = {
    "PM01": "cached store may reach exit without flush+fence",
    "PM02": "flush never followed by a fence on some path",
    "PM03": "sync-like PM variable written but never registered",
    "PM04": "flush of a provably clean range",
    "PM05": "transactional write outside a Transaction scope",
}

BUILTIN_WHITELIST_PATH = os.path.join(os.path.dirname(__file__),
                                      "builtin.whitelist")


class LintReport:
    """Findings for one or more modules, plus what suppression removed.

    Attributes:
        findings: Unsuppressed findings, source order.
        suppressed: Findings removed by the whitelist.
        loads / stores: Every statically visible load/store-ish event
            (the hints bridge pairs these into reader/writer sites).
    """

    def __init__(self):
        self.findings = []
        self.suppressed = []
        self.loads = []
        self.stores = []

    def extend(self, other):
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.loads.extend(other.loads)
        self.stores.extend(other.stores)

    @property
    def ok(self):
        return not self.findings

    def render_text(self):
        lines = []
        for finding in self.findings:
            lines.append(finding.format())
        lines.append("pmlint: %d finding%s (%d suppressed)"
                     % (len(self.findings),
                        "" if len(self.findings) == 1 else "s",
                        len(self.suppressed)))
        return "\n".join(lines)

    def to_dict(self):
        return {
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "counts": self.counts(),
        }

    def counts(self):
        by_rule = {}
        for finding in self.findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        return by_rule

    def render_json(self):
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _run_rules(cfgs, tree, sync_names=()):
    findings = []
    for cfg in cfgs:
        findings.extend(rule_pm01(cfg))
        findings.extend(rule_pm02(cfg))
        findings.extend(rule_pm04(cfg))
        findings.extend(rule_pm05(cfg))
    registered = collect_registered_names(tree) | set(sync_names)
    findings.extend(rule_pm03(cfgs, registered))
    findings.sort(key=lambda f: (f.module, f.line, f.rule))
    return findings


def lint_source(source, module_name, whitelist=None, sync_names=()):
    """Lint python ``source`` text attributed to ``module_name``.

    ``sync_names`` augments PM03's registered-name set — pass a live
    :meth:`~repro.instrument.annotations.AnnotationRegistry.
    declared_names` when the target has been set up, so names registered
    outside the linted module do not false-positive.
    """
    tree = ast.parse(source)
    cfgs, _consts = build_cfgs(tree, module_name)
    report = LintReport()
    for cfg in cfgs:
        for event in cfg.events():
            if event.kind == "load":
                report.loads.append(event)
            elif event.kind in ("store", "cas", "ntstore"):
                report.stores.append(event)
    for finding in _run_rules(cfgs, tree, sync_names):
        if whitelist is not None and \
                whitelist.matches_location(finding.instr_id):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    return report


def lint_file(path, module_name=None, whitelist=None, sync_names=()):
    """Lint one file; ``module_name`` defaults to the basename stem."""
    if module_name is None:
        module_name = os.path.splitext(os.path.basename(path))[0]
    with open(path, "r") as handle:
        source = handle.read()
    return lint_source(source, module_name, whitelist=whitelist,
                       sync_names=sync_names)


def lint_target(target, whitelist=None, sync_names=()):
    """Lint the module defining a Target class (or instance)."""
    cls = target if inspect.isclass(target) else type(target)
    module_name = cls.__module__
    path = inspect.getsourcefile(cls)
    return lint_file(path, module_name=module_name, whitelist=whitelist,
                     sync_names=sync_names)


def load_builtin_whitelist(extra_entries=()):
    """The checked-in suppressions for the built-in targets' intentional
    Table-2 bugs (whitelist substring format, ``#`` comments)."""
    entries = []
    if os.path.exists(BUILTIN_WHITELIST_PATH):
        with open(BUILTIN_WHITELIST_PATH, "r") as handle:
            for line in handle:
                line = line.strip()
                if line and not line.startswith("#"):
                    entries.append(line)
    entries.extend(extra_entries)
    return Whitelist(entries)


def lint_builtin_targets(whitelist=None, names=None):
    """Lint every built-in target module; returns one merged report.

    With ``whitelist=None`` the checked-in ``builtin.whitelist`` is
    applied — the configuration CI enforces to zero findings.
    """
    from ..targets import registry

    if whitelist is None:
        whitelist = load_builtin_whitelist()
    report = LintReport()
    seen_paths = set()
    if names is None:
        # Every *registered* class, so dynamically loaded plugin targets
        # (--target-module) are linted alongside the built-ins.
        classes = list(registry.registered_classes())
    else:
        classes = [registry.target_class(name) for name in names]
    for cls in classes:
        path = inspect.getsourcefile(cls)
        if path in seen_paths:
            continue
        seen_paths.add(path)
        report.extend(lint_target(cls, whitelist=whitelist))
    report.findings.sort(key=lambda f: (f.module, f.line, f.rule))
    return report

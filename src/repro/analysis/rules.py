"""The pmlint rules (PM01–PM05) as path searches over function CFGs.

Each rule is a function ``(cfg | module context) -> [Finding]``; the
facade in :mod:`repro.analysis.pmlint` runs all of them and handles
whitelist suppression and rendering.  ``docs/LINT_RULES.md`` documents
every rule with bad/good code pairs and its Table-2 bug-class mapping.

The rules are path-*existential*: a finding means "there exists a
syntactically complete path through this function on which the ordering
property fails".  Paths through ``raise`` sinks are excluded (an
exception abandons the operation — the resulting crash-consistency
question belongs to the caller), and unknown offsets/sizes degrade
toward not reporting, so findings stay actionable.
"""

from .cfg import contains, covers, overlaps

# Persistency states tracked for a watched store (mirrors
# repro.pmem.memory's per-line state machine).
DIRTY, PENDING, CLEAN = 0, 1, 2


class Finding:
    """One lint finding, addressed like a runtime detection record.

    ``instr_id`` is the ``module:function:line`` string the runtime
    :class:`~repro.instrument.callsite.CallSiteTable` would resolve for
    the same call site, so whitelist suppressions and fuzzer hints use
    the identical key space as dynamic reports.
    """

    __slots__ = ("rule", "instr_id", "module", "function", "line",
                 "message", "event")

    def __init__(self, rule, event, message):
        self.rule = rule
        self.instr_id = event.instr_id
        module, function, line = event.instr_id.rsplit(":", 2)
        self.module = module
        self.function = function
        self.line = int(line)
        self.message = message
        self.event = event

    def to_dict(self):
        return {
            "rule": self.rule,
            "instr_id": self.instr_id,
            "module": self.module,
            "function": self.function,
            "line": self.line,
            "message": self.message,
        }

    def format(self):
        return "%s [%s] %s" % (self.instr_id, self.rule, self.message)

    def __repr__(self):
        return "<Finding %s %s>" % (self.rule, self.instr_id)


# ----------------------------------------------------------------------
# PM01 — store with no reachable flush+fence on some path


def _walk_pm01(cfg, store, block, index, state, memo):
    """Forward search from just after ``store``.  Returns True when some
    path reaches ``exit`` without the store becoming CLEAN."""
    events = block.events[index:]
    for pos, event in enumerate(events):
        if event.kind == "ntstore" and contains(event, store):
            return False                       # rewritten write-through
        if event.kind == "store" and event is not store \
                and contains(event, store):
            # Fully overwritten by a later cached store: that store is
            # analyzed on its own; this path stops being ours.
            return False
        if state == DIRTY and event.kind in ("flush", "persist") \
                and covers(event, store):
            state = PENDING if event.kind == "flush" else CLEAN
        elif state == PENDING and event.kind in ("fence", "persist"):
            state = CLEAN
        if state == CLEAN:
            return False
    if block is cfg.exit:
        return True
    if block is cfg.abort:
        return False                           # exception paths excluded
    key = (block, state)
    if key in memo:
        return memo[key]
    memo[key] = False                          # cycle: assume no escape
    result = any(_walk_pm01(cfg, store, succ, 0, state, memo)
                 for succ in block.succs)
    memo[key] = result
    return result


def rule_pm01(cfg):
    """PM01: cached store (or CAS) with no flush+fence on some path to
    function exit — the crash window behind Table-2's inter-thread
    inconsistencies (e.g. memcached bugs 9/10)."""
    findings = []
    for block in cfg.blocks:
        for index, event in enumerate(block.events):
            if event.kind not in ("store", "cas"):
                continue
            if event.addr is None:
                continue
            memo = {}
            if _walk_pm01(cfg, event, block, index + 1, DIRTY, memo):
                findings.append(Finding(
                    "PM01", event,
                    "%s(%s) may reach function exit unflushed "
                    "(no covering clwb/persist + sfence on some path)"
                    % (event.method, event.addr.text)))
    return findings


# ----------------------------------------------------------------------
# PM02 — flush never followed by a fence (fence-before-flush ordering)


def _walk_pm02(cfg, block, index, memo):
    """True when some path from events[index:] reaches exit with no
    fence/persist."""
    for event in block.events[index:]:
        if event.kind in ("fence", "persist"):
            return False
    if block is cfg.exit:
        return True
    if block is cfg.abort:
        return False
    if block in memo:
        return memo[block]
    memo[block] = False
    result = any(_walk_pm02(cfg, succ, 0, memo) for succ in block.succs)
    memo[block] = result
    return result


def rule_pm02(cfg):
    """PM02: a clwb/flush_range whose paths to exit contain no sfence
    (or persist).  A fence *before* the flush orders nothing — the flush
    is asynchronous until the next fence drains it."""
    findings = []
    fence_seen = False
    for block in cfg.blocks:
        for index, event in enumerate(block.events):
            if event.kind in ("fence", "persist"):
                fence_seen = True
            if event.kind != "flush":
                continue
            memo = {}
            if _walk_pm02(cfg, block, index + 1, memo):
                hint = (" (an earlier sfence does not order this flush — "
                        "fences drain only preceding flushes)"
                        if fence_seen else "")
                findings.append(Finding(
                    "PM02", event,
                    "%s(%s) is never fenced on some path to exit%s"
                    % (event.method, event.addr.text if event.addr else "?",
                       hint)))
    return findings


# ----------------------------------------------------------------------
# PM03 — sync variable written through PM hooks but never registered


_SYNC_TOKENS = ("lock", "mutex", "latch")


def _looks_like_sync(addr):
    if addr is None:
        return False
    for name in addr.names:
        lowered = name.lower()
        if any(token in lowered for token in _SYNC_TOKENS):
            return True
    return False


def rule_pm03(cfgs, registered_names):
    """PM03: stores/CAS to lock-like PM addresses in modules that never
    register them via ``pm_sync_var_hint``/``register_instance`` —
    post-failure validation (§4.4) cannot check unregistered sync vars,
    the class behind P-CLHT's never-re-initialized bucket locks.

    ``registered_names`` holds every identifier/string mentioned in the
    module's annotation-registration calls.
    """
    findings = []
    for cfg in cfgs:
        for event in cfg.events():
            if event.kind not in ("store", "cas", "ntstore"):
                continue
            if not _looks_like_sync(event.addr):
                continue
            names = {n for n in event.addr.names
                     if any(t in n.lower() for t in _SYNC_TOKENS)}
            if names & registered_names:
                continue
            findings.append(Finding(
                "PM03", event,
                "%s(%s) writes a sync-like PM variable never registered "
                "via pm_sync_var_hint/register_instance (unchecked by "
                "post-failure validation)"
                % (event.method, event.addr.text)))
    return findings


def collect_registered_names(tree):
    """Identifiers and string literals passed to annotation-registration
    calls anywhere in a parsed module."""
    import ast

    names = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        callee = func.attr if isinstance(func, ast.Attribute) else \
            (func.id if isinstance(func, ast.Name) else None)
        if callee not in ("pm_sync_var_hint", "register_instance"):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
                elif isinstance(sub, ast.Attribute):
                    names.add(sub.attr)
                elif isinstance(sub, ast.Constant) \
                        and isinstance(sub.value, str):
                    names.add(sub.value)
    return names


# ----------------------------------------------------------------------
# PM04 — flush of a provably clean line (wasted write-back)


def _walk_pm04(cfg, flush, block, index, fence_seen, memo):
    """Backward search: True when the line is provably clean on *this*
    incoming path (no overlapping cached store since it last became
    durable)."""
    for event in reversed(block.events[:index]):
        if event.kind in ("store", "cas") and overlaps(event, flush):
            return False                       # could be dirty
        if event.kind == "ntstore" and contains(event, flush):
            return True                        # durably written through
        if event.kind == "persist" and contains(event, flush):
            return True
        if event.kind == "flush" and fence_seen and contains(event, flush):
            return True                        # already flushed + fenced
        if event.kind in ("fence", "persist"):
            fence_seen = True
    if block is cfg.entry:
        return False                           # unknown state at entry
    key = (block, fence_seen)
    if key in memo:
        return memo[key]
    memo[key] = False                          # cycle: not provable
    preds = [b for b in cfg.blocks if block in b.succs]
    if not preds:
        return False
    result = all(_walk_pm04(cfg, flush, pred, len(pred.events),
                            fence_seen, memo) for pred in preds)
    memo[key] = result
    return result


def rule_pm04(cfg):
    """PM04: flushing a line that is provably already durable on every
    incoming path — pure overhead, the paper's redundant-flush
    performance-bug candidates."""
    findings = []
    for block in cfg.blocks:
        for index, event in enumerate(block.events):
            if event.kind not in ("flush", "persist"):
                continue
            if event.addr is None or event.addr.offset is None \
                    or event.size is None:
                continue
            memo = {}
            if _walk_pm04(cfg, event, block, index, False, memo):
                findings.append(Finding(
                    "PM04", event,
                    "%s(%s) flushes a provably clean range on every "
                    "incoming path (redundant write-back)"
                    % (event.method, event.addr.text)))
    return findings


# ----------------------------------------------------------------------
# PM05 — transaction-scoped call outside any transaction


def rule_pm05(cfg):
    """PM05: ``add_range``/``tx_alloc``/``tx_free`` invoked with no
    enclosing ``with Transaction(...)`` scope — the write is not
    undo-logged, so a crash mid-operation cannot roll it back."""
    findings = []
    for event in cfg.events():
        if event.kind != "txcall" or event.tx_depth > 0:
            continue
        if event.receiver in ("self", "cls"):
            continue                 # method definitions on the tx class
        findings.append(Finding(
            "PM05", event,
            "%s.%s(...) outside any 'with Transaction(...)' scope "
            "(write is not undo-logged)"
            % (event.receiver, event.method)))
    return findings

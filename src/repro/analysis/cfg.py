"""Intra-function control-flow graphs over ``ast`` for pmlint.

The static pass never executes target code: it parses a module with
:mod:`ast`, folds module-level integer constants (``IT_VALUE = 64``),
and lowers every function into a small CFG whose nodes carry *PM events*
— the statically visible :class:`~repro.instrument.hooks.PmView` calls
(loads, stores, CAS, CLWB, SFENCE, ``flush_range``/``persist``) plus
mini-PMDK transaction calls.  The rules in :mod:`repro.analysis.rules`
are path searches over these graphs.

Addresses are normalized to ``(base, offset)`` pairs: ``int(tail) +
IT_CLSID`` becomes ``("tail", 16)`` once ``IT_CLSID`` resolves through
the module constants.  Two accesses interact only when their *bases*
match syntactically — a deliberately conservative aliasing rule: a flush
of ``item + IT_NBYTES`` never excuses a store to ``other + IT_NBYTES``,
and unknown offsets/sizes degrade toward *not reporting* (suppression),
so every finding is backed by a syntactically complete path.

Event ids use the same ``module:function:line`` form as the runtime
:class:`~repro.instrument.callsite.CallSiteTable` resolves, which is
what lets findings pre-seed the fuzzer's priority queue (the table
canonicalizes ids through exactly these strings) and lets suppressions
reuse the :mod:`repro.detect.whitelist` substring format.
"""

import ast

#: Cached stores: leave the line DIRTY until CLWB+SFENCE.
CACHED_STORE_METHODS = ("store_u64", "store_bytes")
#: Write-through stores: durable immediately (after the fence drains).
NT_STORE_METHODS = ("ntstore_u64", "ntstore_bytes")
CAS_METHODS = ("cas_u64",)
LOAD_METHODS = ("load_u64", "load_bytes")
FLUSH_METHODS = ("clwb", "flush_range")
#: ``persist`` = flush_range + sfence in one call.
PERSIST_METHODS = ("persist",)
FENCE_METHODS = ("sfence",)
#: Mini-PMDK transaction methods that require an active transaction.
TX_METHODS = ("add_range", "tx_alloc", "tx_free")

_SIZE_BY_METHOD = {"store_u64": 8, "ntstore_u64": 8, "cas_u64": 8,
                   "load_u64": 8, "clwb": 64}

CACHE_LINE = 64


# ----------------------------------------------------------------------
# module-level constant folding


class ConstEnv:
    """Integer constants assigned at module (or class) level."""

    def __init__(self, module_node=None):
        self.values = {}
        if module_node is not None:
            self._collect(module_node.body)
            for stmt in module_node.body:
                if isinstance(stmt, ast.ClassDef):
                    self._collect(stmt.body)

    def _collect(self, body):
        for stmt in body:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = self.eval(stmt.value)
            if value is not None:
                self.values[target.id] = value

    def eval(self, node):
        """Evaluate ``node`` to an int, or None when not provable."""
        if isinstance(node, ast.Constant):
            return node.value if isinstance(node.value, int) \
                and not isinstance(node.value, bool) else None
        if isinstance(node, ast.Name):
            return self.values.get(node.id)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            operand = self.eval(node.operand)
            return -operand if operand is not None else None
        if isinstance(node, ast.BinOp):
            left, right = self.eval(node.left), self.eval(node.right)
            if left is None or right is None:
                return None
            op = node.op
            if isinstance(op, ast.Add):
                return left + right
            if isinstance(op, ast.Sub):
                return left - right
            if isinstance(op, ast.Mult):
                return left * right
            if isinstance(op, ast.LShift):
                return left << right
            if isinstance(op, ast.RShift):
                return left >> right
            if isinstance(op, ast.BitOr):
                return left | right
            if isinstance(op, ast.BitAnd):
                return left & right
            if isinstance(op, ast.FloorDiv) and right != 0:
                return left // right
            if isinstance(op, ast.Mod) and right != 0:
                return left % right
        return None


# ----------------------------------------------------------------------
# address normalization


class AddrExpr:
    """A normalized PM address: symbolic base + resolved byte offset.

    Attributes:
        base: Canonical source text of the non-constant terms ("" when
            the whole expression folded to a constant).
        offset: Sum of the constant terms, or None when some term was
            integral but unresolvable (base alone still comparable).
        names: Every identifier appearing anywhere in the expression
            (including folded constant names — PM03 keys on these).
        text: ``ast.unparse`` of the original expression, for messages.
    """

    __slots__ = ("base", "offset", "names", "text")

    def __init__(self, base, offset, names, text):
        self.base = base
        self.offset = offset
        self.names = names
        self.text = text

    def __repr__(self):
        return "<AddrExpr %s+%s>" % (self.base or "0", self.offset)


def _strip_int(node):
    """``int(x)`` wrappers are identity for address math."""
    while (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
           and node.func.id == "int" and len(node.args) == 1
           and not node.keywords):
        node = node.args[0]
    return node


def _flatten_terms(node, sign=1):
    """Flatten an Add/Sub chain into (sign, node) terms."""
    node = _strip_int(node)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        terms = _flatten_terms(node.left, sign)
        right_sign = sign if isinstance(node.op, ast.Add) else -sign
        terms.extend(_flatten_terms(node.right, right_sign))
        return terms
    return [(sign, node)]


def _collect_names(node):
    names = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
    return names


def normalize_addr(node, consts):
    """Normalize an address expression into an :class:`AddrExpr`."""
    try:
        text = ast.unparse(node)
    except Exception:                                    # pragma: no cover
        text = "<expr>"
    terms = _flatten_terms(node)
    offset = 0
    base_parts = []
    for sign, term in terms:
        value = consts.eval(term)
        if value is not None:
            offset += sign * value
            continue
        try:
            part = ast.unparse(_strip_int(term))
        except Exception:                                # pragma: no cover
            part = "<expr>"
        base_parts.append(("-" if sign < 0 else "") + part)
    base = "+".join(sorted(base_parts))
    return AddrExpr(base, offset, frozenset(_collect_names(node)), text)


# ----------------------------------------------------------------------
# events


class PmEvent:
    """One statically visible PM operation.

    Attributes:
        kind: "store" | "ntstore" | "cas" | "load" | "flush" | "persist"
            | "fence" | "txcall".
        addr: :class:`AddrExpr` (None for fences).
        size: Access/flush size in bytes when provable, else None.
        line: Source line of the call.
        instr_id: ``module:function:line`` — the exact string the runtime
            CallSiteTable would intern for this call site.
        tx_depth: Number of enclosing ``with Transaction(...)`` scopes.
        method: The callee attribute name (diagnostics).
        receiver: Source text of the call receiver ("view", "tx", ...).
    """

    __slots__ = ("kind", "addr", "size", "line", "instr_id", "tx_depth",
                 "method", "receiver")

    def __init__(self, kind, addr, size, line, instr_id, tx_depth,
                 method, receiver):
        self.kind = kind
        self.addr = addr
        self.size = size
        self.line = line
        self.instr_id = instr_id
        self.tx_depth = tx_depth
        self.method = method
        self.receiver = receiver

    def __repr__(self):
        return "<PmEvent %s %s @%s>" % (self.kind, self.method, self.line)


def _receiver_text(func_node):
    try:
        return ast.unparse(func_node.value)
    except Exception:                                    # pragma: no cover
        return "?"


def covers(flush, store):
    """Does ``flush`` (a flush/persist event) cover ``store``'s address?

    Conservative toward *suppression*: same-base accesses with unknown
    offsets or sizes are treated as covered (no finding); different
    bases never cover each other.
    """
    fa, sa = flush.addr, store.addr
    if fa is None or sa is None:
        return False
    if fa.base != sa.base:
        return False
    if fa.offset is None or sa.offset is None:
        return True
    if flush.size is None:
        return sa.offset >= fa.offset if flush.method != "clwb" else True
    if flush.method == "clwb":
        # One line, assuming line-aligned bases (how the targets lay out).
        start = fa.offset - (fa.offset % CACHE_LINE)
        return start <= sa.offset < start + CACHE_LINE
    end = fa.offset + flush.size
    return fa.offset <= sa.offset < end


def overlaps(a, b):
    """Do two addressed events possibly touch common bytes?"""
    if a.addr is None or b.addr is None:
        return False
    if a.addr.base != b.addr.base:
        return False
    if a.addr.offset is None or b.addr.offset is None:
        return True
    a_size = a.size if a.size is not None else 8
    b_size = b.size if b.size is not None else 8
    return a.addr.offset < b.addr.offset + b_size and \
        b.addr.offset < a.addr.offset + a_size


def contains(outer, inner):
    """Does ``outer``'s byte range provably contain ``inner``'s?"""
    if outer.addr is None or inner.addr is None:
        return False
    if outer.addr.base != inner.addr.base:
        return False
    if outer.addr.offset is None or inner.addr.offset is None:
        return False
    if outer.size is None or inner.size is None:
        return False
    return outer.addr.offset <= inner.addr.offset and \
        inner.addr.offset + inner.size <= outer.addr.offset + outer.size


# ----------------------------------------------------------------------
# CFG


class Block:
    """A basic block: a run of events plus successor edges."""

    __slots__ = ("events", "succs", "index")

    def __init__(self, index):
        self.index = index
        self.events = []
        self.succs = []

    def link(self, other):
        if other is not None and other not in self.succs:
            self.succs.append(other)


class FunctionCFG:
    """The CFG of one function, with dedicated entry/exit/abort blocks.

    ``exit`` collects normal completions (fallthrough and ``return``);
    ``abort`` collects ``raise`` paths — rules that reason about "the
    function finished" deliberately ignore abort paths (an exception
    already abandons the operation, so an unflushed store there is the
    *caller's* crash-consistency problem, not a lint-worthy ordering).
    """

    def __init__(self, name, module, lineno):
        self.name = name
        self.module = module
        self.lineno = lineno
        self.blocks = []
        self.entry = self.new_block()
        self.exit = self.new_block()
        self.abort = self.new_block()

    def new_block(self):
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def events(self):
        """All events in block order (deterministic)."""
        for block in self.blocks:
            for event in block.events:
                yield event

    def predecessors(self):
        """block -> list of (pred_block, events after which we branch)."""
        preds = {block: [] for block in self.blocks}
        for block in self.blocks:
            for succ in block.succs:
                preds[succ].append(block)
        return preds


class _FunctionLowering:
    """Lowers one ``FunctionDef`` body into a :class:`FunctionCFG`."""

    def __init__(self, module, func_node, consts):
        self.module = module
        self.consts = consts
        self.cfg = FunctionCFG(func_node.name, module, func_node.lineno)
        self.tx_depth = 0
        self.tx_names = []
        self._loop_stack = []
        cursor = self._lower_body(func_node.body, self.cfg.entry)
        if cursor is not None:
            cursor.link(self.cfg.exit)

    # ------------------------------------------------------------------

    def _instr_id(self, line):
        return "%s:%s:%d" % (self.module, self.cfg.name, line)

    def _calls_in(self, node):
        """Call nodes inside ``node`` in source order (approximates
        evaluation order well enough for straight-line statements)."""
        calls = [sub for sub in ast.walk(node) if isinstance(sub, ast.Call)]
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        return calls

    def _emit_events(self, node, block):
        for call in self._calls_in(node):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            method = func.attr
            kind = None
            addr = None
            size = None
            args = call.args
            if method in CACHED_STORE_METHODS:
                kind = "store"
            elif method in NT_STORE_METHODS:
                kind = "ntstore"
            elif method in CAS_METHODS:
                kind = "cas"
            elif method in LOAD_METHODS:
                kind = "load"
            elif method in FLUSH_METHODS:
                kind = "flush"
            elif method in PERSIST_METHODS:
                kind = "persist"
            elif method in FENCE_METHODS:
                kind = "fence"
            elif method in TX_METHODS:
                kind = "txcall"
            else:
                continue
            if kind in ("store", "ntstore", "cas", "load", "flush",
                        "persist") and args:
                addr = normalize_addr(args[0], self.consts)
            size = _SIZE_BY_METHOD.get(method)
            if method in ("store_bytes", "ntstore_bytes", "load_bytes",
                          "flush_range", "persist"):
                if len(args) >= 2:
                    size = self.consts.eval(args[1])
                    if size is None and isinstance(args[1], ast.Call) \
                            and isinstance(args[1].func, ast.Name) \
                            and args[1].func.id == "len":
                        size = None
            block.events.append(PmEvent(
                kind, addr, size, call.lineno, self._instr_id(call.lineno),
                self.tx_depth, method, _receiver_text(func)))

    # ------------------------------------------------------------------

    def _lower_body(self, body, cursor):
        """Lower a statement list; returns the live fallthrough block
        (None when every path returned/raised/broke)."""
        for stmt in body:
            if cursor is None:
                break
            cursor = self._lower_stmt(stmt, cursor)
        return cursor

    def _lower_stmt(self, stmt, cursor):
        cfg = self.cfg
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return cursor                 # nested defs lower separately
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._emit_events(stmt.value, cursor)
            cursor.link(cfg.exit)
            return None
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._emit_events(stmt.exc, cursor)
            cursor.link(cfg.abort)
            return None
        if isinstance(stmt, ast.Break):
            if self._loop_stack:
                cursor.link(self._loop_stack[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            if self._loop_stack:
                cursor.link(self._loop_stack[-1][0])
            return None
        if isinstance(stmt, ast.If):
            self._emit_events(stmt.test, cursor)
            after = cfg.new_block()
            then_block = cfg.new_block()
            cursor.link(then_block)
            then_end = self._lower_body(stmt.body, then_block)
            if then_end is not None:
                then_end.link(after)
            if stmt.orelse:
                else_block = cfg.new_block()
                cursor.link(else_block)
                else_end = self._lower_body(stmt.orelse, else_block)
                if else_end is not None:
                    else_end.link(after)
            else:
                cursor.link(after)
            return after
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = cfg.new_block()
            after = cfg.new_block()
            cursor.link(header)
            if isinstance(stmt, ast.While):
                self._emit_events(stmt.test, header)
            else:
                self._emit_events(stmt.iter, header)
            body_block = cfg.new_block()
            header.link(body_block)
            header.link(after)            # zero iterations
            self._loop_stack.append((header, after))
            body_end = self._lower_body(stmt.body, body_block)
            self._loop_stack.pop()
            if body_end is not None:
                body_end.link(header)     # back edge
            if stmt.orelse:
                else_end = self._lower_body(stmt.orelse, after)
                return else_end
            return after
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            # Approximation: the body runs in sequence; each handler is an
            # alternative continuation branching from before the try.
            after = cfg.new_block()
            body_block = cfg.new_block()
            cursor.link(body_block)
            body_end = self._lower_body(stmt.body, body_block)
            for handler in stmt.handlers:
                handler_block = cfg.new_block()
                cursor.link(handler_block)
                handler_end = self._lower_body(handler.body, handler_block)
                if handler_end is not None:
                    handler_end.link(after)
            if body_end is not None:
                if stmt.orelse:
                    body_end = self._lower_body(stmt.orelse, body_end)
                if body_end is not None:
                    body_end.link(after)
            if stmt.finalbody:
                return self._lower_body(stmt.finalbody, after)
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            tx_items = []
            for item in stmt.items:
                self._emit_events(item.context_expr, cursor)
                if self._is_transaction(item.context_expr):
                    name = None
                    if isinstance(item.optional_vars, ast.Name):
                        name = item.optional_vars.id
                    tx_items.append(name)
            self.tx_depth += len(tx_items)
            self.tx_names.extend(tx_items)
            cursor = self._lower_body(stmt.body, cursor)
            self.tx_depth -= len(tx_items)
            del self.tx_names[len(self.tx_names) - len(tx_items):]
            return cursor
        # plain statement: extract events in place
        self._emit_events(stmt, cursor)
        return cursor

    @staticmethod
    def _is_transaction(node):
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "Transaction"
        if isinstance(func, ast.Attribute):
            return func.attr == "Transaction"
        return False


def build_cfgs(tree, module_name, consts=None):
    """Lower every function (methods and nested defs included) of a
    parsed module into CFGs; returns ``(cfgs, consts)``."""
    if consts is None:
        consts = ConstEnv(tree)
    cfgs = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cfgs.append(_FunctionLowering(module_name, node, consts).cfg)
    cfgs.sort(key=lambda cfg: cfg.lineno)
    return cfgs, consts

"""Bridge from static findings to the fuzzer's priority queue.

PM01 findings mark stores that can stay non-persisted at function exit —
exactly the writer half of a PM Inter-thread Inconsistency (§4.1).  This
module pairs each flagged store with the statically visible loads that
overlap its address and packages the pair as a :class:`StaticHint`.
When ``PMRaceConfig.static_hints`` is on, the engine interns the hint's
``module:function:line`` strings through its run-wide
:class:`~repro.instrument.callsite.CallSiteTable` — static strings and
runtime-interned ids unify because both canonicalize through the same
``module:co_name:lineno`` form — and pre-seeds every campaign's
:class:`~repro.core.priority.SharedAccessQueue` before any dynamic
profile exists, so the first scheduled sync points already aim at the
statically suspicious windows.
"""

from .cfg import overlaps
from .pmlint import lint_target, load_builtin_whitelist

#: Frequency used for injected hint groups: far above anything a dynamic
#: profile can accumulate, so hints are fetched before organic groups.
HINT_FREQUENCY = 10 ** 9


class StaticHint:
    """One suspected reader/writer pairing from the static pass.

    Attributes:
        store_sites: ``module:function:line`` strings of the flagged
            stores (the sync point's signal side).
        load_sites: Overlapping load sites (the cond_wait side).
        reason: Human-readable provenance for traces and reports.
    """

    __slots__ = ("store_sites", "load_sites", "reason")

    def __init__(self, store_sites, load_sites, reason):
        self.store_sites = tuple(store_sites)
        self.load_sites = tuple(load_sites)
        self.reason = reason

    def __repr__(self):
        return "<StaticHint %s -> %d loads>" % (
            ",".join(self.store_sites), len(self.load_sites))


def hints_from_report(report):
    """Pair each PM01 store finding with same-module overlapping loads."""
    hints = []
    for finding in report.findings + report.suppressed:
        if finding.rule != "PM01":
            continue
        store_event = finding.event
        load_sites = []
        for load in report.loads:
            if load.instr_id.split(":", 1)[0] != finding.module:
                continue
            if overlaps(load, store_event):
                load_sites.append(load.instr_id)
        if not load_sites:
            continue
        hints.append(StaticHint(
            (finding.instr_id,), sorted(set(load_sites)),
            "pmlint PM01: %s" % finding.message))
    return hints


_HINT_CACHE = {}


def collect_hints_for_target(target):
    """Run pmlint over ``target``'s module and derive hints (cached per
    target class — the engine calls this once per run).

    Suppressed findings still produce hints: the builtin whitelist marks
    *intentional* bugs, which are precisely where fuzzing should look.
    """
    cls = type(target)
    if cls not in _HINT_CACHE:
        report = lint_target(cls, whitelist=load_builtin_whitelist())
        _HINT_CACHE[cls] = hints_from_report(report)
    return _HINT_CACHE[cls]


def seed_queue_with_hints(queue, hints, callsites):
    """Inject hints into a SharedAccessQueue before the dynamic profile.

    The static strings are interned through the run's ``callsites``
    table so they compare equal (as ints) to ids interned later from
    live frames at the same sites.
    """
    injected = 0
    for hint in hints:
        store_ids = frozenset(callsites.intern_name(site)
                              for site in hint.store_sites)
        load_ids = frozenset(callsites.intern_name(site)
                             for site in hint.load_sites)
        if queue.add_hint(store_ids, load_ids, HINT_FREQUENCY):
            injected += 1
    return injected

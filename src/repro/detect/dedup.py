"""Unique-bug grouping (§6.2).

"A *unique bug* is a group of bugs of reading non-persisted data written
by the same store instruction or inconsistencies due to the same
synchronization variable type."

Keys are built from the resolved ``module:function:line`` strings stored
on the records (the checker resolves interned event ids at record
creation), so grouping is stable across campaigns, runs, and parallel
workers that each own a different interning table.
"""

from .records import BugReport, InconsistencyRecord, SyncInconsistencyRecord


def unique_key(record):
    """Grouping key of one bug-verdict inconsistency record."""
    if isinstance(record, SyncInconsistencyRecord):
        return ("sync", record.annotation_name)
    if isinstance(record, InconsistencyRecord):
        return (record.kind, record.candidate.write_instr)
    raise TypeError("cannot group %r" % (record,))


def _describe(key, records):
    kind = key[0]
    first = records[0]
    if kind == "sync":
        return ("synchronization variable %r not restored after recovery "
                "(threads acquiring it will hang)" % key[1])
    flows = {"address" if r.address_flow else "content" for r in records}
    flow = "/".join(sorted(flows))
    return ("durable side effect (%s flow) based on non-persisted data "
            "written at %s" % (flow, first.candidate.write_instr))


def group_bugs(target_name, records, seed=None):
    """Group bug-verdict records into :class:`BugReport` objects."""
    groups = {}
    order = []
    for record in records:
        key = unique_key(record)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(record)
    reports = []
    for index, key in enumerate(order, start=1):
        members = groups[key]
        first = members[0]
        if key[0] == "sync":
            write_instr = first.instr_id
            read_instr = None
        else:
            write_instr = first.candidate.write_instr
            read_instr = first.candidate.read_instr
        reports.append(BugReport(
            index, target_name, key[0], write_instr, read_instr,
            _describe(key, members), members, seed,
        ))
    return reports

"""Runtime PM checkers (§4.3).

:class:`InconsistencyChecker` implements the three checks:

* **Candidates** — a load overlapping non-persisted stores mints one
  :class:`~repro.detect.records.CandidateRecord` per distinct
  (write site, read site, writer, reader) combination, plus a taint label
  so downstream data flow is tracked.
* **Confirmed inconsistencies** — a store whose content or address carries
  taint is a durable side effect; each contributing label becomes an
  :class:`~repro.detect.records.InconsistencyRecord` with a crash image
  snapshotted at the moment of the side effect (the crash point used by
  post-failure validation, §4.4).
* **Sync inconsistencies** — stores to annotated synchronization variables,
  deduplicated per (annotation type, store site).
"""

from ..instrument.events import Observer
from ..instrument.taint import TaintLabel
from .records import CandidateRecord, InconsistencyRecord, SyncInconsistencyRecord


class InconsistencyChecker(Observer):
    """The per-campaign checker; registered as a context observer.

    Records carry *resolved* ``module:function:line`` strings even though
    events arrive with interned int ids: resolution happens here, at the
    detection boundary, so dedup keys and whitelist matching stay
    comparable across campaigns, runs, and parallel workers.

    Args:
        pool: Pool under test (crash images are taken from it).
        snapshot_images: Disable to skip crash-image copies (faster, used
            when only counting, e.g. in Figure 8 timing runs).
        max_candidates: Safety bound on recorded candidates per campaign.
        callsites: The run's :class:`~repro.instrument.callsite.
            CallSiteTable`; None means events already carry strings
            (hand-built events in tests) and ids pass through unchanged.
        evict_fraction: Probability that each DIRTY line was evicted
            before the crash point captured in a crash image (§2.1).
        evict_rng: Campaign RNG for eviction sampling, threaded from the
            engine so patterns vary with the campaign seed.
    """

    def __init__(self, pool, snapshot_images=True, max_candidates=10_000,
                 callsites=None, evict_fraction=0.0, evict_rng=None):
        self.pool = pool
        self.snapshot_images = snapshot_images
        self.max_candidates = max_candidates
        self.callsites = callsites
        self.evict_fraction = evict_fraction
        self.evict_rng = evict_rng
        self.candidates = []
        self.inconsistencies = []
        self.sync_inconsistencies = []
        self._candidate_keys = {}
        self._inconsistency_keys = set()
        self._sync_keys = set()
        self._labels = {}

    # ------------------------------------------------------------------
    # interned-id resolution (the int → string boundary)

    def _site(self, instr_id):
        if self.callsites is not None:
            return self.callsites.name(instr_id)
        return instr_id

    def _stack_names(self, stack):
        if self.callsites is not None and stack:
            return self.callsites.names(stack)
        return stack

    # ------------------------------------------------------------------

    def _image(self, overlay_addr=None, overlay_size=0):
        """Crash image at this instant.

        The durable side effect (or lock update) itself is overlaid with
        its volatile contents: the crash point of interest is *after* the
        side effect persisted but *before* the dependent non-persisted
        data did (Figure 3's failure window). Without the overlay a
        cached-store side effect would vanish from the image and the
        validation would be vacuous.
        """
        if not self.snapshot_images:
            return None
        image = bytearray(self.pool.crash_image(self.evict_fraction,
                                                self.evict_rng))
        if overlay_addr is not None and overlay_size > 0:
            end = min(overlay_addr + overlay_size, len(image))
            image[overlay_addr:end] = self.pool.memory.load(
                overlay_addr, end - overlay_addr)
        return bytes(image)

    def on_load(self, event):
        if not event.nonpersisted:
            return None
        minted = set()
        for writer in event.nonpersisted:
            key = (event.instr_id, writer.instr_id, event.tid,
                   writer.thread_id)
            candidate = self._candidate_keys.get(key)
            if candidate is None and len(self.candidates) < self.max_candidates:
                # writer.instr_id is already a string (the hook layer
                # resolves before attributing StoreRecords); the read
                # side and stack resolve here.
                candidate = CandidateRecord(
                    len(self.candidates), event.addr, event.size,
                    self._site(event.instr_id), writer.instr_id, event.tid,
                    writer.thread_id, self._stack_names(event.stack),
                    writer.seq,
                )
                self._candidate_keys[key] = candidate
                self.candidates.append(candidate)
            if candidate is None:
                continue
            label = self._labels.get(candidate.candidate_id)
            if label is None:
                label = TaintLabel(candidate.candidate_id, event.instr_id,
                                   writer.instr_id, writer.thread_id,
                                   event.tid)
                self._labels[candidate.candidate_id] = label
            minted.add(label)
        return frozenset(minted)

    def on_store(self, event):
        if not event.taint:
            return
        side_effect_instr = None
        # TaintLabel hashes by identity, so frozenset iteration order
        # follows memory layout and varies between processes. Record
        # order must not (repro bundles replay in fresh processes) —
        # confirm in candidate order.
        for label in sorted(event.taint, key=lambda lbl: lbl.candidate_id):
            candidate = self.candidates[label.candidate_id] \
                if label.candidate_id < len(self.candidates) else None
            if candidate is None:
                continue
            # "except the dependent non-persisted data": an idempotent
            # write-back of the dirty value over its own source (e.g. a
            # copy-through-flush helper) is not a *new* side effect.
            # Writing a *derived* value to the same address (allocator
            # cursor CAS) still is.
            if (event.same_value and event.addr == candidate.addr
                    and label not in event.addr_taint):
                continue
            if side_effect_instr is None:
                side_effect_instr = self._site(event.instr_id)
            # Dedup on the key alone — the record (and its crash image)
            # is only materialized for the first sighting. Almost every
            # tainted store repeats an already-recorded combination.
            key = ("inter" if candidate.cross_thread else "intra",
                   candidate.write_instr, candidate.read_instr,
                   side_effect_instr)
            if key in self._inconsistency_keys:
                continue
            self._inconsistency_keys.add(key)
            record = InconsistencyRecord(
                candidate, side_effect_instr, event.addr, event.size,
                label in event.addr_taint, self._stack_names(event.stack),
                self._image(event.addr, event.size),
            )
            assert record.dedup_key() == key
            self.inconsistencies.append(record)

    def on_annotated_store(self, annotation, event):
        # Writing the expected initial value back (e.g. a lock release) is
        # crash-consistent by definition; only departures from the
        # annotated init value are inconsistencies.
        value = event.value
        if isinstance(value, (bytes, bytearray)):
            if annotation.init_val == 0 and not any(value):
                return
        else:
            try:
                if int(value) == annotation.init_val:
                    return
            except (TypeError, ValueError):
                pass
        key = (annotation.name, event.instr_id)
        if key in self._sync_keys:
            return
        self._sync_keys.add(key)
        record = SyncInconsistencyRecord(
            annotation.name, event.addr, annotation.size,
            annotation.init_val, event.value, self._site(event.instr_id),
            self._stack_names(event.stack),
            self._image(event.addr, annotation.size),
        )
        self.sync_inconsistencies.append(record)

    # ------------------------------------------------------------------
    # summaries

    @property
    def inter_candidates(self):
        return [c for c in self.candidates if c.cross_thread]

    @property
    def intra_candidates(self):
        return [c for c in self.candidates if not c.cross_thread]

    @property
    def inter_inconsistencies(self):
        return [r for r in self.inconsistencies if r.kind == "inter"]

    @property
    def intra_inconsistencies(self):
        return [r for r in self.inconsistencies if r.kind == "intra"]

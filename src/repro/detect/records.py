"""Record types produced by the PM checkers and consumed by validation."""

import enum


class Verdict(enum.Enum):
    """Lifecycle of a detected inconsistency."""

    #: Detected pre-failure, not yet validated.
    PENDING = "pending"
    #: Recovery overwrote the side effect / re-initialized the sync var.
    VALIDATED_FP = "validated_fp"
    #: A whitelist entry matched the stack trace.
    WHITELISTED_FP = "whitelisted_fp"
    #: Survived post-failure validation: reported as a bug.
    BUG = "bug"


class CandidateRecord:
    """A PM Inter/Intra-thread Inconsistency *Candidate* (Definition 1).

    One thread read data with a non-persisted store outstanding.
    """

    __slots__ = ("candidate_id", "addr", "size", "read_instr", "write_instr",
                 "reader_tid", "writer_tid", "stack", "seq")

    def __init__(self, candidate_id, addr, size, read_instr, write_instr,
                 reader_tid, writer_tid, stack, seq):
        self.candidate_id = candidate_id
        self.addr = addr
        self.size = size
        self.read_instr = read_instr
        self.write_instr = write_instr
        self.reader_tid = reader_tid
        self.writer_tid = writer_tid
        self.stack = stack
        self.seq = seq

    @property
    def cross_thread(self):
        return self.reader_tid != self.writer_tid

    @property
    def kind(self):
        return "inter-candidate" if self.cross_thread else "intra-candidate"

    def __repr__(self):
        return "<Candidate #%d %s write=%s read=%s>" % (
            self.candidate_id, self.kind, self.write_instr, self.read_instr)


class InconsistencyRecord:
    """A confirmed PM Inter/Intra-thread Inconsistency (Definition 2).

    A durable side effect (PM write) consumed data from a candidate read,
    either as content or as part of the address computation.
    """

    __slots__ = ("candidate", "side_effect_instr", "side_effect_addr",
                 "side_effect_size", "address_flow", "stack", "crash_image",
                 "verdict", "note", "bundle")

    def __init__(self, candidate, side_effect_instr, side_effect_addr,
                 side_effect_size, address_flow, stack, crash_image):
        self.candidate = candidate
        self.side_effect_instr = side_effect_instr
        self.side_effect_addr = side_effect_addr
        self.side_effect_size = side_effect_size
        self.address_flow = address_flow
        self.stack = stack
        self.crash_image = crash_image
        self.verdict = Verdict.PENDING
        self.note = ""
        #: :class:`~repro.replay.bundle.ReproBundle` reproducing this
        #: record, attached by the engine when capture is on.
        self.bundle = None

    @property
    def kind(self):
        return "inter" if self.candidate.cross_thread else "intra"

    @property
    def write_instr(self):
        return self.candidate.write_instr

    @property
    def read_instr(self):
        return self.candidate.read_instr

    def dedup_key(self):
        return (self.kind, self.candidate.write_instr,
                self.candidate.read_instr, self.side_effect_instr)

    def __repr__(self):
        return "<Inconsistency %s write=%s read=%s effect=%s verdict=%s>" % (
            self.kind, self.write_instr, self.read_instr,
            self.side_effect_instr, self.verdict.value)


class SyncInconsistencyRecord:
    """A PM Synchronization Inconsistency (Definition 3).

    An annotated persistent synchronization variable was updated; whether
    recovery restores it to its annotated initial value decides benign/bug.
    """

    __slots__ = ("annotation_name", "addr", "size", "init_val", "new_value",
                 "instr_id", "stack", "crash_image", "verdict", "note",
                 "bundle")

    def __init__(self, annotation_name, addr, size, init_val, new_value,
                 instr_id, stack, crash_image):
        self.annotation_name = annotation_name
        self.addr = addr
        self.size = size
        self.init_val = init_val
        self.new_value = new_value
        self.instr_id = instr_id
        self.stack = stack
        self.crash_image = crash_image
        self.verdict = Verdict.PENDING
        self.note = ""
        #: :class:`~repro.replay.bundle.ReproBundle` reproducing this
        #: record, attached by the engine when capture is on.
        self.bundle = None

    @property
    def kind(self):
        return "sync"

    def dedup_key(self):
        return ("sync", self.annotation_name, self.instr_id)

    def __repr__(self):
        return "<SyncInconsistency %s addr=%#x instr=%s verdict=%s>" % (
            self.annotation_name, self.addr, self.instr_id,
            self.verdict.value)


class BugReport:
    """A unique bug: a group of inconsistencies sharing a root cause (§6.2)."""

    def __init__(self, bug_id, target, kind, write_instr, read_instr,
                 description, records, seed=None):
        self.bug_id = bug_id
        self.target = target
        self.kind = kind
        self.write_instr = write_instr
        self.read_instr = read_instr
        self.description = description
        self.records = list(records)
        self.seed = seed

    def format(self):
        lines = [
            "=" * 70,
            "PMRace bug report #%s [%s] in %s" % (self.bug_id, self.kind,
                                                  self.target),
            "  write code: %s" % (self.write_instr or "-"),
            "  read code : %s" % (self.read_instr or "-"),
            "  summary   : %s" % self.description,
            "  instances : %d" % len(self.records),
        ]
        if self.seed is not None:
            lines.append("  seed      : %s" % (self.seed,))
        for record in self.records[:3]:
            stack = getattr(record, "stack", ()) or ()
            if stack:
                lines.append("  stack trace:")
                lines.extend("    at %s" % frame for frame in stack[:8])
        lines.append("=" * 70)
        return "\n".join(lines)

    def __repr__(self):
        return "<BugReport #%s %s %s>" % (self.bug_id, self.kind, self.target)

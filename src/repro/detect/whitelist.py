"""The benign-read whitelist (§4.4).

Some reads of non-persisted data are crash-consistent by construction —
they are protected by redo logging or checksums — and post-failure
validation cannot see that (the protection acts by *disregarding*
inconsistent contents, not by overwriting them). Developers list such code
locations; any inconsistency whose stack trace contains a listed location
is marked safe.

The default whitelist covers PMDK's transactional allocations (redo-log
protected, §4.4) and memcached-pmem's checksummed value reads.

Matching happens on record stacks, which hold resolved
``module:function:line`` strings (the checker resolves interned event ids
when the record is created), so entries remain plain substrings.
"""

#: Stack-location substrings that are crash-consistent by construction.
DEFAULT_WHITELIST = (
    # mini-PMDK transactional allocation path (redo logging)
    "repro.pmdk.alloc:",
    "repro.pmdk.tx:tx_alloc",
    # memcached-pmem checksummed value verification
    "repro.targets.memcached:_verify_checksum",
    # pmring's CAS-validated cursor claims: a stale (non-persisted)
    # cursor read is re-checked by the CAS itself and recovery
    # recomputes both cursors from the slot sequence words
    "repro.targets.pmring:push:",
)


class Whitelist:
    """Matches inconsistency stack traces against benign code locations."""

    def __init__(self, entries=DEFAULT_WHITELIST):
        self.entries = list(entries)

    def add(self, location):
        """Append a ``module:function`` (or any substring) rule."""
        self.entries.append(location)

    def matches_location(self, location):
        """True if one resolved ``module:function:line`` string hits an
        entry.  Shared by dynamic stack matching and pmlint's static
        findings, which address code with the same strings."""
        return any(entry in location for entry in self.entries)

    def matches(self, record):
        """True if any stack frame of ``record`` hits a whitelist entry.

        Both the candidate read's stack and the side effect's stack are
        consulted, mirroring "the stack trace of a detected inconsistency".
        """
        stacks = [getattr(record, "stack", ()) or ()]
        candidate = getattr(record, "candidate", None)
        if candidate is not None:
            stacks.append(candidate.stack or ())
        for stack in stacks:
            for frame in stack:
                if self.matches_location(frame):
                    return True
        return False

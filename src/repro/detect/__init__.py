"""PM inconsistency checkers, post-failure validation, and bug reports."""

from .checkers import InconsistencyChecker
from .extra_checkers import (
    FenceCounter,
    MissingFlushRecord,
    RedundantFlushChecker,
    RedundantFlushRecord,
    scan_missing_flushes,
)
from .reporting import (
    dump_run_result,
    load_run_report,
    load_whitelist,
    record_to_dict,
    report_to_dict,
    save_whitelist,
)
from .dedup import group_bugs, unique_key
from .postfailure import PostFailureValidator, ReplayResult, WriteRecorder
from .validation_service import (
    ValidationQueue,
    fresh_target_factory,
    image_digest,
    validate_records_parallel,
)
from .records import (
    BugReport,
    CandidateRecord,
    InconsistencyRecord,
    SyncInconsistencyRecord,
    Verdict,
)
from .state_table import (
    PM_CLEAN,
    PM_DIRTY,
    PM_PENDING,
    PersistencyStateTable,
)
from .whitelist import DEFAULT_WHITELIST, Whitelist

__all__ = [
    "InconsistencyChecker",
    "RedundantFlushChecker",
    "RedundantFlushRecord",
    "MissingFlushRecord",
    "scan_missing_flushes",
    "FenceCounter",
    "dump_run_result",
    "load_run_report",
    "record_to_dict",
    "report_to_dict",
    "save_whitelist",
    "load_whitelist",
    "PersistencyStateTable",
    "PM_CLEAN",
    "PM_DIRTY",
    "PM_PENDING",
    "PostFailureValidator",
    "ReplayResult",
    "ValidationQueue",
    "WriteRecorder",
    "fresh_target_factory",
    "image_digest",
    "validate_records_parallel",
    "Whitelist",
    "DEFAULT_WHITELIST",
    "Verdict",
    "CandidateRecord",
    "InconsistencyRecord",
    "SyncInconsistencyRecord",
    "BugReport",
    "group_bugs",
    "unique_key",
]

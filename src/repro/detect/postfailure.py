"""Post-failure validation (§4.4).

For each pre-failure inconsistency, PMRace duplicated the pool at the
crash point. Validation restarts the target on the duplicate and decides:

* **Inter/Intra**: if every byte of the recorded durable side effect was
  overwritten by the recovery code, the inconsistency was fixed
  automatically — a validated false positive. Otherwise it is a bug.
* **Sync**: if the annotated synchronization variable holds its expected
  initial value after recovery, it was correctly re-initialized — a
  validated false positive. Otherwise threads would block forever on the
  stale lock: a bug.

A whitelist pass (redo-log / checksum protected reads) runs after
validation to catch the false positives validation structurally cannot see.
"""

import bisect

from ..instrument.context import InstrumentationContext
from ..instrument.events import Observer
from ..instrument.hooks import PmView
from ..obs.tracer import NULL_TRACER
from ..pmem.pool import PmemPool
from ..runtime.policies import RoundRobinPolicy
from ..runtime.scheduler import Scheduler
from .records import Verdict
from .whitelist import Whitelist


class WriteRecorder(Observer):
    """Records the byte ranges written during recovery.

    ``intervals`` is kept sorted, disjoint, and coalesced (touching
    intervals are merged) *incrementally* on every store, so a coverage
    query is one binary search — O(log n) — instead of re-sorting the
    raw store log per query. Recovery code with thousands of writes is
    queried once per recorded side effect; the old sort-per-query made
    that O(n log n) each time.
    """

    def __init__(self):
        #: Sorted list of disjoint, non-touching ``(start, stop)`` pairs.
        self.intervals = []

    def on_store(self, event):
        if event.size <= 0:
            return
        start, stop = event.addr, event.addr + event.size
        intervals = self.intervals
        # Leftmost existing interval that overlaps or touches [start, stop):
        # predecessor first (it may extend past `start`), then absorb every
        # successor starting at or before `stop`.
        lo = bisect.bisect_right(intervals, (start,)) - 1
        if lo >= 0 and intervals[lo][1] >= start:
            start = min(start, intervals[lo][0])
        else:
            lo += 1
        hi = lo
        while hi < len(intervals) and intervals[hi][0] <= stop:
            stop = max(stop, intervals[hi][1])
            hi += 1
        intervals[lo:hi] = [(start, stop)]

    def covers(self, addr, size):
        """True iff ``[addr, addr+size)`` is fully covered by recorded writes."""
        if size <= 0:
            return True
        # Coalesced + disjoint: a contiguous range is covered iff one
        # interval contains it entirely. Find the rightmost interval
        # whose start is <= addr (the inf sentinel sorts after any stop).
        index = bisect.bisect_right(self.intervals,
                                    (addr, float("inf"))) - 1
        return index >= 0 and self.intervals[index][1] >= addr + size


class PostFailureValidator:
    """Replays recovery on crash images and assigns verdicts.

    Args:
        target_factory: Zero-argument callable returning a fresh target
            object exposing ``recover(pool, view)`` (see
            :class:`repro.targets.base.Target`).
        whitelist: Optional :class:`~repro.detect.whitelist.Whitelist`.
        probe_hangs: Also run the target's post-recovery probe operation
            under a bounded scheduler to demonstrate hangs on sync bugs.
        tracer: Optional :class:`~repro.obs.tracer.Tracer`; every verdict
            is emitted as a typed ``verdict`` event.
        metrics: Optional :class:`~repro.obs.metrics.Metrics`; verdicts
            count into ``validate.verdict.<verdict>``.
    """

    def __init__(self, target_factory, whitelist=None, probe_hangs=False,
                 tracer=None, metrics=None):
        self.target_factory = target_factory
        self.whitelist = whitelist or Whitelist()
        self.probe_hangs = probe_hangs
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics

    # ------------------------------------------------------------------

    def _recover(self, record):
        """Run recovery on the record's crash image; returns the recorder."""
        pool = PmemPool.from_image("post-failure", record.crash_image)
        recorder = WriteRecorder()
        ctx = InstrumentationContext(capture_stacks=False)
        ctx.add_observer(recorder)
        view = PmView(pool, None, ctx)
        target = self.target_factory()
        target.recover(pool, view)
        return pool, view, target, recorder

    def validate(self, record):
        """Assign and return the verdict for one inconsistency record."""
        verdict = self._assign(record)
        if self.metrics is not None:
            self.metrics.counter("validate.records").inc()
            self.metrics.counter("validate.verdict.%s" % verdict.value).inc()
        if self.tracer.enabled:
            self.tracer.emit("verdict", kind=record.kind,
                             verdict=verdict.value, note=record.note)
        return verdict

    def _assign(self, record):
        if record.crash_image is None:
            record.verdict = Verdict.PENDING
            record.note = "no crash image captured"
            return record.verdict
        try:
            pool, view, target, recorder = self._recover(record)
        except Exception as exc:  # recovery itself crashed on the image
            record.verdict = Verdict.BUG
            record.note = "recovery failed: %r" % (exc,)
            return record.verdict
        if record.kind in ("inter", "intra"):
            if recorder.covers(record.side_effect_addr,
                               record.side_effect_size):
                record.verdict = Verdict.VALIDATED_FP
                record.note = "side effect overwritten during recovery"
            elif self.whitelist.matches(record):
                record.verdict = Verdict.WHITELISTED_FP
                record.note = "read protected by whitelisted mechanism"
            else:
                record.verdict = Verdict.BUG
        elif record.kind == "sync":
            recovered = pool.read_u64(record.addr) if record.size == 8 \
                else int.from_bytes(pool.read_bytes(record.addr, record.size),
                                    "little")
            if recovered == record.init_val:
                record.verdict = Verdict.VALIDATED_FP
                record.note = "sync variable re-initialized by recovery"
            else:
                record.verdict = Verdict.BUG
                record.note = "sync variable stuck at %d (expected %d)" % (
                    recovered, record.init_val)
                if self.probe_hangs:
                    record.note += self._probe(record, pool, target)
        else:
            raise ValueError("unknown record kind %r" % record.kind)
        return record.verdict

    def _probe(self, record, pool, target):
        """Demonstrate the hang by running one probe op post-recovery."""
        probe = getattr(target, "post_recovery_probe", None)
        if probe is None:
            return ""
        scheduler = Scheduler(RoundRobinPolicy(), max_steps=20_000,
                              spin_hang_limit=200)
        ctx = InstrumentationContext(capture_stacks=False)
        view = PmView(pool, scheduler, ctx)
        scheduler.spawn(lambda: probe(pool, view), "probe")
        outcome = scheduler.run()
        if outcome.status in ("hang", "budget"):
            return "; post-recovery probe hangs"
        return "; post-recovery probe completed"

    def validate_all(self, records):
        """Validate a batch; returns (bugs, validated_fps, whitelisted_fps)."""
        bugs, validated, whitelisted = [], [], []
        for record in records:
            verdict = self.validate(record)
            if verdict is Verdict.BUG:
                bugs.append(record)
            elif verdict is Verdict.VALIDATED_FP:
                validated.append(record)
            elif verdict is Verdict.WHITELISTED_FP:
                whitelisted.append(record)
        return bugs, validated, whitelisted

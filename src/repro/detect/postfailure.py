"""Post-failure validation (§4.4).

For each pre-failure inconsistency, PMRace duplicated the pool at the
crash point. Validation restarts the target on the duplicate and decides:

* **Inter/Intra**: if every byte of the recorded durable side effect was
  overwritten by the recovery code, the inconsistency was fixed
  automatically — a validated false positive. Otherwise it is a bug.
* **Sync**: if the annotated synchronization variable holds its expected
  initial value after recovery, it was correctly re-initialized — a
  validated false positive. Otherwise threads would block forever on the
  stale lock: a bug.

A whitelist pass (redo-log / checksum protected reads) runs after
validation to catch the false positives validation structurally cannot see.

The replay itself is factored out of the verdict logic
(:meth:`PostFailureValidator.replay` → :class:`ReplayResult`), so the
deferred validation service (:mod:`repro.detect.validation_service`) can
replay each *unique* crash image once and feed the same
:class:`ReplayResult` to every record carrying that image. Replays are
fault-contained: each runs under a step/time budget and is retried once
on an exception before the failure is recorded — with the exception text
preserved in ``record.note`` — instead of letting a crashing or runaway
recovery take down the fuzzing loop.
"""

import bisect
import time

from ..instrument.context import InstrumentationContext
from ..instrument.events import Observer
from ..instrument.hooks import PmView
from ..obs.tracer import NULL_TRACER
from ..pmem.pool import PmemPool
from ..runtime.policies import RoundRobinPolicy
from ..runtime.scheduler import Scheduler
from .records import Verdict
from .whitelist import Whitelist

#: Default per-replay budgets: generous enough that any real recovery
#: routine in this repo finishes orders of magnitude below them, tight
#: enough that a looping recovery cannot stall a whole fuzzing run.
REPLAY_MAX_STEPS = 500_000
REPLAY_MAX_SECONDS = 10.0


class WriteRecorder(Observer):
    """Records the byte ranges written during recovery.

    ``intervals`` is kept sorted, disjoint, and coalesced (touching
    intervals are merged) *incrementally* on every store, so a coverage
    query is one binary search — O(log n) — instead of re-sorting the
    raw store log per query. Recovery code with thousands of writes is
    queried once per recorded side effect; the old sort-per-query made
    that O(n log n) each time.
    """

    def __init__(self):
        #: Sorted list of disjoint, non-touching ``(start, stop)`` pairs.
        self.intervals = []

    def on_store(self, event):
        if event.size <= 0:
            return
        start, stop = event.addr, event.addr + event.size
        intervals = self.intervals
        # Leftmost existing interval that overlaps or touches [start, stop):
        # predecessor first (it may extend past `start`), then absorb every
        # successor starting at or before `stop`.
        lo = bisect.bisect_right(intervals, (start,)) - 1
        if lo >= 0 and intervals[lo][1] >= start:
            start = min(start, intervals[lo][0])
        else:
            lo += 1
        hi = lo
        while hi < len(intervals) and intervals[hi][0] <= stop:
            stop = max(stop, intervals[hi][1])
            hi += 1
        intervals[lo:hi] = [(start, stop)]

    def covers(self, addr, size):
        """True iff ``[addr, addr+size)`` is fully covered by recorded writes."""
        if size <= 0:
            return True
        # Coalesced + disjoint: a contiguous range is covered iff one
        # interval contains it entirely. Find the rightmost interval
        # whose start is <= addr (the inf sentinel sorts after any stop).
        index = bisect.bisect_right(self.intervals,
                                    (addr, float("inf"))) - 1
        return index >= 0 and self.intervals[index][1] >= addr + size


class ReplayBudgetExceeded(Exception):
    """A recovery replay overran its step or wall-clock budget."""


class _ReplayBudget(Observer):
    """Aborts a runaway recovery replay after a step/time budget.

    Every observed access counts one step; the wall clock is consulted
    only every 256 steps so a well-behaved recovery pays dict-free
    integer work per access.
    """

    __slots__ = ("max_steps", "max_seconds", "steps", "_t0")

    def __init__(self, max_steps, max_seconds):
        self.max_steps = max_steps
        self.max_seconds = max_seconds
        self.steps = 0
        self._t0 = time.monotonic()

    def _tick(self, _event):
        self.steps += 1
        if self.steps > self.max_steps:
            raise ReplayBudgetExceeded(
                "recovery exceeded %d replay steps" % self.max_steps)
        if self.steps % 256 == 0 and \
                time.monotonic() - self._t0 > self.max_seconds:
            raise ReplayBudgetExceeded(
                "recovery exceeded %.1fs replay budget" % self.max_seconds)

    on_load = on_store = on_flush = on_fence = _tick


class ReplayResult:
    """Everything one recovery replay produced, reusable across records.

    A successful replay carries the recovered ``pool`` (for sync-variable
    reads), the ``target`` instance recovery ran on, and the
    ``recorder`` whose coalesced write intervals answer side-effect
    coverage queries. A failed replay carries ``error`` (formatted
    exception) instead; ``budget_exceeded`` distinguishes a replay the
    budget aborted from one that genuinely crashed.

    ``shared`` is True when the result came from the digest cache and is
    (or may be) consulted by several records: consumers must not mutate
    the pool — the validator replays privately before running the
    pool-mutating post-recovery probe.
    """

    __slots__ = ("pool", "target", "recorder", "error", "budget_exceeded",
                 "shared", "retried")

    def __init__(self, pool=None, target=None, recorder=None, error=None,
                 budget_exceeded=False, retried=False):
        self.pool = pool
        self.target = target
        self.recorder = recorder
        self.error = error
        self.budget_exceeded = budget_exceeded
        self.shared = False
        self.retried = retried

    @property
    def ok(self):
        return self.error is None

    def __repr__(self):
        if self.error is not None:
            return "<ReplayResult failed: %s>" % (self.error,)
        return "<ReplayResult intervals=%d>" % len(self.recorder.intervals)


class PostFailureValidator:
    """Replays recovery on crash images and assigns verdicts.

    Args:
        target_factory: Zero-argument callable returning a **fresh**
            target object exposing ``recover(pool, view)`` (see
            :class:`repro.targets.base.Target`). Recovery must never run
            on the live fuzzing target: a recovery routine that mutates
            instance state would leak each replay into the next one and
            into the fuzzing run itself. The engine derives this factory
            from the target registry (:func:`repro.detect.
            validation_service.fresh_target_factory`).
        whitelist: Optional :class:`~repro.detect.whitelist.Whitelist`.
        probe_hangs: Also run the target's post-recovery probe operation
            under a bounded scheduler to demonstrate hangs on sync bugs.
        tracer: Optional :class:`~repro.obs.tracer.Tracer`; every verdict
            is emitted as a typed ``verdict`` event.
        metrics: Optional :class:`~repro.obs.metrics.Metrics`; verdicts
            count into ``validate.verdict.<verdict>``.
        replay_max_steps / replay_max_seconds: Per-replay fault budget
            (see :class:`_ReplayBudget`).
    """

    def __init__(self, target_factory, whitelist=None, probe_hangs=False,
                 tracer=None, metrics=None,
                 replay_max_steps=REPLAY_MAX_STEPS,
                 replay_max_seconds=REPLAY_MAX_SECONDS):
        self.target_factory = target_factory
        self.whitelist = whitelist or Whitelist()
        self.probe_hangs = probe_hangs
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.replay_max_steps = replay_max_steps
        self.replay_max_seconds = replay_max_seconds

    # ------------------------------------------------------------------
    # replay (fault-contained; no verdict logic)

    def _recover(self, image):
        """Run recovery once on ``image``; returns a ReplayResult (ok)."""
        pool = PmemPool.from_image("post-failure", image)
        recorder = WriteRecorder()
        budget = _ReplayBudget(self.replay_max_steps,
                               self.replay_max_seconds)
        ctx = InstrumentationContext(capture_stacks=False)
        ctx.add_observer(recorder)
        ctx.add_observer(budget)
        view = PmView(pool, None, ctx)
        target = self.target_factory()
        target.recover(pool, view)
        return ReplayResult(pool, target, recorder)

    def replay(self, image):
        """Replay recovery on one crash image, contained and retried.

        Never raises: an exception inside recovery (or a budget abort)
        yields a ``ReplayResult`` whose ``error`` holds the formatted
        exception. Genuine crashes are retried once — recovery is
        deterministic in this simulation, but the retry keeps the
        contract honest for targets with environmental failure modes —
        while budget aborts are not (re-running a runaway replay would
        deterministically burn the budget twice).
        """
        try:
            return self._recover(image)
        except ReplayBudgetExceeded as exc:
            return ReplayResult(error="%r" % (exc,), budget_exceeded=True)
        except Exception as exc:
            first = exc
        try:
            result = self._recover(image)
            result.retried = True
            return result
        except ReplayBudgetExceeded as exc:
            return ReplayResult(error="%r" % (exc,), budget_exceeded=True,
                                retried=True)
        except Exception:
            return ReplayResult(error="%r (persisted across one retry)"
                                % (first,), retried=True)

    # ------------------------------------------------------------------
    # verdicts

    def validate(self, record, replay=None):
        """Assign and return the verdict for one inconsistency record.

        ``replay`` optionally supplies an already-computed
        :class:`ReplayResult` for ``record.crash_image`` (the digest
        cache's reuse hook); without it the image is replayed here.
        """
        verdict = self._assign(record, replay)
        if self.metrics is not None:
            self.metrics.counter("validate.records").inc()
            self.metrics.counter("validate.verdict.%s" % verdict.value).inc()
        if self.tracer.enabled:
            self.tracer.emit("verdict", kind=record.kind,
                             verdict=verdict.value, note=record.note)
        return verdict

    def _assign(self, record, replay=None):
        if record.crash_image is None:
            record.verdict = Verdict.PENDING
            record.note = "no crash image captured"
            return record.verdict
        if replay is None:
            replay = self.replay(record.crash_image)
        if replay.error is not None:
            if replay.budget_exceeded:
                # No replay finished: there is no recovered state to
                # judge, so the verdict stays PENDING with the budget
                # context in the note instead of guessing.
                record.verdict = Verdict.PENDING
                record.note = "replay budget exhausted: %s" % replay.error
            else:
                record.verdict = Verdict.BUG
                record.note = "recovery failed: %s" % replay.error
            return record.verdict
        if record.kind in ("inter", "intra"):
            if replay.recorder.covers(record.side_effect_addr,
                                      record.side_effect_size):
                record.verdict = Verdict.VALIDATED_FP
                record.note = "side effect overwritten during recovery"
            elif self.whitelist.matches(record):
                record.verdict = Verdict.WHITELISTED_FP
                record.note = "read protected by whitelisted mechanism"
            else:
                record.verdict = Verdict.BUG
        elif record.kind == "sync":
            pool = replay.pool
            recovered = pool.read_u64(record.addr) if record.size == 8 \
                else int.from_bytes(pool.read_bytes(record.addr, record.size),
                                    "little")
            if recovered == record.init_val:
                record.verdict = Verdict.VALIDATED_FP
                record.note = "sync variable re-initialized by recovery"
            else:
                record.verdict = Verdict.BUG
                record.note = "sync variable stuck at %d (expected %d)" % (
                    recovered, record.init_val)
                if self.probe_hangs:
                    record.note += self._probe_on(record, replay)
        else:
            raise ValueError("unknown record kind %r" % record.kind)
        return record.verdict

    def _probe_on(self, record, replay):
        """Probe on a private replay when the given one is cache-shared.

        The probe executes a real operation against the recovered pool —
        it mutates it — so a cached replay consulted by other records
        must not be probed directly. Recovery is deterministic, so a
        private re-replay reaches the identical recovered state.
        """
        if replay.shared:
            private = self.replay(record.crash_image)
            if private.error is not None:
                return "; post-recovery probe skipped (%s)" % private.error
            replay = private
        return self._probe(record, replay.pool, replay.target)

    def _probe(self, record, pool, target):
        """Demonstrate the hang by running one probe op post-recovery."""
        probe = getattr(target, "post_recovery_probe", None)
        if probe is None:
            return ""
        scheduler = Scheduler(RoundRobinPolicy(), max_steps=20_000,
                              spin_hang_limit=200)
        ctx = InstrumentationContext(capture_stacks=False)
        view = PmView(pool, scheduler, ctx)
        scheduler.spawn(lambda: probe(pool, view), "probe")
        outcome = scheduler.run()
        if outcome.status == "hang":
            return "; post-recovery probe hangs"
        if outcome.status == "budget":
            # Exhausting the step budget only proves the probe is slow
            # under this scheduler bound, not that it blocks forever —
            # reporting it as a hang would overstate the sync-bug note.
            return "; post-recovery probe exceeded its step budget " \
                   "(inconclusive)"
        return "; post-recovery probe completed"

    def validate_all(self, records):
        """Validate a batch; returns (bugs, validated_fps, whitelisted_fps)."""
        bugs, validated, whitelisted = [], [], []
        for record in records:
            verdict = self.validate(record)
            if verdict is Verdict.BUG:
                bugs.append(record)
            elif verdict is Verdict.VALIDATED_FP:
                validated.append(record)
            elif verdict is Verdict.WHITELISTED_FP:
                whitelisted.append(record)
        return bugs, validated, whitelisted

"""Bug-report serialization and whitelist file I/O.

The original tool writes a detailed report per inconsistency (stack
traces + the seed that triggered it) and lets developers maintain the
whitelist as a file of code locations. These helpers provide the same
workflow: dump a RunResult's findings as JSON, and load/save whitelists
as plain text (one location per line, ``#`` comments).
"""

import json

from .records import (
    BugReport,
    CandidateRecord,
    InconsistencyRecord,
    SyncInconsistencyRecord,
)
from .whitelist import DEFAULT_WHITELIST, Whitelist


def record_to_dict(record):
    """JSON-safe dict for any detection record type."""
    if isinstance(record, CandidateRecord):
        return {
            "type": "candidate",
            "kind": record.kind,
            "addr": record.addr,
            "size": record.size,
            "read_code": record.read_instr,
            "write_code": record.write_instr,
            "reader_tid": record.reader_tid,
            "writer_tid": record.writer_tid,
            "stack": list(record.stack or ()),
        }
    if isinstance(record, InconsistencyRecord):
        return {
            "type": "inconsistency",
            "kind": record.kind,
            "write_code": record.write_instr,
            "read_code": record.read_instr,
            "side_effect_code": record.side_effect_instr,
            "side_effect_addr": record.side_effect_addr,
            "side_effect_size": record.side_effect_size,
            "data_flow": "address" if record.address_flow else "content",
            "verdict": record.verdict.value,
            "note": record.note,
            "stack": list(record.stack or ()),
            "has_repro_bundle": getattr(record, "bundle", None) is not None,
        }
    if isinstance(record, SyncInconsistencyRecord):
        return {
            "type": "sync_inconsistency",
            "kind": "sync",
            "annotation": record.annotation_name,
            "addr": record.addr,
            "expected_init": record.init_val,
            "observed_value": int(record.new_value)
            if isinstance(record.new_value, int) else None,
            "update_code": record.instr_id,
            "verdict": record.verdict.value,
            "note": record.note,
            "has_repro_bundle": getattr(record, "bundle", None) is not None,
        }
    raise TypeError("cannot serialize %r" % (record,))


def report_to_dict(report):
    """JSON-safe dict for one :class:`BugReport`."""
    members = []
    for record in report.records:
        try:
            members.append(record_to_dict(record))
        except TypeError:
            members.append({"type": "hang",
                            "blocked_on": sorted(record.signature())})
    return {
        "bug_id": report.bug_id,
        "target": report.target,
        "kind": report.kind,
        "write_code": report.write_instr,
        "read_code": report.read_instr,
        "description": report.description,
        "seed": report.seed,
        "records": members,
    }


def dump_run_result(result, path):
    """Write a RunResult's findings as a JSON report file; returns path."""
    payload = {
        "target": result.target_name,
        "campaigns": result.campaigns,
        "duration_s": round(result.duration, 3),
        "summary": result.summary(),
        "bugs": [report_to_dict(report) for report in result.bug_reports],
        "inconsistencies": [record_to_dict(r)
                            for r in result.inconsistencies],
        "sync_inconsistencies": [record_to_dict(r)
                                 for r in result.sync_inconsistencies],
        "candidates": [record_to_dict(c) for c in result.candidates],
        "workers": [stats.to_dict()
                    for stats in getattr(result, "worker_stats", ())],
        "corpus_digests": sorted(
            entry["digest"]
            for entry in getattr(result, "corpus_seeds", ())),
        "profile": getattr(result, "profile", {}),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    return path


def load_run_report(path):
    """Load a JSON report written by :func:`dump_run_result`."""
    with open(path) as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
# whitelist files

def save_whitelist(whitelist, path):
    """Write a whitelist as text: one location per line."""
    with open(path, "w") as handle:
        handle.write("# PMRace whitelist: code locations whose reads of\n"
                     "# non-persisted data are crash-consistent (§4.4).\n")
        for entry in whitelist.entries:
            handle.write(entry + "\n")
    return path


def load_whitelist(path, include_defaults=True):
    """Read a whitelist file; blank lines and ``#`` comments ignored."""
    entries = list(DEFAULT_WHITELIST) if include_defaults else []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if line not in entries:
                entries.append(line)
    return Whitelist(entries)

"""Deferred, cached, fault-contained post-failure validation (§4.4).

The engine used to replay full recovery synchronously inside its
``_harvest`` hot path, once per new record. This module moves validation
off the critical path and makes replay work proportional to *unique
crash images* instead of records:

* :class:`ValidationQueue` — records are enqueued as detection finds
  them and validated in FIFO order when the engine drains the queue
  between seeds and at run end (WITCHER-style batching: crash-image
  replay dominates validation wall-clock, so it must not interleave
  with fuzzing).
* **Digest cache** — each distinct crash image (keyed by CRC32 +
  length, :func:`image_digest`) is replayed exactly once; its
  :class:`~repro.detect.postfailure.ReplayResult` (coalesced
  ``WriteRecorder`` intervals + the recovered pool for sync-variable
  reads) is reused by every record carrying a dedup-equal image. The
  cache is pure reuse: verdicts are byte-identical to uncached replay.
* **PENDING upgrades** — a record whose first occurrence carried no
  crash image used to be stamped ``PENDING`` forever while dedup-equal
  duplicates (including ones *with* images) were dropped. The queue
  keeps an index of imageless records by dedup key; when a duplicate
  later carries an image, :meth:`ValidationQueue.offer_image` attaches
  it and schedules re-validation.
* **Fault containment** lives in
  :meth:`~repro.detect.postfailure.PostFailureValidator.replay`: a
  step/time budget per replay, one retry on genuine crashes, and the
  exception text captured into ``record.note``.

:func:`validate_records_parallel` spreads a batch of already-collected
records over a worker-process pool (the ``repro validate --jobs N``
path), partitioning by image digest so each unique image is replayed in
exactly one worker.
"""

import multiprocessing
import zlib
from collections import deque

from ..obs.tracer import NULL_TRACER
from .postfailure import PostFailureValidator
from .records import Verdict
from .whitelist import Whitelist


def image_digest(image):
    """Cheap stable digest of one crash image: (CRC32, length).

    CRC32 over the full image plus the length is collision-safe enough
    for a per-run cache key (images in one run share layout, differing
    in scattered words), and an order of magnitude cheaper than a
    cryptographic hash on the hot path.
    """
    return (zlib.crc32(image) & 0xFFFFFFFF, len(image))


def fresh_target_factory(target):
    """Zero-argument factory building a *fresh* peer of ``target``.

    Recovery must never run on the live fuzzing target (the
    :class:`~repro.detect.postfailure.PostFailureValidator` contract):
    a recovery routine that keeps instance state would contaminate both
    later replays and the ongoing run. Registry-known targets are
    rebuilt through :func:`repro.targets.registry.make_target` (the
    canonical construction path); any other target class — test doubles,
    user-supplied targets — is instantiated directly, which the Target
    contract guarantees is possible (subclasses are stateless and
    zero-argument constructible).
    """
    from ..targets.registry import make_target, target_class

    cls = type(target)
    name = getattr(target, "NAME", None)
    if isinstance(name, str):
        try:
            registered = target_class(name)
        except KeyError:
            registered = None
        if registered is cls:
            return lambda: make_target(name)
    return cls


def make_validation_queue(target_name, whitelist=None, probe_hangs=False,
                          tracer=None, metrics=None, cache=True):
    """A standalone cached :class:`ValidationQueue` for ``target_name``.

    The replay/shrink tooling validates re-detected records outside any
    engine instance; this builds the same validator + queue stack the
    engine wires up, from just a registry target name.
    """
    from ..targets.registry import make_target

    target = make_target(target_name)
    validator = PostFailureValidator(
        fresh_target_factory(target), whitelist or Whitelist(),
        probe_hangs=probe_hangs, tracer=tracer, metrics=metrics)
    return ValidationQueue(validator, tracer=tracer, metrics=metrics,
                           cache=cache)


class ValidationQueue:
    """Deferred post-failure validation with a crash-image replay cache.

    Args:
        validator: The :class:`~repro.detect.postfailure.
            PostFailureValidator` that replays images and assigns
            verdicts.
        tracer: Optional tracer; every drain emits a ``validate_drain``
            event and every PENDING upgrade a ``validate_upgrade``.
        metrics: Optional metrics registry; maintains
            ``validate.cache.hits`` / ``validate.cache.misses`` /
            ``validate.upgrades`` counters and the
            ``validate.queue.depth`` gauge.
        cache: Disable to replay every record's image individually
            (the A/B knob ``benchmarks/bench_validation.py`` measures).
    """

    def __init__(self, validator, tracer=None, metrics=None, cache=True):
        self.validator = validator
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.cache_enabled = cache
        self._queue = deque()
        self._queued_ids = set()
        #: dedup key -> imageless record awaiting an image (the
        #: re-validation hook `offer_image` drains).
        self._awaiting_image = {}
        self._cache = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.upgrades = 0
        self.validated = 0
        if metrics is not None:
            self._depth_gauge = metrics.gauge("validate.queue.depth")
            self._hit_counter = metrics.counter("validate.cache.hits")
            self._miss_counter = metrics.counter("validate.cache.misses")
            self._upgrade_counter = metrics.counter("validate.upgrades")
        else:
            self._depth_gauge = None
            self._hit_counter = None
            self._miss_counter = None
            self._upgrade_counter = None

    def __len__(self):
        return len(self._queue)

    @property
    def awaiting_image(self):
        """Count of PENDING records still waiting for a crash image."""
        return len(self._awaiting_image)

    # ------------------------------------------------------------------
    # intake

    def register(self, record):
        """Index an imageless record so a later duplicate can upgrade it.

        Called for every new unique record even when validation is
        disabled, so the ``validate`` CLI's deferred pass still benefits
        from images that arrive on later duplicates.
        """
        if record.crash_image is None:
            self._awaiting_image[record.dedup_key()] = record

    def enqueue(self, record):
        """Schedule one record for the next drain."""
        self.register(record)
        self._queue.append(record)
        self._queued_ids.add(id(record))
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self._queue))

    def offer_image(self, key, image):
        """Attach a duplicate's crash image to the record indexed at
        ``key``; schedules re-validation when the record already went
        through a drain as PENDING. Returns True when an upgrade
        happened."""
        if image is None:
            return False
        record = self._awaiting_image.pop(key, None)
        if record is None:
            return False
        record.crash_image = image
        self.upgrades += 1
        if self._upgrade_counter is not None:
            self._upgrade_counter.inc()
        if self.tracer.enabled:
            self.tracer.emit("validate_upgrade", kind=record.kind,
                             key=list(key))
        if id(record) not in self._queued_ids:
            # Already drained (stamped PENDING, "no crash image
            # captured") — or validation is deferred to an external
            # pass; either way the attached image makes the record
            # judgeable, so queue it (again).
            self._queue.append(record)
            self._queued_ids.add(id(record))
            if self._depth_gauge is not None:
                self._depth_gauge.set(len(self._queue))
        return True

    # ------------------------------------------------------------------
    # drain

    def _replay_for(self, record):
        """The (possibly cached) ReplayResult for the record's image."""
        image = record.crash_image
        if image is None:
            return None
        if not self.cache_enabled:
            self.cache_misses += 1
            if self._miss_counter is not None:
                self._miss_counter.inc()
            return self.validator.replay(image)
        digest = image_digest(image)
        replay = self._cache.get(digest)
        if replay is None:
            self.cache_misses += 1
            if self._miss_counter is not None:
                self._miss_counter.inc()
            replay = self.validator.replay(image)
            replay.shared = True
            self._cache[digest] = replay
        else:
            self.cache_hits += 1
            if self._hit_counter is not None:
                self._hit_counter.inc()
        return replay

    def drain(self):
        """Validate every queued record in arrival order; returns the
        number of records validated."""
        drained = 0
        while self._queue:
            record = self._queue.popleft()
            self._queued_ids.discard(id(record))
            self.validator.validate(record, replay=self._replay_for(record))
            drained += 1
        self.validated += drained
        if self._depth_gauge is not None:
            self._depth_gauge.set(0)
        if drained and self.tracer.enabled:
            self.tracer.emit("validate_drain", drained=drained,
                             cache_hits=self.cache_hits,
                             cache_misses=self.cache_misses,
                             awaiting_image=len(self._awaiting_image))
        return drained

    def stats(self):
        """Cache/queue statistics as a plain dict (CLI + tests)."""
        return {
            "validated": self.validated,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "unique_images": len(self._cache),
            "upgrades": self.upgrades,
            "awaiting_image": len(self._awaiting_image),
        }


# ----------------------------------------------------------------------
# parallel record validation (`repro validate --jobs N`)


def _validate_chunk(payload):
    """Pool entry point: validate one chunk of records, never raise.

    Returns ``(results, stats)`` where results are minimal
    ``(index, verdict value, note)`` tuples — crash images are shipped
    *to* workers but never back.
    """
    target_name, whitelist_entries, indexed_records, target_modules = \
        payload
    from ..targets.registry import load_target_modules, make_target

    if target_modules:
        # Re-register plugin targets in this worker interpreter before
        # resolving the target by name.
        load_target_modules(target_modules)
    validator = PostFailureValidator(
        lambda: make_target(target_name), Whitelist(whitelist_entries))
    queue = ValidationQueue(validator)
    records = [record for _index, record in indexed_records]
    for record in records:
        queue.enqueue(record)
    queue.drain()
    results = [(index, record.verdict.value, record.note)
               for (index, _), record in zip(indexed_records, records)]
    return results, queue.stats()


def validate_records_parallel(target_name, records, whitelist=None,
                              jobs=2, metrics=None, target_modules=()):
    """Validate ``records`` with a pool of ``jobs`` worker processes.

    Records are partitioned by crash-image digest (imageless records
    round-robin), so each unique image is replayed in exactly one
    worker and the per-worker digest cache stays effective. Verdicts
    and notes are copied back onto the caller's record objects; the
    merged per-worker cache stats are returned as one dict.
    """
    if jobs <= 1 or len(records) <= 1:
        from ..targets.registry import make_target

        validator = PostFailureValidator(
            lambda: make_target(target_name), whitelist, metrics=metrics)
        queue = ValidationQueue(validator, metrics=metrics)
        for record in records:
            queue.enqueue(record)
        queue.drain()
        return queue.stats()

    entries = list((whitelist or Whitelist()).entries)
    chunks = [[] for _ in range(jobs)]
    assignment = {}
    spill = 0
    for index, record in enumerate(records):
        if record.crash_image is None:
            chunk = spill % jobs
            spill += 1
        else:
            digest = image_digest(record.crash_image)
            chunk = assignment.setdefault(digest, len(assignment) % jobs)
        chunks[chunk].append((index, record))
    payloads = [(target_name, entries, chunk, tuple(target_modules))
                for chunk in chunks if chunk]
    stats = {"validated": 0, "cache_hits": 0, "cache_misses": 0,
             "unique_images": 0, "upgrades": 0, "awaiting_image": 0}
    pool = multiprocessing.Pool(min(jobs, len(payloads)))
    try:
        for results, chunk_stats in pool.map(_validate_chunk, payloads):
            for index, verdict_value, note in results:
                records[index].verdict = Verdict(verdict_value)
                records[index].note = note
                if metrics is not None:
                    metrics.counter("validate.verdict.%s"
                                    % verdict_value).inc()
            for key in stats:
                stats[key] += chunk_stats[key]
    finally:
        pool.close()
        pool.join()
    if metrics is not None:
        metrics.counter("validate.records").inc(stats["validated"])
        metrics.counter("validate.cache.hits").inc(stats["cache_hits"])
        metrics.counter("validate.cache.misses").inc(stats["cache_misses"])
    return stats

"""The paper's persistency-state hash table, rebuilt from observed events.

§4.3: "PMRace maintains a hash table to record the persistency states of
PM data during runtime": stores set ``PM_DIRTY`` (``PM_CLEAN`` for
non-temporal stores) with the writer thread recorded, flushes move regions
to ``PM_CLEAN``. This observer reconstructs exactly that structure from
the event stream — independently of the simulator's ground truth — and is
what the auxiliary checkers (e.g. redundant-flush detection, §4.3's
"unnecessary persistency operations" example) query.
"""

from ..instrument.events import Observer
from ..pmem.cacheline import CACHE_LINE_SIZE, WORD_SIZE, align_down

PM_CLEAN = "PM_CLEAN"
PM_DIRTY = "PM_DIRTY"
PM_PENDING = "PM_PENDING"


class WordEntry:
    """State of one 8-byte PM word as seen through the event stream."""

    __slots__ = ("state", "writer_tid", "write_instr")

    def __init__(self, state, writer_tid, write_instr):
        self.state = state
        self.writer_tid = writer_tid
        self.write_instr = write_instr


class PersistencyStateTable(Observer):
    """Event-driven reconstruction of per-word persistency states.

    Args:
        callsites: Optional :class:`~repro.instrument.callsite.
            CallSiteTable` used to resolve interned instruction ids at
            the query boundary (``writer_of``, ``redundant_flushes``);
            internal bookkeeping keeps the raw event ids.
    """

    def __init__(self, callsites=None):
        self.callsites = callsites
        self._words = {}
        self._pending_by_tid = {}
        #: CLWBs that hit fully-clean lines — redundant flush candidates.
        self.redundant_flushes = []

    def _site(self, instr_id):
        if self.callsites is not None:
            return self.callsites.name(instr_id)
        return instr_id

    def _word_range(self, addr, size):
        first = align_down(addr, WORD_SIZE)
        last = align_down(addr + max(size, 1) - 1, WORD_SIZE)
        return range(first, last + WORD_SIZE, WORD_SIZE)

    # ------------------------------------------------------------------
    # observer callbacks

    def on_store(self, event):
        state = PM_CLEAN if event.kind == "ntstore" else PM_DIRTY
        for word in self._word_range(event.addr, event.size):
            if state == PM_CLEAN:
                self._words.pop(word, None)
            else:
                self._words[word] = WordEntry(state, event.tid, event.instr_id)

    def on_flush(self, event):
        line_start = align_down(event.addr, CACHE_LINE_SIZE)
        dirty = False
        for word in self._word_range(line_start, CACHE_LINE_SIZE):
            entry = self._words.get(word)
            if entry is not None and entry.state == PM_DIRTY:
                entry.state = PM_PENDING
                dirty = True
                self._pending_by_tid.setdefault(event.tid, set()).add(word)
        if not dirty:
            self.redundant_flushes.append((self._site(event.instr_id),
                                           event.addr))

    def on_fence(self, event):
        pending = self._pending_by_tid.pop(event.tid, None)
        if not pending:
            return
        for word in pending:
            entry = self._words.get(word)
            if entry is not None and entry.state == PM_PENDING:
                del self._words[word]

    # ------------------------------------------------------------------
    # queries

    def state_of(self, addr):
        """PM_CLEAN / PM_DIRTY / PM_PENDING of the word containing addr."""
        entry = self._words.get(align_down(addr, WORD_SIZE))
        return entry.state if entry is not None else PM_CLEAN

    def writer_of(self, addr):
        """``(tid, instr_id)`` of the last non-persisted writer, or None."""
        entry = self._words.get(align_down(addr, WORD_SIZE))
        if entry is None:
            return None
        return entry.writer_tid, self._site(entry.write_instr)

    def is_clean(self, addr, size=8):
        return all(word not in self._words
                   for word in self._word_range(addr, size))

    def dirty_word_count(self):
        return len(self._words)

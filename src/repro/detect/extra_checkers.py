"""Additional PM checkers built on PMRace's framework (§4.3).

The paper notes that "implementing other PM checkers is possible by using
PMRace's framework" and sketches two: detecting *unnecessary persistency
operations* (flushing already-clean data) and *missing flushes* (PM data
modified but not persisted when a scope exits). Both are provided here as
ordinary observers/scans, usable standalone or alongside the concurrency
checkers — they also back Table 2's bug 4 ("redundant PM writes") style
findings.
"""

from ..instrument.events import Observer
from ..pmem.cacheline import WORD_SIZE, align_down


class RedundantFlushRecord:
    """A CLWB issued for a cache line with no non-persisted data."""

    __slots__ = ("instr_id", "addr", "count")

    def __init__(self, instr_id, addr):
        self.instr_id = instr_id
        self.addr = addr
        self.count = 1

    def __repr__(self):
        return "<RedundantFlush %s addr=%#x x%d>" % (self.instr_id,
                                                     self.addr, self.count)


class RedundantFlushChecker(Observer):
    """Flags flushes of clean lines — wasted persistency operations.

    Performance-bug class: each redundant CLWB costs a write-back slot on
    real hardware. Deduplicated per flush site.
    """

    def __init__(self, pool, callsites=None):
        self.pool = pool
        self.callsites = callsites
        self.records = {}

    def on_flush(self, event):
        line_start = align_down(event.addr, 64)
        if self.pool.memory.is_persisted(line_start,
                                         min(64, self.pool.size - line_start)):
            record = self.records.get(event.instr_id)
            if record is None:
                instr = self.callsites.name(event.instr_id) \
                    if self.callsites is not None else event.instr_id
                self.records[event.instr_id] = RedundantFlushRecord(
                    instr, event.addr)
            else:
                record.count += 1

    @property
    def redundant_flushes(self):
        return list(self.records.values())


class MissingFlushRecord:
    """PM words left dirty when the observed scope ended."""

    __slots__ = ("instr_id", "thread_id", "addrs")

    def __init__(self, instr_id, thread_id):
        self.instr_id = instr_id
        self.thread_id = thread_id
        self.addrs = []

    @property
    def byte_count(self):
        return len(self.addrs) * WORD_SIZE

    def __repr__(self):
        return "<MissingFlush %s thread=%s words=%d>" % (
            self.instr_id, self.thread_id, len(self.addrs))


def scan_missing_flushes(pool, ignore_instrs=()):
    """Report every word still dirty in ``pool``, grouped by store site.

    Run at the end of an execution (or any quiescent point): data written
    by a store that was never followed by CLWB+SFENCE (or ntstore) would
    be lost by a crash here. Sequential testing tools (AGAMOTTO, PMDebugger)
    report exactly this class; PMRace's framework gets it from one scan of
    the ground-truth dirty-word table.

    Args:
        ignore_instrs: Substrings of store sites to skip (e.g. scratch
            areas that are rebuilt anyway).
    """
    records = {}
    for word, store in pool.memory.dirty_words():
        instr = store.instr_id or "<unknown>"
        if any(pattern in instr for pattern in ignore_instrs):
            continue
        key = (instr, store.thread_id)
        record = records.get(key)
        if record is None:
            record = MissingFlushRecord(instr, store.thread_id)
            records[key] = record
        record.addrs.append(word)
    return list(records.values())


class FenceCounter(Observer):
    """Counts persistency instructions — the raw material for the extra
    performance analyses (flushes per op, fences per flush)."""

    def __init__(self):
        self.flushes = 0
        self.fences = 0
        self.stores = 0
        self.ntstores = 0

    def on_flush(self, event):
        self.flushes += 1

    def on_fence(self, event):
        self.fences += 1

    def on_store(self, event):
        if event.kind == "ntstore":
            self.ntstores += 1
        else:
            self.stores += 1

"""PMRace engine: PM-aware coverage-guided fuzzing (§4).

The engine drives the three exploration tiers of §4.2.3 over one target:

* **Execution tier** — each interleaving choice is executed several times
  (different scheduler seeds) before moving on.
* **Interleaving tier** — when executions stop improving coverage, the
  next entry from the shared-access priority queue becomes the new set of
  sync points for the Figure-6 controller.
* **Seed tier** — when no interleaving of the current seed improves
  coverage, the operation mutator evolves the corpus and the priority
  queue is reconstructed.

Feedback is branch (edge) coverage plus PM alias pair coverage; every new
unique inconsistency goes straight through post-failure validation so the
run result carries final verdicts.
"""

import copy
import time

from ..detect.dedup import group_bugs
from ..detect.postfailure import PostFailureValidator
from ..detect.records import Verdict
from ..detect.validation_service import ValidationQueue, fresh_target_factory
from ..detect.whitelist import Whitelist
from ..obs.profiling import RunProfiler, merge_profiles
from ..obs.tracer import NULL_TRACER
from ..runtime.policies import DelayInjectionPolicy, SeededRandomPolicy
from .campaign import run_campaign
from .checkpoints import make_state_provider
from .corpus import Corpus
from .coverage import CoverageSet
from .inputgen import OperationMutator
from .priority import SharedAccessQueue
from .seeding import policy_seed


class PMRaceConfig:
    """Tunables for one fuzzing run. Defaults follow §6.1 where sensible.

    Attributes:
        mode: "pmrace" (sync-point guided), "delay" (random delay
            injection baseline), or "random" (plain random scheduler).
        n_threads: Worker threads per campaign (4 in the paper).
        enable_interleaving_tier / enable_seed_tier: Figure 9 ablations.
        coverage_feedback: "both", "branch", or "alias" — which metrics
            count as progress (alias-coverage ablation).
    """

    def __init__(self, mode="pmrace", n_threads=4, ops_per_thread=6,
                 max_campaigns=120, time_budget=None,
                 execs_per_interleaving=2, max_interleavings_per_seed=8,
                 max_seeds=40, use_checkpoints=None,
                 enable_interleaving_tier=True, enable_seed_tier=True,
                 taint_enabled=True, snapshot_images=True,
                 capture_stacks=True, validate=True, probe_hangs=False,
                 writer_waiting=150, max_steps=30_000, spin_hang_limit=400,
                 coverage_feedback="both", base_seed=0, whitelist=None,
                 eadr=False, profile=True, evict_fraction=0.0,
                 static_hints=False, capture_repro=False,
                 corpus_schedule="energy", corpus_dir=None,
                 initial_corpus=None, target_modules=()):
        self.mode = mode
        self.n_threads = n_threads
        self.ops_per_thread = ops_per_thread
        self.max_campaigns = max_campaigns
        self.time_budget = time_budget
        self.execs_per_interleaving = execs_per_interleaving
        self.max_interleavings_per_seed = max_interleavings_per_seed
        self.max_seeds = max_seeds
        self.use_checkpoints = use_checkpoints
        self.enable_interleaving_tier = enable_interleaving_tier
        self.enable_seed_tier = enable_seed_tier
        self.taint_enabled = taint_enabled
        self.snapshot_images = snapshot_images
        self.capture_stacks = capture_stacks
        self.validate = validate
        self.probe_hangs = probe_hangs
        self.writer_waiting = writer_waiting
        self.max_steps = max_steps
        self.spin_hang_limit = spin_hang_limit
        self.coverage_feedback = coverage_feedback
        self.base_seed = base_seed
        self.whitelist = whitelist
        #: Simulate an eADR platform (persistent caches, §6.6).
        self.eadr = eadr
        #: Per-line probability that a DIRTY line was evicted by the
        #: hardware before a crash point (arbitrary cache eviction,
        #: §2.1); sampled with a campaign RNG derived from ``base_seed``
        #: so eviction patterns vary across campaigns and seeds.
        self.evict_fraction = evict_fraction
        #: Collect per-phase wall times and execs/sec samples into
        #: ``RunResult.profile`` (a few clock reads per campaign); turn
        #: off for a true no-observability baseline.
        self.profile = profile
        #: Pre-seed each seed's priority queue with pmlint's static
        #: findings (:mod:`repro.analysis.hints`): statically flagged
        #: unflushed-store sites and their overlapping loads enter the
        #: queue at maximal frequency before any dynamic profile exists,
        #: so the first guided interleavings aim at suspicious windows.
        self.static_hints = static_hints
        #: Record a deterministic repro bundle (schedule decision vector,
        #: RNG draw journals, op lists — :mod:`repro.replay`) for every
        #: kept inconsistency record. Off by default: capture costs one
        #: policy wrapper plus per-campaign journaling.
        self.capture_repro = capture_repro
        #: Seed-tier parent selection: "energy" (AFL-style, rare-coverage
        #: and recently-progressing seeds get more evolution picks) or
        #: "uniform" (the historical unweighted draw). Both spend the
        #: same seeded mutator RNG stream, so either is deterministic.
        self.corpus_schedule = corpus_schedule
        #: Optional on-disk corpus directory (one versioned JSON file per
        #: retained seed, written atomically): loaded on start, so a
        #: killed run resumes with its retained corpus.
        self.corpus_dir = corpus_dir
        #: Exported corpus entries (``RunResult.corpus_seeds`` shape) to
        #: adopt before fuzzing — how the parallel service re-seeds a
        #: retried worker from the already-merged shared corpus.
        self.initial_corpus = initial_corpus
        #: Plugin modules (``--target-module`` specs) to import before
        #: resolving targets by name. Carried in the config so worker
        #: *processes* (parallel fuzzing, ``validate --jobs``) can
        #: re-register dynamically loaded targets in their own
        #: interpreter before ``make_target`` runs.
        self.target_modules = tuple(target_modules)


def fuzz_target(target, config=None, seeds=(7, 13), tracer=None,
                metrics=None):
    """Fuzz ``target`` once per base seed and merge the findings.

    Multiple seeded sessions stand in for the paper's long wall-clock
    fuzzing runs; results are deduplicated exactly like within one run.

    The config is deep-copied per session so mutable members (the
    whitelist in particular) are never shared between sessions. The
    optional tracer/metrics objects are shared across sessions (they are
    observability sinks, not session state).
    """
    merged = None
    for seed in seeds:
        cfg = copy.deepcopy(config) if config is not None else PMRaceConfig()
        cfg.base_seed = seed
        result = PMRace(target, cfg, tracer=tracer, metrics=metrics).run()
        if merged is None:
            merged = result
        else:
            merged.merge(result)
    return merged


class HangRecord:
    """A pre-failure hang not caused by sync-point stalls (e.g. a missing
    unlock — a conventional DRAM concurrency bug, Table 2's bug 5)."""

    def __init__(self, blocked, seed_id):
        self.blocked = list(blocked)
        self.seed_id = seed_id
        self.kind = "hang"

    def signature(self):
        return frozenset(reason for _, reason in self.blocked
                         if reason is not None)

    def __repr__(self):
        return "<HangRecord %s>" % (sorted(self.signature()),)


class RunResult:
    """Aggregated outcome of one fuzzing run on one target."""

    def __init__(self, target_name, config):
        self.target_name = target_name
        self.config = config
        self.campaigns = 0
        self.duration = 0.0
        self.candidates = []
        self.inconsistencies = []
        self.sync_inconsistencies = []
        self.hangs = []
        self.coverage_timeline = []
        self.inter_hit_times = []
        self.first_inter_time = None
        self.first_candidate_time = None
        self.op_errors = 0
        self.annotation_count = 0
        self.bug_reports = []
        #: Profiling output (:meth:`repro.obs.profiling.RunProfiler.
        #: to_dict`): per-phase wall time + execs/sec samples. Empty when
        #: ``config.profile`` is off.
        self.profile = {}
        #: Per-worker statistics attached by the parallel service
        #: (:mod:`repro.core.parallel`); empty for single-session runs.
        self.worker_stats = []
        #: Exported retained corpus (plain-JSON ``SeedEntry`` documents,
        #: :meth:`repro.core.corpus.Corpus.export`); :meth:`merge` folds
        #: sessions together by content digest so the parallel service
        #: can re-seed retried workers from the shared corpus.
        self.corpus_seeds = []
        #: PENDING records upgraded during :meth:`merge` by adopting a
        #: dedup-equal duplicate's verdict (cross-session re-validation).
        self.verdict_upgrades = 0
        #: Signal number when a durable-session run was stopped by
        #: SIGINT/SIGTERM (None for a run that completed normally).
        self.interrupted = None
        self._candidate_keys = set()
        # Key → record maps (not plain sets): merge and the PENDING
        # upgrade path both need the surviving record for a dedup key.
        self._inconsistency_keys = {}
        self._sync_keys = {}
        self._hang_signatures = set()

    # ------------------------------------------------------------------
    # accounting views

    @property
    def inter_candidates(self):
        return [c for c in self.candidates if c.cross_thread]

    @property
    def inter_inconsistencies(self):
        return [r for r in self.inconsistencies if r.kind == "inter"]

    @property
    def intra_inconsistencies(self):
        return [r for r in self.inconsistencies if r.kind == "intra"]

    def by_verdict(self, records, verdict):
        return [r for r in records if r.verdict is verdict]

    @property
    def executions_per_second(self):
        if self.duration <= 0:
            return 0.0
        return self.campaigns / self.duration

    def merge(self, other):
        """Fold another run's findings in (multiple sessions ≈ more
        fuzzing time); bug reports are regrouped afterwards."""
        for candidate in other.candidates:
            key = (candidate.read_instr, candidate.write_instr,
                   candidate.cross_thread)
            if key not in self._candidate_keys:
                self._candidate_keys.add(key)
                self.candidates.append(candidate)
        for record in other.inconsistencies:
            key = record.dedup_key()
            if key not in self._inconsistency_keys:
                self._inconsistency_keys[key] = record
                self.inconsistencies.append(record)
            else:
                self._upgrade_verdict(self._inconsistency_keys[key], record)
        for record in other.sync_inconsistencies:
            key = record.dedup_key()
            if key not in self._sync_keys:
                self._sync_keys[key] = record
                self.sync_inconsistencies.append(record)
            else:
                self._upgrade_verdict(self._sync_keys[key], record)
        for hang in other.hangs:
            signature = hang.signature()
            if signature not in self._hang_signatures:
                self._hang_signatures.add(signature)
                self.hangs.append(hang)
        offset_c = self.campaigns
        offset_t = self.duration
        for campaign, elapsed, branch, alias in other.coverage_timeline:
            self.coverage_timeline.append(
                (campaign + offset_c, elapsed + offset_t, branch, alias))
        self.inter_hit_times.extend(
            (t + offset_t, n) for t, n in other.inter_hit_times)
        if other.first_inter_time is not None and self.first_inter_time \
                is None:
            self.first_inter_time = other.first_inter_time + offset_t
        if other.first_candidate_time is not None and \
                self.first_candidate_time is None:
            self.first_candidate_time = other.first_candidate_time + offset_t
        known = {entry["digest"]: entry for entry in self.corpus_seeds}
        for entry in other.corpus_seeds:
            kept = known.get(entry["digest"])
            if kept is None:
                known[entry["digest"]] = entry
                self.corpus_seeds.append(entry)
            else:
                # Same input retained by several sessions: one document
                # survives, carrying the summed scheduling statistics.
                for field in ("picks", "campaigns", "new_branch",
                              "new_alias", "inconsistencies"):
                    kept["stats"][field] += entry["stats"][field]
        self.profile = merge_profiles(self.profile, other.profile)
        self.campaigns += other.campaigns
        self.duration += other.duration
        self.worker_stats.extend(other.worker_stats)
        self.op_errors += other.op_errors
        self.annotation_count = max(self.annotation_count,
                                    other.annotation_count)
        self.verdict_upgrades += other.verdict_upgrades
        self._regroup()
        return self

    def _upgrade_verdict(self, kept, duplicate):
        """Adopt a dedup-equal duplicate's judgement when the kept record
        never got one: a session whose first occurrence carried no crash
        image stamps PENDING, and another session's duplicate — validated
        with an image — settles the verdict."""
        # Repro bundles ride the same adoption rule as crash images: a
        # duplicate captured with a bundle makes a bundle-less kept
        # record replayable (the bundles reproduce the same dedup key).
        if getattr(kept, "bundle", None) is None and \
                getattr(duplicate, "bundle", None) is not None:
            kept.bundle = duplicate.bundle
        if kept.verdict is Verdict.PENDING:
            if duplicate.verdict is not Verdict.PENDING:
                kept.verdict = duplicate.verdict
                kept.note = duplicate.note
                if kept.crash_image is None:
                    kept.crash_image = duplicate.crash_image
                self.verdict_upgrades += 1
            elif kept.crash_image is None and \
                    duplicate.crash_image is not None:
                # Neither side was judged, but the duplicate carries an
                # image a later validation pass can replay.
                kept.crash_image = duplicate.crash_image

    def _regroup(self):
        bug_records = [r for r in self.inconsistencies
                       if r.verdict is Verdict.BUG]
        bug_records += [r for r in self.sync_inconsistencies
                        if r.verdict is Verdict.BUG]
        self.bug_reports = group_bugs(self.target_name, bug_records)
        from ..detect.records import BugReport
        for hang in self.hangs:
            self.bug_reports.append(BugReport(
                len(self.bug_reports) + 1, self.target_name, "hang",
                None, None,
                "threads blocked forever on %s (missing unlock or "
                "lost wake-up)" % sorted(hang.signature()),
                [hang]))

    def summary(self):
        return {
            "target": self.target_name,
            "campaigns": self.campaigns,
            "inter_candidates": len(self.inter_candidates),
            "inter": len(self.inter_inconsistencies),
            "intra": len(self.intra_inconsistencies),
            "sync": len(self.sync_inconsistencies),
            "inter_validated_fp": len(self.by_verdict(
                self.inter_inconsistencies, Verdict.VALIDATED_FP)),
            "inter_whitelisted_fp": len(self.by_verdict(
                self.inter_inconsistencies, Verdict.WHITELISTED_FP)),
            "sync_validated_fp": len(self.by_verdict(
                self.sync_inconsistencies, Verdict.VALIDATED_FP)),
            "bugs": len(self.bug_reports),
            "hangs": len(self.hangs),
            "annotations": self.annotation_count,
            "verdict_upgrades": self.verdict_upgrades,
            "corpus_seeds": len(self.corpus_seeds),
        }


class PMRace:
    """The fuzzer facade: ``PMRace(target, config).run()``.

    Args:
        target: The :class:`~repro.targets.base.Target` to fuzz.
        config: A :class:`PMRaceConfig`.
        tracer: Optional :class:`~repro.obs.tracer.Tracer`; defaults to
            the shared null tracer (no records, near-zero cost).
        metrics: Optional :class:`~repro.obs.metrics.Metrics` registry
            threaded into every hot path of the run.
    """

    def __init__(self, target, config=None, tracer=None, metrics=None):
        self.target = target
        self.config = config or PMRaceConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.whitelist = self.config.whitelist or Whitelist()
        # Replay recovery on a *fresh* target instance, never the live
        # fuzzing one: a target whose recover() keeps instance state
        # would otherwise contaminate both the ongoing run and every
        # later replay.
        self.validator = PostFailureValidator(
            fresh_target_factory(target), self.whitelist,
            probe_hangs=self.config.probe_hangs,
            tracer=self.tracer, metrics=self.metrics)
        self.validation = ValidationQueue(self.validator,
                                          tracer=self.tracer,
                                          metrics=self.metrics)

    # ------------------------------------------------------------------

    def _make_policy(self, campaign_index):
        seed = policy_seed(self.config.base_seed, campaign_index)
        if self.config.mode == "delay":
            return DelayInjectionPolicy(seed)
        return SeededRandomPolicy(seed)

    def _progress(self, new_branch, new_alias):
        feedback = self.config.coverage_feedback
        if feedback == "branch":
            return new_branch > 0
        if feedback == "alias":
            return new_alias > 0
        return new_branch > 0 or new_alias > 0

    # ------------------------------------------------------------------

    def run(self):
        """Execute the fuzzing loop; returns a :class:`RunResult`."""
        cfg = self.config
        tracer = self.tracer
        result = RunResult(self.target.NAME, cfg)
        provider = make_state_provider(self.target, cfg.use_checkpoints,
                                       eadr=cfg.eadr)
        space = self.target.operation_space()
        import random as _random
        mutator = OperationMutator(space, cfg.n_threads, cfg.ops_per_thread,
                                   rng=_random.Random(cfg.base_seed))
        if cfg.capture_repro:
            # Capture mode journals the draws each campaign consumes:
            # these streams are shared across campaigns, so replaying
            # campaign N standalone needs its draws, not the seed.
            from ..replay import CampaignCapture, RecordingRandom
            from ..runtime.policies import RecordingPolicy
            priv_rng = RecordingRandom(cfg.base_seed + 1)
            evict_rng = RecordingRandom(cfg.base_seed + 2)
        else:
            priv_rng = _random.Random(cfg.base_seed + 1)
            # Independent stream for crash-image eviction sampling so
            # eviction patterns track the campaign seed without perturbing
            # the privileged-election or mutation draws.
            evict_rng = _random.Random(cfg.base_seed + 2)
        # One interning table per run: skips, coverage, and the priority
        # queue compare call-site ids across campaigns.
        from ..instrument.callsite import CallSiteTable
        callsites = CallSiteTable()
        # Seed-tier corpus: persisted seeds (resume) come first in their
        # stored retention order; the deterministic populate/initial
        # seeds are always regenerated (keeping the mutator RNG stream
        # identical whether or not a resume found them on disk) and
        # dedup into their loaded twins.
        corpus = Corpus(schedule=cfg.corpus_schedule,
                        persist_dir=cfg.corpus_dir,
                        metrics=self.metrics, tracer=tracer)
        corpus.load()
        corpus.add_initial(mutator.populate_seed())
        corpus.add_initial(mutator.initial_seed())
        for exported in cfg.initial_corpus or ():
            corpus.add_exported(exported)
        branch_cov = CoverageSet(self.metrics, "coverage.branch")
        alias_cov = CoverageSet(self.metrics, "coverage.alias")
        profiler = RunProfiler() if cfg.profile else None
        campaign_counter = None if self.metrics is None else \
            self.metrics.counter("engine.campaigns")
        skips = {}
        start = time.monotonic()
        seed_index = 0
        use_syncpoints = (cfg.mode == "pmrace"
                          and cfg.enable_interleaving_tier)
        static_hints = []
        if cfg.static_hints and use_syncpoints:
            # Collected once per run (lint is pure AST work, cached per
            # target class); a lint failure must never kill a fuzzing
            # run, so any analysis error just disables hints.
            from ..analysis.hints import (collect_hints_for_target,
                                          seed_queue_with_hints)
            try:
                static_hints = collect_hints_for_target(self.target)
            except Exception:
                static_hints = []
            tracer.emit("static_hints", target=self.target.NAME,
                        hints=len(static_hints))
        tracer.emit("run_start", target=self.target.NAME, mode=cfg.mode,
                    base_seed=cfg.base_seed, n_threads=cfg.n_threads,
                    max_campaigns=cfg.max_campaigns,
                    coverage_feedback=cfg.coverage_feedback, eadr=cfg.eadr)

        def out_of_budget():
            if result.campaigns >= cfg.max_campaigns:
                return True
            if cfg.time_budget is not None and \
                    time.monotonic() - start > cfg.time_budget:
                return True
            return False

        while seed_index < cfg.max_seeds and not out_of_budget():
            corpus_entry, evolved = corpus.next_entry(mutator, seed_index)
            seed = corpus_entry.seed
            seed_index += 1
            tracer.emit("seed_start", seed_index=seed_index - 1,
                        seed_id=seed.seed_id)
            # Seed tier: reconstruct the priority queue per seed.
            queue = SharedAccessQueue(self.metrics)
            if static_hints:
                # Hints survive the per-seed reconstruction: interning
                # their module:function:line strings through the run's
                # table yields the same ids live frames get at those
                # sites, so guided rounds can stall the hinted loads.
                seed_queue_with_hints(queue, static_hints, callsites)
            seed_skips = skips.setdefault(seed.seed_id, {})
            seed_progress = False
            seed_campaigns_before = result.campaigns
            seed_records_before = len(result.inconsistencies) \
                + len(result.sync_inconsistencies)
            seed_branch = seed_alias = 0
            rounds = cfg.max_interleavings_per_seed if use_syncpoints else 1
            for round_index in range(rounds + 1):
                if out_of_budget():
                    break
                entry = None
                if use_syncpoints and round_index > 0:
                    entry = queue.fetch()
                    if entry is None:
                        break
                    if tracer.enabled:
                        tracer.emit("interleaving", seed_id=seed.seed_id,
                                    round=round_index, addr=entry.addr,
                                    loads=len(entry.load_instrs),
                                    stores=len(entry.store_instrs),
                                    frequency=entry.frequency)
                interleaving_progress = False
                for exec_index in range(cfg.execs_per_interleaving):
                    if out_of_budget():
                        break
                    if profiler is None:
                        state = provider.provide()
                    else:
                        with profiler.phase("provide"):
                            state = provider.provide()
                    result.annotation_count = max(
                        result.annotation_count,
                        state.annotations.annotation_count)
                    policy = self._make_policy(result.campaigns)
                    capture = None
                    if cfg.capture_repro:
                        capture = CampaignCapture(
                            self.target.NAME, cfg, cfg.base_seed,
                            result.campaigns, seed.threads, entry,
                            dict(seed_skips))
                        policy = RecordingPolicy(policy)
                        priv_rng.begin_segment()
                        evict_rng.begin_segment()
                    campaign_kwargs = dict(
                        entry=entry, rng=priv_rng,
                        initial_skips=dict(seed_skips),
                        writer_waiting=cfg.writer_waiting,
                        taint_enabled=cfg.taint_enabled,
                        snapshot_images=cfg.snapshot_images,
                        capture_stacks=cfg.capture_stacks,
                        max_steps=cfg.max_steps,
                        spin_hang_limit=cfg.spin_hang_limit,
                        metrics=self.metrics, callsites=callsites,
                        evict_fraction=cfg.evict_fraction,
                        evict_rng=evict_rng)
                    if profiler is None:
                        campaign = run_campaign(self.target, state,
                                                seed.threads, policy,
                                                **campaign_kwargs)
                    else:
                        with profiler.phase("campaign"):
                            campaign = run_campaign(self.target, state,
                                                    seed.threads, policy,
                                                    **campaign_kwargs)
                    result.campaigns += 1
                    if campaign_counter is not None:
                        campaign_counter.inc()
                    elapsed = time.monotonic() - start
                    if capture is not None:
                        checker = campaign.checker
                        if checker.inconsistencies:
                            first_key = \
                                checker.inconsistencies[0].dedup_key()
                        elif checker.sync_inconsistencies:
                            first_key = \
                                checker.sync_inconsistencies[0].dedup_key()
                        else:
                            first_key = None
                        capture.finish(policy.decisions,
                                       priv_rng.end_segment(),
                                       evict_rng.end_segment(),
                                       callsites, first_key=first_key)
                    if campaign.outcome.status == "error":
                        raise campaign.outcome.error
                    new_branch = branch_cov.merge(campaign.branch_edges)
                    new_alias = alias_cov.merge(campaign.alias_pairs)
                    seed_branch += new_branch
                    seed_alias += new_alias
                    result.coverage_timeline.append(
                        (result.campaigns, elapsed, len(branch_cov),
                         len(alias_cov)))
                    queue.update_from(campaign.profiler)
                    if campaign.controller is not None:
                        for instr, skip in \
                                campaign.controller.updated_skips.items():
                            seed_skips[instr] = \
                                seed_skips.get(instr, 0) + skip
                    if profiler is None:
                        self._harvest(result, campaign, seed, elapsed,
                                      capture=capture)
                    else:
                        with profiler.phase("harvest"):
                            self._harvest(result, campaign, seed, elapsed,
                                          capture=capture)
                        profiler.sample(result.campaigns)
                    if tracer.enabled:
                        tracer.emit("campaign", index=result.campaigns,
                                    status=campaign.outcome.status,
                                    steps=campaign.outcome.steps,
                                    new_branch=new_branch,
                                    new_alias=new_alias,
                                    branch_total=len(branch_cov),
                                    alias_total=len(alias_cov))
                    if self._progress(new_branch, new_alias):
                        interleaving_progress = True
                        seed_progress = True
                    elif round_index > 0:
                        # Execution-tier cutoff: a guided interleaving
                        # whose latest execution added no coverage stops
                        # burning its remaining execution budget; the next
                        # queue entry becomes the new sync points.
                        break
            # Deferred validation: replay the seed's new crash images
            # now, off the campaign hot path (cache makes the work
            # proportional to unique images, not records).
            self._drain_validation(profiler)
            corpus.account(corpus_entry,
                           result.campaigns - seed_campaigns_before,
                           seed_branch, seed_alias,
                           len(result.inconsistencies)
                           + len(result.sync_inconsistencies)
                           - seed_records_before)
            if not cfg.enable_seed_tier:
                # Seed-tier ablation: loop on the first seed only.
                seed_index = 0
                if out_of_budget():
                    break
            elif evolved:
                # Seed tier: keep an evolved seed only while productive.
                # Settling is restricted to *evolved* entries — the old
                # list dance also popped the last initial seed when it
                # yielded no new coverage, silently shrinking the pinned
                # corpus for the rest of the run.
                corpus.settle(corpus_entry, seed_progress)
        self._drain_validation(profiler)
        result.corpus_seeds = corpus.export()
        result.duration = time.monotonic() - start
        if profiler is not None:
            result.profile = profiler.to_dict(result.duration,
                                              result.campaigns)
        self._finalize(result)
        tracer.emit("run_end", target=self.target.NAME,
                    duration_s=round(result.duration, 6),
                    summary=result.summary())
        return result

    # ------------------------------------------------------------------

    def _drain_validation(self, profiler=None):
        """Validate every record queued since the last drain."""
        if not self.config.validate or not self.validation:
            return
        if profiler is None:
            self.validation.drain()
        else:
            with profiler.phase("validate"):
                self.validation.drain()

    def _harvest(self, result, campaign, seed, elapsed, capture=None):
        checker = campaign.checker
        tracer = self.tracer
        metrics = self.metrics
        result.op_errors += campaign.op_errors
        for candidate in checker.candidates:
            key = (candidate.read_instr, candidate.write_instr,
                   candidate.cross_thread)
            if key not in result._candidate_keys:
                result._candidate_keys.add(key)
                result.candidates.append(candidate)
                if result.first_candidate_time is None:
                    result.first_candidate_time = elapsed
                if metrics is not None:
                    metrics.counter("detect.candidates").inc()
                if tracer.enabled:
                    tracer.emit("candidate", kind=candidate.kind,
                                addr=candidate.addr,
                                read_code=candidate.read_instr,
                                write_code=candidate.write_instr)
        inter_found = 0
        for record in checker.inconsistencies:
            if record.kind == "inter":
                inter_found += 1
            key = record.dedup_key()
            if key in result._inconsistency_keys:
                # Dedup-equal duplicate: its crash image may settle a
                # kept record that arrived imageless (PENDING forever
                # before this hook existed), and its campaign's bundle
                # can make a bundle-less kept record replayable.
                self.validation.offer_image(key, record.crash_image)
                if capture is not None:
                    kept = result._inconsistency_keys[key]
                    if kept.bundle is None:
                        kept.bundle = capture.bundle_for(kept)
                continue
            result._inconsistency_keys[key] = record
            result.inconsistencies.append(record)
            if capture is not None:
                record.bundle = capture.bundle_for(record)
            if metrics is not None:
                metrics.counter("detect.inconsistencies.%s"
                                % record.kind).inc()
            if tracer.enabled:
                tracer.emit("inconsistency", kind=record.kind,
                            read_code=record.read_instr,
                            write_code=record.write_instr,
                            side_effect_addr=record.side_effect_addr)
            if self.config.validate:
                self.validation.enqueue(record)
            else:
                self.validation.register(record)
            if record.kind == "inter" and result.first_inter_time is None:
                result.first_inter_time = elapsed
        if inter_found:
            result.inter_hit_times.append((elapsed, inter_found))
        for record in checker.sync_inconsistencies:
            key = record.dedup_key()
            if key in result._sync_keys:
                self.validation.offer_image(key, record.crash_image)
                if capture is not None:
                    kept = result._sync_keys[key]
                    if kept.bundle is None:
                        kept.bundle = capture.bundle_for(kept)
                continue
            result._sync_keys[key] = record
            result.sync_inconsistencies.append(record)
            if capture is not None:
                record.bundle = capture.bundle_for(record)
            if metrics is not None:
                metrics.counter("detect.inconsistencies.sync").inc()
            if tracer.enabled:
                tracer.emit("inconsistency", kind="sync",
                            annotation=record.annotation_name,
                            addr=record.addr)
            if self.config.validate:
                self.validation.enqueue(record)
            else:
                self.validation.register(record)
        if campaign.outcome.status == "hang":
            hang = HangRecord(campaign.outcome.blocked, seed.seed_id)
            signature = hang.signature()
            sync_stall = all(reason is not None
                             and reason.startswith("cond_wait:")
                             for reason in signature) and signature
            if not sync_stall and signature \
                    and signature not in result._hang_signatures:
                result._hang_signatures.add(signature)
                result.hangs.append(hang)
                if metrics is not None:
                    metrics.counter("detect.hangs").inc()

    def _finalize(self, result):
        result._regroup()

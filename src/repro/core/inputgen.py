"""The PM input generator (§4.5): seeds and the two mutators.

The *operation mutator* manipulates structured operation sequences with
the five evolution strategies from the paper (mutation, addition,
deletion, shuffling, merging), prioritizes similar keys to raise shared
accesses and PM alias pairs, and falls back to populating the store with
many inserts (which is what triggers resize paths in PM indexes). The
*AFL-style byte mutator* is the comparison baseline: it mutates the
serialized command text and routinely produces syntactically invalid
commands (Table 4's "Error" column).
"""

import json
import random


class Seed:
    """One fuzz input: operations distributed over worker threads.

    Attributes:
        threads: List of per-thread operation lists.
        seed_id: Stable identity used to key sync-point skip state.
        parent: Parent seed id (lineage, diagnostics only).
    """

    _counter = [0]

    def __init__(self, threads, parent=None):
        self.threads = [list(ops) for ops in threads]
        Seed._counter[0] += 1
        self.seed_id = Seed._counter[0]
        self.parent = parent

    @property
    def op_count(self):
        return sum(len(ops) for ops in self.threads)

    def flat_ops(self):
        return [op for ops in self.threads for op in ops]

    def to_jsonable(self):
        """Deep-copied, JSON-safe per-thread op lists (repro bundles
        store exactly this shape)."""
        return json.loads(json.dumps(self.threads))

    @classmethod
    def from_jsonable(cls, threads, parent=None):
        """Rebuild a seed from bundle-stored op lists (fresh seed_id)."""
        return cls(threads, parent=parent)

    def __repr__(self):
        return "<Seed #%d ops=%d threads=%d>" % (
            self.seed_id, self.op_count, len(self.threads))


def _distribute(ops, n_threads, rng):
    """Deal a flat op list onto threads, round-robin from a random start."""
    threads = [[] for _ in range(n_threads)]
    start = rng.randrange(n_threads) if n_threads else 0
    for index, op in enumerate(ops):
        threads[(start + index) % n_threads].append(op)
    return threads


class OperationMutator:
    """PMRace's operation-level mutator.

    Args:
        space: The target's :class:`~repro.targets.base.OperationSpace`.
        n_threads: Worker threads per campaign (4 in the paper, §6.1).
        ops_per_thread: Initial seed size per thread.
        rng: Seeded RNG; all generation is deterministic given it.
    """

    def __init__(self, space, n_threads=4, ops_per_thread=6, rng=None):
        self.space = space
        self.n_threads = n_threads
        self.ops_per_thread = ops_per_thread
        self.rng = rng or random.Random(0)

    # ------------------------------------------------------------------
    # seed generation

    def initial_seed(self):
        """A fresh random seed with similar-key bias across threads."""
        anchor = self.space.random_key(self.rng)
        threads = []
        for _ in range(self.n_threads):
            ops = [self.space.random_op(self.rng, near_key=anchor)
                   for _ in range(self.ops_per_thread)]
            threads.append(ops)
        return Seed(threads)

    def populate_seed(self, scale=3):
        """Insert-heavy seed: triggers resizing in PM indexes (§4.5).

        Value attachment defers to :meth:`~repro.targets.base.
        OperationSpace.op_needs_value` (the same rule ``random_op``
        uses), so a target with a custom ``insert_kind`` still gets
        well-formed population inserts.
        """
        total = self.n_threads * self.ops_per_thread * scale
        ops = []
        for index in range(total):
            op = {"op": self.space.insert_kind,
                  "key": index % self.space.key_range}
            if self.space.op_needs_value(self.space.insert_kind):
                op["value"] = self.rng.randrange(self.space.value_range)
            ops.append(op)
        return Seed(_distribute(ops, self.n_threads, self.rng))

    # ------------------------------------------------------------------
    # the five evolution strategies

    def mutate(self, seed):
        """Update an arbitrary parameter of a random operation."""
        threads = [list(ops) for ops in seed.threads]
        populated = [t for t in range(len(threads)) if threads[t]]
        if not populated:
            return Seed(threads, seed.seed_id)
        tid = self.rng.choice(populated)
        index = self.rng.randrange(len(threads[tid]))
        threads[tid][index] = self.space.mutate_op(threads[tid][index],
                                                   self.rng)
        return Seed(threads, seed.seed_id)

    def add(self, seed):
        """Add an operation at an arbitrary position."""
        threads = [list(ops) for ops in seed.threads]
        tid = self.rng.randrange(len(threads))
        anchor = None
        if threads[tid]:
            anchor = threads[tid][0].get("key")
        op = self.space.random_op(self.rng, near_key=anchor)
        threads[tid].insert(self.rng.randint(0, len(threads[tid])), op)
        return Seed(threads, seed.seed_id)

    def delete(self, seed):
        """Delete an arbitrary operation."""
        threads = [list(ops) for ops in seed.threads]
        populated = [t for t in range(len(threads)) if threads[t]]
        if not populated:
            return Seed(threads, seed.seed_id)
        tid = self.rng.choice(populated)
        del threads[tid][self.rng.randrange(len(threads[tid]))]
        return Seed(threads, seed.seed_id)

    def shuffle(self, seed):
        """Shuffle all operations and redistribute them to threads."""
        ops = seed.flat_ops()
        self.rng.shuffle(ops)
        return Seed(_distribute(ops, len(seed.threads), self.rng),
                    seed.seed_id)

    def merge(self, seed, other):
        """Merge two existing seeds into a new one."""
        threads = []
        for tid in range(max(len(seed.threads), len(other.threads))):
            ops = []
            if tid < len(seed.threads):
                ops.extend(seed.threads[tid][:len(seed.threads[tid]) // 2 + 1])
            if tid < len(other.threads):
                ops.extend(other.threads[tid][len(other.threads[tid]) // 2:])
            threads.append(ops)
        return Seed(threads, seed.seed_id)

    def evolve_from(self, seed, corpus):
        """Evolve ``seed`` with one of the five strategies.

        ``corpus`` supplies merge partners; the partner is drawn from
        the corpus *excluding* ``seed`` itself whenever another seed
        exists — a self-merge only produces a near-duplicate (the first
        half of the seed glued to its own second half) that wastes a
        whole campaign budget on input the corpus already covers.
        """
        strategy = self.rng.random()
        if strategy < 0.35:
            return self.mutate(seed)
        if strategy < 0.55:
            return self.add(seed)
        if strategy < 0.65:
            return self.delete(seed)
        if strategy < 0.85:
            return self.shuffle(seed)
        others = [other for other in corpus if other is not seed]
        if others:
            return self.merge(seed, self.rng.choice(others))
        return self.merge(seed, seed)

    def evolve(self, corpus):
        """One evolution step over a non-empty seed corpus."""
        return self.evolve_from(self.rng.choice(corpus), corpus)


class AflByteMutator:
    """AFL++-style byte-level mutator over serialized command text.

    This is the paper's comparison baseline for Table 4: it has no
    knowledge of the command syntax, so a third of its outputs are
    rejected by input parsing.
    """

    def __init__(self, space, n_threads=4, ops_per_thread=6, rng=None):
        self.space = space
        self.n_threads = n_threads
        self.ops_per_thread = ops_per_thread
        self.rng = rng or random.Random(0)
        self.invalid_ops = 0

    def initial_bytes(self):
        seed_ops = [self.space.random_op(self.rng)
                    for _ in range(self.n_threads * self.ops_per_thread)]
        return self.space.serialize(seed_ops)

    def mutate_bytes(self, data):
        """Apply 1-4 random byte-level havoc mutations."""
        buf = bytearray(data)
        for _ in range(self.rng.randint(1, 4)):
            if not buf:
                buf.extend(b"a")
            choice = self.rng.random()
            pos = self.rng.randrange(len(buf))
            if choice < 0.35:                       # bit flip
                buf[pos] ^= 1 << self.rng.randrange(8)
            elif choice < 0.6:                      # random byte
                buf[pos] = self.rng.randrange(32, 127)
            elif choice < 0.8:                      # insert
                buf.insert(pos, self.rng.randrange(32, 127))
            elif len(buf) > 1:                      # delete
                del buf[pos]
        return bytes(buf)

    def next_seed(self, data=None):
        """Mutate ``data`` (or a fresh base) and parse it into a Seed.

        Invalid commands are dropped but counted in :attr:`invalid_ops`.
        """
        base = data if data is not None else self.initial_bytes()
        mutated = self.mutate_bytes(base)
        ops, invalid = self.space.parse(mutated)
        self.invalid_ops += invalid
        return Seed(_distribute(ops, self.n_threads, self.rng)), mutated

"""Coverage metrics: branch (edge) coverage and PM alias pair coverage.

§4.2.1 defines *PM alias pair coverage*: a PM access is identified by
``(I, P, T)`` — instruction ID, persistency state of the data, thread ID —
and a *PM alias pair* is two back-to-back accesses to the same address by
different threads. Conventional branch coverage is approximated here as
edge coverage over instrumented instruction IDs (the preceding access site
→ the current one, per thread), which plays the same feedback role the
AFL-style bitmap plays in the original.
"""

from ..instrument.events import Observer
from ..pmem.cacheline import WORD_SHIFT

#: Persistency-state component of an access identity.
STATE_CLEAN = "C"
STATE_DIRTY = "D"


class CoverageSet:
    """A grow-only set with "did this add anything new?" accounting.

    Args:
        metrics: Optional :class:`~repro.obs.metrics.Metrics`; when given
            together with ``name``, merges update a ``<name>.total`` gauge
            and a ``<name>.new`` counter (one update per merge, i.e. per
            campaign — not per item).
        name: Metric name prefix, e.g. ``"coverage.branch"``.
    """

    def __init__(self, metrics=None, name=None):
        self.items = set()
        if metrics is not None and name is not None:
            self._total_gauge = metrics.gauge(name + ".total")
            self._new_counter = metrics.counter(name + ".new")
        else:
            self._total_gauge = self._new_counter = None

    def add(self, item):
        """Add ``item``; returns True when it was new."""
        if item in self.items:
            return False
        self.items.add(item)
        if self._total_gauge is not None:
            self._total_gauge.set(len(self.items))
            self._new_counter.inc()
        return True

    def merge(self, other):
        """Union ``other`` in; returns the number of new items."""
        before = len(self.items)
        self.items |= other.items if isinstance(other, CoverageSet) else other
        new = len(self.items) - before
        if self._total_gauge is not None:
            self._total_gauge.set(len(self.items))
            if new:
                self._new_counter.inc(new)
        return new

    def __len__(self):
        return len(self.items)

    def __contains__(self, item):
        return item in self.items


class BranchCoverageCollector(Observer):
    """Per-campaign edge coverage over instrumented access sites."""

    def __init__(self):
        self.edges = set()
        self._prev = {}

    def _record(self, event):
        prev = self._prev.get(event.tid)
        if prev is not None:
            self.edges.add((prev, event.instr_id))
        else:
            self.edges.add((None, event.instr_id))
        self._prev[event.tid] = event.instr_id

    on_load = _record
    on_store = _record
    on_flush = _record
    on_fence = _record


class AliasCoverageCollector(Observer):
    """Per-campaign PM alias pair coverage (§4.2.1).

    Tracks the previous access identity per touched *word* (not the raw
    start address: a multi-word or unaligned access aliases with accesses
    at any offset into the same words); when the next access to a word
    comes from a *different thread*, the pair ⟨(I₁,P₁,T₁),(I₂,P₂,T₂)⟩ is
    recorded. Thread IDs are normalized out of the stored pair so a pair
    is "the same interleaving shape" regardless of which worker threads
    happened to execute it.
    """

    def __init__(self):
        self.pairs = set()
        self._last = {}

    def _identity(self, event):
        if event.kind == "load":
            state = STATE_DIRTY if event.nonpersisted else STATE_CLEAN
        elif event.kind == "ntstore":
            state = STATE_CLEAN
        else:
            state = STATE_DIRTY
        return (event.instr_id, state, event.tid)

    def _record(self, event):
        size = event.size
        if size <= 0:
            return
        identity = self._identity(event)
        last = self._last
        first_word = event.addr >> WORD_SHIFT
        last_word = (event.addr + size - 1) >> WORD_SHIFT
        if first_word == last_word:
            prev = last.get(first_word)
            if prev is not None and prev[2] != identity[2]:
                self.pairs.add((prev[0], prev[1], identity[0], identity[1]))
            last[first_word] = identity
            return
        for word in range(first_word, last_word + 1):
            prev = last.get(word)
            if prev is not None and prev[2] != identity[2]:
                self.pairs.add((prev[0], prev[1], identity[0], identity[1]))
            last[word] = identity

    on_load = _record
    on_store = _record

"""Result aggregation: the paper's tables rebuilt from RunResults.

The expected-bug catalog maps Table 2's 14 bugs onto code sites of the
re-implemented targets, so benchmark output can report found/missed per
paper bug alongside any additional findings.
"""

from ..detect.records import Verdict


class ExpectedBug:
    """One Table 2 row and how to recognize it in our reports.

    Attributes:
        bug_id: Paper bug number (1-14).
        target: Table 1 system name.
        kind: "inter", "intra", "sync", "candidate", or "hang".
        new: Whether the paper reported it as a new bug.
        write_site / read_site: Original code locations (documentation).
        matcher: Substring (or tuple of alternatives) that must appear in
            the found record's write/read site (or hang signature /
            candidate read).
        kinds: Record kinds accepted as a rediscovery; defaults to the
            paper's kind plus its intra/inter twin (a scheduling-dependent
            distinction for the same root cause).
        description / consequence: Table 2 text.
    """

    def __init__(self, bug_id, target, kind, new, write_site, read_site,
                 matcher, description, consequence, kinds=None):
        self.bug_id = bug_id
        self.target = target
        self.kind = kind
        self.new = new
        self.write_site = write_site
        self.read_site = read_site
        self.matcher = (matcher,) if isinstance(matcher, str) else \
            tuple(matcher)
        if kinds is None:
            if kind in ("inter", "intra"):
                kinds = ("inter", "intra")
            else:
                kinds = (kind,)
        self.kinds = tuple(kinds)
        self.description = description
        self.consequence = consequence


EXPECTED_BUGS = (
    ExpectedBug(1, "P-CLHT", "inter", True, "clht_lb_res.c:785",
                "clht_lb_res.c:417", "pclht:_resize",
                "read unflushed table pointer and insert items",
                "data loss"),
    ExpectedBug(2, "P-CLHT", "sync", True, "clht_lb_res.c:429", "-",
                "bucket_lock",
                "do not initialize bucket locks after restarts", "hang"),
    ExpectedBug(3, "P-CLHT", "intra", True, "clht_lb_res.c:789",
                "clht_gc.c:190", "pclht:_resize",
                "read unflushed table pointer and perform GC",
                "PM leakage"),
    ExpectedBug(4, "P-CLHT", "candidate", True, "clht_lb_res.c:321",
                "clht_lb_res.c:616", "pclht:get",
                "read unflushed keys", "redundant PM writes"),
    ExpectedBug(5, "P-CLHT", "hang", True, "clht_lb_res.c:526", "-",
                "pm_lock:bucket",
                "do not release bucket locks in update", "hang"),
    ExpectedBug(6, "CCEH", "sync", True, "CCEH.h:86", "-", "segment_lock",
                "do not release segment locks after restarts", "hang"),
    ExpectedBug(7, "CCEH", "intra", True, "CCEH.h:165", "CCEH.cpp:171",
                "cceh:_double_directory",
                "read unflushed capacity and allocate segments",
                "PM leakage"),
    ExpectedBug(8, "FAST-FAIR", "inter", True, "btree.h:560", "btree.h:876",
                "fastfair:_split_leaf",
                "read unflushed pointer and insert data", "data loss"),
    ExpectedBug(9, "memcached-pmem", "inter", True, "memcached.c:4292",
                "memcached.c:2805", "memcached:_write_value",
                "read unflushed value and write value", "inconsistent data"),
    ExpectedBug(10, "memcached-pmem", "inter", True, "memcached.c:4293",
                "memcached.c:2805",
                ("memcached:cmd_arith", "memcached:cmd_store"),
                "read unflushed value and write value", "inconsistent data"),
    ExpectedBug(11, "memcached-pmem", "inter", False, "items.c:423",
                "items.c:464",
                ("memcached:_set_prev", "memcached:_lru_unlink"),
                "read unflushed 'prev' and write 'slabs_clsid'",
                "inconsistent index"),
    ExpectedBug(12, "memcached-pmem", "inter", False, "slabs.c:549",
                "slabs.c:412",
                ("memcached:_set_next", "memcached:_lru_link_head"),
                "read unflushed 'next' and write 'it_flags' or value",
                "inconsistent index"),
    ExpectedBug(13, "memcached-pmem", "inter", False, "items.c:1096",
                "memcached.c:2824", "memcached:cmd_get",
                "read unflushed 'it_flags' and write value",
                "inconsistent data"),
    ExpectedBug(14, "memcached-pmem", "inter", False, "items.c:627",
                "items.c:623",
                ("memcached:_evict_tail", "memcached:_alloc_item"),
                "read unflushed 'slabs_clsid' and write 'slabs_clsid'",
                "inconsistent index"),
)

#: The full seeded-bug matrix: the paper's 14 bugs plus the bugs seeded
#: in the SDK extension targets. ``build_table2`` reports the paper
#: catalog only; the bug-matrix harness
#: (``tests/integration/test_bug_matrix.py``) covers this one.
SEEDED_BUGS = EXPECTED_BUGS + (
    ExpectedBug(15, "pmring", "inter", True, "pmring.c:201", "pmring.c:258",
                ("pmring:push", "pmring:pop"),
                "read unfenced slot publication and log consumed cursor",
                "lost element"),
    ExpectedBug(16, "txkv", "inter", True, "txkv.c:144", "txkv.c:210",
                ("txkv:_bump_gen", "txkv:stat"),
                "read unflushed out-of-tx generation and log snapshot",
                "inconsistent metadata"),
)


def expected_bugs_for(target_name):
    return [bug for bug in SEEDED_BUGS if bug.target == target_name]


def match_expected(expected, result):
    """True if ``result`` (a RunResult) exhibits the expected bug."""
    def hit(text):
        return any(needle in text for needle in expected.matcher)

    if expected.kind == "candidate":
        return any(hit(c.read_instr or "") for c in result.candidates)
    if expected.kind == "hang":
        return any(any(hit(reason) for reason in hang.signature())
                   for hang in result.hangs)
    for report in result.bug_reports:
        if report.kind not in expected.kinds:
            continue
        sites = "%s %s" % (report.write_instr or "", report.read_instr or "")
        if expected.kind == "sync":
            sites += " " + " ".join(
                getattr(record, "annotation_name", "")
                for record in report.records)
        if hit(sites):
            return True
    return False


# ----------------------------------------------------------------------
# table builders (results: dict of target name -> RunResult)

def build_table2(results):
    """Per-bug found/missed rows in Table 2's format."""
    rows = []
    for bug in EXPECTED_BUGS:
        result = results.get(bug.target)
        found = match_expected(bug, result) if result is not None else False
        rows.append({
            "#": bug.bug_id,
            "system": bug.target,
            "type": {"inter": "Inter", "intra": "Intra", "sync": "Sync",
                     "candidate": "Other", "hang": "Other"}[bug.kind],
            "new": "Y" if bug.new else "N",
            "write_code": bug.write_site,
            "read_code": bug.read_site,
            "description": bug.description,
            "consequence": bug.consequence,
            "found": "FOUND" if found else "missed",
        })
    return rows


def _bug_groups(result, kind):
    return [r for r in result.bug_reports if r.kind == kind]


def _inter_pairs(result):
    """Unique (write site, read site) pairs among inter inconsistencies —
    the same granularity candidates are counted at, so Inter ≤ Inter-Cand
    as in the paper's Table 3."""
    return {(r.write_instr, r.read_instr)
            for r in result.inter_inconsistencies}


def _fp_pairs(result, verdicts):
    return {(r.write_instr, r.read_instr)
            for r in result.inter_inconsistencies if r.verdict in verdicts}


def build_table3(results):
    """Detection/false-positive accounting in Table 3's format."""
    rows = []
    totals = dict.fromkeys(
        ("inter_cand", "inter", "validated_fp", "whitelisted_fp",
         "inter_bug", "annotation", "sync", "sync_validated_fp",
         "sync_bug"), 0)
    for name, result in results.items():
        row = {
            "system": name,
            "inter_cand": len(result.inter_candidates),
            "inter": len(_inter_pairs(result)),
            "validated_fp": len(_fp_pairs(result,
                                          (Verdict.VALIDATED_FP,))),
            "whitelisted_fp": len(_fp_pairs(result,
                                            (Verdict.WHITELISTED_FP,))),
            "inter_bug": len(_bug_groups(result, "inter")),
            "annotation": result.annotation_count,
            "sync": len(result.sync_inconsistencies),
            "sync_validated_fp": sum(
                1 for r in result.sync_inconsistencies
                if r.verdict is Verdict.VALIDATED_FP),
            "sync_bug": len(_bug_groups(result, "sync")),
        }
        rows.append(row)
        for key in totals:
            totals[key] += row[key]
    totals["system"] = "Total"
    rows.append(totals)
    return rows


def build_table5(results):
    """Unique-bug summary ("n|m" = new|total) in Table 5's format."""
    rows = []
    total = {"inter": [0, 0], "sync": [0, 0], "intra": [0, 0],
             "other": [0, 0]}
    for name, result in results.items():
        counts = {"inter": [0, 0], "sync": [0, 0], "intra": [0, 0],
                  "other": [0, 0]}
        for bug in expected_bugs_for(name):
            if not match_expected(bug, result):
                continue
            key = bug.kind if bug.kind in ("inter", "sync", "intra") \
                else "other"
            counts[key][1] += 1
            total[key][1] += 1
            if bug.new:
                counts[key][0] += 1
                total[key][0] += 1
        row = {"system": name}
        for key in ("inter", "sync", "intra", "other"):
            row[key] = "%d|%d" % tuple(counts[key]) if counts[key][1] \
                else "-"
        row["total"] = "%d|%d" % (sum(v[0] for v in counts.values()),
                                  sum(v[1] for v in counts.values()))
        row["extra_findings"] = max(
            0, len(result.bug_reports)
            - sum(v[1] for v in counts.values()))
        rows.append(row)
    rows.append({
        "system": "Total",
        **{key: "%d|%d" % tuple(total[key])
           for key in ("inter", "sync", "intra", "other")},
        "total": "%d|%d" % (sum(v[0] for v in total.values()),
                            sum(v[1] for v in total.values())),
        "extra_findings": sum(r["extra_findings"] for r in rows),
    })
    return rows


def build_table6(results):
    """Inconsistency/FP summary in Table 6's (artifact) format."""
    rows = []
    for name, result in results.items():
        rows.append({
            "system": name,
            "inter_cand": len(result.inter_candidates),
            "inter": len(_inter_pairs(result)),
            "sync": len(result.sync_inconsistencies),
            "fp_inter": len(_fp_pairs(result, (Verdict.VALIDATED_FP,
                                               Verdict.WHITELISTED_FP))),
            "fp_sync": sum(1 for r in result.sync_inconsistencies
                           if r.verdict is Verdict.VALIDATED_FP),
            "bug": len(result.bug_reports),
        })
    return rows


def count_repro_bundles(result):
    """Kept records carrying a repro bundle (``--repro-dir`` capture)."""
    return sum(1 for record in list(result.inconsistencies)
               + list(result.sync_inconsistencies)
               if getattr(record, "bundle", None) is not None)


def build_worker_table(result):
    """Per-worker attempt rows for a parallel run's ``worker_stats``."""
    rows = []
    for stats in result.worker_stats:
        rows.append({
            "worker": stats.worker_id,
            "seed": stats.seed,
            "attempt": stats.attempt,
            "status": stats.status,
            "campaigns": stats.campaigns,
            "duration_s": "%.2f" % stats.duration,
            "execs_per_s": "%.1f" % stats.execs_per_sec,
            "error": (stats.error or "").strip().splitlines()[-1]
            if stats.error else "",
        })
    return rows


def render_table(rows, columns=None, title=None):
    """Plain-text table renderer for benchmark output."""
    if not rows:
        return "(empty table)"
    columns = columns or list(rows[0].keys())
    widths = {col: max(len(str(col)),
                       max(len(str(row.get(col, ""))) for row in rows))
              for col in columns}
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(" | ".join(
            str(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)

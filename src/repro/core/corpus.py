"""Coverage-weighted seed corpus for the seed exploration tier (§4.2.3).

PMRace's seed tier retains only seeds that grow branch or PM alias-pair
coverage.  This module turns the engine's former bare-list corpus into a
real subsystem:

* **Retention** — content-digest dedup (an evolved seed identical to a
  retained one is never kept twice) plus per-seed statistics: campaigns
  spent, new-branch/new-alias yield, inconsistencies credited, and how
  often the seed was picked as an evolution parent.
* **Energy scheduling** — AFL-style weighted parent selection: seeds
  with high coverage yield per pick and recent progress get more
  evolution picks.  Selection draws exactly one ``rng.random()`` from
  the engine's existing seeded mutator stream (``schedule="uniform"``
  reproduces the historical ``rng.choice`` draw bit-for-bit), so runs
  stay fully deterministic and replay capture stays bit-faithful.
* **Persistence** — optional ``persist_dir``: one versioned JSON file
  per retained seed, named by content digest, written atomically
  (tempfile + ``os.replace``) so parallel workers can share a corpus
  directory, and loaded on start for resumable runs.

The engine delegates the whole seed-tier list dance here
(:meth:`Corpus.next_entry` / :meth:`Corpus.account` /
:meth:`Corpus.settle`); the parallel service folds each worker's
retained corpus into the merged :class:`~repro.core.engine.RunResult`
and re-seeds retried workers from it.
"""

import hashlib
import json
import os

#: Bump when the per-seed JSON layout changes; files with another
#: version are skipped at load (never deleted).
CORPUS_SCHEMA_VERSION = 1

_STAT_FIELDS = ("picks", "campaigns", "new_branch", "new_alias",
                "inconsistencies")


class CorpusError(ValueError):
    """A persisted seed file is malformed, mis-versioned, or tampered."""


def seed_digest(threads):
    """Content digest of per-thread op lists (canonical-JSON SHA-1).

    Identical operation sequences always hash identically regardless of
    which :class:`~repro.core.inputgen.Seed` instance carries them, so
    the digest is the corpus' dedup key and the persistence file name.
    """
    payload = json.dumps(threads, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


class SeedEntry:
    """One retained seed plus its scheduling statistics.

    Attributes:
        seed: The :class:`~repro.core.inputgen.Seed`.
        digest: Content digest (:func:`seed_digest`).
        initial: Initial/pinned seeds are never dropped; evolved seeds
            survive only while productive.
        order: Retention order, stable across save/load.
        picks: Times selected as an evolution parent.
        campaigns: Campaigns executed directly on this seed.
        new_branch / new_alias: Coverage the seed's campaigns added.
        inconsistencies: Unique inconsistency records credited.
        last_progress_pick: Global pick counter value when the seed last
            produced new coverage (recency boost input).
    """

    def __init__(self, seed, digest, initial, order):
        self.seed = seed
        self.digest = digest
        self.initial = initial
        self.order = order
        self.picks = 0
        self.campaigns = 0
        self.new_branch = 0
        self.new_alias = 0
        self.inconsistencies = 0
        self.last_progress_pick = None

    # ------------------------------------------------------------------

    def energy(self, now, corpus_size):
        """AFL-style energy: coverage yield per pick, boosted while the
        seed's progress is recent (within one corpus-sized pick window).
        """
        score = (1.0 + self.new_branch + self.new_alias
                 + 2.0 * self.inconsistencies)
        rate = score / (1.0 + self.picks)
        if self.last_progress_pick is not None and \
                now - self.last_progress_pick <= corpus_size:
            rate *= 2.0
        return rate

    def to_jsonable(self):
        stats = {field: getattr(self, field) for field in _STAT_FIELDS}
        stats["last_progress_pick"] = self.last_progress_pick
        return {
            "version": CORPUS_SCHEMA_VERSION,
            "digest": self.digest,
            "order": self.order,
            "initial": bool(self.initial),
            "threads": self.seed.to_jsonable(),
            "stats": stats,
        }

    @classmethod
    def from_jsonable(cls, data):
        from .inputgen import Seed
        if not isinstance(data, dict):
            raise CorpusError("seed document is not an object")
        if data.get("version") != CORPUS_SCHEMA_VERSION:
            raise CorpusError("unsupported corpus schema version %r"
                              % (data.get("version"),))
        threads = data.get("threads")
        if not isinstance(threads, list) or \
                not all(isinstance(ops, list) for ops in threads):
            raise CorpusError("threads must be a list of op lists")
        digest = seed_digest(json.loads(json.dumps(threads)))
        stored = data.get("digest")
        if stored is not None and stored != digest:
            raise CorpusError("digest mismatch (stored %s, content %s)"
                              % (stored, digest))
        entry = cls(Seed.from_jsonable(threads), digest,
                    bool(data.get("initial")), int(data.get("order", 0)))
        stats = data.get("stats") or {}
        for field in _STAT_FIELDS:
            setattr(entry, field, int(stats.get(field, 0)))
        lpp = stats.get("last_progress_pick")
        entry.last_progress_pick = None if lpp is None else int(lpp)
        return entry

    def __repr__(self):
        return "<SeedEntry %s%s ops=%d yield=%d+%d>" % (
            self.digest[:10], " initial" if self.initial else "",
            self.seed.op_count, self.new_branch, self.new_alias)


class Corpus:
    """Seed retention, energy-weighted selection, and persistence.

    Args:
        schedule: ``"energy"`` (AFL-style weighted parent selection) or
            ``"uniform"`` (the historical ``rng.choice``, bit-compatible
            with the pre-corpus engine).
        persist_dir: Optional directory for one JSON file per retained
            seed; loaded by :meth:`load`, written atomically on every
            retention/accounting change.
        metrics: Optional :class:`~repro.obs.metrics.Metrics` registry
            (``corpus.*`` counters and the ``corpus.size`` gauge).
        tracer: Optional :class:`~repro.obs.tracer.Tracer` for
            ``corpus_load``/``corpus_seed`` events.
    """

    SCHEDULES = ("energy", "uniform")

    def __init__(self, schedule="energy", persist_dir=None, metrics=None,
                 tracer=None):
        if schedule not in self.SCHEDULES:
            raise ValueError("unknown corpus schedule %r (choose from %s)"
                             % (schedule, "/".join(self.SCHEDULES)))
        self.schedule = schedule
        self.persist_dir = persist_dir
        self.metrics = metrics
        self.tracer = tracer
        self._entries = []
        self._by_digest = {}
        self._picks = 0
        self._next_order = 0
        self.load_errors = 0

    # ------------------------------------------------------------------
    # views

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def seeds(self):
        """The retained seeds, in corpus order."""
        return [entry.seed for entry in self._entries]

    def digests(self):
        """Retained content digests, in corpus order."""
        return [entry.digest for entry in self._entries]

    def stats_rows(self):
        """Per-seed rows for ``repro corpus stats`` and trace sinks."""
        size = max(1, len(self._entries))
        return [{
            "digest": entry.digest,
            "origin": "initial" if entry.initial else "evolved",
            "ops": entry.seed.op_count,
            "threads": len(entry.seed.threads),
            "picks": entry.picks,
            "campaigns": entry.campaigns,
            "new_branch": entry.new_branch,
            "new_alias": entry.new_alias,
            "inconsistencies": entry.inconsistencies,
            "energy": round(entry.energy(self._picks, size), 3),
        } for entry in self._entries]

    # ------------------------------------------------------------------
    # retention

    def add_initial(self, seed):
        """Register a pinned seed (never dropped); digest-deduplicated.

        Returns the corpus entry — the existing one when an identical
        seed (same op content) is already retained.
        """
        digest = seed_digest(seed.to_jsonable())
        existing = self._by_digest.get(digest)
        if existing is not None:
            return existing
        entry = SeedEntry(seed, digest, True, self._next_order)
        self._next_order += 1
        self._entries.append(entry)
        self._by_digest[digest] = entry
        self._persist(entry)
        self._count("corpus.initial")
        self._size_gauge()
        return entry

    def add_exported(self, data):
        """Adopt one exported entry (cross-worker sharing); pinned.

        ``data`` is the plain-JSON shape produced by :meth:`export` /
        ``RunResult.corpus_seeds``.  Invalid documents are counted in
        :attr:`load_errors` and skipped.
        """
        try:
            entry = SeedEntry.from_jsonable(data)
        except (CorpusError, ValueError, TypeError):
            self.load_errors += 1
            return None
        existing = self._by_digest.get(entry.digest)
        if existing is not None:
            return existing
        entry.initial = True
        entry.order = self._next_order
        self._next_order += 1
        self._entries.append(entry)
        self._by_digest[entry.digest] = entry
        self._persist(entry)
        self._count("corpus.shared")
        self._size_gauge()
        return entry

    def next_entry(self, mutator, seed_index):
        """The seed to fuzz next: a not-yet-visited retained entry, or a
        provisional evolved child of an energy-selected parent.

        Returns ``(entry, evolved)``.  A provisional (``evolved``)
        entry joins the corpus immediately — mirroring the engine's old
        append-then-maybe-pop dance — and must be settled with
        :meth:`settle` after its campaigns ran.
        """
        if seed_index < len(self._entries):
            return self._entries[seed_index], False
        parent = self._select(mutator.rng)
        child = mutator.evolve_from(parent.seed, self.seeds())
        entry = SeedEntry(child, seed_digest(child.to_jsonable()), False,
                          self._next_order)
        self._next_order += 1
        self._entries.append(entry)
        return entry, True

    def account(self, entry, campaigns, new_branch, new_alias,
                inconsistencies):
        """Credit one seed-tier iteration's outcome to ``entry``."""
        entry.campaigns += campaigns
        entry.new_branch += new_branch
        entry.new_alias += new_alias
        entry.inconsistencies += inconsistencies
        if new_branch or new_alias:
            entry.last_progress_pick = self._picks
        if self._by_digest.get(entry.digest) is entry:
            # Persist settled entries only; a provisional evolved entry
            # is persisted by settle() if it earns retention (and must
            # never clobber a retained twin's file on digest collision).
            self._persist(entry)

    def settle(self, entry, productive):
        """Keep or drop a provisional evolved entry; returns retained.

        Retention requires *both* coverage progress and a fresh content
        digest — an evolved seed identical to a retained one is a
        duplicate whatever it covered.
        """
        if not self._entries or self._entries[-1] is not entry:
            raise ValueError("settle() expects the provisional tail entry")
        duplicate = entry.digest in self._by_digest
        retained = productive and not duplicate
        if retained:
            self._by_digest[entry.digest] = entry
            self._persist(entry)
            self._count("corpus.retained")
        else:
            self._entries.pop()
            self._count("corpus.dedup_rejected" if productive
                        else "corpus.dropped")
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit("corpus_seed", digest=entry.digest,
                             seed_id=entry.seed.seed_id,
                             productive=bool(productive),
                             duplicate=duplicate, retained=retained)
        self._size_gauge()
        return retained

    def discard(self, entry):
        """Remove a retained entry (corpus minimization); deletes its
        persisted file when a persist dir is configured."""
        self._entries.remove(entry)
        if self._by_digest.get(entry.digest) is entry:
            del self._by_digest[entry.digest]
        if self.persist_dir:
            try:
                os.remove(os.path.join(self.persist_dir,
                                       entry.digest + ".json"))
            except OSError:
                pass
        self._size_gauge()

    # ------------------------------------------------------------------
    # selection

    def _select(self, rng):
        """Pick an evolution parent; deterministic given ``rng``.

        Uniform mode draws ``rng.choice`` over the entry list — the
        exact draw the pre-corpus engine made over its seed list, so
        golden runs stay bit-faithful.  Energy mode spends exactly one
        ``rng.random()`` on a weighted pick.
        """
        entries = self._entries
        self._picks += 1
        if self.schedule == "uniform":
            entry = rng.choice(entries)
        elif len(entries) == 1:
            entry = entries[0]
        else:
            weights = [e.energy(self._picks, len(entries))
                       for e in entries]
            mark = rng.random() * sum(weights)
            entry = entries[-1]
            acc = 0.0
            for candidate, weight in zip(entries, weights):
                acc += weight
                if mark < acc:
                    entry = candidate
                    break
        entry.picks += 1
        self._count("corpus.picks")
        return entry

    # ------------------------------------------------------------------
    # persistence

    def load(self):
        """Load persisted seeds (resumable runs); returns the count.

        Files that fail schema/digest validation are counted in
        :attr:`load_errors` and skipped, never deleted.  Load order is
        the stored retention order (ties broken by digest), so resumed
        runs are deterministic regardless of directory listing order.
        """
        if not self.persist_dir or not os.path.isdir(self.persist_dir):
            return 0
        loaded = []
        for name in sorted(os.listdir(self.persist_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.persist_dir, name)
            try:
                with open(path) as handle:
                    entry = SeedEntry.from_jsonable(json.load(handle))
            except (OSError, ValueError, CorpusError):
                self.load_errors += 1
                continue
            if entry.digest not in self._by_digest:
                self._by_digest[entry.digest] = entry
                loaded.append(entry)
        loaded.sort(key=lambda e: (e.order, e.digest))
        for entry in loaded:
            entry.order = self._next_order
            self._next_order += 1
            self._entries.append(entry)
        if loaded:
            self._count("corpus.loaded", len(loaded))
            self._size_gauge()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit("corpus_load", dir=self.persist_dir,
                             loaded=len(loaded), errors=self.load_errors)
        return len(loaded)

    def export(self):
        """Plain-JSON snapshot of the retained corpus (cross-worker
        sharing via ``RunResult.corpus_seeds``; also what persistence
        writes per seed)."""
        return [entry.to_jsonable() for entry in self._entries
                if entry.digest in self._by_digest]

    def _persist(self, entry):
        if not self.persist_dir:
            return
        os.makedirs(self.persist_dir, exist_ok=True)
        path = os.path.join(self.persist_dir, entry.digest + ".json")
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "w") as handle:
            json.dump(entry.to_jsonable(), handle, indent=1,
                      sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        self._count("corpus.saved")

    # ------------------------------------------------------------------
    # observability plumbing

    def _count(self, name, n=1):
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    def _size_gauge(self):
        if self.metrics is not None:
            self.metrics.gauge("corpus.size").set(len(self._entries))


# ----------------------------------------------------------------------
# coverage measurement + minimize-by-coverage (``repro corpus minimize``)

def measure_seed_coverage(target, seed, base_seed=0):
    """Branch-edge and alias-pair sets one campaign of ``seed`` covers.

    Deterministic given ``base_seed`` (fresh state, seeded scheduler, no
    crash imaging or tainting — this is a pure coverage probe).
    """
    from ..instrument.callsite import CallSiteTable
    from ..runtime.policies import SeededRandomPolicy
    from .campaign import run_campaign
    from .checkpoints import make_state_provider
    from .seeding import policy_seed
    provider = make_state_provider(target)
    campaign = run_campaign(target, provider.provide(), seed.threads,
                            SeededRandomPolicy(policy_seed(base_seed, 0)),
                            taint_enabled=False, snapshot_images=False,
                            capture_stacks=False,
                            callsites=CallSiteTable())
    return set(campaign.branch_edges), set(campaign.alias_pairs)


def minimize_by_coverage(corpus, target, base_seed=0):
    """Greedy set-cover over per-seed coverage; returns (kept, dropped).

    Each retained seed is probed once (:func:`measure_seed_coverage`);
    seeds are then kept largest-marginal-coverage-first until the union
    is covered, ties broken by retention order, so the result is
    deterministic.  The corpus itself is not modified — callers decide
    whether to :meth:`Corpus.discard` the dropped entries.
    """
    probes = []
    for entry in corpus:
        branch, alias = measure_seed_coverage(target, entry.seed,
                                              base_seed)
        covered = {("b",) + (edge if isinstance(edge, tuple) else (edge,))
                   for edge in branch}
        covered |= {("a",) + (pair if isinstance(pair, tuple) else (pair,))
                    for pair in alias}
        probes.append((entry, covered))
    universe = set()
    for _entry, covered in probes:
        universe |= covered
    kept, dropped = [], []
    remaining = set(universe)
    pool = list(probes)
    while pool:
        best_index = None
        best_gain = -1
        for index, (entry, covered) in enumerate(pool):
            gain = len(covered & remaining)
            if gain > best_gain:
                best_index, best_gain = index, gain
        entry, covered = pool.pop(best_index)
        if best_gain > 0 or not kept:
            # Always keep at least one seed, even on an empty universe.
            kept.append((entry, len(covered)))
            remaining -= covered
        else:
            dropped.append((entry, len(covered)))
    kept.sort(key=lambda pair: pair[0].order)
    dropped.sort(key=lambda pair: pair[0].order)
    return kept, dropped

"""Stable seed derivation for policies and worker retries.

The engine derives one scheduler-policy seed per campaign from
``(base_seed, campaign_index)`` and the parallel service derives fresh
seeds for retried workers from ``(seed, attempt)``.  Python's builtin
``hash`` is unsuitable for both: its value for ints is implementation
defined (it differs between CPython builds and alternative interpreters),
so runs would not be reproducible across environments.  ``mix_seeds``
instead packs the parts as little-endian 64-bit words and CRC-32s them —
explicit, portable, and pinned by a golden-value test.
"""

import struct
import zlib

_MASK64 = (1 << 64) - 1

#: Fixed salt so retry seeds do not collide with the original seed space.
RETRY_SALT = 0x9E3779B9


def mix_seeds(*parts):
    """Deterministically mix integer parts into one 32-bit seed.

    Stable across Python builds and platforms (unlike ``hash``): each part
    is reduced mod 2**64, packed little-endian, and CRC-32'd.
    """
    if not parts:
        return 0
    packed = struct.pack("<%dQ" % len(parts),
                         *(part & _MASK64 for part in parts))
    return zlib.crc32(packed) & 0xFFFFFFFF


def policy_seed(base_seed, campaign_index):
    """The scheduler-policy seed for one campaign of one session."""
    return mix_seeds(base_seed, campaign_index)


def retry_seed(seed, attempt):
    """A fresh base seed for retrying a failed worker.

    Salted so a retried worker never replays the seed space of a live
    worker (attempt 0 is the original seed itself).
    """
    if attempt == 0:
        return seed
    return mix_seeds(seed, attempt, RETRY_SALT)

"""Seeded-bug matrix: detect → validate → replay, per catalogued bug.

The extended bug catalog (:data:`repro.core.results.SEEDED_BUGS`: the
paper's Table 2 rows 1-14 plus the SDK extension targets' bugs 15/16)
is this reproduction's ground truth — every entry is a bug we *seeded*
into a target, so every entry must come back out of the pipeline. This
module is the harness that walks the full loop for each bug under
pinned seeds:

1. **detect** — a bounded capture-mode fuzzing run
   (:func:`run_matrix_target`) rediscovers the bug
   (:func:`repro.core.results.match_expected`);
2. **validate** — for record-backed kinds (inter/intra/sync), at least
   one matching record carries the ``BUG`` verdict from the cached
   validation service;
3. **replay** — that record's captured reproducer bundle replays
   deterministically (:func:`repro.replay.replayer.replay_bundle`) and
   re-validates to the same ``BUG`` verdict through a fresh
   :func:`~repro.detect.validation_service.make_validation_queue`.

``tests/integration/test_bug_matrix.py`` asserts each row;
``benchmarks/bench_bug_matrix.py`` renders the matrix as a table. Both
share :data:`MATRIX_BUDGETS` so "pinned seeds" means the same seeds
everywhere. Dynamically registered plugin targets participate
automatically once their bugs are added to ``SEEDED_BUGS``-style
catalogs: :func:`run_bug_matrix` takes any list of registered names.
"""

from ..detect.records import Verdict
from ..detect.validation_service import make_validation_queue
from .engine import PMRaceConfig, fuzz_target
from .results import SEEDED_BUGS, expected_bugs_for, match_expected

#: Pinned per-target budgets: seeds + campaign caps that rediscover
#: every catalogued bug (mirrors ``tests/integration/
#: test_bug_detection.py``; FAST-FAIR needs the longer run for the
#: split-heavy workloads that expose bug 8).
MATRIX_BUDGETS = {
    "P-CLHT": {"seeds": (7, 13), "max_campaigns": 70},
    "clevel hashing": {"seeds": (7, 13), "max_campaigns": 70},
    "CCEH": {"seeds": (7, 13), "max_campaigns": 70},
    "FAST-FAIR": {"seeds": (7, 42), "max_campaigns": 110, "max_seeds": 22},
    "memcached-pmem": {"seeds": (7, 13), "max_campaigns": 70},
    "pmring": {"seeds": (7, 13), "max_campaigns": 40},
    "txkv": {"seeds": (7, 13), "max_campaigns": 40},
}

#: Budget for targets absent from :data:`MATRIX_BUDGETS` (plugins).
DEFAULT_BUDGET = {"seeds": (7, 13), "max_campaigns": 50}

#: Record-backed bug kinds: these produce validated, replayable
#: records; candidate/hang findings are matched but have no verdict.
RECORD_KINDS = ("inter", "intra", "sync")


def matrix_targets():
    """Target names carrying at least one catalogued seeded bug, in
    catalog order."""
    names = []
    for bug in SEEDED_BUGS:
        if bug.target not in names:
            names.append(bug.target)
    return names


def run_matrix_target(name, budget=None):
    """One pinned-seed capture-mode fuzzing run for ``name``."""
    from ..targets.registry import make_target

    budget = dict(budget if budget is not None
                  else MATRIX_BUDGETS.get(name, DEFAULT_BUDGET))
    seeds = budget.pop("seeds")
    config = PMRaceConfig(capture_repro=True, profile=False,
                          max_seeds=budget.pop("max_seeds", 16), **budget)
    return fuzz_target(make_target(name), config, seeds=seeds)


def _site_text(record):
    """The matcher haystack for one record (mirrors match_expected)."""
    return " ".join(
        str(part) for part in (getattr(record, "write_instr", None),
                               getattr(record, "read_instr", None),
                               getattr(record, "annotation_name", None))
        if part)


def bug_records(result, expected):
    """Matching ``BUG``-verdict records for one catalog entry."""
    if expected.kind not in RECORD_KINDS:
        return []
    pool = list(result.inconsistencies) + list(result.sync_inconsistencies)
    return [record for record in pool
            if getattr(record, "kind", "sync") in expected.kinds
            and record.verdict is Verdict.BUG
            and any(needle in _site_text(record)
                    for needle in expected.matcher)]


def replay_bug_record(record, queue):
    """Replay one record's captured bundle; ``(ok, verdict)``.

    ``ok`` requires the full reproducer contract: the bundled record
    re-appears, it is the campaign's first inconsistency, the schedule
    drives to completion without divergence, *and* re-validation through
    ``queue`` re-assigns the ``BUG`` verdict.
    """
    from ..replay.replayer import replay_bundle

    if record.bundle is None:
        return False, None
    outcome = replay_bundle(record.bundle, validation=queue)
    return (outcome.ok and outcome.verdict is Verdict.BUG,
            outcome.verdict)


def target_matrix_rows(name, result, replay=True):
    """One matrix row per catalogued bug of ``name``.

    Row fields: ``bug`` / ``system`` / ``type`` / ``detected`` (bool),
    ``verdict_bug`` (bool, or None for candidate/hang kinds) and
    ``replayed`` (bool, or None when not applicable / disabled).
    """
    rows = []
    queue = make_validation_queue(name) if replay else None
    for expected in expected_bugs_for(name):
        row = {
            "bug": expected.bug_id,
            "system": name,
            "type": expected.kind,
            "detected": match_expected(expected, result),
            "verdict_bug": None,
            "replayed": None,
        }
        if expected.kind in RECORD_KINDS:
            records = bug_records(result, expected)
            row["verdict_bug"] = bool(records)
            if replay:
                bundled = [r for r in records if r.bundle is not None]
                if bundled:
                    ok, _verdict = replay_bug_record(bundled[0], queue)
                    row["replayed"] = ok
                else:
                    row["replayed"] = False
        rows.append(row)
    return rows


def run_bug_matrix(names=None, budgets=None, replay=True):
    """Run the full matrix; ``(rows, results_by_target)``."""
    names = list(names) if names is not None else matrix_targets()
    rows = []
    results = {}
    for name in names:
        budget = (budgets or {}).get(name)
        result = run_matrix_target(name, budget=budget)
        results[name] = result
        rows.extend(target_matrix_rows(name, result, replay=replay))
    return rows, results


def matrix_failures(rows):
    """Rows violating the matrix contract (empty list = all green)."""
    return [row for row in rows
            if not row["detected"]
            or row["verdict_bug"] is False
            or row["replayed"] is False]

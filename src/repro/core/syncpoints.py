"""PM-aware thread scheduling via injected cond_wait/cond_signal (Fig. 6).

Given one entry from the shared-access priority queue, loads from the
entry are *sync points*: a ``cond_wait`` is injected before each, stalling
the reader until some other thread executes one of the entry's stores —
at which point ``cond_signal`` sets the condition and stalls the *writer*
for a while (``writerWaiting``) so the readers consume the data **before
it is flushed**, driving the execution into PM Inter-thread Inconsistency
Candidates.

The three pitfalls of §4.2.2 are implemented:

* **Pitfall 1** — once signaled, the condition stays set for the rest of
  the campaign, so later executions of the sync point do not stall.
* **Pitfall 2** — if *all* threads are blocked waiting for a writer that
  does not exist, one thread is randomly selected as privileged and
  bypasses every ``cond_wait`` from then on.
* **Pitfall 3** — if *some* thread waits too long, the sync point is
  disabled for this campaign and its *initial skip* is increased, so the
  next campaign on the same seed skips the early (initialization-stage)
  executions of that sync point instead of blocking on them.
"""

import random


class SyncPointController:
    """One campaign's Figure-6 synchronization algorithm.

    Args:
        entry: A :class:`~repro.core.priority.SharedAccessEntry`.
        scheduler: The campaign's scheduler.
        rng: Seeded RNG for privileged-thread selection.
        writer_waiting: Yield rounds the writer stalls after signaling
            ("the typical total execution time of the original program").
        initial_skips: instr_id → number of cond_wait executions to skip,
            carried over from previous campaigns on the same seed.
        all_block_threshold: Per-thread spin count that, when reached by
            every live thread, triggers the privileged-thread escape.
        some_block_threshold: Spin count after which the waiting thread
            gives up and disables the sync point (Pitfall 3).
        callsites: Optional CallSiteTable to resolve interned instruction
            ids into ``module:function:line`` for blocked-reason strings
            (hang signatures must stay human-readable and stable).
    """

    def __init__(self, entry, scheduler, rng=None, writer_waiting=150,
                 initial_skips=None, all_block_threshold=40,
                 some_block_threshold=1000, callsites=None):
        self.entry = entry
        self.scheduler = scheduler
        self.rng = rng or random.Random(0)
        self.callsites = callsites
        self.writer_waiting = writer_waiting
        self.all_block_threshold = all_block_threshold
        self.some_block_threshold = some_block_threshold
        #: Figure 6's ``m``: the condition variable.
        self.signaled = False
        #: Figure 6's ``sync.is_enabled``.
        self.enabled = True
        self._skips = dict(initial_skips or {})
        self._wait_counts = {}
        #: instr_id → new initial skip to persist for the next campaign.
        self.updated_skips = {}
        #: How many cond_waits actually stalled (diagnostics).
        self.stall_count = 0
        self.signal_count = 0
        self.privileged_tid = None

    # ------------------------------------------------------------------
    # hook-layer callbacks

    def before_load(self, addr, instr_id, thread):
        """Figure 6's ``cond_wait``, injected before sync-point loads."""
        if not self.enabled or thread.bypass_sync or self.signaled:
            return
        if instr_id not in self.entry.load_instrs:
            return
        count = self._wait_counts.get(instr_id, 0)
        self._wait_counts[instr_id] = count + 1
        skip = self._skips.get(instr_id, 0)
        if skip > 0:
            self._skips[instr_id] = skip - 1
            return
        self.stall_count += 1
        site = self.callsites.name(instr_id) if self.callsites is not None \
            else instr_id
        reason = "cond_wait:%s" % site
        spins = 0
        while not self.signaled and self.enabled and not thread.bypass_sync:
            spins += 1
            self.scheduler.yield_point("spin", reason)
            if (spins >= self.all_block_threshold
                    and self.scheduler.all_threads_blocked(
                        self.all_block_threshold // 2)):
                # Pitfall 2: every thread waits on a writer that does not
                # exist; elect a privileged thread to break the tie.
                live = [t for t in self.scheduler.threads
                        if t.state.value != "done"]
                chosen = self.rng.choice(live)
                chosen.bypass_sync = True
                self.privileged_tid = chosen.tid
                if thread.bypass_sync:
                    break
            if spins >= self.some_block_threshold:
                # Pitfall 3: give up, disable, and remember to skip the
                # executions that led here in the next campaign.
                self.enabled = False
                self.updated_skips[instr_id] = (
                    self.updated_skips.get(instr_id, 0)
                    + self._wait_counts.get(instr_id, 0))
                break

    def after_store(self, addr, instr_id, thread):
        """Figure 6's ``cond_signal``, injected after sync-point stores."""
        if self.signaled or not self.enabled:
            return
        if instr_id not in self.entry.store_instrs and \
                addr != self.entry.addr:
            return
        self.signaled = True
        self.signal_count += 1
        # Stall the writer so readers run before the data is flushed.
        for _ in range(self.writer_waiting):
            self.scheduler.yield_point("op")

"""PMRace core: PM-aware coverage-guided fuzzing."""

from .bugmatrix import (
    MATRIX_BUDGETS,
    matrix_failures,
    matrix_targets,
    run_bug_matrix,
    run_matrix_target,
    target_matrix_rows,
)
from .campaign import CampaignResult, run_campaign
from .checkpoints import StateProvider, make_state_provider
from .coverage import (
    AliasCoverageCollector,
    BranchCoverageCollector,
    CoverageSet,
)
from .corpus import (
    Corpus,
    SeedEntry,
    minimize_by_coverage,
    seed_digest,
)
from .engine import HangRecord, PMRace, PMRaceConfig, RunResult, fuzz_target
from .inputgen import AflByteMutator, OperationMutator, Seed
from .parallel import ParallelFuzzService, WorkerStats, fuzz_parallel
from .priority import AccessProfiler, SharedAccessEntry, SharedAccessQueue
from .seeding import mix_seeds, policy_seed, retry_seed
from .session import (
    FaultInjector,
    Session,
    SessionError,
    SessionInterrupted,
    result_fingerprint,
    run_fuzz_session,
)
from .results import (
    EXPECTED_BUGS,
    SEEDED_BUGS,
    ExpectedBug,
    build_table2,
    build_table3,
    build_table5,
    build_table6,
    build_worker_table,
    expected_bugs_for,
    match_expected,
    render_table,
)
from .syncpoints import SyncPointController

__all__ = [
    "PMRace",
    "PMRaceConfig",
    "RunResult",
    "fuzz_target",
    "fuzz_parallel",
    "ParallelFuzzService",
    "WorkerStats",
    "mix_seeds",
    "policy_seed",
    "retry_seed",
    "Session",
    "SessionError",
    "SessionInterrupted",
    "FaultInjector",
    "run_fuzz_session",
    "result_fingerprint",
    "HangRecord",
    "run_campaign",
    "CampaignResult",
    "StateProvider",
    "make_state_provider",
    "CoverageSet",
    "BranchCoverageCollector",
    "AliasCoverageCollector",
    "Seed",
    "OperationMutator",
    "AflByteMutator",
    "Corpus",
    "SeedEntry",
    "seed_digest",
    "minimize_by_coverage",
    "AccessProfiler",
    "SharedAccessEntry",
    "SharedAccessQueue",
    "SyncPointController",
    "MATRIX_BUDGETS",
    "matrix_targets",
    "run_matrix_target",
    "target_matrix_rows",
    "run_bug_matrix",
    "matrix_failures",
]

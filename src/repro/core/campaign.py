"""One fuzz campaign: a single scheduled execution plus its checkers.

A campaign wires a target instance, a seed's per-thread operation lists,
the active scheduling policy, and (optionally) a sync-point controller
into one deterministic run, and collects everything the engine needs as
feedback: coverage, the shared-access profile, and detected
inconsistencies.
"""

from ..detect.checkers import InconsistencyChecker
from ..instrument.context import InstrumentationContext
from ..instrument.hooks import PmView
from ..runtime.scheduler import Scheduler
from .coverage import AliasCoverageCollector, BranchCoverageCollector
from .priority import AccessProfiler
from .syncpoints import SyncPointController


class CampaignResult:
    """Everything observed during one campaign."""

    def __init__(self, outcome, checker, branch_edges, alias_pairs,
                 profiler, controller, op_errors):
        self.outcome = outcome
        self.checker = checker
        self.branch_edges = branch_edges
        self.alias_pairs = alias_pairs
        self.profiler = profiler
        self.controller = controller
        self.op_errors = op_errors

    @property
    def hang(self):
        return self.outcome.status in ("hang", "budget")

    def __repr__(self):
        return ("<CampaignResult %s cand=%d inc=%d sync=%d>"
                % (self.outcome.status, len(self.checker.candidates),
                   len(self.checker.inconsistencies),
                   len(self.checker.sync_inconsistencies)))


def run_campaign(target, state, seed_threads, policy, entry=None, rng=None,
                 initial_skips=None, writer_waiting=150, taint_enabled=True,
                 snapshot_images=True, capture_stacks=True,
                 max_steps=30_000, spin_hang_limit=400, extra_observers=(),
                 metrics=None, callsites=None, evict_fraction=0.0,
                 evict_rng=None, scheduler_factory=None):
    """Execute one campaign; returns a :class:`CampaignResult`.

    Args:
        target: The :class:`~repro.targets.base.Target`.
        state: An initialized (fresh or checkpoint-restored) TargetState.
        seed_threads: List of per-thread operation lists.
        policy: Scheduling policy instance (already seeded).
        entry: Optional SharedAccessEntry enabling sync-point scheduling.
            Entries carry *interned* instruction ids from the run's
            CallSiteTable — either profiled dynamically or pre-seeded
            from pmlint hints (``PMRaceConfig.static_hints``); hint
            entries have ``addr == -1``, which matches no real address,
            so the controller signals on instruction-id match only.
        rng: RNG for privileged-thread selection.
        initial_skips: Carried-over cond_wait skip counts (Pitfall 3).
        writer_waiting: Writer stall length after cond_signal.
        metrics: Optional :class:`~repro.obs.metrics.Metrics` registry
            wired into the PM access hooks and the scheduler.
        callsites: The run-wide :class:`~repro.instrument.callsite.
            CallSiteTable`; standalone campaigns get a private table.
        evict_fraction: Per-line probability of pre-crash cache eviction
            applied to the checker's crash images.
        evict_rng: Campaign RNG for eviction sampling (from the engine so
            eviction patterns follow the campaign seed).
        scheduler_factory: Scheduler class (or factory with the same
            signature); :class:`~repro.replay.ReplayScheduler` replays
            recorded campaigns through this hook. Defaults to
            :class:`~repro.runtime.scheduler.Scheduler`.
    """
    ctx = InstrumentationContext(annotations=state.annotations,
                                 taint_enabled=taint_enabled,
                                 capture_stacks=capture_stacks,
                                 metrics=metrics, callsites=callsites)
    checker = ctx.add_observer(InconsistencyChecker(
        state.pool, snapshot_images=snapshot_images, callsites=ctx.callsites,
        evict_fraction=evict_fraction, evict_rng=evict_rng))
    branch = ctx.add_observer(BranchCoverageCollector())
    alias = ctx.add_observer(AliasCoverageCollector())
    profiler = ctx.add_observer(AccessProfiler())
    for observer in extra_observers:
        ctx.add_observer(observer)
    scheduler = (scheduler_factory or Scheduler)(
        policy, max_steps=max_steps, spin_hang_limit=spin_hang_limit,
        metrics=metrics)
    view = PmView(state.pool, scheduler, ctx)
    controller = None
    if entry is not None:
        controller = SyncPointController(
            entry, scheduler, rng=rng, writer_waiting=writer_waiting,
            initial_skips=initial_skips, callsites=ctx.callsites)
        ctx.controller = controller
    instance = target.open(state, view, scheduler)
    op_errors = [0]

    def make_worker(ops):
        def worker():
            for op in ops:
                status = target.exec_op(instance, view, op)
                if status is False:
                    op_errors[0] += 1
        return worker

    for tid, ops in enumerate(seed_threads):
        scheduler.spawn(make_worker(ops), "worker-%d" % tid)
    outcome = scheduler.run()
    return CampaignResult(outcome, checker, branch.edges, alias.pairs,
                          profiler, controller, op_errors[0])

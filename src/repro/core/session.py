"""Crash-safe resumable fuzzing sessions.

A long PMRace campaign must survive the same faults it hunts for: a
SIGKILL anywhere in a run used to lose every in-flight result, the
merged corpus, and the pending validation queue. This module gives any
fuzzing run — single-box ``repro fuzz`` or the parallel service — a
durable **session directory** with crash-consistency guarantees built
from the same primitives the tool tests targets for:

``<session-dir>/``
    ``MANIFEST.json``    versioned identity: target, kind, seeds, and a
                         config digest, so ``--resume`` refuses to mix
                         incompatible runs.
    ``journal.jsonl``    append-only work-unit journal (one fsync'd line
                         per completed engine session / worker attempt,
                         plus open/resume markers). The recovery loader
                         tolerates a torn tail line — the normal state
                         of an appended file after SIGKILL.
    ``checkpoint.json``  atomically-replaced snapshot of the merged
                         :class:`~repro.core.engine.RunResult`: records
                         (verdicts, notes, repro bundles), candidates,
                         hangs, the exported corpus, worker stats, and
                         the pending-validation index. Written tmp →
                         fsync → ``os.replace`` → directory fsync, so a
                         crash mid-write can never corrupt the previous
                         committed checkpoint.
    ``images/``          content-addressed crash images (one file per
                         unique digest), written atomically; checkpoint
                         records reference images by digest so an image
                         shared by many records is stored once.
    ``corpus/``          digest-named JSON mirror of the merged seed
                         corpus (same format as ``--corpus-dir``), kept
                         in sync at every checkpoint.

**Ordering discipline**: the checkpoint (which embeds the keys of every
unit it contains) is written *before* the unit's journal line. A crash
between the two leaves a checkpoint that is ahead of the journal; the
resume loader takes the union, so a unit is never merged twice and
never lost.

**Fault injection**: every session write is threaded through a
:class:`FaultInjector` (``REPRO_FAULT_POINT`` env or constructed
directly) that can simulate a torn write, a full disk (``ENOSPC``), a
hard SIGKILL, or an injected crash at named points — making the
recovery paths unit-testable and powering ``tools/chaos_runner.py``.
"""

import errno
import hashlib
import json
import os
import signal
import zlib

from ..detect.records import (
    CandidateRecord,
    InconsistencyRecord,
    SyncInconsistencyRecord,
    Verdict,
)
from ..obs.tracer import NULL_TRACER

#: Bump when the manifest / journal / checkpoint layout changes; a
#: session written by another version refuses to resume.
SESSION_SCHEMA_VERSION = 1

#: Environment variable configuring fault injection, e.g.
#: ``REPRO_FAULT_POINT=checkpoint_write:kill:2``.
FAULT_ENV = "REPRO_FAULT_POINT"

#: Config fields folded into the manifest's compatibility digest. The
#: digest detects *behavioural* divergence between the original run and
#: a resume — observability and output knobs are deliberately excluded.
CONFIG_DIGEST_FIELDS = (
    "mode", "n_threads", "ops_per_thread", "max_campaigns",
    "execs_per_interleaving", "max_interleavings_per_seed", "max_seeds",
    "enable_interleaving_tier", "enable_seed_tier", "taint_enabled",
    "snapshot_images", "validate", "writer_waiting", "max_steps",
    "spin_hang_limit", "coverage_feedback", "eadr", "evict_fraction",
    "corpus_schedule",
)


class SessionError(ValueError):
    """The session directory is missing, incompatible, or corrupt in a
    way recovery cannot paper over (bad manifest / schema version)."""


class SessionInterrupted(Exception):
    """Raised in the main thread by the graceful SIGINT/SIGTERM handler
    so the run loop can checkpoint and exit cleanly."""

    def __init__(self, signum):
        super().__init__("interrupted by signal %d" % signum)
        self.signum = signum


class InjectedFault(Exception):
    """A :class:`FaultInjector` fired a ``crash``/``torn`` action: the
    simulated process death at a session write."""


# ----------------------------------------------------------------------
# fault injection


class FaultInjector:
    """Named fault points threaded through every session write.

    A spec is ``point:action[:countdown]``; multiple specs are comma
    separated. ``countdown`` means the fault fires on the Nth hit of
    that point (default 1). Actions:

    * ``crash``  — raise :class:`InjectedFault` (simulated die-before-
      write or die-mid-write, depending on the call site);
    * ``torn``   — the writer persists roughly half the payload, then
      raises :class:`InjectedFault` (a torn write frozen on disk);
    * ``enospc`` — raise ``OSError(ENOSPC)`` (full disk);
    * ``kill``   — ``SIGKILL`` the current process (real crash, for
      subprocess chaos tests).
    """

    ACTIONS = ("crash", "torn", "enospc", "kill")

    def __init__(self, specs=()):
        self._arms = []
        for spec in specs:
            parts = spec.strip().split(":")
            if len(parts) not in (2, 3):
                raise ValueError("fault spec must be point:action[:n], "
                                 "got %r" % spec)
            point, action = parts[0], parts[1]
            if action not in self.ACTIONS:
                raise ValueError("unknown fault action %r (choose from "
                                 "%s)" % (action, "/".join(self.ACTIONS)))
            countdown = int(parts[2]) if len(parts) == 3 else 1
            if countdown < 1:
                raise ValueError("fault countdown must be >= 1: %r" % spec)
            self._arms.append([point, action, countdown])
        self.fired = []

    @classmethod
    def from_env(cls, environ=None):
        value = (environ or os.environ).get(FAULT_ENV, "").strip()
        if not value:
            return cls()
        return cls(value.split(","))

    def __bool__(self):
        return bool(self._arms)

    def check(self, point):
        """Decrement matching countdowns; returns the action due at this
        hit of ``point`` (or None). ``torn`` is returned to the caller —
        the *writer* knows how to half-write — every other action fires
        immediately via :meth:`trip`."""
        for arm in self._arms:
            if arm[0] != point:
                continue
            arm[2] -= 1
            if arm[2] == 0:
                self._arms.remove(arm)
                self.fired.append((point, arm[1]))
                if arm[1] == "torn":
                    return "torn"
                self.trip(point, arm[1])
        return None

    def trip(self, point, action):
        """Execute a non-torn fault action."""
        if action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if action == "enospc":
            raise OSError(errno.ENOSPC, "injected ENOSPC at %s" % point)
        raise InjectedFault("injected %s fault at %s" % (action, point))


#: Shared no-op injector (``bool() == False`` skips all checks).
NULL_FAULTS = FaultInjector()


# ----------------------------------------------------------------------
# durable-write primitives


def fsync_dir(path):
    """fsync a directory so a just-renamed/created entry is durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path, text, fault=NULL_FAULTS, point="atomic_write"):
    """Write ``text`` to ``path`` via tmp + fsync + ``os.replace``.

    A crash (real or injected) at any instant leaves either the old
    complete file or the new complete file at ``path`` — never a torn
    mix. The fault injector's ``torn`` action freezes a half-written
    *tmp* file, which is exactly what a real crash mid-write leaves.
    """
    action = fault.check(point) if fault else None
    tmp = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp, "w") as handle:
        if action == "torn":
            handle.write(text[: len(text) // 2])
            handle.flush()
            os.fsync(handle.fileno())
            raise InjectedFault("injected torn write at %s" % point)
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_dir(os.path.dirname(path) or ".")
    return path


def atomic_write_json(path, payload, fault=NULL_FAULTS,
                      point="atomic_write"):
    return atomic_write_text(
        path, json.dumps(payload, sort_keys=True, indent=1) + "\n",
        fault=fault, point=point)


def append_jsonl(path, record, fault=NULL_FAULTS, point="journal_append"):
    """Append one fsync'd JSON line. The ``torn`` fault persists half
    the line with no newline — the torn tail :func:`read_journal`
    must (and does) tolerate."""
    action = fault.check(point) if fault else None
    line = json.dumps(record, sort_keys=True)
    with open(path, "a") as handle:
        if action == "torn":
            handle.write(line[: max(1, len(line) // 2)])
            handle.flush()
            os.fsync(handle.fileno())
            raise InjectedFault("injected torn append at %s" % point)
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def read_journal(path):
    """Parse an append-only JSONL journal; returns ``(records, torn)``.

    A torn *tail* line (no trailing newline, or half a JSON document —
    the normal state after SIGKILL mid-append) is counted and skipped.
    Torn lines anywhere else mean the file was corrupted by something
    other than an append crash and raise :class:`SessionError`.
    """
    records, torn = [], 0
    if not os.path.exists(path):
        return records, torn
    with open(path) as handle:
        lines = handle.read().split("\n")
    # A well-formed journal ends with "\n", so split leaves a final "".
    tail = len(lines) - 1
    while tail >= 0 and not lines[tail].strip():
        tail -= 1
    for number, line in enumerate(lines[: tail + 1]):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            if number == tail:
                torn += 1
            else:
                raise SessionError(
                    "%s:%d: corrupt journal line (not a torn tail)"
                    % (path, number + 1))
    return records, torn


# ----------------------------------------------------------------------
# crash-image store (content-addressed, shared across records)


class ImageStore:
    """One file per unique crash image under ``<session>/images/``.

    Images are keyed by the validation service's digest (CRC32 +
    length), written atomically, and deduplicated — records in the
    checkpoint reference images as ``"<crc08x>-<len>"`` strings.
    """

    def __init__(self, directory, fault=NULL_FAULTS):
        self.directory = directory
        self.fault = fault

    def _path(self, ref):
        return os.path.join(self.directory, ref + ".bin")

    @staticmethod
    def ref_for(image):
        return "%08x-%d" % (zlib.crc32(bytes(image)) & 0xFFFFFFFF,
                            len(image))

    def put(self, image):
        """Store ``image`` (idempotent); returns its reference string."""
        ref = self.ref_for(image)
        path = self._path(ref)
        if os.path.exists(path):
            return ref
        os.makedirs(self.directory, exist_ok=True)
        action = self.fault.check("image_write") if self.fault else None
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "wb") as handle:
            if action == "torn":
                handle.write(bytes(image)[: len(image) // 2])
                handle.flush()
                os.fsync(handle.fileno())
                raise InjectedFault("injected torn image write")
            handle.write(bytes(image))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_dir(self.directory)
        return ref

    def get(self, ref):
        """Load an image by reference; returns ``None`` when the file is
        missing or fails its own digest (torn leftovers never poison a
        restored record — the record just loses its image)."""
        if ref is None:
            return None
        try:
            with open(self._path(ref), "rb") as handle:
                image = handle.read()
        except OSError:
            return None
        if self.ref_for(image) != ref:
            return None
        return bytearray(image)


# ----------------------------------------------------------------------
# RunResult <-> checkpoint document


def _plain(value):
    """Collapse tainted-int subclasses / tuples into JSON-safe values."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    return str(value)


def _candidate_to_doc(candidate):
    return {
        "candidate_id": _plain(candidate.candidate_id),
        "addr": _plain(candidate.addr),
        "size": _plain(candidate.size),
        "read_instr": candidate.read_instr,
        "write_instr": candidate.write_instr,
        "reader_tid": _plain(candidate.reader_tid),
        "writer_tid": _plain(candidate.writer_tid),
        "stack": _plain(list(candidate.stack or ())),
        "seq": _plain(candidate.seq),
    }


def _candidate_from_doc(doc):
    return CandidateRecord(
        doc["candidate_id"], doc["addr"], doc["size"], doc["read_instr"],
        doc["write_instr"], doc["reader_tid"], doc["writer_tid"],
        tuple(doc.get("stack") or ()), doc.get("seq", 0))


def _bundle_to_doc(record):
    bundle = getattr(record, "bundle", None)
    return None if bundle is None else bundle.data


def _bundle_from_doc(data):
    if data is None:
        return None
    from ..replay.bundle import BundleError, ReproBundle
    try:
        return ReproBundle(data)
    except BundleError:
        return None


def record_to_doc(record, images):
    """Serialize one kept inconsistency record (either kind)."""
    image_ref = None
    if record.crash_image is not None:
        image_ref = images.put(record.crash_image)
    doc = {
        "verdict": record.verdict.value,
        "note": record.note,
        "image": image_ref,
        "bundle": _bundle_to_doc(record),
    }
    if isinstance(record, InconsistencyRecord):
        doc["type"] = "inconsistency"
        doc["candidate"] = _candidate_to_doc(record.candidate)
        doc["side_effect_instr"] = record.side_effect_instr
        doc["side_effect_addr"] = _plain(record.side_effect_addr)
        doc["side_effect_size"] = _plain(record.side_effect_size)
        doc["address_flow"] = bool(record.address_flow)
        doc["stack"] = _plain(list(record.stack or ()))
        return doc
    if isinstance(record, SyncInconsistencyRecord):
        doc["type"] = "sync"
        doc["annotation_name"] = record.annotation_name
        doc["addr"] = _plain(record.addr)
        doc["size"] = _plain(record.size)
        doc["init_val"] = _plain(record.init_val)
        doc["new_value"] = _plain(record.new_value)
        doc["instr_id"] = record.instr_id
        doc["stack"] = _plain(list(record.stack or ()))
        return doc
    raise TypeError("cannot checkpoint %r" % (record,))


def record_from_doc(doc, images):
    image = images.get(doc.get("image"))
    if doc["type"] == "inconsistency":
        record = InconsistencyRecord(
            _candidate_from_doc(doc["candidate"]),
            doc["side_effect_instr"], doc["side_effect_addr"],
            doc["side_effect_size"], doc["address_flow"],
            tuple(doc.get("stack") or ()), image)
    elif doc["type"] == "sync":
        record = SyncInconsistencyRecord(
            doc["annotation_name"], doc["addr"], doc["size"],
            doc["init_val"], doc["new_value"], doc["instr_id"],
            tuple(doc.get("stack") or ()), image)
    else:
        raise SessionError("unknown checkpoint record type %r"
                           % (doc.get("type"),))
    record.verdict = Verdict(doc.get("verdict", "pending"))
    record.note = doc.get("note", "")
    record.bundle = _bundle_from_doc(doc.get("bundle"))
    return record


def result_to_doc(result, images):
    """The full merged :class:`~repro.core.engine.RunResult` as a
    JSON-safe checkpoint document (images stored via ``images``)."""
    from .engine import HangRecord  # noqa: F401  (doc symmetry)
    return {
        "version": SESSION_SCHEMA_VERSION,
        "target": result.target_name,
        "campaigns": result.campaigns,
        "duration": result.duration,
        "op_errors": result.op_errors,
        "annotation_count": result.annotation_count,
        "verdict_upgrades": result.verdict_upgrades,
        "first_inter_time": result.first_inter_time,
        "first_candidate_time": result.first_candidate_time,
        "coverage_timeline": [_plain(list(point))
                              for point in result.coverage_timeline],
        "inter_hit_times": [_plain(list(point))
                            for point in result.inter_hit_times],
        "candidates": [_candidate_to_doc(c) for c in result.candidates],
        "inconsistencies": [record_to_doc(r, images)
                            for r in result.inconsistencies],
        "sync_inconsistencies": [record_to_doc(r, images)
                                 for r in result.sync_inconsistencies],
        "hangs": [{"blocked": _plain([list(pair) for pair in h.blocked]),
                   "seed_id": _plain(h.seed_id)} for h in result.hangs],
        "corpus_seeds": _plain(result.corpus_seeds),
        "worker_stats": [stats.to_dict() for stats in result.worker_stats],
        "profile": _plain(result.profile),
        "pending_validation": [
            {"kind": r.kind, "key": _plain(list(r.dedup_key())),
             "image": None if r.crash_image is None
             else ImageStore.ref_for(r.crash_image)}
            for r in list(result.inconsistencies)
            + list(result.sync_inconsistencies)
            if r.verdict is Verdict.PENDING],
    }


def result_from_doc(doc, images, config, target_name=None):
    """Rebuild a merged RunResult (dedup maps included) from a
    checkpoint document."""
    from .engine import HangRecord, RunResult
    if doc.get("version") != SESSION_SCHEMA_VERSION:
        raise SessionError("unsupported checkpoint version %r"
                           % (doc.get("version"),))
    result = RunResult(target_name or doc["target"], config)
    result.campaigns = doc.get("campaigns", 0)
    result.duration = doc.get("duration", 0.0)
    result.op_errors = doc.get("op_errors", 0)
    result.annotation_count = doc.get("annotation_count", 0)
    result.verdict_upgrades = doc.get("verdict_upgrades", 0)
    result.first_inter_time = doc.get("first_inter_time")
    result.first_candidate_time = doc.get("first_candidate_time")
    result.coverage_timeline = [tuple(point) for point in
                                doc.get("coverage_timeline", [])]
    result.inter_hit_times = [tuple(point) for point in
                              doc.get("inter_hit_times", [])]
    for cdoc in doc.get("candidates", []):
        candidate = _candidate_from_doc(cdoc)
        key = (candidate.read_instr, candidate.write_instr,
               candidate.cross_thread)
        if key not in result._candidate_keys:
            result._candidate_keys.add(key)
            result.candidates.append(candidate)
    for rdoc in doc.get("inconsistencies", []):
        record = record_from_doc(rdoc, images)
        key = record.dedup_key()
        if key not in result._inconsistency_keys:
            result._inconsistency_keys[key] = record
            result.inconsistencies.append(record)
    for rdoc in doc.get("sync_inconsistencies", []):
        record = record_from_doc(rdoc, images)
        key = record.dedup_key()
        if key not in result._sync_keys:
            result._sync_keys[key] = record
            result.sync_inconsistencies.append(record)
    for hdoc in doc.get("hangs", []):
        hang = HangRecord([tuple(pair) for pair in hdoc["blocked"]],
                          hdoc.get("seed_id"))
        if hang.signature() not in result._hang_signatures:
            result._hang_signatures.add(hang.signature())
            result.hangs.append(hang)
    result.corpus_seeds = doc.get("corpus_seeds", [])
    from .parallel import WorkerStats
    result.worker_stats = [WorkerStats.from_dict(sdoc)
                           for sdoc in doc.get("worker_stats", [])]
    result.profile = doc.get("profile", {})
    result._regroup()
    return result


def result_fingerprint(result):
    """The order-independent identity the kill-resume equivalence tests
    compare: verdict per dedup key, hang signatures, corpus digests,
    and the total campaign count."""
    verdicts = sorted(
        (list(_plain(list(r.dedup_key()))), r.verdict.value)
        for r in list(result.inconsistencies)
        + list(result.sync_inconsistencies))
    return {
        "target": result.target_name,
        "campaigns": result.campaigns,
        "verdicts": verdicts,
        "hangs": sorted(sorted(h.signature()) for h in result.hangs),
        "corpus_digests": sorted(e["digest"] for e in result.corpus_seeds),
    }


def config_digest(config):
    """Stable digest over the behaviour-shaping config fields."""
    payload = {field: _plain(getattr(config, field, None))
               for field in CONFIG_DIGEST_FIELDS}
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# the session


class Session:
    """One durable fuzzing session rooted at a directory.

    Use :meth:`open` — it creates a fresh session or, with
    ``resume=True``, validates and loads an existing one. All journal
    and checkpoint writes go through the fault injector; ``ENOSPC``
    (real or injected) never aborts the run — the session degrades
    (``write_errors`` counts, the last committed checkpoint stays
    intact) while fuzzing continues.
    """

    MANIFEST = "MANIFEST.json"
    JOURNAL = "journal.jsonl"
    CHECKPOINT = "checkpoint.json"

    def __init__(self, directory, manifest, fault=None, tracer=None,
                 metrics=None):
        self.directory = directory
        self.manifest = manifest
        self.fault = fault if fault is not None else \
            FaultInjector.from_env()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.images = ImageStore(os.path.join(directory, "images"),
                                 fault=self.fault)
        self.corpus_dir = os.path.join(directory, "corpus")
        self.journal_path = os.path.join(directory, self.JOURNAL)
        self.checkpoint_path = os.path.join(directory, self.CHECKPOINT)
        self.resumed = False
        self.journal_torn_lines = 0
        self.write_errors = 0
        self.checkpoints_written = 0
        self._journal = []
        self._checkpoint_units = []

    # ------------------------------------------------------------------
    # lifecycle

    @classmethod
    def open(cls, directory, target, kind, seeds, config, resume=False,
             fault=None, tracer=None, metrics=None):
        """Create a session directory, or resume the one already there.

        A fresh open refuses an already-initialized directory unless
        ``resume`` is set (no accidental clobbering); a resume validates
        target/kind/seeds/config compatibility against the manifest.
        """
        manifest_path = os.path.join(directory, cls.MANIFEST)
        wanted = {
            "version": SESSION_SCHEMA_VERSION,
            "target": target,
            "kind": kind,
            "seeds": [int(seed) for seed in seeds],
            "config_digest": config_digest(config),
        }
        exists = os.path.exists(manifest_path)
        if exists and not resume:
            raise SessionError(
                "%s already holds a session; pass --resume to continue "
                "it (or point --session-dir somewhere fresh)" % directory)
        if not exists:
            os.makedirs(directory, exist_ok=True)
            atomic_write_json(manifest_path, wanted,
                              point="manifest_write")
            session = cls(directory, wanted, fault=fault, tracer=tracer,
                          metrics=metrics)
            session._append({"type": "session_open", "kind": kind,
                             "target": target})
            return session
        try:
            with open(manifest_path) as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SessionError("unreadable session manifest %s: %s"
                               % (manifest_path, exc))
        if manifest.get("version") != SESSION_SCHEMA_VERSION:
            raise SessionError(
                "session schema %r is not resumable by this build "
                "(want %d)" % (manifest.get("version"),
                               SESSION_SCHEMA_VERSION))
        for field in ("target", "kind", "seeds", "config_digest"):
            if manifest.get(field) != wanted[field]:
                raise SessionError(
                    "--resume mismatch on %s: session has %r, this run "
                    "wants %r" % (field, manifest.get(field),
                                  wanted[field]))
        session = cls(directory, manifest, fault=fault, tracer=tracer,
                      metrics=metrics)
        session._load_existing()
        return session

    def _load_existing(self):
        self.resumed = True
        self._journal, self.journal_torn_lines = \
            read_journal(self.journal_path)
        if self.journal_torn_lines:
            self._count("session.journal.torn", self.journal_torn_lines)
        doc = self._read_checkpoint_doc()
        self._checkpoint_units = list(doc.get("units", [])) if doc else []
        self._append({"type": "session_resume",
                      "journal_records": len(self._journal),
                      "torn_lines": self.journal_torn_lines})

    # ------------------------------------------------------------------
    # journal

    def _append(self, record):
        try:
            append_jsonl(self.journal_path, record, fault=self.fault)
        except OSError:
            self.write_errors += 1
            self._count("session.write_errors")

    def record_unit(self, worker_id, seed, attempt, status, campaigns=0):
        """Journal one finished work unit (after its checkpoint)."""
        entry = {"type": "unit", "worker_id": int(worker_id),
                 "seed": int(seed), "attempt": int(attempt),
                 "status": status, "campaigns": int(campaigns)}
        self._journal.append(entry)
        self._append(entry)
        self._count("session.units")

    def unit_records(self):
        return [r for r in self._journal if r.get("type") == "unit"]

    def done_units(self):
        """Worker ids whose session completed — the union of journaled
        ``ok`` units and units embedded in the committed checkpoint
        (covers a crash between checkpoint write and journal append)."""
        done = {r["worker_id"] for r in self.unit_records()
                if r.get("status") == "ok"}
        done.update(self._checkpoint_units)
        return done

    def retry_ledger(self):
        """Per-worker ``(next_attempt, last_seed)`` from the journal, so
        a resumed run continues attempt counts instead of resetting the
        retry budget."""
        ledger = {}
        for record in self.unit_records():
            worker_id = record["worker_id"]
            previous = ledger.get(worker_id)
            if previous is None or record["attempt"] >= previous[0] - 1:
                ledger[worker_id] = (record["attempt"] + 1,
                                     record["seed"])
        return ledger

    # ------------------------------------------------------------------
    # checkpoint

    def write_checkpoint(self, result, units, final=False,
                         interrupted=None):
        """Atomically replace the merged-result checkpoint.

        Returns True on success; an ``OSError`` (disk full) is contained
        — counted, traced, previous checkpoint left intact."""
        doc = None
        try:
            doc = result_to_doc(result, self.images)
            doc["units"] = sorted(int(u) for u in units)
            doc["final"] = bool(final)
            doc["interrupted"] = interrupted
            atomic_write_json(self.checkpoint_path, doc, fault=self.fault,
                              point="checkpoint_write")
            self._checkpoint_units = doc["units"]
            self._sync_corpus_dir(result)
        except OSError:
            self.write_errors += 1
            self._count("session.write_errors")
            return False
        self.checkpoints_written += 1
        self._count("session.checkpoints")
        if self.tracer.enabled:
            self.tracer.emit("session_checkpoint", dir=self.directory,
                             units=len(doc["units"]),
                             campaigns=result.campaigns,
                             final=bool(final), interrupted=interrupted)
        return True

    def _read_checkpoint_doc(self):
        try:
            with open(self.checkpoint_path) as handle:
                return json.load(handle)
        except OSError:
            return None
        except ValueError:
            # A torn checkpoint at the final path means the atomic-write
            # discipline was violated externally; recovery treats it as
            # absent rather than propagating garbage.
            self._count("session.checkpoint.corrupt")
            return None

    def load_checkpoint(self, config):
        """The committed merged RunResult, or None on a fresh session."""
        doc = self._read_checkpoint_doc()
        if doc is None:
            return None
        return result_from_doc(doc, self.images, config,
                               target_name=self.manifest["target"])

    def _sync_corpus_dir(self, result):
        """Mirror the merged corpus as digest-named JSON files (the
        ``--corpus-dir`` format), written atomically."""
        if not result.corpus_seeds:
            return
        os.makedirs(self.corpus_dir, exist_ok=True)
        for entry in result.corpus_seeds:
            path = os.path.join(self.corpus_dir,
                                entry["digest"] + ".json")
            if os.path.exists(path):
                continue
            atomic_write_json(path, entry, fault=self.fault,
                              point="corpus_write")

    # ------------------------------------------------------------------
    # resume-side validation

    def revalidate_pending(self, result, whitelist=None):
        """Re-enqueue PENDING records that carry a crash image through a
        fresh digest-cached validation queue; returns the drain count.

        Runs at every session finalize (fresh or resumed), so an
        interrupted-and-resumed run reaches the same verdicts as an
        uninterrupted session run."""
        pending = [r for r in list(result.inconsistencies)
                   + list(result.sync_inconsistencies)
                   if r.verdict is Verdict.PENDING
                   and r.crash_image is not None]
        if not pending:
            return 0
        from ..detect.validation_service import make_validation_queue
        queue = make_validation_queue(self.manifest["target"],
                                      whitelist=whitelist,
                                      tracer=self.tracer,
                                      metrics=self.metrics)
        for record in pending:
            queue.enqueue(record)
        drained = queue.drain()
        result._regroup()
        return drained

    # ------------------------------------------------------------------

    def _count(self, name, n=1):
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)


# ----------------------------------------------------------------------
# graceful signal handling


class SignalGuard:
    """Context manager turning SIGINT/SIGTERM into
    :class:`SessionInterrupted` raised in the main thread, restoring the
    previous handlers on exit. A second signal while the first is being
    handled falls back to the previous handler (so a double Ctrl-C still
    kills a stuck shutdown)."""

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self):
        self._previous = {}
        self.fired = None

    def _handler(self, signum, frame):
        if self.fired is not None:
            previous = self._previous.get(signum, signal.SIG_DFL)
            signal.signal(signum, previous)
            return
        self.fired = signum
        raise SessionInterrupted(signum)

    def __enter__(self):
        for signum in self.SIGNALS:
            try:
                self._previous[signum] = signal.signal(signum,
                                                       self._handler)
            except ValueError:
                # Not the main thread (tests under odd runners): signals
                # cannot be trapped here; the guard degrades to a no-op.
                self._previous.pop(signum, None)
        return self

    def __exit__(self, *exc):
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except ValueError:
                pass
        return False


# ----------------------------------------------------------------------
# single-box session runner (the ``repro fuzz --session-dir`` path)


def run_fuzz_session(target, config, seeds, session, tracer=None,
                     metrics=None):
    """Fuzz ``target`` one engine session per seed under ``session``.

    Work units are whole engine sessions (one per seed, ``worker_id`` =
    seed index): a unit that was journaled/checkpointed is skipped on
    resume, remaining units run fresh, and every completion writes
    checkpoint-then-journal. SIGINT/SIGTERM anywhere — including inside
    the fuzz loop or a validation drain — stops at the interrupt, writes
    a final checkpoint of everything merged so far, and reports the
    signal; the merged result is returned either way as
    ``(result, interrupted_signum)``.
    """
    import copy

    from ..targets.registry import make_target
    from .engine import PMRace, PMRaceConfig, RunResult

    tracer = tracer if tracer is not None else NULL_TRACER
    base_config = config if config is not None else PMRaceConfig()
    target_name = target if isinstance(target, str) else target.NAME
    merged = session.load_checkpoint(copy.deepcopy(base_config))
    done = session.done_units()
    if session.resumed:
        skipped = [i for i, _ in enumerate(seeds) if i in done]
        tracer.emit("session_resume", dir=session.directory,
                    skipped_units=len(skipped),
                    torn_lines=session.journal_torn_lines)
        if metrics is not None:
            metrics.counter("session.resume.skipped").inc(len(skipped))
    interrupted = None
    units = set(done)
    with SignalGuard() as guard:
        try:
            for index, seed in enumerate(seeds):
                if index in done:
                    continue
                cfg = copy.deepcopy(base_config)
                cfg.base_seed = seed
                instance = make_target(target) \
                    if isinstance(target, str) else target
                result = PMRace(instance, cfg, tracer=tracer,
                                metrics=metrics).run()
                if merged is None:
                    merged = result
                else:
                    merged.merge(result)
                units.add(index)
                session.write_checkpoint(merged, units)
                session.record_unit(index, seed, 0, "ok",
                                    result.campaigns)
        except SessionInterrupted as exc:
            interrupted = exc.signum
        except KeyboardInterrupt:
            interrupted = signal.SIGINT
    if merged is None:
        merged = RunResult(target_name, copy.deepcopy(base_config))
    if interrupted is None:
        session.revalidate_pending(merged,
                                   whitelist=base_config.whitelist)
    session.write_checkpoint(merged, units, final=interrupted is None,
                             interrupted=interrupted)
    merged.interrupted = interrupted
    return merged, interrupted

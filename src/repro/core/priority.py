"""The priority queue of shared PM data accesses (§4.2.2).

Preemption points are selected by three principles: (1) PM accesses only,
(2) *shared* data — addresses touched by more than one thread, with both
loads and stores, (3) frequent access sites first. Each queue entry groups
the load and store instruction IDs observed at one address; the loads
become the sync points of one explored interleaving.

Instruction IDs here are whatever the event stream carries — interned
ints within a fuzzing run (one CallSiteTable spans all campaigns, so the
ids group correctly across campaigns). The queue never needs the string
form: entries feed the sync-point controller, which compares them against
other interned ids from the same table.
"""

from ..instrument.events import Observer


class AccessProfiler(Observer):
    """Per-campaign profile: address → load/store sites, tids, counts."""

    def __init__(self):
        self.profile = {}

    def _entry(self, addr):
        entry = self.profile.get(addr)
        if entry is None:
            entry = {"loads": {}, "stores": {}, "tids": set(), "count": 0}
            self.profile[addr] = entry
        return entry

    def on_load(self, event):
        entry = self._entry(event.addr)
        entry["loads"][event.instr_id] = entry["loads"].get(event.instr_id, 0) + 1
        entry["tids"].add(event.tid)
        entry["count"] += 1

    def on_store(self, event):
        entry = self._entry(event.addr)
        entry["stores"][event.instr_id] = entry["stores"].get(event.instr_id, 0) + 1
        entry["tids"].add(event.tid)
        entry["count"] += 1


class SharedAccessEntry:
    """One candidate preemption point group: an address plus its sites."""

    __slots__ = ("addr", "load_instrs", "store_instrs", "frequency")

    def __init__(self, addr, load_instrs, store_instrs, frequency):
        self.addr = addr
        self.load_instrs = frozenset(load_instrs)
        self.store_instrs = frozenset(store_instrs)
        self.frequency = frequency

    def key(self):
        """Identity for "already explored" bookkeeping."""
        return (self.load_instrs, self.store_instrs)

    def __repr__(self):
        return "<SharedAccessEntry addr=%#x loads=%d stores=%d freq=%d>" % (
            self.addr, len(self.load_instrs), len(self.store_instrs),
            self.frequency)


class SharedAccessQueue:
    """Priority queue over shared-data access groups, frequency-first.

    Addresses are grouped by their *store* instruction set: two addresses
    written by the same stores describe the same producer code, so one
    exploration (stalling their readers until one of those stores fires)
    covers both. Loads accumulate as the union of reader sites; the
    highest-frequency address represents the group for address-based
    signal matching.
    """

    def __init__(self, metrics=None):
        self._groups = {}
        self._explored = set()
        if metrics is not None:
            self._m_fetches = metrics.counter("queue.fetches")
            self._m_drained = metrics.counter("queue.drained")
            self._m_pending = metrics.gauge("queue.pending")
            self._m_groups = metrics.gauge("queue.groups")
        else:
            self._m_fetches = self._m_drained = None
            self._m_pending = self._m_groups = None

    def update_from(self, profiler):
        """Fold one campaign's :class:`AccessProfiler` into the queue."""
        for addr, info in profiler.profile.items():
            if len(info["tids"]) < 2:
                continue
            if not info["loads"] or not info["stores"]:
                continue
            key = frozenset(info["stores"])
            group = self._groups.get(key)
            if group is None:
                self._groups[key] = {
                    "loads": set(info["loads"]),
                    "frequency": info["count"],
                    "addr": addr,
                    "addr_freq": info["count"],
                }
            else:
                group["loads"] |= set(info["loads"])
                group["frequency"] += info["count"]
                if info["count"] > group["addr_freq"]:
                    group["addr"] = addr
                    group["addr_freq"] = info["count"]
        if self._m_groups is not None:
            self._m_groups.set(len(self._groups))
            self._m_pending.set(self.pending())

    def add_hint(self, store_instrs, load_instrs, frequency):
        """Inject a static hint group ahead of the dynamic profile.

        pmlint's bridge (:mod:`repro.analysis.hints`) calls this with
        interned ids for statically flagged store/load sites and a
        frequency far above anything ``update_from`` accumulates, so
        ``fetch`` serves hints before organic groups. The group carries
        ``addr=-1`` (no concrete address is known statically): the
        sync-point controller signals on instruction-id match and its
        address fallback compares unequal to every real address.

        If a dynamic group with the same store set already exists, the
        hint merges into it (loads union, frequency boost) rather than
        shadowing it. Returns True when a new group was created.
        """
        key = frozenset(store_instrs)
        group = self._groups.get(key)
        if group is None:
            self._groups[key] = {
                "loads": set(load_instrs),
                "frequency": frequency,
                "addr": -1,
                "addr_freq": 0,
            }
            created = True
        else:
            group["loads"] |= set(load_instrs)
            group["frequency"] += frequency
            created = False
        if self._m_groups is not None:
            self._m_groups.set(len(self._groups))
            self._m_pending.set(self.pending())
        return created

    def fetch(self):
        """Pop the most frequent unexplored group, or None when drained."""
        best_key, best = None, None
        for key, group in self._groups.items():
            if key in self._explored:
                continue
            if best is None or group["frequency"] > best["frequency"]:
                best_key, best = key, group
        if best is None:
            if self._m_drained is not None:
                self._m_drained.inc()
            return None
        self._explored.add(best_key)
        if self._m_fetches is not None:
            self._m_fetches.inc()
            self._m_pending.set(self.pending())
        return SharedAccessEntry(best["addr"], best["loads"], best_key,
                                 best["frequency"])

    def reset_exploration(self):
        """Forget which entries were explored (used when switching seeds)."""
        self._explored.clear()

    def clear(self):
        self._groups.clear()
        self._explored.clear()

    def __len__(self):
        return len(self._groups)

    def pending(self):
        """Number of groups not yet explored."""
        return sum(1 for key in self._groups if key not in self._explored)

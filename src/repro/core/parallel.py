"""Concurrent fuzzing (§5): a fault-tolerant parallel fuzzing service.

The original PMRace runs 13 worker processes for hours, each fuzzing with
its own seeds, and merges their findings.  This module is the scaling
surface of the reproduction: one engine session per seed, run by a
persistent worker pool, with the guarantees a long campaign needs:

* **Streaming merge** — per-worker :class:`~repro.core.engine.RunResult`s
  are folded into a *fresh* merged result as they complete (workers'
  own result objects are never mutated), so partial findings are visible
  to the ``progress`` callback long before the slowest worker finishes.
* **Fault tolerance** — a worker that raises (or exceeds
  ``worker_timeout``, measured from the worker's own execution start so
  queueing behind a busy pool never counts against the budget) does not
  abort the run: the stuck process is killed to free its slot, the
  failure is recorded, and the session is retried up to ``max_retries``
  times under a fresh seed derived with the stable mixer
  (:func:`repro.core.seeding.retry_seed`).
* **Corpus sharing** — each worker's retained seed corpus
  (``RunResult.corpus_seeds``) is folded into the merged result by
  content digest, and retried sessions start from the merged shared
  corpus (``PMRaceConfig.initial_corpus``) instead of from scratch.
* **Isolation** — each worker fuzzes a deep copy of the base config, so a
  caller-supplied mutable member (the :class:`~repro.detect.whitelist.
  Whitelist` in particular) is never shared between sessions, even on the
  ``processes=1`` in-process path.
* **Accounting** — every attempt (successful, failed, retried) leaves a
  :class:`WorkerStats` entry on ``merged.worker_stats``.

Targets are passed by registry name (or any picklable zero-argument
factory) so workers can reconstruct them.
"""

import copy
import multiprocessing
import os
import signal
import time
import traceback
from queue import Empty

from ..obs.tracer import NULL_TRACER
from ..targets.registry import make_target
from .engine import PMRace, PMRaceConfig, RunResult
from .seeding import retry_seed

#: Seconds between completion polls of in-flight pool jobs.
_POLL_INTERVAL = 0.02

#: Worker-side start-report queue, installed by the pool initializer.
#: Workers report ``(worker_id, attempt, pid, monotonic_start)`` the
#: moment they pick a job up, so the parent can (a) start the timeout
#: clock at *execution* start rather than submission — a retry queued
#: behind a stuck process used to inherit that process's queueing delay
#: and get falsely timed out — and (b) SIGKILL the exact process running
#: a hung job, freeing its slot for the queued retries.
_start_queue = None


def _pool_worker_init(queue):
    global _start_queue
    _start_queue = queue


class WorkerStats:
    """Statistics for one worker attempt (one engine session).

    Attributes:
        worker_id: Stable index of the logical worker (one per seed).
        seed: The base seed this attempt fuzzed with (retries get a
            fresh seed, so it can differ from the original).
        attempt: 0 for the first try, 1.. for retries.
        status: ``"ok"``, ``"failed"`` or ``"timeout"``.
        campaigns / duration / execs_per_sec: Session statistics
            (zero when the attempt did not produce a result).
        corpus_seeded: Shared-corpus entries this attempt started from
            (non-zero only for retries re-seeded from the merged run).
        error: Formatted traceback (or timeout note) for failures.
    """

    def __init__(self, worker_id, seed, attempt=0):
        self.worker_id = worker_id
        self.seed = seed
        self.attempt = attempt
        self.status = "ok"
        self.campaigns = 0
        self.duration = 0.0
        self.execs_per_sec = 0.0
        self.corpus_seeded = 0
        self.error = None

    @property
    def retries(self):
        return self.attempt

    def record(self, result):
        self.status = "ok"
        self.campaigns = result.campaigns
        self.duration = result.duration
        self.execs_per_sec = result.executions_per_second
        return self

    def fail(self, error, status="failed"):
        self.status = status
        self.error = error
        return self

    def to_dict(self):
        return {
            "worker_id": self.worker_id,
            "seed": self.seed,
            "attempt": self.attempt,
            "status": self.status,
            "campaigns": self.campaigns,
            "duration_s": round(self.duration, 3),
            "execs_per_sec": round(self.execs_per_sec, 2),
            "corpus_seeded": self.corpus_seeded,
            "error": self.error,
        }

    def __repr__(self):
        return "<WorkerStats #%d seed=%d attempt=%d %s>" % (
            self.worker_id, self.seed, self.attempt, self.status)


class _Job:
    """One scheduled attempt: which worker, which seed, which try.

    ``started``/``pid`` arrive from the worker's start report; a job
    that never reported is still queued behind busy pool slots and must
    not be timed out.  ``shared_corpus`` carries exported corpus entries
    (``RunResult.corpus_seeds``) a retry starts from.
    """

    def __init__(self, worker_id, seed, attempt=0, shared_corpus=None):
        self.worker_id = worker_id
        self.seed = seed
        self.attempt = attempt
        self.shared_corpus = shared_corpus
        self.started = None
        self.pid = None

    @property
    def key(self):
        return (self.worker_id, self.attempt)

    def retry(self, shared_corpus=None):
        next_attempt = self.attempt + 1
        return _Job(self.worker_id, retry_seed(self.seed, next_attempt),
                    next_attempt, shared_corpus=shared_corpus)


def _session_config(config, seed, shared_corpus=None):
    """A per-worker deep copy of ``config`` with its own base seed.

    Deep copy (not ``copy.copy``) so mutable members — the whitelist's
    entry list above all — cannot cross-contaminate sessions on the
    in-process path; subprocess workers get isolation from pickling
    anyway, but both paths behave identically this way.
    """
    cfg = copy.deepcopy(config) if config is not None else PMRaceConfig()
    cfg.base_seed = seed
    if shared_corpus:
        cfg.initial_corpus = list(shared_corpus)
    return cfg


def _run_worker(payload):
    """Pool entry point: run one engine session, never raise.

    Exceptions are captured and shipped back as a tagged tuple so one
    crashing worker cannot tear down the whole ``map``/pool iteration.

    When the config has ``capture_repro`` on, the records inside the
    returned RunResult carry their repro bundles (plain-data JSON
    documents) across the pickle boundary; the merge in ``_absorb``
    adopts a duplicate's bundle for any bundle-less kept record, same
    as crash images.
    """
    worker_id, attempt, factory, config, seed, shared_corpus = payload
    if _start_queue is not None:
        # CLOCK_MONOTONIC is system-wide on Linux, so the parent can
        # compare this stamp against its own clock directly.
        _start_queue.put((worker_id, attempt, os.getpid(),
                          time.monotonic()))
    try:
        if isinstance(factory, str):
            # A dynamically registered target only exists by name after
            # its plugin module is imported in THIS interpreter.
            if config is not None and \
                    getattr(config, "target_modules", ()):
                from ..targets.registry import load_target_modules
                load_target_modules(config.target_modules)
            target = make_target(factory)
        else:
            target = factory()
        cfg = _session_config(config, seed, shared_corpus)
        result = PMRace(target, cfg).run()
        return (worker_id, attempt, seed, "ok", result)
    except Exception:
        return (worker_id, attempt, seed, "error",
                traceback.format_exc())


def _target_name(target):
    """Best-effort merged-result name before any worker has reported."""
    if isinstance(target, str):
        return target
    return getattr(target, "NAME", None) or getattr(
        target, "__name__", None) or repr(target)


class ParallelFuzzService:
    """Drives N worker sessions and streams their results into one merge.

    Normally used through :func:`fuzz_parallel`; instantiating the
    service directly gives access to the merged-so-far result while the
    run is still in flight (via the ``progress`` callback arguments).
    """

    def __init__(self, target, config=None, seeds=(7, 13, 42, 99),
                 processes=None, worker_timeout=None, max_retries=1,
                 progress=None, tracer=None, metrics=None):
        if not seeds:
            raise ValueError("fuzz_parallel needs at least one seed")
        self.target = target
        self.config = config
        self.seeds = tuple(seeds)
        self.processes = processes
        self.worker_timeout = worker_timeout
        self.max_retries = max_retries
        self.progress = progress
        # Observability sinks live in the parent only: workers run in
        # subprocesses, so worker-side events surface here as typed
        # "worker" records and merged profile/metric aggregates.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        # The merged result is a *fresh* RunResult: worker results are
        # folded in and never mutated, and no worker's base_seed leaks
        # into the merged config (all seeds live in worker_stats).
        self.merged = RunResult(_target_name(target),
                                copy.deepcopy(config)
                                if config is not None else PMRaceConfig())

    # ------------------------------------------------------------------

    def run(self):
        jobs = [_Job(index, seed) for index, seed in enumerate(self.seeds)]
        self.tracer.emit("run_start",
                         target=_target_name(self.target), parallel=True,
                         seeds=list(self.seeds), processes=self.processes,
                         max_retries=self.max_retries)
        start = time.monotonic()
        if self.processes == 1:
            self._run_inprocess(jobs)
        else:
            self._run_pool(jobs)
        self.merged._regroup()
        self.tracer.emit("run_end", target=self.merged.target_name,
                         duration_s=round(time.monotonic() - start, 6),
                         summary=self.merged.summary())
        return self.merged

    # ------------------------------------------------------------------

    def _payload(self, job):
        return (job.worker_id, job.attempt, self.target, self.config,
                job.seed, job.shared_corpus)

    def _reseed(self, job):
        """Stamp a retry with the merged shared corpus as it stands at
        *dispatch* time (not when the retry was scheduled), so it picks
        up everything other workers merged while it waited for a slot."""
        if job.attempt == 0:
            return job
        job.shared_corpus = [dict(entry, stats=dict(entry["stats"]))
                             for entry in self.merged.corpus_seeds] or None
        if job.shared_corpus and self.metrics is not None:
            self.metrics.counter("parallel.corpus_reseeded").inc(
                len(job.shared_corpus))
        return job

    def _absorb(self, job, outcome):
        """Fold one worker attempt into the merged result; returns the
        retry job if the attempt failed and has retry budget left."""
        worker_id, attempt, seed, status, value = outcome
        stats = WorkerStats(worker_id, seed, attempt)
        stats.corpus_seeded = len(job.shared_corpus or ())
        merge_seconds = 0.0
        if status == "ok":
            stats.record(value)
            merge_start = time.monotonic()
            upgrades_before = self.merged.verdict_upgrades
            self.merged.merge(value)
            merge_seconds = time.monotonic() - merge_start
            upgraded = self.merged.verdict_upgrades - upgrades_before
            if upgraded and self.metrics is not None:
                self.metrics.counter("parallel.verdict_upgrades").inc(
                    upgraded)
        else:
            stats.fail(value, "timeout" if status == "timeout"
                       else "failed")
        self.merged.worker_stats.append(stats)
        if self.metrics is not None:
            self.metrics.counter("parallel.attempts").inc()
            self.metrics.counter("parallel.attempts.%s" % stats.status).inc()
            self.metrics.counter("parallel.merged_campaigns").inc(
                stats.campaigns)
            self.metrics.histogram("parallel.merge_seconds").observe(
                merge_seconds)
            self.metrics.histogram("parallel.worker_seconds").observe(
                stats.duration)
        if self.tracer.enabled:
            self.tracer.emit("worker", worker_id=worker_id, seed=seed,
                             attempt=attempt, status=stats.status,
                             campaigns=stats.campaigns,
                             duration_s=round(stats.duration, 6),
                             merge_s=round(merge_seconds, 6),
                             merged_campaigns=self.merged.campaigns)
        if self.progress is not None:
            self.progress(stats, self.merged)
        if stats.status != "ok" and attempt < self.max_retries:
            return job.retry()
        return None

    def _run_inprocess(self, jobs):
        """Sequential fallback (``processes=1``) — debugger friendly.

        ``worker_timeout`` is not enforced here: there is no second
        process to observe a hang from.
        """
        queue = list(jobs)
        while queue:
            job = self._reseed(queue.pop(0))
            retry = self._absorb(job, _run_worker(self._payload(job)))
            if retry is not None:
                queue.append(retry)

    def _drain_start_reports(self, start_queue, waiting):
        """Stamp started/pid onto jobs the workers began executing."""
        while True:
            try:
                worker_id, attempt, pid, started = start_queue.get_nowait()
            except Empty:
                return
            job = waiting.get((worker_id, attempt))
            if job is not None:
                job.started = started
                job.pid = pid

    def _run_pool(self, jobs):
        processes = self.processes or min(len(jobs),
                                          multiprocessing.cpu_count())
        start_queue = multiprocessing.Queue()
        pool = multiprocessing.Pool(processes,
                                    initializer=_pool_worker_init,
                                    initargs=(start_queue,))
        timed_out = False
        try:
            inflight = {}
            waiting = {}
            queue = list(jobs)
            while queue or inflight:
                while queue:
                    job = self._reseed(queue.pop(0))
                    waiting[job.key] = job
                    inflight[pool.apply_async(_run_worker,
                                              (self._payload(job),))] = job
                time.sleep(_POLL_INTERVAL)
                self._drain_start_reports(start_queue, waiting)
                for handle in list(inflight):
                    job = inflight[handle]
                    if handle.ready():
                        del inflight[handle]
                        waiting.pop(job.key, None)
                        retry = self._absorb(job, handle.get())
                    elif self.worker_timeout is not None and \
                            job.started is not None and \
                            time.monotonic() - job.started > \
                            self.worker_timeout:
                        # The clock starts at the worker's own start
                        # report, so a job queued behind a busy slot is
                        # never charged for its waiting time.  The stuck
                        # process is killed outright: the pool reaps it
                        # and respawns a fresh worker, so the slot is
                        # available to queued retries instead of being
                        # held hostage until the final terminate().
                        del inflight[handle]
                        waiting.pop(job.key, None)
                        timed_out = True
                        if job.pid is not None:
                            try:
                                os.kill(job.pid, signal.SIGKILL)
                            except (OSError, ProcessLookupError):
                                pass
                        retry = self._absorb(
                            job, (job.worker_id, job.attempt, job.seed,
                                  "timeout", "worker exceeded %.1fs"
                                  % self.worker_timeout))
                    else:
                        continue
                    if retry is not None:
                        queue.append(retry)
        finally:
            if timed_out:
                pool.terminate()
            else:
                pool.close()
            pool.join()
            start_queue.close()


def fuzz_parallel(target, config=None, seeds=(7, 13, 42, 99),
                  processes=None, worker_timeout=None, max_retries=1,
                  progress=None, tracer=None, metrics=None):
    """Fuzz ``target`` with one worker session per seed; merged result.

    Args:
        target: A Table 1 target name (str) or a picklable zero-argument
            factory returning a Target.
        config: Base :class:`PMRaceConfig`; each worker fuzzes a deep
            copy with ``base_seed`` set to its assigned seed.  The
            caller's object is never mutated.
        seeds: One engine session per seed.
        processes: Worker pool size (default: ``min(len(seeds), cpus)``).
            ``1`` runs everything in-process (useful under debuggers).
        worker_timeout: Seconds a worker may *execute* before it is
            killed and written off as hung (pool path only; the clock
            starts at the worker's start report, not at submission, so
            retries queued behind a stuck process are not falsely timed
            out while they wait for a slot).
        max_retries: How many times a failed/timed-out session is
            retried under a fresh seed (default 1).
        progress: Optional callable ``progress(stats, merged)`` invoked
            after every worker attempt with that attempt's
            :class:`WorkerStats` and the merged-so-far result.
        tracer: Optional :class:`~repro.obs.tracer.Tracer` (parent-side:
            worker lifecycle becomes typed ``worker`` events).
        metrics: Optional :class:`~repro.obs.metrics.Metrics` counting
            attempts, merged campaigns, and merge/worker durations.

    Returns:
        A fresh merged :class:`~repro.core.engine.RunResult` whose
        ``worker_stats`` lists every attempt; the per-worker results the
        workers produced are left unmodified.
    """
    return ParallelFuzzService(target, config, seeds=seeds,
                               processes=processes,
                               worker_timeout=worker_timeout,
                               max_retries=max_retries,
                               progress=progress, tracer=tracer,
                               metrics=metrics).run()
